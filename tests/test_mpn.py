"""Unit and property tests for the mpn limb-vector primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import mpn
from repro.mp.limb import RADIX16, RADIX32

RADICES = [RADIX32, RADIX16]

nonneg = st.integers(min_value=0, max_value=(1 << 512) - 1)
positive = st.integers(min_value=1, max_value=(1 << 512) - 1)


def limbs_of(x, radix=RADIX32):
    return mpn.from_int(x, radix)


class TestConversion:
    @pytest.mark.parametrize("radix", RADICES)
    def test_zero_roundtrip(self, radix):
        assert mpn.to_int(mpn.from_int(0, radix), radix) == 0
        assert mpn.from_int(0, radix) == [0]

    @pytest.mark.parametrize("radix", RADICES)
    @pytest.mark.parametrize("value", [1, 2, 255, 1 << 31, (1 << 32) - 1,
                                       1 << 32, 1 << 100, (1 << 512) - 1])
    def test_roundtrip(self, radix, value):
        assert mpn.to_int(mpn.from_int(value, radix), radix) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mpn.from_int(-1)

    @given(nonneg)
    def test_roundtrip_property(self, x):
        for radix in RADICES:
            assert mpn.to_int(mpn.from_int(x, radix), radix) == x

    @given(nonneg)
    def test_numbits_matches_bit_length(self, x):
        assert mpn.numbits(limbs_of(x)) == x.bit_length()


class TestNormalize:
    def test_strips_high_zeros(self):
        assert mpn.normalize([5, 0, 0]) == [5]

    def test_keeps_single_zero(self):
        assert mpn.normalize([0, 0, 0]) == [0]

    def test_no_change_needed(self):
        assert mpn.normalize([1, 2, 3]) == [1, 2, 3]


class TestCmp:
    @given(nonneg, nonneg)
    def test_matches_int_compare(self, a, b):
        got = mpn.cmp(limbs_of(a), limbs_of(b))
        assert got == (a > b) - (a < b)

    def test_handles_unnormalized(self):
        assert mpn.cmp([1, 0, 0], [1]) == 0


class TestAddSub:
    @given(nonneg, nonneg)
    def test_add_n_equal_lengths(self, a, b):
        n = max(len(limbs_of(a)), len(limbs_of(b)))
        up = limbs_of(a) + [0] * (n - len(limbs_of(a)))
        vp = limbs_of(b) + [0] * (n - len(limbs_of(b)))
        rp, carry = mpn.add_n(up, vp)
        assert mpn.to_int(rp) + (carry << (32 * n)) == a + b

    def test_add_n_length_mismatch(self):
        with pytest.raises(ValueError):
            mpn.add_n([1], [1, 2])

    @given(nonneg, nonneg)
    def test_add_any_lengths(self, a, b):
        assert mpn.to_int(mpn.add(limbs_of(a), limbs_of(b))) == a + b

    @given(nonneg, nonneg)
    def test_sub_ordered(self, a, b):
        hi, lo = max(a, b), min(a, b)
        assert mpn.to_int(mpn.sub(limbs_of(hi), limbs_of(lo))) == hi - lo

    def test_sub_underflow_rejected(self):
        with pytest.raises(ValueError):
            mpn.sub([1], [2])

    @given(nonneg, nonneg)
    def test_sub_n_borrow(self, a, b):
        n = max(len(limbs_of(a)), len(limbs_of(b)))
        up = limbs_of(a) + [0] * (n - len(limbs_of(a)))
        vp = limbs_of(b) + [0] * (n - len(limbs_of(b)))
        rp, borrow = mpn.sub_n(up, vp)
        assert mpn.to_int(rp) - (borrow << (32 * n)) == a - b


class TestMul1Family:
    @given(nonneg, st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_mul_1(self, a, v):
        up = limbs_of(a)
        rp, carry = mpn.mul_1(up, v)
        assert mpn.to_int(rp) + (carry << (32 * len(up))) == a * v

    @given(nonneg, nonneg, st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_addmul_1(self, r, a, v):
        n = max(len(limbs_of(r)), len(limbs_of(a)))
        rp = limbs_of(r) + [0] * (n - len(limbs_of(r)))
        up = limbs_of(a) + [0] * (n - len(limbs_of(a)))
        out, carry = mpn.addmul_1(rp, up, v)
        assert mpn.to_int(out) + (carry << (32 * n)) == r + a * v

    @given(nonneg, nonneg, st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_submul_1(self, r, a, v):
        n = max(len(limbs_of(r)), len(limbs_of(a)))
        rp = limbs_of(r) + [0] * (n - len(limbs_of(r)))
        up = limbs_of(a) + [0] * (n - len(limbs_of(a)))
        out, borrow = mpn.submul_1(rp, up, v)
        assert mpn.to_int(out) - (borrow << (32 * n)) == r - a * v


class TestShift:
    @given(nonneg, st.integers(min_value=1, max_value=31))
    def test_lshift(self, a, cnt):
        up = limbs_of(a)
        rp, out = mpn.lshift(up, cnt)
        assert mpn.to_int(rp) + (out << (32 * len(up))) == a << cnt

    @given(nonneg, st.integers(min_value=1, max_value=31))
    def test_rshift(self, a, cnt):
        up = limbs_of(a)
        rp, _ = mpn.rshift(up, cnt)
        assert mpn.to_int(rp) == a >> cnt

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            mpn.lshift([1], 0)
        with pytest.raises(ValueError):
            mpn.rshift([1], 32)


class TestMul:
    @given(nonneg, nonneg)
    def test_basecase(self, a, b):
        got = mpn.to_int(mpn.mul_basecase(limbs_of(a), limbs_of(b)))
        assert got == a * b

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=(1 << 2048) - 1),
           st.integers(min_value=0, max_value=(1 << 2048) - 1))
    def test_karatsuba_matches(self, a, b):
        got = mpn.to_int(mpn.mul_karatsuba(limbs_of(a), limbs_of(b),
                                           threshold=4))
        assert got == a * b

    @given(nonneg, nonneg)
    def test_mul_dispatch(self, a, b):
        assert mpn.to_int(mpn.mul(limbs_of(a), limbs_of(b))) == a * b

    @given(nonneg)
    def test_sqr(self, a):
        assert mpn.to_int(mpn.sqr(limbs_of(a))) == a * a

    def test_mul_zero(self):
        assert mpn.mul([0], limbs_of(12345)) == [0]


class TestDiv:
    @given(nonneg, st.integers(min_value=1, max_value=(1 << 32) - 1))
    def test_divrem_1(self, a, v):
        q, r = mpn.divrem_1(limbs_of(a), v)
        assert mpn.to_int(q) == a // v
        assert r == a % v

    def test_divrem_1_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            mpn.divrem_1([1], 0)

    @given(nonneg, positive)
    def test_divrem(self, a, b):
        q, r = mpn.divrem(limbs_of(a), limbs_of(b))
        assert mpn.to_int(q) == a // b
        assert mpn.to_int(r) == a % b

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=(1 << 2048) - 1),
           st.integers(min_value=1, max_value=(1 << 1024) - 1))
    def test_divrem_large(self, a, b):
        q, r = mpn.divrem(limbs_of(a), limbs_of(b))
        assert mpn.to_int(q) == a // b
        assert mpn.to_int(r) == a % b

    def test_divrem_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            mpn.divrem([1], [0])

    @given(nonneg, positive)
    def test_mod(self, a, b):
        assert mpn.to_int(mpn.mod(limbs_of(a), limbs_of(b))) == a % b

    def test_divrem_knuth_addback_path(self):
        # Crafted operands known to trigger the Algorithm D add-back step.
        a = (1 << 96) - (1 << 64) + 1
        b = (1 << 64) - 1
        q, r = mpn.divrem(limbs_of(a), limbs_of(b))
        assert mpn.to_int(q) == a // b
        assert mpn.to_int(r) == a % b


class TestRadix16:
    @given(nonneg, nonneg)
    def test_mul_radix16(self, a, b):
        got = mpn.mul(mpn.from_int(a, RADIX16), mpn.from_int(b, RADIX16),
                      RADIX16)
        assert mpn.to_int(got, RADIX16) == a * b

    @given(nonneg, positive)
    def test_divrem_radix16(self, a, b):
        q, r = mpn.divrem(mpn.from_int(a, RADIX16), mpn.from_int(b, RADIX16),
                          RADIX16)
        assert mpn.to_int(q, RADIX16) == a // b
        assert mpn.to_int(r, RADIX16) == a % b


class TestHotPathEquivalence:
    """The micro-optimized in-place helpers must be bit-identical to
    int arithmetic AND charge exactly the same traced leaf calls as
    the functional leaves they replace (so macro-model cycle estimates
    are unchanged by the optimization)."""

    @staticmethod
    def _traced_calls(fn):
        from repro.mp.hooks import traced
        calls = []
        with traced(lambda name, params: calls.append((name,
                                                       params["n"]))):
            result = fn()
        return result, calls

    @given(nonneg, nonneg)
    def test_mul_basecase_matches_int(self, a, b):
        got = mpn.mul_basecase(limbs_of(a), limbs_of(b))
        assert mpn.to_int(got) == a * b

    @given(nonneg, positive)
    def test_divrem_matches_int(self, a, b):
        q, r = mpn.divrem(limbs_of(a), limbs_of(b))
        assert mpn.to_int(q) == a // b
        assert mpn.to_int(r) == a % b

    @given(st.integers(min_value=1, max_value=(1 << 256) - 1),
           st.integers(min_value=1, max_value=(1 << 256) - 1))
    def test_mul_basecase_trace_counts(self, a, b):
        """m x n schoolbook = 1 mul_1 + (m-1) addmul_1, all of width
        len(up) -- the exact call sequence the macro-models charge."""
        up, vp = limbs_of(a), limbs_of(b)
        _, calls = self._traced_calls(
            lambda: mpn.mul_basecase(up, vp))
        expected = [("mpn_mul_1", len(up))] + \
            [("mpn_addmul_1", len(up))] * (len(vp) - 1)
        assert calls == expected

    def test_divrem_addback_trace_includes_add_n(self):
        # Crafted Algorithm D add-back trigger: the divisor's zero
        # middle limb blinds the 3-limb qhat check to the huge low
        # limb, and the dividend window makes rhat == 0 with qhat at
        # base-1 -- so D4 underflows and the rare D6 correction runs.
        # It must still charge exactly one mpn_add_n of width n.
        a = 0x7FFFFFFF_80000000_00000000_00000000
        b = 0x80000000_00000000_FFFFFFFF
        (q, r), calls = self._traced_calls(
            lambda: mpn.divrem(limbs_of(a), limbs_of(b)))
        assert mpn.to_int(q) == a // b and mpn.to_int(r) == a % b
        n = len(limbs_of(b))
        assert calls.count(("mpn_add_n", n)) == 1
        assert calls.count(("mpn_divrem_qest", 1)) == \
            calls.count(("mpn_submul_1", n))

    @given(nonneg, positive)
    def test_divrem_trace_structure(self, a, b):
        """Every quotient digit charges one qest + one submul_1 of the
        divisor's width (plus at most one add_n on the add-back path)."""
        un, vn = limbs_of(a), limbs_of(b)
        if len(vn) < 2 or mpn.cmp(un, vn) < 0:
            return          # single-limb or trivial path
        (q, _), calls = self._traced_calls(
            lambda: mpn.divrem(un, vn))
        qests = calls.count(("mpn_divrem_qest", 1))
        submuls = [c for c in calls if c[0] == "mpn_submul_1"]
        assert qests == len(submuls) > 0
        assert all(n == len(vn) for _, n in submuls)

    def test_inplace_helpers_match_functional_leaves(self):
        from repro.mp.prng import DeterministicPrng
        prng = DeterministicPrng(0xFACE)
        for n in (1, 2, 5, 9):
            rp = prng.next_limbs(n)
            up = prng.next_limbs(n)
            v = prng.next_bits(32)
            want_add, carry_add = mpn.addmul_1(rp, up, v)
            got = list(rp)
            carry = mpn._addmul_1_into(got, 0, up, v)
            assert (got, carry) == (want_add, carry_add)
            big = prng.next_limbs(n)    # ensure no borrow underflow
            base = [x | y for x, y in zip(big, up)]
            want_sub, borrow_sub = mpn.submul_1(base, up, 1)
            got = list(base)
            borrow = mpn._submul_1_into(got, 0, up, 1)
            assert (got, borrow) == (want_sub, borrow_sub)
