"""Tests for repro.obs: metrics registry, tracer, and the farm
instrumentation acceptance check (span aggregates == FarmResult).

Uses the same frozen PlatformCosts as tests/test_farm.py so no ISS
characterization runs.
"""

import io
import json

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmSimulator, PreferentialScheduler,
                        TrafficProfile, build_farm, generate_requests,
                        summarize)
from repro.obs import (Counter, DEFAULT_LATENCY_MS_EDGES, Gauge,
                       Histogram, MetricsRegistry, NULL_TRACER, Tracer,
                       configure_tracing, get_tracer, metrics_summary,
                       render_metrics, reset_tracing, tracing_enabled,
                       write_events_jsonl)

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _seeded_run(tracer=None, metrics=None, n_requests=120, seed=7):
    requests = generate_requests(TrafficProfile(arrival_rate=80.0),
                                 n_requests, seed=seed)
    sim = FarmSimulator(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5),
                        PreferentialScheduler(), tracer=tracer,
                        metrics=metrics)
    return sim.run(requests)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_bucketing_against_fixed_edges(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 5000.0):
            h.observe(v)
        # <=1, (1,10], (10,100], overflow
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 5000.0
        assert h.mean == pytest.approx(sum((0.5, 1.0, 5.0, 50.0, 5000.0))
                                       / 5)

    def test_quantile_returns_bucket_edge(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 3.0, 20.0):
            h.observe(v)
        assert h.quantile(0.5) == 10.0     # 2nd obs lives in (1,10]
        assert h.quantile(1.0) == 100.0

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(10.0, 1.0))


class TestHistogramQuantileEdges:
    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram(edges=(1.0, 10.0))
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q_zero_and_out_of_range_raise(self):
        h = Histogram(edges=(1.0, 10.0))
        h.observe(5.0)
        for bad in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_value_exactly_on_edge_lands_in_that_bucket(self):
        # Edges are inclusive upper bounds: observing exactly 10.0 must
        # fill the (1, 10] bucket, so its quantile reports edge 10.0,
        # not the next bucket's 100.0.
        h = Histogram(edges=(1.0, 10.0, 100.0))
        h.observe(10.0)
        assert h.bucket_counts == [0, 1, 0, 0]
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 10.0

    def test_single_observation_every_quantile_is_its_bucket(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        h.observe(3.0)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 10.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram(edges=(1.0, 10.0))
        h.observe(12345.0)
        assert h.quantile(1.0) == 12345.0

    def test_q_one_is_max_bucket_even_with_many_observations(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 0.7, 50.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0


class TestPrometheusExport:
    def test_counter_and_gauge_samples_with_labels(self):
        reg = MetricsRegistry()
        reg.counter("farm.cache.hits", scheduler="rr", core=3).inc(5)
        reg.gauge("farm.core.utilization", core=0).set(0.75)
        out = render_metrics(reg, format="prometheus")
        assert "# TYPE farm_cache_hits counter" in out
        assert 'farm_cache_hits{core="3",scheduler="rr"} 5' in out
        assert "# TYPE farm_core_utilization gauge" in out
        assert 'farm_core_utilization{core="0"} 0.75' in out

    def test_histogram_expands_to_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 5000.0):
            h.observe(v)
        out = render_metrics(reg, format="prometheus")
        assert "# TYPE lat_ms histogram" in out
        assert 'lat_ms_bucket{le="1"} 1' in out
        assert 'lat_ms_bucket{le="10"} 2' in out       # cumulative
        assert 'lat_ms_bucket{le="100"} 3' in out
        assert 'lat_ms_bucket{le="+Inf"} 4' in out
        assert "lat_ms_sum 5055.5" in out
        assert "lat_ms_count 4" in out

    def test_type_line_emitted_once_per_metric_name(self):
        reg = MetricsRegistry()
        reg.counter("hits", core=0).inc()
        reg.counter("hits", core=1).inc()
        out = render_metrics(reg, format="prometheus")
        assert out.count("# TYPE hits counter") == 1

    def test_names_and_label_values_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("farm.requests-completed", kind='a"b').inc()
        out = render_metrics(reg, format="prometheus")
        assert 'farm_requests_completed{kind="a\\"b"} 1' in out

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown metrics format"):
            render_metrics(MetricsRegistry(), format="xml")


class TestMetricsRegistry:
    def test_same_name_and_labels_is_one_instrument(self):
        reg = MetricsRegistry()
        reg.counter("hits", core=1).inc()
        reg.counter("hits", core=1).inc()
        reg.counter("hits", core=2).inc()
        assert reg.counter("hits", core=1).value == 2
        assert reg.counter("hits", core=2).value == 1
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_histogram_edge_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("lat", edges=(1.0, 3.0))

    def test_as_dict_renders_sorted_label_keys(self):
        reg = MetricsRegistry()
        reg.counter("farm.hits", scheduler="rr", core=3).inc(5)
        reg.gauge("util").set(0.5)
        payload = reg.as_dict()
        assert payload["farm.hits{core=3,scheduler=rr}"] == \
            {"type": "counter", "value": 5.0}
        assert payload["util"]["type"] == "gauge"
        assert list(payload) == sorted(payload)

    def test_summary_and_render_cover_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b", edges=DEFAULT_LATENCY_MS_EDGES).observe(3.0)
        assert set(metrics_summary(reg)) == {"a", "b"}
        rendered = render_metrics(reg)
        assert "a" in rendered and "histogram count=1" in rendered


class TestTracer:
    def test_span_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1) as inner:
                tracer.event("tick")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.events[0].span_id == inner.span_id
        # children finish (and are appended) before their parents
        assert tracer.spans.index(inner) < tracer.spans.index(outer)
        assert inner.start > outer.start and inner.end < outer.end

    def test_span_marks_error_attr_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[0].attrs["error"] is True

    def test_record_uses_caller_timestamps(self):
        tracer = Tracer()
        span = tracer.record("farm.request", start=100.0, end=350.0,
                             core=2)
        assert span.duration == 250.0
        assert tracer.find_spans("farm.request") == [span]

    def test_global_configure_and_reset(self):
        assert not tracing_enabled()
        try:
            tracer = configure_tracing()
            assert tracing_enabled() and get_tracer() is tracer
        finally:
            reset_tracing()
        assert get_tracer() is NULL_TRACER


class TestNullTracerIsFree:
    """The disabled path must not allocate per event."""

    def test_span_returns_the_one_shared_context(self):
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y", a=1)

    def test_record_and_event_return_none(self):
        assert NULL_TRACER.record("s", start=0.0, end=1.0) is None
        assert NULL_TRACER.event("e", time=0.0) is None

    def test_simulator_defaults_to_the_null_singleton(self):
        sim = FarmSimulator(build_farm(2, BASE_COSTS, OPT_COSTS),
                            PreferentialScheduler())
        assert sim.tracer is NULL_TRACER

    def test_null_span_context_is_inert(self):
        with NULL_TRACER.span("x") as span:
            assert span is None


class TestSeededFarmTracing:
    def test_trace_is_deterministic_across_runs(self):
        logs = []
        for _ in range(2):
            tracer = Tracer()
            _seeded_run(tracer=tracer)
            buf = io.StringIO()
            write_events_jsonl(tracer, buf)
            logs.append(buf.getvalue())
        assert logs[0] == logs[1]

    def test_spans_agree_with_farm_result(self):
        """Acceptance check: aggregating the per-request spans
        reproduces the FarmResult/summarize metrics exactly."""
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = _seeded_run(tracer=tracer, metrics=metrics)
        report = summarize(result)
        spans = tracer.find_spans("farm.request")

        assert len(spans) == len(result.completions) == report.completed
        # Latency: span (end - start) is exactly completion latency.
        span_latency = sorted(s.duration for s in spans)
        completion_latency = sorted(c.latency_cycles
                                    for c in result.completions)
        assert span_latency == pytest.approx(completion_latency)
        # Throughput: completions over the trace's makespan.
        makespan = max(s.end for s in spans)
        assert makespan == result.makespan_cycles
        sessions_per_s = len(spans) / (makespan / result.clock_hz)
        assert sessions_per_s == pytest.approx(report.sessions_per_s)
        # Utilization: per-core busy cycles summed from span services.
        for core in result.cores:
            busy = sum(s.attrs["service_cycles"] for s in spans
                       if s.attrs["core"] == core.index)
            assert busy == pytest.approx(core.busy_cycles)
            assert busy / makespan == pytest.approx(
                report.core_utilization[core.index])
        # Cache hits seen by spans match the cores' own counters.
        span_hits = sum(1 for s in spans if s.attrs["cache_hit"])
        assert span_hits == sum(c.cache.hits for c in result.cores)

    def test_metrics_registry_agrees_with_farm_result(self):
        metrics = MetricsRegistry()
        result = _seeded_run(metrics=metrics)
        sched = result.scheduler_name
        assert metrics.counter("farm.requests.completed",
                               scheduler=sched).value == \
            len(result.completions)
        hist = metrics.histogram("farm.request.latency_ms",
                                 scheduler=sched)
        assert hist.count == len(result.completions)
        mean_ms = (sum(c.latency_cycles for c in result.completions)
                   / len(result.completions) / result.clock_hz * 1e3)
        assert hist.mean == pytest.approx(mean_ms)

    def test_queue_depth_events_are_emitted(self):
        tracer = Tracer()
        _seeded_run(tracer=tracer, n_requests=40)
        depths = [e for e in tracer.events
                  if e.name == "farm.core.queue_depth"]
        assert depths
        assert all(e.attrs["depth"] >= 0 for e in depths)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        _seeded_run(tracer=tracer, n_requests=40)
        path = tmp_path / "trace.jsonl"
        written = write_events_jsonl(tracer, str(path))
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == written == len(tracer.records())
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "event"}
