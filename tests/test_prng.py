"""Tests for the deterministic stimulus PRNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mp.prng import DeterministicPrng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicPrng(123)
        b = DeterministicPrng(123)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_different_seeds_diverge(self):
        a = DeterministicPrng(1)
        b = DeterministicPrng(2)
        assert [a.next_u64() for _ in range(4)] != \
            [b.next_u64() for _ in range(4)]

    def test_zero_seed_handled(self):
        prng = DeterministicPrng(0)
        assert prng.next_u64() != 0


class TestRanges:
    @given(st.integers(min_value=1, max_value=512))
    def test_next_bits_bounded(self, nbits):
        value = DeterministicPrng(7).next_bits(nbits)
        assert 0 <= value < (1 << nbits)

    @given(st.integers(min_value=1, max_value=10 ** 12))
    def test_next_int_bounded(self, upper):
        assert 0 <= DeterministicPrng(9).next_int(upper) < upper

    def test_next_int_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicPrng().next_int(0)

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=0, max_value=1000))
    def test_next_range_inclusive(self, low, span):
        value = DeterministicPrng(3).next_range(low, low + span)
        assert low <= value <= low + span

    @given(st.integers(min_value=2, max_value=256))
    def test_next_odd_bits(self, nbits):
        value = DeterministicPrng(5).next_odd_bits(nbits)
        assert value & 1
        assert value.bit_length() == nbits

    def test_next_odd_bits_too_small(self):
        with pytest.raises(ValueError):
            DeterministicPrng().next_odd_bits(1)

    def test_next_bytes_length(self):
        assert len(DeterministicPrng().next_bytes(33)) == 33

    def test_next_limbs(self):
        limbs = DeterministicPrng(11).next_limbs(8)
        assert len(limbs) == 8
        assert all(0 <= limb < (1 << 32) for limb in limbs)


class TestCollections:
    def test_choice_stays_in_sequence(self):
        prng = DeterministicPrng(13)
        seq = ["a", "b", "c"]
        for _ in range(20):
            assert prng.choice(seq) in seq

    def test_shuffle_is_permutation(self):
        prng = DeterministicPrng(17)
        seq = list(range(50))
        shuffled = list(seq)
        prng.shuffle(shuffled)
        assert sorted(shuffled) == seq
        assert shuffled != seq  # overwhelmingly likely with 50 elements


class TestStatisticalSanity:
    def test_bit_balance(self):
        """The xorshift* stream should be roughly bit-balanced."""
        prng = DeterministicPrng(29)
        ones = sum(bin(prng.next_u64()).count("1") for _ in range(500))
        total = 500 * 64
        assert 0.47 < ones / total < 0.53

    def test_next_int_covers_range(self):
        prng = DeterministicPrng(31)
        seen = {prng.next_int(8) for _ in range(200)}
        assert seen == set(range(8))
