"""Tests for the XT32 assembly kernels against the reference library.

These are the reproduction's keystone tests: every kernel (base and
extended ISA) must be bit-exact with the pure-Python reference
implementation, and the extended variants must be strictly faster.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto import sha1 as sha1_mod
from repro.isa.area import area_of, AreaModelError
from repro.isa.custom import (ADD_WIDTHS, MAC_WIDTHS, candidate_catalogue,
                              make_vaddc, make_vmac)
from repro.isa.kernels.aes_kernels import AesKernel, reference_round_cols
from repro.isa.kernels.des_kernels import DesKernel
from repro.isa.kernels.hash_kernels import Sha1Kernel
from repro.isa.kernels.mpn_kernels import MpnKernels
from repro.mp import mpn
from repro.mp.prng import DeterministicPrng

limb = st.integers(min_value=0, max_value=0xFFFFFFFF)
limb_vec = st.lists(limb, min_size=1, max_size=12)


@pytest.fixture(scope="module")
def base_mpn():
    return MpnKernels()


@pytest.fixture(scope="module")
def ext_mpn():
    return MpnKernels(add_width=8, mac_width=4)


class TestMpnKernelCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec)
    def test_add_n(self, base_mpn, ext_mpn, up):
        vp = [(x * 2654435761) & 0xFFFFFFFF for x in up]
        want = mpn.add_n(up, vp)
        for kern in (base_mpn, ext_mpn):
            rp, carry, _ = kern.add_n(up, vp)
            assert (rp, carry) == want

    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec)
    def test_sub_n(self, base_mpn, ext_mpn, up):
        vp = [(x ^ 0x5A5A5A5A) for x in up]
        want = mpn.sub_n(up, vp)
        for kern in (base_mpn, ext_mpn):
            rp, borrow, _ = kern.sub_n(up, vp)
            assert (rp, borrow) == want

    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec, v=limb)
    def test_mul_1(self, base_mpn, ext_mpn, up, v):
        want = mpn.mul_1(up, v)
        for kern in (base_mpn, ext_mpn):
            rp, carry, _ = kern.mul_1(up, v)
            assert (rp, carry) == want

    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec, v=limb)
    def test_addmul_1(self, base_mpn, ext_mpn, up, v):
        rp_init = [(x + 0x01010101) & 0xFFFFFFFF for x in up]
        want = mpn.addmul_1(rp_init, up, v)
        for kern in (base_mpn, ext_mpn):
            rp, carry, _ = kern.addmul_1(rp_init, up, v)
            assert (rp, carry) == want

    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec, v=limb)
    def test_submul_1(self, base_mpn, ext_mpn, up, v):
        rp_init = [(x + 0x01010101) & 0xFFFFFFFF for x in up]
        want = mpn.submul_1(rp_init, up, v)
        for kern in (base_mpn, ext_mpn):
            rp, borrow, _ = kern.submul_1(rp_init, up, v)
            assert (rp, borrow) == want

    @settings(max_examples=20, deadline=None)
    @given(up=limb_vec, count=st.integers(min_value=1, max_value=31))
    def test_lshift(self, base_mpn, up, count):
        rp, out, _ = base_mpn.lshift(up, count)
        assert (rp, out) == mpn.lshift(up, count)

    @settings(max_examples=30, deadline=None)
    @given(u2=limb, u1=limb,
           vtop=st.integers(min_value=0x80000000, max_value=0xFFFFFFFF))
    def test_divrem_qest(self, base_mpn, u2, u1, vtop):
        u2 = u2 % vtop  # precondition: quotient fits one limb
        qhat, _ = base_mpn.divrem_qest(u2, u1, vtop)
        assert qhat == ((u2 << 32) | u1) // vtop


class TestMpnKernelPerformance:
    def test_extended_faster_on_bulk(self, base_mpn, ext_mpn):
        up = DeterministicPrng(5).next_limbs(32)
        vp = DeterministicPrng(6).next_limbs(32)
        _, _, base_cycles = base_mpn.add_n(up, vp)
        _, _, ext_cycles = ext_mpn.add_n(up, vp)
        assert ext_cycles < base_cycles / 3

    def test_cycles_linear_in_n(self, base_mpn):
        prng = DeterministicPrng(7)
        cycles = []
        for n in (8, 16, 32):
            up, vp = prng.next_limbs(n), prng.next_limbs(n)
            _, _, c = base_mpn.add_n(up, vp)
            cycles.append(c)
        # Doubling n should roughly double cycles (within overhead).
        assert 1.7 < cycles[1] / cycles[0] < 2.3
        assert 1.7 < cycles[2] / cycles[1] < 2.3

    def test_ad_curve_monotone_widths(self):
        """More adders -> fewer cycles and more area (Fig 5a shape)."""
        up = DeterministicPrng(8).next_limbs(16)
        vp = DeterministicPrng(9).next_limbs(16)
        prev_cycles = float("inf")
        prev_area = 0.0
        for width in ADD_WIDTHS:
            kern = MpnKernels(add_width=width, mac_width=1)
            _, _, cycles = kern.add_n(up, vp)
            area = make_vaddc(width).area
            assert cycles < prev_cycles
            assert area > prev_area
            prev_cycles, prev_area = cycles, area


class TestDesKernels:
    KEY = bytes.fromhex("133457799BBCDFF1")
    KEY3 = bytes.fromhex("0123456789ABCDEF23456789ABCDEF01456789ABCDEF0123")

    @pytest.fixture(scope="class")
    def base(self):
        return DesKernel(extended=False)

    @pytest.fixture(scope="class")
    def ext(self):
        return DesKernel(extended=True)

    @settings(max_examples=10, deadline=None)
    @given(block=st.binary(min_size=8, max_size=8))
    def test_base_matches_reference(self, base, block):
        out, _ = base.crypt_block(block, self.KEY)
        assert out == Des(self.KEY).encrypt_block(block)

    @settings(max_examples=10, deadline=None)
    @given(block=st.binary(min_size=8, max_size=8))
    def test_ext_matches_reference(self, ext, block):
        out, _ = ext.crypt_block(block, self.KEY)
        assert out == Des(self.KEY).encrypt_block(block)

    def test_decrypt(self, base, ext):
        ct = Des(self.KEY).encrypt_block(b"ABCDEFGH")
        for kern in (base, ext):
            out, _ = kern.crypt_block(ct, self.KEY, decrypt=True)
            assert out == b"ABCDEFGH"

    def test_3des(self, base, ext):
        want = TripleDes(self.KEY3).encrypt_block(b"12345678")
        for kern in (base, ext):
            out, _ = kern.crypt_3des_block(b"12345678", self.KEY3)
            assert out == want
            back, _ = kern.crypt_3des_block(want, self.KEY3, decrypt=True)
            assert back == b"12345678"

    def test_3des_two_key(self, base):
        key16 = self.KEY3[:16]
        out, _ = base.crypt_3des_block(b"12345678", key16)
        assert out == TripleDes(key16).encrypt_block(b"12345678")

    def test_speedup_band(self, base, ext):
        """The DES speedup should be large -- same order as the paper's 31x."""
        _, base_cycles = base.crypt_block(b"ABCDEFGH", self.KEY)
        _, ext_cycles = ext.crypt_block(b"ABCDEFGH", self.KEY)
        speedup = base_cycles / ext_cycles
        assert 15 < speedup < 60


class TestAesKernels:
    KEY = bytes(range(16))
    PT = bytes.fromhex("00112233445566778899aabbccddeeff")

    @pytest.fixture(scope="class")
    def base(self):
        return AesKernel(extended=False)

    @pytest.fixture(scope="class")
    def ext(self):
        return AesKernel(extended=True)

    def test_t_table_identity(self):
        """T-table round == SubBytes/ShiftRows/MixColumns/AddRoundKey."""
        state_bytes = bytes((i * 29 + 3) & 0xFF for i in range(16))
        rk = list(bytes(range(100, 116)))
        st_ref = Aes._to_state(state_bytes)
        from repro.crypto.aes import SBOX
        Aes._sub_bytes(st_ref, SBOX)
        Aes._shift_rows(st_ref)
        Aes._mix_columns(st_ref)
        Aes._add_round_key(st_ref, rk)
        want = Aes._from_state(st_ref)
        cols = [int.from_bytes(state_bytes[4 * c: 4 * c + 4], "big")
                for c in range(4)]
        rkc = [int.from_bytes(bytes(rk[4 * c: 4 * c + 4]), "big")
               for c in range(4)]
        got = b"".join(w.to_bytes(4, "big")
                       for w in reference_round_cols(cols, rkc))
        assert got == want

    @settings(max_examples=8, deadline=None)
    @given(block=st.binary(min_size=16, max_size=16))
    def test_base_matches_reference(self, base, block):
        out, _ = base.encrypt_block(block, self.KEY)
        assert out == Aes(self.KEY).encrypt_block(block)

    @settings(max_examples=8, deadline=None)
    @given(block=st.binary(min_size=16, max_size=16))
    def test_ext_matches_reference(self, ext, block):
        out, _ = ext.encrypt_block(block, self.KEY)
        assert out == Aes(self.KEY).encrypt_block(block)

    @pytest.mark.parametrize("key_bytes", [24, 32])
    def test_longer_keys(self, key_bytes):
        key = bytes(range(key_bytes))
        want = Aes(key).encrypt_block(self.PT)
        for extended in (False, True):
            kern = AesKernel(extended=extended, key_bytes=key_bytes)
            out, _ = kern.encrypt_block(self.PT, key)
            assert out == want

    def test_key_length_mismatch(self, base):
        with pytest.raises(ValueError):
            base.encrypt_block(self.PT, bytes(32))

    def test_speedup_band(self, base, ext):
        _, base_cycles = base.encrypt_block(self.PT, self.KEY)
        _, ext_cycles = ext.encrypt_block(self.PT, self.KEY)
        speedup = base_cycles / ext_cycles
        assert 8 < speedup < 35

    def test_aes_gains_less_than_des(self, base, ext):
        """Table 1 ordering: AES speedup < DES speedup (17.4x vs 31x)."""
        des_base, des_ext = DesKernel(), DesKernel(extended=True)
        _, db = des_base.crypt_block(b"ABCDEFGH", bytes(8))
        _, de = des_ext.crypt_block(b"ABCDEFGH", bytes(8))
        _, ab = base.encrypt_block(self.PT, self.KEY)
        _, ae = ext.encrypt_block(self.PT, self.KEY)
        assert ab / ae < db / de


class TestSha1Kernel:
    @pytest.fixture(scope="class")
    def kernel(self):
        return Sha1Kernel()

    @settings(max_examples=10, deadline=None)
    @given(block=st.binary(min_size=64, max_size=64))
    def test_matches_reference_compress(self, kernel, block):
        state = list(sha1_mod._H0)
        got, _ = kernel.compress(state, block)
        assert got == list(sha1_mod._compress(tuple(state), block))

    def test_bad_block_size(self, kernel):
        with pytest.raises(ValueError):
            kernel.compress(list(sha1_mod._H0), bytes(60))

    def test_cycles_per_byte_sane(self, kernel):
        assert 20 < kernel.cycles_per_byte() < 120


class TestCustomCatalogue:
    def test_catalogue_instruction_names_unique_per_family(self):
        names = [ci.name for ci in candidate_catalogue()]
        # desld/aesld etc. appear once per build call; family names unique
        assert len(set(names)) >= len(names) - 2

    def test_areas_positive_and_monotone(self):
        areas = [make_vmac(m).area for m in MAC_WIDTHS]
        assert all(a > 0 for a in areas)
        assert areas == sorted(areas)

    def test_unknown_resource_rejected(self):
        with pytest.raises(AreaModelError):
            area_of({"quantum_alu": 1})

    def test_negative_resource_rejected(self):
        with pytest.raises(ValueError):
            area_of({"adder32": -1})
