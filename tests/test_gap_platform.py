"""Tests for the Figure 1 gap model and the SecurityPlatform facade."""

import pytest

from repro.gap import GapModel, embedded_processor_mips, security_processing_mips
from repro.gap.trends import GENERATIONS, NODES
from repro.platform import (REFERENCE_CONFIG, TUNED_CONFIG,
                            SecurityPlatform)
from repro.ssl import fixtures


class TestGapModel:
    def test_requirements_grow_with_generation(self):
        mips = [security_processing_mips(g) for g in GENERATIONS]
        assert mips == sorted(mips)
        assert mips[-1] > 100 * mips[0]

    def test_capability_grows_with_node(self):
        mips = [embedded_processor_mips(n) for n in NODES]
        assert mips == sorted(mips)

    def test_gap_widens(self):
        """The paper's core motivation claim."""
        assert GapModel().gap_widens()

    def test_3g_gap_exceeds_capability(self):
        """At 3G rates, security processing alone exceeds the CPU."""
        rows = GapModel().gap_series()
        three_g = next(r for r in rows if r["generation"] == "3G")
        assert three_g["gap_ratio"] > 1.0

    def test_series_shapes(self):
        model = GapModel()
        assert len(model.requirement_series()) == len(GENERATIONS)
        assert len(model.capability_series()) == len(NODES)
        for row in model.gap_series():
            assert row["required_mips"] > 0
            assert row["available_mips"] > 0


class TestSecurityPlatform:
    @pytest.fixture(scope="class")
    def base(self):
        return SecurityPlatform.base()

    @pytest.fixture(scope="class")
    def optimized(self):
        return SecurityPlatform.optimized()

    def test_stock_configs(self, base, optimized):
        assert base.modexp_config == REFERENCE_CONFIG
        assert optimized.modexp_config == TUNED_CONFIG
        assert not base.extended
        assert optimized.extended

    def test_cipher_costs_ordered(self, base, optimized):
        for algo in ("des", "aes"):
            assert base.cipher_cycles_per_byte(algo) > \
                5 * optimized.cipher_cycles_per_byte(algo)

    def test_3des_costs_triple_des(self, base):
        des = base.cipher_cycles_per_byte("des")
        tdes = base.cipher_cycles_per_byte("3des")
        assert 2.5 * des < tdes < 3.5 * des

    def test_unknown_cipher(self, base):
        with pytest.raises(ValueError):
            base.cipher_cycles_per_byte("rc6")

    def test_hash_cost_platform_independent(self, base, optimized):
        assert base.hash_cycles_per_byte() == \
            optimized.hash_cycles_per_byte()

    def test_rsa_costs(self, base, optimized):
        kp = fixtures.SERVER_512
        base_priv = base.rsa_private_cycles(kp)
        opt_priv = optimized.rsa_private_cycles(kp)
        assert base_priv > 5 * opt_priv
        base_pub = base.rsa_public_cycles(kp)
        opt_pub = optimized.rsa_public_cycles(kp)
        assert base_pub > opt_pub
        # Private ops gain far more than public ops (Table 1 ordering).
        assert base_priv / opt_priv > base_pub / opt_pub

    def test_api_roundtrip_through_platform(self, optimized):
        api = optimized.api()
        key = api.generate_symmetric_key("aes")
        ct = api.encrypt("aes", key, b"platform api", iv=bytes(16))
        assert api.decrypt("aes", key, ct, iv=bytes(16)) == b"platform api"

    def test_rsa_through_both_platforms_interoperate(self, base, optimized):
        """A message encrypted under one platform's SW config decrypts
        under the other's -- algorithm exploration must not change the
        mathematical function."""
        kp = fixtures.SERVER_512
        ct = base.rsa().encrypt(b"interop", kp.public)
        assert optimized.rsa().decrypt(ct, kp.private) == b"interop"
