"""Tests for :mod:`repro.ssl.throughput` (secure data-rate feasibility).

Canned unit costs (the measured base/optimized figures) keep this free
of ISS characterization.
"""

import pytest

from repro.ssl.throughput import (DEFAULT_CLOCK_HZ, RATE_TARGETS,
                                  bulk_cycles_per_byte, feasibility,
                                  feasibility_table, max_secure_rate)
from repro.costs import PlatformCosts

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375)


class TestMaxSecureRate:
    def test_rate_matches_hand_computation(self):
        rate = max_secure_rate(BASE_COSTS)
        expected = (DEFAULT_CLOCK_HZ / bulk_cycles_per_byte(BASE_COSTS)
                    ) * 8
        assert rate == pytest.approx(expected)

    def test_cpu_fraction_scales_linearly(self):
        full = max_secure_rate(OPT_COSTS, cpu_fraction=1.0)
        half = max_secure_rate(OPT_COSTS, cpu_fraction=0.5)
        assert half == pytest.approx(full / 2)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.0001, 2.0])
    def test_cpu_fraction_validation(self, fraction):
        with pytest.raises(ValueError):
            max_secure_rate(BASE_COSTS, cpu_fraction=fraction)

    @pytest.mark.parametrize("fraction", [1e-6, 0.5, 1.0])
    def test_cpu_fraction_boundary_accepted(self, fraction):
        assert max_secure_rate(BASE_COSTS, cpu_fraction=fraction) > 0


class TestFeasibility:
    def test_feasible_set_is_downward_closed(self):
        """If a platform sustains some rate it sustains every lower
        one: feasibility decreases monotonically in the target rate."""
        report = feasibility(OPT_COSTS)
        verdicts = [report.feasible[name]
                    for name in sorted(RATE_TARGETS,
                                       key=RATE_TARGETS.get)]
        assert verdicts == sorted(verdicts, reverse=True)

    def test_feasible_preserves_target_order(self):
        report = feasibility(BASE_COSTS)
        assert list(report.feasible) == list(RATE_TARGETS)

    def test_table_preserves_input_order(self):
        reports = feasibility_table([OPT_COSTS, BASE_COSTS])
        assert [r.platform for r in reports] == ["optimized", "base"]
        reports = feasibility_table([BASE_COSTS, OPT_COSTS])
        assert [r.platform for r in reports] == ["base", "optimized"]

    def test_optimized_clears_strictly_more_targets(self):
        base_report, opt_report = feasibility_table(
            [BASE_COSTS, OPT_COSTS])
        base_n = sum(base_report.feasible.values())
        opt_n = sum(opt_report.feasible.values())
        assert opt_n > base_n
        # ... and never fails a target the base platform meets.
        for name in RATE_TARGETS:
            if base_report.feasible[name]:
                assert opt_report.feasible[name]

    def test_cpu_fraction_flows_through_table(self):
        full = feasibility_table([OPT_COSTS], cpu_fraction=1.0)[0]
        tenth = feasibility_table([OPT_COSTS], cpu_fraction=0.1)[0]
        assert tenth.max_rate_bps == pytest.approx(
            full.max_rate_bps / 10)
        assert sum(tenth.feasible.values()) <= \
            sum(full.feasible.values())
