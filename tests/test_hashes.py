"""Tests for SHA-1, MD5 and HMAC against hashlib and published vectors."""

import hashlib
import hmac as py_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import hmac
from repro.crypto.md5 import Md5, md5
from repro.crypto.sha1 import Sha1, sha1


class TestSha1:
    @pytest.mark.parametrize("message,digest", [
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    ])
    def test_published_vectors(self, message, digest):
        assert sha1(message).hex() == digest

    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @settings(max_examples=25)
    @given(st.lists(st.binary(max_size=100), max_size=8))
    def test_incremental_update(self, chunks):
        h = Sha1()
        for chunk in chunks:
            h.update(chunk)
        assert h.digest() == hashlib.sha1(b"".join(chunks)).digest()

    def test_digest_is_idempotent(self):
        h = Sha1(b"data")
        assert h.digest() == h.digest()
        h.update(b"more")
        assert h.digest() == hashlib.sha1(b"datamore").digest()

    def test_copy_forks_state(self):
        h = Sha1(b"pre")
        clone = h.copy()
        clone.update(b"fixA")
        h.update(b"fixB")
        assert clone.digest() == hashlib.sha1(b"prefixA").digest()
        assert h.digest() == hashlib.sha1(b"prefixB").digest()

    def test_block_boundary_lengths(self):
        for n in (55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = b"\xab" * n
            assert sha1(data) == hashlib.sha1(data).digest()


class TestMd5:
    @pytest.mark.parametrize("message,digest", [
        (b"", "d41d8cd98f00b204e9800998ecf8427e"),
        (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
        (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    ])
    def test_rfc1321_vectors(self, message, digest):
        assert md5(message).hex() == digest

    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    @settings(max_examples=25)
    @given(st.lists(st.binary(max_size=100), max_size=8))
    def test_incremental_update(self, chunks):
        h = Md5()
        for chunk in chunks:
            h.update(chunk)
        assert h.digest() == hashlib.md5(b"".join(chunks)).digest()

    def test_block_boundary_lengths(self):
        for n in (55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = b"\xcd" * n
            assert md5(data) == hashlib.md5(data).digest()


class TestHmac:
    @given(st.binary(max_size=100), st.binary(max_size=200))
    def test_matches_stdlib_sha1(self, key, message):
        assert hmac(key, message, "sha1") == \
            py_hmac.new(key, message, hashlib.sha1).digest()

    @given(st.binary(max_size=100), st.binary(max_size=200))
    def test_matches_stdlib_md5(self, key, message):
        assert hmac(key, message, "md5") == \
            py_hmac.new(key, message, hashlib.md5).digest()

    def test_long_key_is_hashed(self):
        key = b"k" * 200  # longer than the 64-byte block
        assert hmac(key, b"m", "sha1") == \
            py_hmac.new(key, b"m", hashlib.sha1).digest()

    def test_unknown_hash(self):
        with pytest.raises(ValueError):
            hmac(b"k", b"m", "sha256")
