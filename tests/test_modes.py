"""Tests for block cipher modes and PKCS#7 padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.des import Des


class TestPkcs7:
    @given(st.binary(max_size=100), st.sampled_from([8, 16]))
    def test_roundtrip(self, data, bs):
        padded = modes.pkcs7_pad(data, bs)
        assert len(padded) % bs == 0
        assert modes.pkcs7_unpad(padded, bs) == data

    def test_full_block_appended_when_aligned(self):
        padded = modes.pkcs7_pad(b"\x00" * 16, 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_invalid_padding_rejected(self):
        with pytest.raises(ValueError):
            modes.pkcs7_unpad(b"\x01\x02\x03\x04\x05\x06\x07\x09", 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            modes.pkcs7_unpad(b"", 8)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            modes.pkcs7_pad(b"x", 0)


class TestEcb:
    @settings(max_examples=20)
    @given(st.binary(min_size=16, max_size=16),
           st.binary(max_size=64).map(lambda d: d + bytes(-len(d) % 16)))
    def test_roundtrip(self, key, data):
        cipher = Aes(key)
        assert modes.ecb_decrypt(cipher, modes.ecb_encrypt(cipher, data)) == data

    def test_identical_blocks_leak(self):
        """ECB's defining weakness: equal plaintext blocks -> equal ciphertext."""
        cipher = Aes(bytes(16))
        ct = modes.ecb_encrypt(cipher, bytes(32))
        assert ct[:16] == ct[16:]

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            modes.ecb_encrypt(Aes(bytes(16)), b"x" * 17)


class TestCbc:
    @settings(max_examples=20)
    @given(st.binary(min_size=8, max_size=8),
           st.binary(min_size=8, max_size=8),
           st.binary(max_size=64).map(lambda d: d + bytes(-len(d) % 8)))
    def test_roundtrip_des(self, key, iv, data):
        cipher = Des(key)
        ct = modes.cbc_encrypt(cipher, iv, data)
        assert modes.cbc_decrypt(cipher, iv, ct) == data

    def test_identical_blocks_hidden(self):
        cipher = Aes(bytes(16))
        ct = modes.cbc_encrypt(cipher, b"\x01" * 16, bytes(32))
        assert ct[:16] != ct[16:]

    def test_iv_changes_ciphertext(self):
        cipher = Aes(bytes(16))
        data = b"A" * 16
        assert modes.cbc_encrypt(cipher, bytes(16), data) != \
            modes.cbc_encrypt(cipher, b"\x01" * 16, data)

    def test_wrong_iv_length(self):
        with pytest.raises(ValueError):
            modes.cbc_encrypt(Aes(bytes(16)), bytes(8), bytes(16))

    def test_nist_cbc_vector(self):
        """NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = modes.cbc_encrypt(Aes(key), iv, pt)
        assert ct.hex() == "7649abac8119b246cee98e9b12e9197d"
