"""Cross-subsystem integration tests: the full co-design pipeline.

Each test exercises several packages together the way the paper's flow
does: characterize -> model -> explore -> select -> deploy -> evaluate.
"""

import pytest

from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
from repro.isa.kernels.modexp_kernel import ModExpKernel
from repro.macromodel import characterize_platform, estimate_cycles
from repro.macromodel.persist import modelset_from_dict, modelset_to_dict
from repro.mp import DeterministicPrng
from repro.platform import SecurityPlatform
from repro.ssl import fixtures
from repro.ssl.handshake import (SslClient, SslServer, make_record_channels,
                                 run_handshake, run_resumed_handshake)
from repro.costs import PlatformCosts
from repro.ssl.transaction import SslWorkloadModel
from repro.tie.callgraph import CallGraph
from repro.tie.formulation import adcurve_mpn_add_n, adcurve_mpn_addmul_1
from repro.tie.selection import select_point


@pytest.fixture(scope="module")
def base_models():
    return characterize_platform(reps=1, sizes=(1, 2, 4, 8, 16))


class TestCodesignPipeline:
    def test_characterize_explore_deploy(self, base_models):
        """The methodology loop: models -> exploration winner ->
        platform config -> verified functional deployment."""
        # Serialize and restore the models (as a real flow would).
        models = modelset_from_dict(modelset_to_dict(base_models))
        explorer = AlgorithmExplorer(models, RsaDecryptWorkload.bits512())
        candidates = [
            ModExpConfig(modmul="schoolbook", window=1, crt="none"),
            ModExpConfig(modmul="montgomery", window=4, crt="garner"),
        ]
        results = explorer.explore(candidates)
        winner = results[0].config
        assert winner.modmul == "montgomery"
        # Deploy the winner: real RSA traffic must still round-trip.
        from repro.crypto.rsa import Rsa
        rsa = Rsa(winner)
        kp = fixtures.SERVER_512
        ct = rsa.encrypt(b"pipeline", kp.public, DeterministicPrng(3))
        assert rsa.decrypt(ct, kp.private) == b"pipeline"

    def test_profile_to_selection(self):
        """ISS profile -> call graph -> A-D propagation -> selection."""
        kernel = ModExpKernel()
        _, _, profile = kernel.powm(0xABCD, 0x1F5, (1 << 128) + 51)
        graph = CallGraph.from_profile(profile, "modexp")
        graph.validate_acyclic()
        curves = {"mpn_addmul_1": adcurve_mpn_addmul_1(4, widths=(2, 8)),
                  "mpn_add_n": adcurve_mpn_add_n(4, widths=(2, 8))}
        sw_point, root = select_point(graph, curves, area_budget=0)
        hw_point, _ = select_point(graph, curves, area_budget=1e6)
        assert hw_point.cycles < sw_point.cycles
        assert hw_point.instructions

    def test_estimator_consistency_across_backends(self, base_models):
        """Native estimate and ISS measurement agree on the same
        Montgomery workload within the validated band."""
        modulus = (1 << 192) + 0x4BD
        engine = ModExpEngine(ModExpConfig(modmul="montgomery", window=1,
                                           crt="none"))
        est = estimate_cycles(base_models, engine.powm, 0xFACE, 0x3E5,
                              modulus)
        _, iss_cycles, _ = ModExpKernel().powm(0xFACE, 0x3E5, modulus)
        assert abs(est.cycles - iss_cycles) / iss_cycles < 0.25


class TestFullSslSession:
    def test_handshake_transfer_resume_transfer(self):
        """An entire client session: full handshake, bulk transfer,
        session resumption, second transfer -- all on real crypto."""
        client = SslClient(fixtures.CLIENT_512, prng=DeterministicPrng(21))
        server = SslServer(fixtures.SERVER_512)
        first = run_handshake(client, server, "aes")
        sender, receiver = make_record_channels(first)
        page = bytes(i & 0xFF for i in range(3000))
        assert b"".join(receiver.open(r)
                        for r in sender.seal(page)) == page

        resumed = run_resumed_handshake(first, DeterministicPrng(22))
        sender2, receiver2 = make_record_channels(resumed)
        assert b"".join(receiver2.open(r)
                        for r in sender2.seal(page)) == page
        # Independent sessions: records are not interchangeable.
        from repro.ssl.record import RecordError
        stray = sender.seal(b"cross-session")[0]
        with pytest.raises(RecordError):
            receiver2.open(stray)

    def test_workload_model_against_protocol_run(self):
        """The Figure 8 model's structure matches the executed protocol:
        a resumed transaction really has no public-key work."""
        costs = PlatformCosts(name="t", rsa_public_cycles=5e5,
                              rsa_private_cycles=5e6,
                              cipher_cycles_per_byte=100,
                              hash_cycles_per_byte=50)
        model = SslWorkloadModel(costs, costs)
        full = model.breakdown(costs, 2048)
        resumed = model.breakdown(costs, 2048, resumed=True)
        assert full.public_key > 0
        assert resumed.public_key == 0
        assert resumed.symmetric == full.symmetric


class TestPlatformEndToEnd:
    def test_two_handsets_interoperate_across_platforms(self):
        """A base-platform handset and an optimized-platform handset
        run the same protocol bytes: co-design must never change the
        wire format."""
        base_api = SecurityPlatform.base().api(DeterministicPrng(1))
        opt_api = SecurityPlatform.optimized().api(DeterministicPrng(2))
        key = bytes(range(16))
        iv = bytes(16)
        ct = base_api.encrypt("aes", key, b"wire bytes", iv=iv)
        assert opt_api.decrypt("aes", key, ct, iv=iv) == b"wire bytes"
        kp = fixtures.SERVER_512
        sealed = opt_api.rsa_encrypt(b"x", kp.public)
        assert base_api.rsa_decrypt(sealed, kp.private) == b"x"
