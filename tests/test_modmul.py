"""Tests for the five modular-multiplication algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import Mpz
from repro.mp.limb import RADIX16
from repro.crypto.modmul import (BarrettModMul, InterleavedModMul,
                                 KaratsubaModMul, MODMUL_ALGORITHMS,
                                 MontgomeryModMul, SchoolbookModMul,
                                 make_modmul)

ALL_NAMES = sorted(MODMUL_ALGORITHMS)

odd_modulus = st.integers(min_value=3, max_value=(1 << 256) - 1).map(
    lambda m: m | 1)
operand = st.integers(min_value=0, max_value=(1 << 256) - 1)


def check_mul(mm, a_int, b_int, m_int):
    a, b = Mpz(a_int % m_int, mm.radix), Mpz(b_int % m_int, mm.radix)
    got = mm.from_residue(mm.mul(mm.to_residue(a), mm.to_residue(b)))
    assert int(got) == (a_int * b_int) % m_int


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @settings(max_examples=25)
    @given(a=operand, b=operand, m=odd_modulus)
    def test_matches_int_arithmetic(self, name, a, b, m):
        check_mul(make_modmul(name, Mpz(m)), a, b, m)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_one_residue(self, name):
        mm = make_modmul(name, Mpz(1000003))
        assert int(mm.from_residue(mm.one())) == 1

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sqr_matches_mul(self, name):
        mm = make_modmul(name, Mpz((1 << 61) - 1))
        r = mm.to_residue(Mpz(123456789012345))
        assert int(mm.from_residue(mm.sqr(r))) == \
            int(mm.from_residue(mm.mul(r, r)))

    @pytest.mark.parametrize("name", ALL_NAMES)
    @settings(max_examples=10)
    @given(a=operand, b=operand, m=odd_modulus)
    def test_radix16(self, name, a, b, m):
        check_mul(make_modmul(name, Mpz(m, RADIX16)), a, b, m)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_modmul("fft", Mpz(97))

    def test_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            SchoolbookModMul(Mpz(0))


class TestBarrett:
    def test_mu_precomputation(self):
        m = Mpz((1 << 64) + 13)
        mm = BarrettModMul(m)
        assert int(mm.mu) == (1 << (2 * mm.k * 32)) // int(m)

    @given(x=st.integers(min_value=0, max_value=(1 << 190) - 1))
    @settings(max_examples=50)
    def test_reduce(self, x):
        m = Mpz((1 << 96) + 61)
        mm = BarrettModMul(m)
        # Barrett's precondition: x < m * base^k
        assert int(mm.reduce(Mpz(x))) == x % int(m)


class TestMontgomery:
    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryModMul(Mpz(100))

    def test_m_prime_identity(self):
        m = Mpz((1 << 128) + 51)
        mm = MontgomeryModMul(m)
        assert (int(m) * mm.m_prime) % (1 << 32) == (1 << 32) - 1

    @given(x=st.integers(min_value=0, max_value=(1 << 128) - 1))
    @settings(max_examples=50)
    def test_residue_roundtrip(self, x):
        m = Mpz((1 << 128) + 51)
        mm = MontgomeryModMul(m)
        assert int(mm.from_residue(mm.to_residue(Mpz(x)))) == x % int(m)

    def test_residue_is_montgomery_form(self):
        m = Mpz(101)
        mm = MontgomeryModMul(m)
        r = (1 << (mm.k * 32)) % 101
        assert int(mm.to_residue(Mpz(7))) == (7 * r) % 101


class TestKaratsubaConsistency:
    @settings(max_examples=15)
    @given(a=st.integers(min_value=0, max_value=(1 << 1024) - 1),
           b=st.integers(min_value=0, max_value=(1 << 1024) - 1))
    def test_karatsuba_equals_schoolbook(self, a, b):
        m = Mpz((1 << 1024) - 159)
        kara = KaratsubaModMul(m)
        school = SchoolbookModMul(m)
        ra, rb = Mpz(a) % m, Mpz(b) % m
        assert int(kara.mul(ra, rb)) == int(school.mul(ra, rb))


class TestInterleaved:
    def test_no_oversized_intermediates(self):
        """The accumulator never exceeds k+1 limbs during interleaving."""
        m = Mpz((1 << 96) + 61)
        mm = InterleavedModMul(m)
        a = Mpz((1 << 96) - 1) % m
        b = Mpz((1 << 95) + 12345) % m
        # Wrap mul and check the result only -- the invariant is enforced
        # by construction (each step reduces); verify correctness.
        assert int(mm.mul(a, b)) == (int(a) * int(b)) % int(m)
