"""Tests for the parallel sweep engine (repro.parallel) and its ports.

The contract under test everywhere: any worker count produces results
element-for-element identical to a serial run, and the persistent
exploration store makes warm re-runs free.
"""

import os

import pytest

from repro import parallel
from repro.crypto.modexp import ModExpConfig, iter_configs
from repro.explore import (AlgorithmExplorer, ExplorationStore,
                           RsaDecryptWorkload)
from repro.macromodel import characterize_platform
from repro.macromodel.persist import modelset_to_dict
from repro.mp.prng import DeterministicPrng
from repro.parallel import (ProcessExecutor, SerialExecutor,
                            ThreadExecutor, chunk_bounds, chunked,
                            executor_scope, get_executor, resolve_jobs)


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "4")
        assert resolve_jobs() == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestChunking:
    def test_serial_is_one_chunk(self):
        assert chunk_bounds(10, 1) == [(0, 10)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == []

    def test_bounds_cover_exactly_once(self):
        for n_items in (1, 2, 7, 45, 450):
            for jobs in (2, 3, 4, 8):
                bounds = chunk_bounds(n_items, jobs)
                flat = [i for s, e in bounds for i in range(s, e)]
                assert flat == list(range(n_items))

    def test_deterministic(self):
        assert chunk_bounds(450, 4) == chunk_bounds(450, 4)

    def test_chunked_preserves_order(self):
        items = list(range(23))
        assert [x for c in chunked(items, 4) for x in c] == items


class TestExecutors:
    @pytest.mark.parametrize("make", [
        SerialExecutor, lambda: ThreadExecutor(2),
        lambda: ProcessExecutor(2)])
    def test_map_preserves_order(self, make):
        with make() as pool:
            assert pool.map(_square, list(range(20))) == \
                [x * x for x in range(20)]

    def test_on_result_sees_every_index(self):
        seen = {}
        with ThreadExecutor(2) as pool:
            pool.map(_square, [3, 4, 5],
                     on_result=lambda i, r: seen.__setitem__(i, r))
        assert seen == {0: 9, 1: 16, 2: 25}

    def test_get_executor_kinds(self, monkeypatch):
        monkeypatch.delenv(parallel.EXECUTOR_ENV, raising=False)
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert get_executor().kind == "serial"
        pool = get_executor(3)
        assert (pool.kind, pool.jobs) == ("process", 3)
        pool.close()
        assert get_executor(3, "thread").kind == "thread"
        with pytest.raises(ValueError):
            get_executor(2, "gpu")

    def test_executor_env_forces_kind(self, monkeypatch):
        monkeypatch.setenv(parallel.EXECUTOR_ENV, "thread")
        pool = get_executor(2)
        assert pool.kind == "thread"
        pool.close()

    def test_executor_scope_reuses_given_executor(self):
        own = SerialExecutor()
        with executor_scope(executor=own) as pool:
            assert pool is own

    def test_map_publishes_obs(self):
        from repro.obs import get_registry, metrics_summary
        with SerialExecutor() as pool:
            pool.map(_square, [1, 2], label="t")
        summary = metrics_summary(get_registry())
        assert summary["parallel.chunks_scheduled{kind=serial}"][
            "value"] == 2


class TestPrngFork:
    def test_fork_is_deterministic(self):
        a = DeterministicPrng(7).fork("mpn_add_n")
        b = DeterministicPrng(7).fork("mpn_add_n")
        assert [a.next_u64() for _ in range(4)] == \
            [b.next_u64() for _ in range(4)]

    def test_fork_ignores_draw_position(self):
        fresh = DeterministicPrng(7)
        drained = DeterministicPrng(7)
        for _ in range(10):
            drained.next_u64()
        assert fresh.fork("x").next_u64() == \
            drained.fork("x").next_u64()

    def test_fork_labels_diverge(self):
        prng = DeterministicPrng(7)
        assert prng.fork("mpn_add_n").next_u64() != \
            prng.fork("mpn_sub_n").next_u64()


@pytest.fixture(scope="module")
def models():
    return characterize_platform(reps=1, sizes=(1, 2, 4, 8, 16))


class TestCharacterizeParallel:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_identical_to_serial(self, jobs):
        serial = characterize_platform(8, 8, reps=1, sizes=(1, 2, 4))
        with ThreadExecutor(jobs) as pool:
            par = characterize_platform(8, 8, reps=1, sizes=(1, 2, 4),
                                        executor=pool)
        assert modelset_to_dict(par) == modelset_to_dict(serial)

    def test_process_identical_to_serial(self):
        serial = characterize_platform(reps=1, sizes=(1, 2, 4))
        with ProcessExecutor(2) as pool:
            par = characterize_platform(reps=1, sizes=(1, 2, 4),
                                        executor=pool)
        assert modelset_to_dict(par) == modelset_to_dict(serial)


def _result_key(results):
    return [(r.label, r.estimated_cycles, r.correct) for r in results]


class TestExploreParallel:
    @pytest.fixture(scope="class")
    def workload(self):
        return RsaDecryptWorkload.bits512()

    @pytest.fixture(scope="class")
    def subset(self):
        return list(iter_configs())[::110]      # 5 spread-out candidates

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_thread_identical_to_serial(self, models, workload, subset,
                                        jobs):
        explorer = AlgorithmExplorer(models, workload)
        off = ExplorationStore(enabled=False)
        serial = explorer.explore(subset, store=off)
        with ThreadExecutor(jobs) as pool:
            par = explorer.explore(subset, executor=pool, store=off)
        assert _result_key(par) == _result_key(serial)

    def test_warm_store_evaluates_nothing(self, models, workload,
                                          subset, tmp_path):
        explorer = AlgorithmExplorer(models, workload)
        cold = explorer.explore(subset,
                                store=ExplorationStore(
                                    cache_dir=str(tmp_path)))
        assert explorer.last_run.evaluated == len(subset)
        # A fresh store object over the same directory simulates a new
        # process: everything must come off disk.
        warm = explorer.explore(subset,
                                store=ExplorationStore(
                                    cache_dir=str(tmp_path)))
        assert explorer.last_run.evaluated == 0
        assert explorer.last_run.cached == len(subset)
        assert _result_key(warm) == _result_key(cold)

    def test_interrupted_run_resumes_without_reevaluation(
            self, models, workload, subset, tmp_path):
        store = ExplorationStore(cache_dir=str(tmp_path))
        explorer = AlgorithmExplorer(models, workload)
        # "Interrupted": only part of the sweep finished and was
        # flushed before the process died.
        explorer.explore(subset[:2], store=store)
        resumed = explorer.explore(
            subset, store=ExplorationStore(cache_dir=str(tmp_path)))
        assert explorer.last_run.cached == 2
        assert explorer.last_run.evaluated == len(subset) - 2
        full = explorer.explore(subset, store=ExplorationStore(
            enabled=False))
        assert _result_key(resumed) == _result_key(full)

    def test_store_rekeys_on_workload_change(self, models, workload,
                                             tmp_path):
        subset = [ModExpConfig()]
        store = ExplorationStore(cache_dir=str(tmp_path))
        explorer = AlgorithmExplorer(models, workload)
        explorer.explore(subset, store=store)
        other = AlgorithmExplorer(
            models, RsaDecryptWorkload(keypair=workload.keypair,
                                       operations=2))
        other.explore(subset,
                      store=ExplorationStore(cache_dir=str(tmp_path)))
        assert other.last_run.evaluated == 1    # different digest

    def test_no_candidates_skips_best_cycles_gauge(self, models,
                                                   workload):
        from repro.obs import get_registry, metrics_summary
        explorer = AlgorithmExplorer(models, workload)
        assert explorer.explore([], store=ExplorationStore(
            enabled=False)) == []
        summary = metrics_summary(get_registry())
        assert "explore.best_cycles" not in summary

    def test_wall_seconds_in_result_dict(self, models, workload):
        explorer = AlgorithmExplorer(models, workload)
        row = explorer.evaluate(ModExpConfig()).as_dict()
        assert set(row) == {"label", "estimated_cycles", "wall_seconds",
                            "correct"}
        assert row["wall_seconds"] > 0


class TestAdcurvesParallel:
    def test_curves_identical_to_serial(self):
        from repro.tie.formulation import (adcurve_aes_block,
                                           adcurve_des_block,
                                           adcurve_mpn_add_n,
                                           adcurve_mpn_addmul_1)

        def snapshot(executor=None):
            curves = [adcurve_mpn_add_n(8, executor=executor),
                      adcurve_mpn_addmul_1(8, executor=executor),
                      adcurve_des_block(executor=executor),
                      adcurve_aes_block(executor=executor)]
            return [[(p.cycles, p.area, p.instructions)
                     for p in curve.points] for curve in curves]

        serial = snapshot()
        with ThreadExecutor(4) as pool:
            assert snapshot(pool) == serial
        with ProcessExecutor(2) as pool:
            assert snapshot(pool) == serial


class TestExploreCliResume:
    def test_resume_without_store_errors(self, capsys):
        from repro.cli import main
        env_dir = os.environ.pop("REPRO_COSTS_CACHE_DIR", None)
        try:
            assert main(["explore", "--stride", "450", "--resume",
                         "--no-cache"]) == 2
        finally:
            if env_dir is not None:
                os.environ["REPRO_COSTS_CACHE_DIR"] = env_dir
        assert "--resume" in capsys.readouterr().err
