"""Tests for repro.obs.bench: gates, baseline I/O, comparison and the
regression-check flow, driven by cheap stub scenarios (the expensive
built-in scenarios are exercised by the committed baselines in CI)."""

import copy
import json

import pytest

from repro.obs import bench
from repro.obs.bench import (DEFAULT_BASELINE_DIR, Gate, Scenario,
                             baseline_filename, baseline_path,
                             check_scenarios, compare_metrics,
                             get_scenario, load_baseline, render_report,
                             run_scenario, scenario_names, write_baseline)

STUB_METRICS = {
    "handshake_cycles": 1_000_000.0,
    "throughput_mbps": 40.0,
    "candidates": 5.0,
    "best_label": "radix-32/window-4",
}


@pytest.fixture
def stub_scenario():
    """A registered throwaway scenario whose metrics the test mutates."""
    metrics = copy.deepcopy(STUB_METRICS)
    scenario = Scenario(
        name="stub", description="test stub",
        run=lambda: dict(metrics),
        gates={"handshake_cycles": Gate(tolerance=0.10,
                                        direction="lower"),
               "throughput_mbps": Gate(tolerance=0.10,
                                       direction="higher"),
               "candidates": Gate(tolerance=0.0, direction="higher")})
    bench.register_scenario(scenario)
    try:
        yield scenario, metrics
    finally:
        del bench._SCENARIOS["stub"]


class TestGate:
    def test_validates_direction_and_tolerance(self):
        with pytest.raises(ValueError):
            Gate(direction="sideways")
        with pytest.raises(ValueError):
            Gate(tolerance=-0.1)

    def test_lower_is_better_with_tolerance(self):
        gate = Gate(tolerance=0.10, direction="lower")
        assert not gate.regressed(100.0, 100.0)
        assert not gate.regressed(100.0, 110.0)   # exactly at tolerance
        assert gate.regressed(100.0, 111.0)
        assert not gate.regressed(100.0, 50.0)    # improvement

    def test_higher_is_better_with_tolerance(self):
        gate = Gate(tolerance=0.10, direction="higher")
        assert not gate.regressed(40.0, 40.0)
        assert not gate.regressed(40.0, 36.0)     # exactly at tolerance
        assert gate.regressed(40.0, 35.9)
        assert not gate.regressed(40.0, 80.0)

    def test_zero_tolerance_demands_exactness(self):
        gate = Gate(tolerance=0.0, direction="higher")
        assert not gate.regressed(5.0, 5.0)
        assert gate.regressed(5.0, 4.999)


class TestRegistry:
    def test_builtin_scenarios_are_registered(self):
        names = scenario_names()
        for expected in ("ssl_transaction", "farm_mixed",
                         "characterize", "modexp_candidates",
                         "iss_compiled", "mpn_fast"):
            assert expected in names

    def test_get_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="ssl_transaction"):
            get_scenario("nope")

    def test_run_scenario_sorts_metric_keys(self, stub_scenario):
        metrics = run_scenario("stub")
        assert list(metrics) == sorted(metrics)


class TestExtras:
    def test_wall_seconds_recorded_per_run(self, stub_scenario):
        run_scenario("stub")
        extras = bench.scenario_extras("stub")
        assert extras["wall_seconds"] >= 0.0

    def test_record_extra_inside_run(self):
        scenario = Scenario(
            name="extra_stub", description="records an extra",
            run=lambda: (bench.record_extra("speedup", 3.19),
                         {"cycles": 1.0})[1])
        bench.register_scenario(scenario)
        try:
            metrics = run_scenario("extra_stub")
            extras = bench.scenario_extras("extra_stub")
        finally:
            del bench._SCENARIOS["extra_stub"]
        assert metrics == {"cycles": 1.0}
        assert extras["speedup"] == 3.19
        assert "wall_seconds" in extras

    def test_record_extra_outside_run_is_noop(self):
        bench.record_extra("orphan", 1.0)
        assert "orphan" not in bench.scenario_extras("stub")

    def test_extras_reset_between_runs(self, stub_scenario):
        bench._EXTRAS.setdefault("stub", {})["stale"] = True
        run_scenario("stub")
        assert "stale" not in bench.scenario_extras("stub")

    def test_extras_never_written_to_baselines(self, stub_scenario,
                                               tmp_path):
        metrics = run_scenario("stub")
        path = write_baseline(str(tmp_path), "stub", metrics)
        with open(path) as fh:
            assert "wall_seconds" not in fh.read()


class TestBaselineIO:
    def test_write_then_load_round_trips(self, stub_scenario, tmp_path):
        _, metrics = stub_scenario
        path = write_baseline(str(tmp_path), "stub", metrics)
        assert path == baseline_path(str(tmp_path), "stub")
        assert load_baseline(str(tmp_path), "stub") == dict(
            sorted(metrics.items()))

    def test_double_write_is_byte_identical(self, stub_scenario,
                                            tmp_path):
        _, metrics = stub_scenario
        path = write_baseline(str(tmp_path), "stub", metrics)
        first = open(path, "rb").read()
        write_baseline(str(tmp_path), "stub", metrics)
        assert open(path, "rb").read() == first
        assert first.endswith(b"\n")

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path), "absent") is None
        path = tmp_path / baseline_filename("bad")
        path.write_text("{not json")
        assert load_baseline(str(tmp_path), "bad") is None

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / baseline_filename("future")
        path.write_text(json.dumps({"schema": 999, "metrics": {"a": 1}}))
        assert load_baseline(str(tmp_path), "future") is None


class TestCompare:
    def test_identical_metrics_pass(self, stub_scenario):
        scenario, metrics = stub_scenario
        report = compare_metrics(scenario, dict(metrics), dict(metrics))
        assert not report.failed
        assert {row.status for row in report.rows} == {"ok"}

    def test_twenty_percent_cycle_regression_fails(self, stub_scenario):
        """Acceptance: +20% cycles on a 10%-toleranced gate fails."""
        scenario, metrics = stub_scenario
        worse = dict(metrics,
                     handshake_cycles=metrics["handshake_cycles"] * 1.20)
        report = compare_metrics(scenario, dict(metrics), worse)
        assert report.failed
        (row,) = report.regressions()
        assert row.metric == "handshake_cycles"
        assert row.delta_pct == pytest.approx(20.0)

    def test_within_tolerance_drift_is_changed_not_failed(
            self, stub_scenario):
        scenario, metrics = stub_scenario
        drift = dict(metrics,
                     handshake_cycles=metrics["handshake_cycles"] * 1.05)
        report = compare_metrics(scenario, dict(metrics), drift)
        assert not report.failed
        row = next(r for r in report.rows
                   if r.metric == "handshake_cycles")
        assert row.status == "changed"

    def test_improvement_is_reported_not_failed(self, stub_scenario):
        scenario, metrics = stub_scenario
        better = dict(metrics, throughput_mbps=80.0)
        report = compare_metrics(scenario, dict(metrics), better)
        assert not report.failed
        row = next(r for r in report.rows
                   if r.metric == "throughput_mbps")
        assert row.status == "improved"

    def test_missing_gated_metric_fails(self, stub_scenario):
        scenario, metrics = stub_scenario
        current = {k: v for k, v in metrics.items()
                   if k != "candidates"}
        report = compare_metrics(scenario, dict(metrics), current)
        assert report.failed
        assert report.regressions()[0].status == "missing"

    def test_new_and_ungated_metrics_never_fail(self, stub_scenario):
        scenario, metrics = stub_scenario
        current = dict(metrics, best_label="radix-64/window-5",
                       extra_metric=1.0)
        report = compare_metrics(scenario, dict(metrics), current)
        assert not report.failed
        by_name = {r.metric: r for r in report.rows}
        assert by_name["best_label"].status == "changed"
        assert by_name["extra_metric"].status == "new"


class TestCheckFlow:
    def test_check_passes_then_fails_on_injected_regression(
            self, stub_scenario, tmp_path):
        scenario, metrics = stub_scenario
        write_baseline(str(tmp_path), "stub", run_scenario("stub"))
        reports, ok = check_scenarios(str(tmp_path), ["stub"])
        assert ok and not reports[0].failed
        # Inject a +20% cycle regression into the live scenario.
        metrics["handshake_cycles"] *= 1.20
        reports, ok = check_scenarios(str(tmp_path), ["stub"])
        assert not ok and reports[0].failed
        assert "handshake_cycles" in render_report(reports)

    def test_missing_baseline_fails_check(self, stub_scenario,
                                          tmp_path):
        reports, ok = check_scenarios(str(tmp_path), ["stub"])
        assert not ok
        assert reports[0].error and "no baseline" in reports[0].error

    def test_render_report_verbose_lists_every_row(self, stub_scenario,
                                                   tmp_path):
        write_baseline(str(tmp_path), "stub", run_scenario("stub"))
        reports, _ = check_scenarios(str(tmp_path), ["stub"])
        terse = render_report(reports)
        assert terse.splitlines() == ["[ok] stub"]
        verbose = render_report(reports, verbose=True)
        assert "throughput_mbps" in verbose


class TestCommittedBaselines:
    """The repo ships a baseline for every registered scenario."""

    def test_every_scenario_has_a_committed_baseline(self):
        for name in scenario_names():
            assert load_baseline(DEFAULT_BASELINE_DIR, name) is not None

    def test_committed_baselines_gate_cleanly_shaped(self):
        # Cheap structural check (the full re-run happens in CI's
        # bench-gate job): every gated metric exists in its baseline.
        for name in scenario_names():
            baseline = load_baseline(DEFAULT_BASELINE_DIR, name)
            missing = set(get_scenario(name).gates) - set(baseline)
            assert not missing, (name, missing)
