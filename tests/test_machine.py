"""Tests for the XT32 instruction-set simulator."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.extensions import CustomInstruction, ExtensionSet
from repro.isa.machine import Machine, MachineError


def run(source, entry="main", args=(), extensions=None):
    machine = Machine(assemble(source, extensions), extensions)
    result = machine.run(entry, list(args))
    return result, machine


class TestAlu:
    def test_add_sub(self):
        result, _ = run("main: add r1, r1, r2\n sub r1, r1, r3\n halt",
                        args=[10, 7, 3])
        assert result == 14

    def test_wraparound(self):
        result, _ = run("main: addi r1, r1, 1\n halt", args=[0xFFFFFFFF])
        assert result == 0

    def test_logic_ops(self):
        result, _ = run("main: and r4, r1, r2\n or r4, r4, r3\n"
                        " xori r1, r4, 0xFF\n halt",
                        args=[0b1100, 0b1010, 0b0001])
        assert result == (((0b1100 & 0b1010) | 1) ^ 0xFF)

    def test_shifts(self):
        result, _ = run("main: slli r1, r1, 4\n srli r1, r1, 2\n halt",
                        args=[3])
        assert result == 12

    def test_sra_sign_extension(self):
        result, _ = run("main: srai r1, r1, 4\n halt", args=[0x80000000])
        assert result == 0xF8000000

    def test_sltu_vs_slt(self):
        result, _ = run("main: sltu r3, r1, r2\n slt r4, r1, r2\n"
                        " slli r4, r4, 1\n or r1, r3, r4\n halt",
                        args=[0xFFFFFFFF, 1])
        # unsigned: 0xFFFFFFFF > 1 -> 0 ; signed: -1 < 1 -> 1
        assert result == 0b10

    def test_mul_mulhu(self):
        result, machine = run(
            "main: mulhu r3, r1, r2\n mul r1, r1, r2\n halt",
            args=[0xFFFFFFFF, 0xFFFFFFFF])
        full = 0xFFFFFFFF * 0xFFFFFFFF
        assert result == full & 0xFFFFFFFF
        assert machine.regs[3] == full >> 32

    def test_r0_hardwired_zero(self):
        result, _ = run("main: li r0, 99\n mov r1, r0\n halt")
        assert result == 0


class TestMemory:
    def test_word_roundtrip(self):
        result, _ = run("main: sw r2, 0(r1)\n lw r1, 0(r1)\n halt",
                        args=[0x2000, 0xDEADBEEF])
        assert result == 0xDEADBEEF

    def test_byte_ops(self):
        result, _ = run("main: sb r2, 3(r1)\n lb r1, 3(r1)\n halt",
                        args=[0x2000, 0x1AB])
        assert result == 0xAB

    def test_little_endian_layout(self):
        _, machine = run("main: sw r2, 0(r1)\n halt", args=[0x2000, 0x01020304])
        assert machine.read_byte(0x2000) == 4
        assert machine.read_byte(0x2003) == 1

    def test_out_of_range_access(self):
        with pytest.raises(MachineError, match="memory access"):
            run("main: lw r1, 0(r2)\n halt", args=[0, 0xFFFFFFF0])

    def test_alloc_bounds(self):
        machine = Machine(assemble("main: halt"))
        with pytest.raises(MachineError, match="exhausted"):
            machine.alloc(1 << 22)


class TestControlFlow:
    def test_loop(self):
        source = """
        main:
            li r1, 0
        loop:
            add r1, r1, r2
            subi r2, r2, 1
            bne r2, r0, loop
            halt
        """
        result, _ = run(source, args=[0, 5])
        assert result == 15

    def test_branch_cost(self):
        # Not-taken branch costs 1; taken costs 3.
        _, m_nt = run("main: beq r1, r2, end\nend: halt", args=[1, 2])
        _, m_t = run("main: beq r1, r2, end\nend: halt", args=[1, 1])
        assert m_t.cycles == m_nt.cycles + 2

    def test_call_return(self):
        source = """
        main:
            jal double
            addi r1, r1, 1
            halt
        double:
            add r1, r1, r1
            jr r14
        """
        result, _ = run(source, args=[21])
        assert result == 43

    def test_signed_branches(self):
        source = """
        main:
            blt r1, r2, yes
            li r1, 0
            halt
        yes:
            li r1, 1
            halt
        """
        result, _ = run(source, args=[0xFFFFFFFF, 1])  # -1 < 1 signed
        assert result == 1

    def test_runaway_detection(self):
        machine = Machine(assemble("main: j main"))
        with pytest.raises(MachineError, match="budget"):
            machine.run("main", max_instructions=1000)


class TestProfiler:
    SOURCE = """
    main:
        mov r12, r14        # preserve the sentinel return address
        jal helper
        jal helper
        jr r12
    helper:
        addi r1, r1, 1
        jr r14
    """

    def test_call_counts(self):
        _, machine = run(self.SOURCE)
        assert machine.profile.call_counts["helper"] == 2
        assert machine.profile.call_edges[("main", "helper")] == 2

    def test_local_cycles_attributed(self):
        _, machine = run(self.SOURCE)
        prof = machine.profile
        # helper: 2 x (addi 1 + jr 3) = 8 local cycles
        assert prof.local_cycles["helper"] == 8
        assert prof.total_cycles == machine.cycles

    def test_inclusive_contains_local(self):
        _, machine = run(self.SOURCE)
        prof = machine.profile
        assert prof.inclusive_cycles["main"] >= prof.local_cycles["main"]
        assert prof.inclusive_cycles["main"] >= prof.inclusive_cycles["helper"]

    def test_callees_helper(self):
        _, machine = run(self.SOURCE)
        assert machine.profile.callees("main") == {"helper": 2}


class TestCustomInstructions:
    def test_semantics_and_latency(self):
        def swap_add(machine, args):
            rd, ra, rb = args
            machine.regs[rd] = (machine.regs[ra] + 2 * machine.regs[rb]) \
                & 0xFFFFFFFF

        ext = ExtensionSet([CustomInstruction(
            name="sad", signature="rrr", semantics=swap_add, latency=5)])
        result, machine = run("main: sad r1, r1, r2\n halt", args=[1, 4],
                              extensions=ext)
        assert result == 9
        assert machine.cycles == 5 + 1  # sad + halt

    def test_dynamic_latency(self):
        ext = ExtensionSet([CustomInstruction(
            name="varop", signature="r",
            semantics=lambda m, a: None,
            latency=lambda m, a: m.regs[a[0]])])
        _, machine = run("main: varop r1\n halt", args=[7], extensions=ext)
        assert machine.cycles == 7 + 1

    def test_unknown_opcode_at_runtime(self):
        # Assemble with the extension, run without it.
        ext = ExtensionSet([CustomInstruction(
            name="ghost", signature="", semantics=lambda m, a: None)])
        program = assemble("main: ghost\n halt", ext)
        machine = Machine(program)  # extensions not configured
        with pytest.raises(MachineError, match="unknown opcode"):
            machine.run("main")

    def test_user_registers(self):
        ext = ExtensionSet([
            CustomInstruction(name="setur", signature="r",
                              semantics=lambda m, a:
                              m.user_regs.__setitem__("acc", m.regs[a[0]])),
            CustomInstruction(name="getur", signature="r",
                              semantics=lambda m, a:
                              m.regs.__setitem__(a[0],
                                                 m.user_regs.get("acc", 0))),
        ])
        result, _ = run("main: setur r2\n getur r1\n halt", args=[0, 77],
                        extensions=ext)
        assert result == 77
