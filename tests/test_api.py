"""Tests for the Layer-3 SecurityApi facade."""

import hashlib

import pytest

from repro.mp import DeterministicPrng
from repro.crypto.api import SecurityApi
from repro.crypto.modexp import ModExpConfig


@pytest.fixture
def api():
    return SecurityApi(prng=DeterministicPrng(1234))


class TestSymmetric:
    @pytest.mark.parametrize("algorithm,keylen,bs", [
        ("des", 8, 8), ("3des", 24, 8), ("aes", 16, 16)])
    def test_cbc_roundtrip(self, api, algorithm, keylen, bs):
        key = api.generate_symmetric_key(algorithm)
        assert len(key) == keylen
        iv = bytes(bs)
        data = b"the quick brown fox jumps over the lazy dog"
        ct = api.encrypt(algorithm, key, data, iv=iv)
        assert api.decrypt(algorithm, key, ct, iv=iv) == data

    def test_ecb_roundtrip(self, api):
        key = api.generate_symmetric_key("aes")
        ct = api.encrypt("aes", key, b"block mode test", mode="ecb")
        assert api.decrypt("aes", key, ct, mode="ecb") == b"block mode test"

    def test_rc4(self, api):
        key = api.generate_symmetric_key("rc4")
        ct = api.encrypt("rc4", key, b"stream data")
        assert api.decrypt("rc4", key, ct) == b"stream data"

    def test_unknown_cipher(self, api):
        with pytest.raises(ValueError):
            api.encrypt("idea", bytes(16), b"x", iv=bytes(8))

    def test_unknown_mode(self, api):
        with pytest.raises(ValueError):
            api.encrypt("aes", bytes(16), b"x", iv=bytes(16), mode="ctr")

    def test_cbc_without_iv(self, api):
        with pytest.raises(ValueError):
            api.encrypt("aes", bytes(16), b"x")

    def test_empty_plaintext(self, api):
        key = api.generate_symmetric_key("aes")
        iv = bytes(16)
        assert api.decrypt("aes", key, api.encrypt("aes", key, b"", iv=iv),
                           iv=iv) == b""


class TestHashing:
    def test_sha1_matches_hashlib(self, api):
        assert api.hash("sha1", b"data") == hashlib.sha1(b"data").digest()

    def test_md5_matches_hashlib(self, api):
        assert api.hash("md5", b"data") == hashlib.md5(b"data").digest()

    def test_unknown_hash(self, api):
        with pytest.raises(ValueError):
            api.hash("sha256", b"data")

    def test_hmac(self, api):
        import hmac as py_hmac
        assert api.hmac("sha1", b"key", b"msg") == \
            py_hmac.new(b"key", b"msg", hashlib.sha1).digest()


class TestPublicKey:
    def test_rsa_through_api(self, api):
        kp = api.generate_keypair("rsa", 256)
        ct = api.rsa_encrypt(b"api message", kp.public)
        assert api.rsa_decrypt(ct, kp.private) == b"api message"
        sig = api.rsa_sign(b"doc", kp.private)
        assert api.rsa_verify(b"doc", sig, kp.public)

    def test_elgamal_through_api(self, api):
        kp = api.generate_keypair("elgamal", 40)
        ct = api.elgamal_encrypt(1234, kp.public)
        assert api.elgamal_decrypt(ct, kp.private) == 1234

    def test_unknown_keypair_algorithm(self, api):
        with pytest.raises(ValueError):
            api.generate_keypair("dsa", 512)

    def test_custom_modexp_config(self):
        api = SecurityApi(ModExpConfig(modmul="barrett", window=3, crt="classic"),
                          prng=DeterministicPrng(5))
        kp = api.generate_keypair("rsa", 192)
        ct = api.rsa_encrypt(b"cfg", kp.public)
        assert api.rsa_decrypt(ct, kp.private) == b"cfg"

    def test_unknown_symmetric_key_algorithm(self, api):
        with pytest.raises(ValueError):
            api.generate_symmetric_key("blowfish")
