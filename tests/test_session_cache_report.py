"""Tests for the SSL session cache and the ISS run report."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cache import CacheConfig
from repro.isa.machine import Machine
from repro.isa.report import machine_report
from repro.mp import DeterministicPrng
from repro.ssl import fixtures
from repro.ssl.handshake import SslClient, SslServer, run_handshake
from repro.ssl.session_cache import SessionCache


@pytest.fixture(scope="module")
def session():
    client = SslClient(fixtures.CLIENT_512, prng=DeterministicPrng(1))
    server = SslServer(fixtures.SERVER_512)
    return run_handshake(client, server, "aes")


class TestSessionCache:
    def test_store_and_lookup(self, session):
        cache = SessionCache()
        sid = cache.store(session)
        assert cache.lookup(sid) is session
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = SessionCache()
        assert cache.lookup(b"\x00" * 16) is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_session_id_is_not_the_secret(self, session):
        sid = SessionCache.session_id(session)
        assert sid != session.master[:16]
        assert len(sid) == 16

    def test_lru_eviction(self, session):
        from repro.ssl.handshake import run_resumed_handshake
        cache = SessionCache(capacity=2)
        sids = []
        for i in range(3):
            derived = run_resumed_handshake(session, DeterministicPrng(i))
            sids.append(cache.store(derived))
        assert len(cache) == 2
        assert cache.lookup(sids[0]) is None   # evicted
        assert cache.lookup(sids[2]) is not None

    def test_lookup_refreshes_lru(self, session):
        from repro.ssl.handshake import run_resumed_handshake
        cache = SessionCache(capacity=2)
        a = cache.store(run_resumed_handshake(session, DeterministicPrng(1)))
        b = cache.store(run_resumed_handshake(session, DeterministicPrng(2)))
        cache.lookup(a)  # refresh a; b becomes the LRU victim
        cache.store(run_resumed_handshake(session, DeterministicPrng(3)))
        assert cache.lookup(a) is not None
        assert cache.lookup(b) is None

    def test_invalidate(self, session):
        cache = SessionCache()
        sid = cache.store(session)
        assert cache.invalidate(sid)
        assert not cache.invalidate(sid)
        assert cache.lookup(sid) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SessionCache(capacity=0)


class TestMachineReport:
    SOURCE = """
    main:
        mov r12, r14
        li r2, 3
    loop:
        jal work
        subi r2, r2, 1
        bne r2, r0, loop
        jr r12
    work:
        lw r3, 0(r1)
        addi r3, r3, 1
        sw r3, 0(r1)
        jr r14
    """

    def test_report_contents(self):
        machine = Machine(assemble(self.SOURCE),
                          dcache=CacheConfig(miss_penalty=5))
        machine.run("main", [0x2000])
        text = machine_report(machine)
        assert "cycles:" in text
        assert "CPI:" in text
        assert "work" in text              # hot function listed
        assert "dcache:" in text
        assert "estimated energy" in text

    def test_report_without_cache(self):
        machine = Machine(assemble("main: halt"))
        machine.run("main")
        text = machine_report(machine)
        assert "dcache" not in text
        assert "halt" in text
