"""Tests for the autoscaling capacity service and capacity-plan
serialization (frozen measured unit costs, no ISS runs)."""

import pytest

from repro.costs import PlatformCosts
from repro.farm import (ARRIVAL_CURVES, AutoscalePolicy, CapacityPlan,
                        SloTarget, TrafficProfile, arrival_multiplier,
                        build_farm, curve_names, plan_farm,
                        simulate_autoscale, specs_as_configs)

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _pool(n=16):
    return build_farm(n, BASE_COSTS, OPT_COSTS, 0.5)


class TestArrivalCurves:
    def test_registry(self):
        assert set(curve_names()) == {"constant", "diurnal", "bursty"}
        with pytest.raises(ValueError, match="unknown arrival curve"):
            arrival_multiplier("square", 0, 10)

    def test_constant_is_flat(self):
        assert all(arrival_multiplier("constant", e, 24) == 1.0
                   for e in range(24))

    def test_diurnal_troughs_and_peaks(self):
        values = [arrival_multiplier("diurnal", e, 24)
                  for e in range(24)]
        assert min(values) == pytest.approx(0.5)
        assert max(values) == pytest.approx(1.5)
        assert values[0] == pytest.approx(0.5)      # trough at epoch 0
        assert values[12] == pytest.approx(1.5)     # peak mid-run

    def test_bursty_spikes(self):
        values = [arrival_multiplier("bursty", e, 16)
                  for e in range(16)]
        assert values[4] == values[12] == 3.0
        assert all(v == 0.6 for i, v in enumerate(values)
                   if i % 8 != 4)


class TestSloTarget:
    def test_empty_slo_always_met(self):
        assert SloTarget().met_by(1e9, 0.0)

    def test_p99_and_throughput_bounds(self):
        slo = SloTarget(p99_ms=100.0, secure_mbps=5.0)
        assert slo.met_by(99.0, 6.0)
        assert not slo.met_by(101.0, 6.0)
        assert not slo.met_by(99.0, 4.0)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_cores": 0},
        {"min_cores": 8, "max_cores": 4},
        {"target_utilization": 0.0},
        {"target_utilization": 1.5},
        {"scale_in_utilization": 0.9},
        {"scale_out_step": 0},
        {"warmup_epochs": -1},
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalePolicy(**kwargs)


class TestAutoscale:
    def _run(self, **kwargs):
        defaults = dict(
            policy=AutoscalePolicy(min_cores=2, max_cores=16,
                                   warmup_epochs=1),
            slo=SloTarget(p99_ms=500.0),
            n_epochs=12, epoch_seconds=1.0, curve="bursty", seed=4)
        defaults.update(kwargs)
        return simulate_autoscale(
            _pool(), "preferential",
            TrafficProfile(arrival_rate=500.0, clients=128),
            **defaults)

    def test_deterministic(self):
        assert self._run().as_dict() == self._run().as_dict()

    def test_burst_triggers_scale_out_with_warmup_lag(self):
        report = self._run()
        burst = report.epochs[4]
        assert burst.rate_multiplier == 3.0
        assert burst.action == "scale_out"
        # Warm-up: cores ordered at the burst epoch are not active in
        # it -- they join one epoch later.
        assert report.epochs[5].active_cores > burst.active_cores
        assert report.scale_outs >= 1

    def test_respects_max_cores(self):
        report = self._run(
            policy=AutoscalePolicy(min_cores=2, max_cores=4),
            curve="constant",
            slo=SloTarget(secure_mbps=1e9))   # unmeetable -> scale out
        assert report.peak_cores <= 4
        assert all(e.active_cores + e.warming_cores <= 4
                   for e in report.epochs)
        assert report.slo_violations == len(report.epochs)

    def test_scale_in_after_load_drops(self):
        report = simulate_autoscale(
            _pool(), "preferential",
            TrafficProfile(arrival_rate=300.0, clients=128),
            policy=AutoscalePolicy(min_cores=2, max_cores=16,
                                   scale_in_utilization=0.45,
                                   cooldown_epochs=0),
            n_epochs=16, epoch_seconds=1.0, curve="bursty", seed=4)
        # The flash crowd forces a scale-out; once the burst passes,
        # utilization drops under the scale-in threshold and the farm
        # shrinks back -- never below min_cores.
        assert report.scale_outs >= 1
        assert report.scale_ins >= 1
        assert report.epochs[-1].active_cores < report.peak_cores
        assert all(e.active_cores >= 2 for e in report.epochs)

    def test_report_totals_match_epochs(self):
        report = self._run()
        assert report.peak_cores == max(e.active_cores
                                        for e in report.epochs)
        assert report.core_epochs == sum(e.active_cores
                                         for e in report.epochs)
        data = report.as_dict()
        assert len(data["epochs"]) == 12
        assert data["policy"]["max_cores"] == 16
        assert data["slo"]["p99_ms"] == 500.0

    def test_validation(self):
        profile = TrafficProfile()
        with pytest.raises(ValueError):
            simulate_autoscale(_pool(), "preferential", profile,
                               n_epochs=0)
        with pytest.raises(ValueError):
            simulate_autoscale(_pool(), "preferential", profile,
                               epoch_seconds=0.0)
        with pytest.raises(ValueError):
            simulate_autoscale([], "preferential", profile)
        with pytest.raises(ValueError, match="unknown arrival curve"):
            simulate_autoscale(_pool(), "preferential", profile,
                               curve="sawtooth")


class TestCapacityPlanSerialization:
    def test_as_dict_from_dict_round_trip(self):
        configs = specs_as_configs(_pool(2))
        plan = plan_farm(100_000, 384e3, configs)
        assert CapacityPlan.from_dict(plan.as_dict()) == plan

    def test_from_dict_coerces_types(self):
        plan = CapacityPlan.from_dict({
            "target": "t", "target_bps": "1000.0", "config": "base",
            "cores": "4", "per_core_bps": 250, "farm_gates": 400000})
        assert plan.cores == 4
        assert plan.target_bps == 1000.0
        assert plan.farm_gates == 400000.0
