"""Tests for A-D curves, call graphs, and global instruction selection."""

import pytest

from repro.isa.extensions import CustomInstruction
from repro.tie.adcurve import ADCurve, DesignPoint
from repro.tie.callgraph import CallGraph
from repro.tie.formulation import (adcurve_mpn_add_n, adcurve_mpn_addmul_1)
from repro.tie.selection import (combine_curves, instruction_family,
                                 propagate, reduce_instruction_set,
                                 select_point)


def _instr(name, area_units=1):
    return CustomInstruction(name=name, signature="r",
                             semantics=lambda m, a: None,
                             resources={"adder32": area_units})


def _curve(name, spec, catalogue):
    """spec: list of (cycles, instruction names)."""
    points = []
    for cycles, names in spec:
        area = sum(catalogue[n].area for n in names)
        points.append(DesignPoint(cycles=cycles, area=area,
                                  instructions=frozenset(names)))
    return ADCurve(name, points, catalogue)


@pytest.fixture
def catalogue():
    return {name: _instr(name, units) for name, units in [
        ("add_2", 2), ("add_4", 4), ("add_8", 8), ("add_16", 16),
        ("mul_1", 20)]}


class TestDesignPoint:
    def test_dominance(self):
        better = DesignPoint(cycles=10, area=100)
        worse = DesignPoint(cycles=20, area=200)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_dominance_on_ties(self):
        a = DesignPoint(cycles=10, area=100)
        b = DesignPoint(cycles=10, area=100)
        assert not a.dominates(b)

    def test_tradeoff_points_incomparable(self):
        fast = DesignPoint(cycles=10, area=500)
        small = DesignPoint(cycles=50, area=10)
        assert not fast.dominates(small)
        assert not small.dominates(fast)


class TestADCurve:
    def test_pareto_prunes_inferior(self):
        curve = ADCurve("x", [
            DesignPoint(cycles=100, area=0),
            DesignPoint(cycles=50, area=10),
            DesignPoint(cycles=60, area=20),   # dominated by the 50/10 point
        ])
        pruned = curve.pareto()
        assert len(pruned) == 2
        assert all(p.cycles != 60 for p in pruned)

    def test_base_point(self):
        curve = ADCurve("x", [DesignPoint(cycles=100, area=0),
                              DesignPoint(cycles=10, area=5,
                                          instructions=frozenset({"i"}))])
        assert curve.base_point.cycles == 100

    def test_base_point_missing(self):
        curve = ADCurve("x", [DesignPoint(cycles=10, area=5,
                                          instructions=frozenset({"i"}))])
        with pytest.raises(ValueError):
            _ = curve.base_point

    def test_best_under_area(self):
        curve = ADCurve("x", [DesignPoint(cycles=100, area=0),
                              DesignPoint(cycles=10, area=50)])
        assert curve.best_under_area(10).cycles == 100
        assert curve.best_under_area(100).cycles == 10

    def test_best_under_area_infeasible(self):
        curve = ADCurve("x", [DesignPoint(cycles=10, area=50)])
        with pytest.raises(ValueError):
            curve.best_under_area(10)

    def test_scaled(self):
        curve = ADCurve("x", [DesignPoint(cycles=10, area=5)])
        scaled = curve.scaled(calls=4, local_cycles=3)
        assert scaled.points[0].cycles == 43
        assert scaled.points[0].area == 5


class TestFamilies:
    def test_parse(self):
        assert instruction_family("vaddc_8") == ("vaddc", (8,))
        assert instruction_family("aesrnd_8_2") == ("aesrnd", (8, 2))
        assert instruction_family("desld") == ("desld", ())

    def test_reduce_within_family(self):
        assert reduce_instruction_set({"add_2", "add_4"}) == {"add_4"}

    def test_reduce_across_families_keeps_both(self):
        got = reduce_instruction_set({"add_4", "mul_1"})
        assert got == {"add_4", "mul_1"}

    def test_reduce_multi_param(self):
        assert reduce_instruction_set({"aesrnd_8_2", "aesrnd_16_4"}) == \
            {"aesrnd_16_4"}

    def test_incomparable_multi_param_kept(self):
        got = reduce_instruction_set({"aesrnd_16_1", "aesrnd_8_4"})
        assert got == {"aesrnd_16_1", "aesrnd_8_4"}


class TestCombination:
    def test_paper_figure6_reduction(self, catalogue):
        """25 Cartesian points -> 9 after sharing/dominance."""
        add_curve = _curve("mpn_add_n", [
            (202, []), (120, ["add_2"]), (80, ["add_4"]),
            (60, ["add_8"]), (50, ["add_16"])], catalogue)
        mac_curve = _curve("mpn_addmul_1", [
            (340, []), (150, ["add_2", "mul_1"]), (100, ["add_4", "mul_1"]),
            (80, ["add_8", "mul_1"]), (70, ["add_16", "mul_1"])], catalogue)
        combined = combine_curves("root", [(add_curve, 1), (mac_curve, 1)],
                                  pareto=False)
        assert combined.raw_combination_count == 25
        assert len(combined) == 9

    def test_reduction_ablation(self, catalogue):
        """Identical-set sharing alone merges less than sharing+dominance
        (paper Figure 6 distinguishes cases (i) and (ii))."""
        add_curve = _curve("a", [(202, []), (120, ["add_2"]),
                                 (80, ["add_4"])], catalogue)
        mac_curve = _curve("b", [(340, []), (150, ["add_2", "mul_1"]),
                                 (100, ["add_4", "mul_1"])], catalogue)
        shared_only = combine_curves("root", [(add_curve, 1), (mac_curve, 1)],
                                     reduce=False, pareto=False)
        with_dominance = combine_curves("root",
                                        [(add_curve, 1), (mac_curve, 1)],
                                        reduce=True, pareto=False)
        assert shared_only.raw_combination_count == 9
        assert len(shared_only) == 6
        assert len(with_dominance) == 5
        assert len(with_dominance) < len(shared_only)

    def test_equation1_cycles(self, catalogue):
        child = _curve("c", [(10, [])], catalogue)
        combined = combine_curves("root", [(child, 5)], local_cycles=7,
                                  pareto=False)
        assert combined.points[0].cycles == 7 + 5 * 10

    def test_shared_area_counted_once(self, catalogue):
        a = _curve("a", [(10, ["add_4"])], catalogue)
        b = _curve("b", [(20, ["add_4"])], catalogue)
        combined = combine_curves("root", [(a, 1), (b, 1)], pareto=False)
        assert combined.points[0].area == catalogue["add_4"].area


class TestPropagation:
    def _graph(self):
        graph = CallGraph("decrypt")
        graph.add_edge("decrypt", "mod_mul", 4)
        graph.add_edge("mod_mul", "mpn_addmul_1", 8)
        graph.add_edge("decrypt", "mpn_add_n", 2)
        graph.set_local_cycles("decrypt", 100)
        graph.set_local_cycles("mod_mul", 50)
        graph.set_local_cycles("mpn_addmul_1", 340)
        graph.set_local_cycles("mpn_add_n", 202)
        return graph

    def test_software_total(self):
        graph = self._graph()
        want = 100 + 4 * (50 + 8 * 340) + 2 * 202
        assert graph.total_cycles() == want

    def test_propagate_base_point_equals_software_total(self, catalogue):
        graph = self._graph()
        curves = {
            "mpn_add_n": _curve("mpn_add_n", [(202, []), (60, ["add_8"])],
                                catalogue),
            "mpn_addmul_1": _curve("mpn_addmul_1",
                                   [(340, []), (80, ["add_8", "mul_1"])],
                                   catalogue),
        }
        root = propagate(graph, curves)
        assert root.base_point.cycles == graph.total_cycles()

    def test_selection_under_budget(self, catalogue):
        graph = self._graph()
        curves = {
            "mpn_add_n": _curve("mpn_add_n", [(202, []), (60, ["add_8"])],
                                catalogue),
            "mpn_addmul_1": _curve("mpn_addmul_1",
                                   [(340, []), (80, ["add_8", "mul_1"])],
                                   catalogue),
        }
        # Budget = 0: must pick pure software.
        point, _ = select_point(graph, curves, area_budget=0)
        assert point.instructions == frozenset()
        # Large budget: picks the accelerated configuration.
        point, _ = select_point(graph, curves, area_budget=1e9)
        assert "add_8" in point.instructions
        assert point.cycles < graph.total_cycles()

    def test_cycle_detection(self):
        graph = CallGraph("a")
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "a", 1)
        with pytest.raises(ValueError, match="cycle"):
            graph.validate_acyclic()

    def test_from_profile(self):
        from repro.isa.kernels.modexp_kernel import ModExpKernel
        kernel = ModExpKernel()
        _, _, profile = kernel.powm(0xABC, 0x1F, (1 << 64) + 13)
        graph = CallGraph.from_profile(profile, "modexp")
        assert "mont_mul" in graph.nodes
        assert graph.nodes["modexp"].children
        graph.validate_acyclic()

    def test_render_contains_nodes(self):
        graph = self._graph()
        text = graph.render()
        assert "decrypt" in text and "mpn_addmul_1" in text


class TestMeasuredCurves:
    def test_add_n_curve_shape(self):
        curve = adcurve_mpn_add_n(16, widths=(2, 8))
        points = sorted(curve, key=lambda p: p.area)
        assert points[0].area == 0
        cycles = [p.cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)

    def test_addmul_curve_shares_adder_family(self):
        curve = adcurve_mpn_addmul_1(16, widths=(2, 8))
        accelerated = [p for p in curve if p.instructions]
        assert all("macmul_1" in p.instructions for p in accelerated)
        assert any("vaddc_8" in p.instructions for p in accelerated)

    def test_measured_25_to_9_reduction(self):
        add_curve = adcurve_mpn_add_n(16)
        mac_curve = adcurve_mpn_addmul_1(16)
        combined = combine_curves("root", [(add_curve, 1), (mac_curve, 1)],
                                  pareto=False)
        assert combined.raw_combination_count == 25
        assert len(combined) == 9
