"""Tests for primes, RSA and ElGamal (the public-key Layer 2/3 stack)."""

import pytest

from repro.mp import DeterministicPrng, Mpz
from repro.crypto.elgamal import ElGamal, generate_elgamal_keypair
from repro.crypto.modexp import ModExpConfig
from repro.crypto.primes import (generate_prime, generate_safe_prime,
                                 is_probable_prime)
from repro.crypto.rsa import Rsa, generate_rsa_keypair


class TestPrimality:
    KNOWN_PRIMES = [2, 3, 5, 97, 65537, (1 << 61) - 1, (1 << 89) - 1,
                    (1 << 127) - 1]
    KNOWN_COMPOSITES = [0, 1, 4, 100, 65539 * 65543, (1 << 61) + 1,
                        561, 41041, 825265]  # includes Carmichael numbers

    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_primes_accepted(self, p):
        assert is_probable_prime(Mpz(p))

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not is_probable_prime(Mpz(c))

    def test_negative_rejected(self):
        assert not is_probable_prime(Mpz(-7))

    def test_generate_prime_properties(self):
        prng = DeterministicPrng(42)
        p = generate_prime(48, prng)
        assert p.bit_length() == 48
        assert p.is_odd()
        assert is_probable_prime(p)

    def test_generate_prime_deterministic(self):
        assert int(generate_prime(40, DeterministicPrng(7))) == \
            int(generate_prime(40, DeterministicPrng(7)))

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(2, DeterministicPrng())

    def test_safe_prime(self):
        prng = DeterministicPrng(11)
        p = generate_safe_prime(32, prng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) >> 1)
        assert p.bit_length() == 32


class TestRsaKeyGeneration:
    def test_key_invariants(self):
        kp = generate_rsa_keypair(128, DeterministicPrng(1))
        priv = kp.private
        n = int(priv.p) * int(priv.q)
        assert int(priv.n) == n
        phi = (int(priv.p) - 1) * (int(priv.q) - 1)
        assert (int(priv.d) * int(priv.e)) % phi == 1
        assert int(priv.dp) == int(priv.d) % (int(priv.p) - 1)
        assert int(priv.dq) == int(priv.d) % (int(priv.q) - 1)
        assert (int(priv.qinv) * int(priv.q)) % int(priv.p) == 1

    def test_p_greater_than_q(self):
        kp = generate_rsa_keypair(128, DeterministicPrng(2))
        assert kp.private.p > kp.private.q

    def test_deterministic(self):
        a = generate_rsa_keypair(96, DeterministicPrng(5))
        b = generate_rsa_keypair(96, DeterministicPrng(5))
        assert int(a.private.n) == int(b.private.n)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(8)


class TestRsaOperations:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_rsa_keypair(256, DeterministicPrng(99))

    def test_int_roundtrip(self, keypair):
        rsa = Rsa()
        c = rsa.encrypt_int(123456789, keypair.public)
        assert rsa.decrypt_int(c, keypair.private) == 123456789

    def test_bytes_roundtrip(self, keypair):
        rsa = Rsa()
        msg = b"wireless handset"
        ct = rsa.encrypt(msg, keypair.public, DeterministicPrng(3))
        assert rsa.decrypt(ct, keypair.private) == msg

    def test_padding_randomized(self, keypair):
        rsa = Rsa()
        c1 = rsa.encrypt(b"m", keypair.public, DeterministicPrng(1))
        c2 = rsa.encrypt(b"m", keypair.public, DeterministicPrng(2))
        assert c1 != c2
        assert rsa.decrypt(c1, keypair.private) == \
            rsa.decrypt(c2, keypair.private) == b"m"

    def test_message_too_long(self, keypair):
        rsa = Rsa()
        with pytest.raises(ValueError):
            rsa.encrypt(b"x" * (keypair.public.byte_size - 10), keypair.public)

    def test_out_of_range_int(self, keypair):
        rsa = Rsa()
        with pytest.raises(ValueError):
            rsa.encrypt_int(int(keypair.public.n), keypair.public)

    def test_sign_verify(self, keypair):
        rsa = Rsa()
        sig = rsa.sign(b"contract", keypair.private)
        assert rsa.verify(b"contract", sig, keypair.public)
        assert not rsa.verify(b"tampered", sig, keypair.public)

    def test_corrupt_signature_rejected(self, keypair):
        rsa = Rsa()
        sig = bytearray(rsa.sign(b"contract", keypair.private))
        sig[0] ^= 1
        assert not rsa.verify(b"contract", bytes(sig), keypair.public)

    @pytest.mark.parametrize("crt", ["none", "classic", "garner"])
    def test_crt_variants_interoperate(self, keypair, crt):
        enc = Rsa()  # default config on the sender
        dec = Rsa(ModExpConfig(crt=crt))
        ct = enc.encrypt(b"inter-op", keypair.public, DeterministicPrng(4))
        assert dec.decrypt(ct, keypair.private) == b"inter-op"

    @pytest.mark.parametrize("modmul", ["barrett", "montgomery", "interleaved"])
    def test_modmul_variants_interoperate(self, keypair, modmul):
        enc = Rsa(ModExpConfig(modmul=modmul, window=2))
        ct = enc.encrypt(b"x", keypair.public, DeterministicPrng(4))
        assert Rsa().decrypt(ct, keypair.private) == b"x"


class TestElGamal:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_elgamal_keypair(48, DeterministicPrng(13))

    def test_group_is_safe_prime(self, keypair):
        p = keypair.public.p
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) >> 1)

    def test_roundtrip(self, keypair):
        eg = ElGamal()
        ct = eg.encrypt_int(0xDEAD, keypair.public, DeterministicPrng(21))
        assert eg.decrypt_int(ct, keypair.private) == 0xDEAD

    def test_randomized_ciphertexts(self, keypair):
        eg = ElGamal()
        c1 = eg.encrypt_int(7, keypair.public, DeterministicPrng(1))
        c2 = eg.encrypt_int(7, keypair.public, DeterministicPrng(2))
        assert c1 != c2
        assert eg.decrypt_int(c1, keypair.private) == \
            eg.decrypt_int(c2, keypair.private) == 7

    def test_message_range_checked(self, keypair):
        eg = ElGamal()
        with pytest.raises(ValueError):
            eg.encrypt_int(0, keypair.public)
        with pytest.raises(ValueError):
            eg.encrypt_int(int(keypair.public.p), keypair.public)

    def test_multiplicative_homomorphism(self, keypair):
        """E(a) * E(b) decrypts to a*b mod p -- ElGamal's signature property."""
        eg = ElGamal()
        p = int(keypair.public.p)
        a, b = 123, 456
        c1a, c2a = eg.encrypt_int(a, keypair.public, DeterministicPrng(5))
        c1b, c2b = eg.encrypt_int(b, keypair.public, DeterministicPrng(6))
        product_ct = ((c1a * c1b) % p, (c2a * c2b) % p)
        assert eg.decrypt_int(product_ct, keypair.private) == (a * b) % p
