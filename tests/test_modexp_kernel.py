"""Tests for the full ISS Montgomery modular exponentiation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.kernels.modexp_kernel import ModExpKernel


@pytest.fixture(scope="module")
def base_kernel():
    return ModExpKernel()


@pytest.fixture(scope="module")
def ext_kernel():
    return ModExpKernel(add_width=8, mac_width=8)


class TestCorrectness:
    @pytest.mark.parametrize("modulus", [23, (1 << 32) + 15, (1 << 64) + 13,
                                         (1 << 96) + 61, (1 << 128) + 51])
    def test_known_moduli(self, base_kernel, modulus):
        got, _, _ = base_kernel.powm(0xABCDEF, 0x12345, modulus)
        assert got == pow(0xABCDEF, 0x12345, modulus)

    @settings(max_examples=10, deadline=None)
    @given(base=st.integers(min_value=0, max_value=(1 << 96) - 1),
           exp=st.integers(min_value=1, max_value=(1 << 20) - 1),
           modseed=st.integers(min_value=1, max_value=(1 << 96) - 1))
    def test_random_inputs(self, base_kernel, base, exp, modseed):
        modulus = modseed | 1
        if modulus < 3:
            modulus = 3
        got, _, _ = base_kernel.powm(base, exp, modulus)
        assert got == pow(base, exp, modulus)

    @settings(max_examples=8, deadline=None)
    @given(base=st.integers(min_value=0, max_value=(1 << 96) - 1),
           exp=st.integers(min_value=1, max_value=(1 << 16) - 1))
    def test_extended_matches_base(self, base_kernel, ext_kernel, base, exp):
        modulus = (1 << 96) + 61
        got_b, cyc_b, _ = base_kernel.powm(base, exp, modulus)
        got_e, cyc_e, _ = ext_kernel.powm(base, exp, modulus)
        assert got_b == got_e == pow(base, exp, modulus)
        assert cyc_e < cyc_b

    def test_even_modulus_rejected(self, base_kernel):
        with pytest.raises(ValueError):
            base_kernel.powm(2, 3, 100)

    def test_nonpositive_exponent_rejected(self, base_kernel):
        with pytest.raises(ValueError):
            base_kernel.powm(2, 0, 23)

    def test_base_larger_than_modulus(self, base_kernel):
        got, _, _ = base_kernel.powm((1 << 80) + 5, 7, (1 << 64) + 13)
        assert got == pow((1 << 80) + 5, 7, (1 << 64) + 13)

    def test_result_equal_to_modulus_minus_one(self, base_kernel):
        # exercise the final conditional-subtract paths
        m = (1 << 64) + 13
        got, _, _ = base_kernel.powm(m - 1, 3, m)
        assert got == pow(m - 1, 3, m)


class TestProfileShape:
    def test_profile_edges(self, base_kernel):
        _, _, profile = base_kernel.powm(0xBEEF, 0x155, (1 << 128) + 51)
        assert ("modexp", "mont_mul") in profile.call_edges
        assert ("mont_mul", "mpn_addmul_1") in profile.call_edges
        # squarings + multiplies + 2 domain conversions
        exp_bits, popcount = 9, 5  # 0x155 = 0b101010101
        assert profile.call_counts["mont_mul"] == exp_bits + popcount + 2

    def test_ext_profile_uses_fused_rows(self, ext_kernel):
        _, _, profile = ext_kernel.powm(0xBEEF, 0x155, (1 << 128) + 51)
        # The fused macrow/montrow instructions replace the addmul calls.
        assert "mpn_addmul_1" not in profile.call_counts

    def test_cycles_scale_quadratically(self, base_kernel):
        cycles = []
        for bits in (128, 256, 512):
            _, c, _ = base_kernel.powm(0xABC, 0xFF1, (1 << bits) + 0x169)
            cycles.append(c)
        # doubling the size should cost ~4x (schoolbook inner products)
        assert 2.5 < cycles[1] / cycles[0] < 5.5
        assert 2.5 < cycles[2] / cycles[1] < 5.5
