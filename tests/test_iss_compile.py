"""Differential tests: compiled (threaded-code) ISS vs the interpreter.

The compiled backend must be **bit-identical** to the interpreter --
cycles, instret, opcode counts, the whole profile, and final
memory/registers -- on every registered kernel, on randomly generated
programs, and on every error path.  These tests enforce that contract,
plus the batched-execution API built on top of it.
"""

import hashlib
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.compile import compiled_for
from repro.isa.machine import (ISS_BACKEND_ENV, Machine, MachineError,
                               MachineFleet, backend_scope, resolve_backend)

BACKENDS = ("interp", "compiled")


def snapshot(machine, result):
    """Full architectural + profile state of a finished machine."""
    profile = machine.profile
    return {
        "result": result,
        "cycles": machine.cycles,
        "instret": machine.instret,
        "pc": machine.pc,
        "opcode_counts": dict(machine.opcode_counts),
        "regs": list(machine.regs),
        "user_regs": dict(machine.user_regs),
        "mem": hashlib.sha256(machine.mem).hexdigest(),
        "total_cycles": profile.total_cycles,
        "instructions": profile.instructions,
        "local_cycles": dict(profile.local_cycles),
        "inclusive_cycles": dict(profile.inclusive_cycles),
        "call_edges": dict(profile.call_edges),
        "call_counts": dict(profile.call_counts),
    }


def run_both(source, entry, args, extensions=None, dcache=None,
             max_instructions=200_000_000, mem_size=1 << 16):
    """Run one program on both backends; return the two snapshots."""
    program = assemble(source, extensions)
    snaps = []
    for backend in BACKENDS:
        machine = Machine(program, extensions, mem_size, dcache=dcache,
                          backend=backend)
        try:
            result = machine.run(entry, args,
                                 max_instructions=max_instructions)
        except MachineError as exc:
            result = ("error", str(exc))
        snaps.append(snapshot(machine, result))
    return snaps


def assert_identical(source, entry, args, **kwargs):
    interp, compiled = run_both(source, entry, args, **kwargs)
    assert interp == compiled


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_default_is_interp(self, monkeypatch):
        # The suite may itself run under $REPRO_ISS_BACKEND (CI's
        # fast-path job); the built-in default is still interp.
        monkeypatch.delenv(ISS_BACKEND_ENV, raising=False)
        assert resolve_backend() == "interp"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ISS_BACKEND_ENV, "compiled")
        assert resolve_backend() == "compiled"

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ISS_BACKEND_ENV, "interp")
        with backend_scope("compiled"):
            assert resolve_backend() == "compiled"
        assert resolve_backend() == "interp"

    def test_explicit_arg_wins(self):
        with backend_scope("compiled"):
            assert resolve_backend("interp") == "interp"

    def test_unknown_backend_rejected(self):
        with pytest.raises(MachineError):
            resolve_backend("jit")

    def test_machine_records_backend(self):
        program = assemble("main:\n    halt\n")
        assert Machine(program, backend="compiled").backend == "compiled"
        with backend_scope("compiled"):
            assert Machine(program).backend == "compiled"

    def test_compile_cache_reuses_programs(self):
        program = assemble("main:\n    addi r1, r1, 1\n    halt\n")
        assert compiled_for(program, None) is compiled_for(program, None)


# ---------------------------------------------------------------------------
# Kernel-level parity (every registered kernel class)
# ---------------------------------------------------------------------------

class TestKernelParity:
    """Each kernel runner must return identical values, cycles, and
    (where exposed) profiles on both backends."""

    def _mpn_state_parity(self, kernels, method, *args):
        """Run an mpn kernel op on explicitly constructed machines so
        the full machine state can be compared, not just the return."""
        snaps = []
        for backend in BACKENDS:
            machine = Machine(kernels.runner.program,
                              kernels.runner.extensions,
                              kernels.runner.mem_size, backend=backend)
            result = getattr(kernels, method)(*args, machine=machine)
            snaps.append(snapshot(machine, result))
        assert snaps[0] == snaps[1]

    def test_mpn_base_kernels(self):
        from repro.isa.kernels.mpn_kernels import MpnKernels
        from repro.mp.prng import DeterministicPrng
        kernels = MpnKernels()
        prng = DeterministicPrng(0xD1FF)
        for n in (1, 3, 8):
            up, vp = prng.next_limbs(n), prng.next_limbs(n)
            v = prng.next_bits(32)
            self._mpn_state_parity(kernels, "add_n", up, vp)
            self._mpn_state_parity(kernels, "sub_n", up, vp)
            self._mpn_state_parity(kernels, "mul_1", up, v)
            self._mpn_state_parity(kernels, "addmul_1", vp, up, v)
            self._mpn_state_parity(kernels, "submul_1", vp, up, v)
            self._mpn_state_parity(kernels, "lshift", up, 1 + n)
        self._mpn_state_parity(kernels, "divrem_qest",
                               0x12345678, 0x9ABCDEF0, 0xF0000001)

    def test_mpn_extended_kernels(self):
        from repro.isa.kernels.mpn_kernels import MpnKernels
        from repro.mp.prng import DeterministicPrng
        kernels = MpnKernels(4, 2)
        prng = DeterministicPrng(0xE57)
        for n in (2, 7):
            up, vp = prng.next_limbs(n), prng.next_limbs(n)
            self._mpn_state_parity(kernels, "add_n", up, vp)
            self._mpn_state_parity(kernels, "addmul_1", vp, up,
                                   prng.next_bits(32))

    def test_modexp_kernel(self):
        from repro.isa.kernels.modexp_kernel import ModExpKernel
        kernel = ModExpKernel()
        results = []
        for backend in BACKENDS:
            with backend_scope(backend):
                value, cycles, profile = kernel.powm(
                    0x1234567, 0x10001, 0xF0000001_F0000001)
            results.append((value, cycles, profile.total_cycles,
                            profile.instructions,
                            dict(profile.local_cycles),
                            dict(profile.inclusive_cycles),
                            dict(profile.call_edges),
                            dict(profile.call_counts)))
        assert results[0] == results[1]

    def test_modexp_kernel_extended(self):
        from repro.isa.kernels.modexp_kernel import ModExpKernel
        kernel = ModExpKernel(4, 2)
        results = []
        for backend in BACKENDS:
            with backend_scope(backend):
                results.append(kernel.powm(0xCAFE, 0x101,
                                           0xD0000001_D0000001)[:2])
        assert results[0] == results[1]

    @pytest.mark.parametrize("case", ["aes", "des", "3des", "kasumi",
                                      "sha1", "md5"])
    def test_symmetric_and_hash_kernels(self, case):
        block = bytes(range(8 if case in ("des", "3des") else 16))
        key16 = bytes(range(16))
        results = []
        for backend in BACKENDS:
            with backend_scope(backend):
                if case == "aes":
                    from repro.isa.kernels.aes_kernels import AesKernel
                    results.append(AesKernel().encrypt_block(block, key16))
                elif case == "des":
                    from repro.isa.kernels.des_kernels import DesKernel
                    results.append(DesKernel().crypt_block(block, key16[:8]))
                elif case == "3des":
                    from repro.isa.kernels.des_kernels import DesKernel
                    results.append(DesKernel().crypt_3des_block(
                        block, bytes(range(24))))
                elif case == "kasumi":
                    from repro.isa.kernels.kasumi_kernels import KasumiKernel
                    results.append(KasumiKernel().crypt_block(block, key16))
                elif case == "sha1":
                    from repro.isa.kernels.hash_kernels import Sha1Kernel
                    results.append(Sha1Kernel().compress(
                        [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                         0xC3D2E1F0], bytes(range(64))))
                else:
                    from repro.isa.kernels.md5_kernel import Md5Kernel
                    results.append(Md5Kernel().compress(
                        [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476],
                        bytes(range(64))))
        assert results[0] == results[1]

    def test_dcache_parity(self):
        from repro.isa.kernels.mpn_kernels import MpnKernels
        from repro.mp.prng import DeterministicPrng
        kernels = MpnKernels()
        prng = DeterministicPrng(0xDCAC)
        up, vp = prng.next_limbs(6), prng.next_limbs(6)
        snaps = []
        for backend in BACKENDS:
            from repro.isa.cache import CacheConfig
            machine = Machine(kernels.runner.program, None,
                              kernels.runner.mem_size,
                              dcache=CacheConfig(size_bytes=256,
                                                 line_bytes=16,
                                                 miss_penalty=9),
                              backend=backend)
            result = kernels.add_n(up, vp, machine=machine)
            snaps.append(snapshot(machine, result))
        assert snaps[0] == snaps[1]


# ---------------------------------------------------------------------------
# Differential fuzzing on random programs
# ---------------------------------------------------------------------------

_ALU_RRR = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
            "slt", "sltu", "mul", "mulhu")
_ALU_RRI = ("addi", "subi", "andi", "ori", "xori", "slli", "srli",
            "srai", "sltui")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def _random_program(draw):
    """Build a terminating random program: forward-only branches, a
    leaf helper reached by jal, and memory ops inside a scratch
    region."""
    body_len = draw(st.integers(2, 14))
    lines = ["main:", "    li r8, 8192"]
    regs = lambda: draw(st.integers(0, 7))   # r0..r7 data registers
    for i in range(body_len):
        lines.append(f"main_{i}:")
        kind = draw(st.integers(0, 5))
        if kind == 0:
            op = draw(st.sampled_from(_ALU_RRR))
            lines.append(f"    {op} r{regs()}, r{regs()}, r{regs()}")
        elif kind == 1:
            op = draw(st.sampled_from(_ALU_RRI))
            imm = draw(st.integers(0, 31)) if op.startswith(("sll", "srl", "sra")) \
                else draw(st.integers(-64, 64))
            lines.append(f"    {op} r{regs()}, r{regs()}, {imm}")
        elif kind == 2:
            lines.append(f"    li r{regs()}, {draw(st.integers(-100, 2**31))}")
        elif kind == 3:
            off = 4 * draw(st.integers(0, 30))
            if draw(st.booleans()):
                lines.append(f"    lw r{regs()}, {off}(r8)")
            else:
                lines.append(f"    sw r{regs()}, {off}(r8)")
        elif kind == 4:
            off = draw(st.integers(0, 120))
            if draw(st.booleans()):
                lines.append(f"    lb r{regs()}, {off}(r8)")
            else:
                lines.append(f"    sb r{regs()}, {off}(r8)")
        else:
            # Forward-only control flow keeps the program terminating.
            target = draw(st.integers(i + 1, body_len))
            label = f"main_{target}" if target < body_len else "main_end"
            if draw(st.booleans()):
                op = draw(st.sampled_from(_BRANCHES))
                lines.append(f"    {op} r{regs()}, r{regs()}, {label}")
            else:
                lines.append(f"    j {label}")
    lines.append("main_end:")
    if draw(st.booleans()):
        lines.append("    jal helper")
    lines.append("    halt")
    lines.append("helper:")
    for _ in range(draw(st.integers(1, 4))):
        op = draw(st.sampled_from(_ALU_RRR))
        lines.append(f"    {op} r{regs()}, r{regs()}, r{regs()}")
    lines.append("    jr r14")
    return "\n".join(lines) + "\n"


class TestDifferentialFuzz:
    @given(st.data())
    @settings(max_examples=80)
    def test_random_programs_bit_identical(self, data):
        source = _random_program(data.draw)
        args = data.draw(st.lists(st.integers(0, 0xFFFFFFFF),
                                  min_size=0, max_size=4))
        assert_identical(source, "main", args)

    @given(st.data())
    @settings(max_examples=25)
    def test_random_programs_under_budget_pressure(self, data):
        """A tiny instruction budget must trap at the same instruction
        (same state) on both backends."""
        source = _random_program(data.draw)
        budget = data.draw(st.integers(1, 12))
        assert_identical(source, "main", [], max_instructions=budget)


# ---------------------------------------------------------------------------
# Error-path parity
# ---------------------------------------------------------------------------

class TestErrorParity:
    def test_budget_exceeded(self):
        source = "main:\n    addi r1, r1, 1\n    j main\n"
        assert_identical(source, "main", [], max_instructions=37)

    def test_pc_out_of_range(self):
        assert_identical("main:\n    addi r1, r1, 1\n", "main", [])

    def test_memory_fault(self):
        source = ("main:\n    li r2, 0x7FFFFFF0\n"
                  "    lw r1, 0(r2)\n    halt\n")
        assert_identical(source, "main", [])

    def test_memory_fault_mid_block(self):
        # The fault lands mid-way through a fused block: the repair
        # path must leave counts/cycles exactly as the interpreter.
        source = ("main:\n"
                  "    addi r1, r1, 5\n"
                  "    addi r2, r2, 6\n"
                  "    lw r3, 0(r7)\n"     # r7 = huge address from args
                  "    addi r4, r4, 7\n"
                  "    halt\n")
        assert_identical(source, "main", [0, 0, 0, 0, 0, 0x7FFFFFF0])

    def test_unknown_opcode(self):
        # Assemble with an extension, run without it: the machine must
        # fault on the custom opcode identically on both backends.
        from repro.isa.custom import make_vaddc
        from repro.isa.extensions import ExtensionSet
        ext = ExtensionSet()
        ext.add(make_vaddc(2))
        program = assemble(
            "main:\n    addi r1, r1, 3\n    vaddc_2 r1, r2, r3\n    halt\n",
            ext)
        snaps = []
        for backend in BACKENDS:
            machine = Machine(program, None, 1 << 16, backend=backend)
            try:
                result = machine.run("main", [])
            except MachineError as exc:
                result = ("error", str(exc))
            snaps.append(snapshot(machine, result))
        assert snaps[0] == snaps[1]
        assert snaps[0]["result"][0] == "error"


# ---------------------------------------------------------------------------
# Bulk word access and batching
# ---------------------------------------------------------------------------

class TestBulkWords:
    def test_roundtrip_matches_per_word(self):
        program = assemble("main:\n    halt\n")
        machine = Machine(program, mem_size=1 << 12)
        words = [0, 1, 0xFFFFFFFF, 0x12345678, 0x80000000]
        machine.write_words(0x100, words)
        assert machine.read_words(0x100, len(words)) == words
        assert [machine.read_word(0x100 + 4 * i)
                for i in range(len(words))] == words

    def test_bounds_checked(self):
        program = assemble("main:\n    halt\n")
        machine = Machine(program, mem_size=1 << 12)
        with pytest.raises(MachineError):
            machine.write_words((1 << 12) - 4, [1, 2])
        with pytest.raises(MachineError):
            machine.read_words((1 << 12) - 4, 2)
        machine.write_words(0, [])
        assert machine.read_words(0, 0) == []


class TestBatching:
    SOURCE = ("main:\n"
              "    add r1, r1, r2\n"
              "    addi r1, r1, 1\n"
              "    halt\n")

    def test_run_batch_matches_fresh_runs(self):
        program = assemble(self.SOURCE)
        requests = [("main", [i, 2 * i]) for i in range(6)]
        for backend in BACKENDS:
            batched = Machine(program, backend=backend,
                              mem_size=1 << 12).run_batch(requests)
            singles = []
            for entry, args in requests:
                machine = Machine(program, backend=backend,
                                  mem_size=1 << 12)
                singles.append((machine.run(entry, args), machine.cycles))
            assert batched == singles

    def test_fleet_serial_matches_threaded(self):
        from repro.parallel import ThreadExecutor
        program = assemble(self.SOURCE)
        requests = [("main", [i, i + 1]) for i in range(8)]
        fleet = MachineFleet(program, mem_size=1 << 12)
        serial = fleet.run_batch(requests)
        with ThreadExecutor(3) as pool:
            threaded = fleet.run_batch(requests, executor=pool)
        assert serial == threaded

    def test_fleet_tracks_backend_scope(self, monkeypatch):
        monkeypatch.delenv(ISS_BACKEND_ENV, raising=False)
        fleet = MachineFleet(assemble(self.SOURCE), mem_size=1 << 12)
        assert fleet.machine().backend == "interp"
        with backend_scope("compiled"):
            assert fleet.machine().backend == "compiled"
        assert fleet.machine().backend == "interp"

    def test_reset_machine_matches_fresh(self):
        program = assemble(self.SOURCE)
        for backend in BACKENDS:
            reused = Machine(program, backend=backend, mem_size=1 << 12)
            reused.run("main", [5, 7])
            reused.reset()
            fresh = Machine(program, backend=backend, mem_size=1 << 12)
            results = (reused.run("main", [9, 11]),
                       fresh.run("main", [9, 11]))
            assert results[0] == results[1]
            assert snapshot(reused, results[0]) == snapshot(fresh,
                                                            results[1])

    def test_kernel_batch_matches_singles(self):
        from repro.isa.kernels.mpn_kernels import MpnKernels
        from repro.mp.prng import DeterministicPrng
        kernels = MpnKernels()
        prng = DeterministicPrng(0xBA7C)
        requests = []
        for n in (2, 5):
            requests.append(("add_n", prng.next_limbs(n),
                             prng.next_limbs(n)))
            requests.append(("addmul_1", prng.next_limbs(n),
                             prng.next_limbs(n), prng.next_bits(32)))
            requests.append(("divrem_qest", prng.next_bits(31),
                             prng.next_bits(32),
                             prng.next_bits(32) | 0x80000000))
        batched = kernels.batch(requests)
        singles = [getattr(kernels, method)(*args)
                   for method, *args in requests]
        assert batched == singles
