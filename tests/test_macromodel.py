"""Tests for performance characterization and macro-model estimation."""

import pytest

from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.isa.kernels.modexp_kernel import ModExpKernel
from repro.macromodel import characterize_platform, estimate_cycles
from repro.macromodel.estimator import ledger
from repro.macromodel.model import MacroModel, MacroModelSet
from repro.macromodel.regression import (FitResult, fit_form, r_squared,
                                         select_model)
from repro.mp import Mpz


class TestRegression:
    def test_affine_exact_fit(self):
        samples = [(n, 4 + 17 * n) for n in (1, 2, 4, 8, 16)]
        fit = fit_form(samples, "affine")
        assert fit.mean_abs_pct_error < 1e-6
        assert abs(fit.coeffs[0] - 4) < 1e-6
        assert abs(fit.coeffs[1] - 17) < 1e-6

    def test_quadratic_fit(self):
        samples = [(n, 2 + 3 * n + 5 * n * n) for n in (1, 2, 3, 5, 8)]
        fit = fit_form(samples, "quadratic")
        assert fit.mean_abs_pct_error < 1e-6

    def test_constant_fit(self):
        fit = fit_form([(1, 100), (1, 102), (1, 98)], "constant")
        assert abs(fit.coeffs[0] - 100) < 1e-6

    def test_step_affine_fit(self):
        samples = [(n, 10 * -(-n // 8) + 2 * n) for n in (1, 4, 8, 9, 16, 24)]
        fit = fit_form(samples, "step_affine", width=8)
        assert fit.mean_abs_pct_error < 1e-6

    def test_selection_prefers_parsimony(self):
        # Perfectly affine data: quadratic would also fit, affine chosen.
        samples = [(n, 5 + 2 * n) for n in (1, 2, 4, 8, 16)]
        assert select_model(samples).form == "affine"

    def test_selection_picks_quadratic_when_needed(self):
        samples = [(n, n * n) for n in (1, 2, 4, 8, 16, 32)]
        assert select_model(samples).form == "quadratic"

    def test_selection_constant_for_flat_data(self):
        assert select_model([(1, 7), (2, 7), (4, 7)]).form == "constant"

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_form([], "affine")

    def test_not_enough_sizes_rejected(self):
        with pytest.raises(ValueError):
            select_model([(1, 5)], forms=("affine",))

    def test_r_squared_perfect(self):
        samples = [(n, 3 * n) for n in (1, 2, 3)]
        fit = fit_form(samples, "affine")
        assert r_squared(samples, fit) > 0.9999

    def test_predict(self):
        fit = FitResult(form="affine", coeffs=(4.0, 17.0), width=1,
                        mean_abs_pct_error=0, max_abs_pct_error=0)
        assert fit.predict(10) == pytest.approx(174.0)


@pytest.fixture(scope="module")
def base_models():
    return characterize_platform(reps=1, sizes=(1, 2, 4, 8, 16),
                                 modmul_overhead=True)


@pytest.fixture(scope="module")
def ext_models():
    return characterize_platform(add_width=8, mac_width=4, reps=1,
                                 sizes=(1, 2, 4, 8, 16),
                                 modmul_overhead=True)


class TestCharacterization:
    def test_covers_the_mpn_leaves(self, base_models):
        for routine in ("mpn_add_n", "mpn_sub_n", "mpn_mul_1",
                        "mpn_addmul_1", "mpn_submul_1", "mpn_lshift",
                        "mpn_rshift", "mpn_divrem_qest", "sha1_compress"):
            assert routine in base_models, routine

    def test_base_addn_is_affine(self, base_models):
        model = base_models.get("mpn_add_n")
        assert model.form == "affine"
        assert model.fit.mean_abs_pct_error < 5.0

    def test_predictions_monotone_in_n(self, base_models):
        model = base_models.get("mpn_addmul_1")
        assert model.predict(32) > model.predict(16) > model.predict(4)

    def test_ext_faster_than_base(self, base_models, ext_models):
        for routine in ("mpn_add_n", "mpn_addmul_1"):
            assert ext_models.predict(routine, 16) < \
                base_models.predict(routine, 16)

    def test_alias_shares_fit(self, base_models):
        assert base_models.predict("mpn_rshift", 8) == \
            base_models.predict("mpn_lshift", 8)

    def test_unknown_routine_raises(self, base_models):
        with pytest.raises(KeyError):
            base_models.predict("mpn_frobnicate", 4)

    def test_modmul_overhead_model_present(self, base_models):
        assert "mont_redc" in base_models


class TestEstimator:
    def test_charges_traced_calls(self, base_models):
        est = estimate_cycles(base_models, lambda: Mpz(1 << 200) + Mpz(1))
        assert est.cycles > 0
        assert est.calls("mpn_add_n") >= 1

    def test_result_passthrough(self, base_models):
        est = estimate_cycles(base_models, lambda: 42)
        assert est.result == 42
        assert est.cycles == 0

    def test_unmodeled_counted_not_charged(self):
        models = MacroModelSet("empty")
        est = estimate_cycles(models, lambda: Mpz(10) * Mpz(20))
        assert est.cycles == 0
        assert sum(est.unmodeled.values()) >= 1

    def test_ledger_context_restores_tracer(self, base_models):
        from repro.mp.hooks import get_tracer
        with ledger(base_models):
            pass
        assert get_tracer() is None

    def test_breakdown_sums_to_total(self, base_models):
        eng = ModExpEngine(ModExpConfig(modmul="montgomery", window=2,
                                        crt="none"))
        est = estimate_cycles(base_models, eng.powm, 12345, 0x3039,
                              (1 << 128) + 51)
        assert est.cycles == pytest.approx(
            sum(c for _, c in est.breakdown.values()))


class TestAccuracyAgainstIss:
    """The Section 4.3 claim: estimates track ISS ground truth."""

    @pytest.mark.parametrize("bits,max_err_pct", [(128, 20), (256, 15)])
    def test_estimate_within_band(self, base_models, bits, max_err_pct):
        modulus = (1 << bits) + 0x169
        base, exp = 0xDEADBEEFCAFE12345, 0x1F3
        iss = ModExpKernel()
        got, iss_cycles, _ = iss.powm(base, exp, modulus)
        assert got == pow(base, exp, modulus)
        eng = ModExpEngine(ModExpConfig(modmul="montgomery", window=1,
                                        crt="none"))
        est = estimate_cycles(base_models, eng.powm, base, exp, modulus)
        err = abs(est.cycles - iss_cycles) / iss_cycles * 100
        assert err < max_err_pct

    def test_native_estimation_faster_than_iss(self, base_models):
        import time
        modulus = (1 << 256) + 0x169
        base, exp = 0xABCDEF123456789, 0xF731
        iss = ModExpKernel()
        t0 = time.perf_counter()
        iss.powm(base, exp, modulus)
        iss_wall = time.perf_counter() - t0
        eng = ModExpEngine(ModExpConfig(modmul="montgomery", window=1,
                                        crt="none"))
        est = estimate_cycles(base_models, eng.powm, base, exp, modulus)
        assert est.wall_seconds < iss_wall
