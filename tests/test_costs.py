"""Tests for the unified cost-estimation layer (repro.costs).

Covers the characterization cache (memo + disk store), the pluggable
backends and their cross-validation, the extended PlatformCosts
vocabulary (ECDH + per-protocol overheads), and the backward-compat
re-exports from repro.ssl.
"""

import json

import pytest

from repro.costs import (CharacterizationCache, CharacterizationKey,
                         ECDH_RSA_PUBLIC_EQUIV, IssBackend,
                         MacroModelBackend, MPN_LEAF_ROUTINES,
                         PlatformCosts, cross_validate, reset_cache)
from repro.costs import cache as cache_mod
from repro.crypto.modexp import ModExpConfig
from repro.platform import SecurityPlatform
from repro.ssl import fixtures

#: Small characterization domain so cache tests stay fast.
SMALL = dict(sizes=(1, 2, 4, 8), reps=1, modmul_overhead=False)


@pytest.fixture
def counted_characterize(monkeypatch):
    """Count real characterization passes behind the cache layer."""
    calls = []
    real = cache_mod.characterize_platform

    def counting(*args, **kwargs):
        calls.append((args, kwargs))
        return real(*args, **kwargs)

    monkeypatch.setattr(cache_mod, "characterize_platform", counting)
    return calls


class TestCompatReexports:
    def test_platformcosts_import_paths_are_one_class(self):
        from repro.costs import PlatformCosts as from_costs
        with pytest.warns(DeprecationWarning, match="repro.costs"):
            from repro.ssl import PlatformCosts as from_ssl
        with pytest.warns(DeprecationWarning, match="repro.costs"):
            from repro.ssl.transaction import PlatformCosts as from_transaction
        assert from_costs is from_ssl is from_transaction

    def test_protocol_constants_shimmed_with_warning(self):
        import repro.costs
        import repro.ssl.transaction as txn
        with pytest.warns(DeprecationWarning, match="repro.costs"):
            assert txn.PROTOCOL_FIXED_CYCLES == \
                repro.costs.PROTOCOL_FIXED_CYCLES
        with pytest.raises(AttributeError):
            txn.does_not_exist

    def test_workload_constants_still_importable(self):
        from repro.farm.workload import (CRC32_CYCLES_PER_BYTE,
                                         RC4_CYCLES_PER_BYTE)
        assert RC4_CYCLES_PER_BYTE > CRC32_CYCLES_PER_BYTE > 0


class TestCharacterizationKey:
    def test_digest_is_stable(self):
        a = CharacterizationKey(add_width=8, mac_width=8)
        b = CharacterizationKey(add_width=8, mac_width=8)
        assert a == b and a.digest() == b.digest()

    def test_digest_differs_per_configuration(self):
        keys = [CharacterizationKey(),
                CharacterizationKey(add_width=8, mac_width=8),
                CharacterizationKey(add_width=8, mac_width=8, reps=3),
                CharacterizationKey(seed=1),
                CharacterizationKey(des_sbox_units=4)]
        digests = {k.digest() for k in keys}
        assert len(digests) == len(keys)


class TestCacheMemo:
    def test_memoizes_per_key(self, counted_characterize):
        cache = CharacterizationCache()
        key = CharacterizationKey(**SMALL)
        first = cache.models_for(key)
        second = cache.models_for(key)
        assert first is second
        assert len(counted_characterize) == 1
        assert cache.stats.characterizations == 1
        assert cache.stats.memo_hits == 1

    def test_distinct_keys_characterize_separately(self,
                                                   counted_characterize):
        cache = CharacterizationCache()
        cache.models_for(CharacterizationKey(**SMALL))
        cache.models_for(CharacterizationKey(add_width=8, mac_width=4,
                                             **SMALL))
        assert len(counted_characterize) == 2

    def test_disabled_cache_always_characterizes(self,
                                                 counted_characterize):
        cache = CharacterizationCache(enabled=False)
        key = CharacterizationKey(**SMALL)
        cache.models_for(key)
        cache.models_for(key)
        assert len(counted_characterize) == 2


class TestCacheDisk:
    def test_warm_store_characterizes_zero_times(self, tmp_path,
                                                 counted_characterize):
        key = CharacterizationKey(**SMALL)
        writer = CharacterizationCache(cache_dir=str(tmp_path))
        models = writer.models_for(key)
        assert len(counted_characterize) == 1
        # A fresh cache (a new process) reads the store instead.
        reader = CharacterizationCache(cache_dir=str(tmp_path))
        restored = reader.models_for(key)
        assert len(counted_characterize) == 1
        assert reader.stats.disk_hits == 1
        assert restored.platform == models.platform
        for routine in models.routines():
            for n in (1, 4, 8):
                assert restored.predict(routine, n) == \
                    pytest.approx(models.predict(routine, n))

    def test_store_is_keyed_json_built_on_persist(self, tmp_path):
        key = CharacterizationKey(**SMALL)
        cache = CharacterizationCache(cache_dir=str(tmp_path))
        cache.models_for(key)
        entry = json.loads((tmp_path / f"models-{key.digest()}.json")
                           .read_text())
        assert entry["key"] == key.as_dict()
        from repro.macromodel.persist import modelset_from_dict
        assert modelset_from_dict(entry["models"]).routines()

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path,
                                                  counted_characterize):
        key = CharacterizationKey(**SMALL)
        cache = CharacterizationCache(cache_dir=str(tmp_path))
        path = cache.path_for(key)
        cache.models_for(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        fresh = CharacterizationCache(cache_dir=str(tmp_path))
        fresh.models_for(key)
        assert len(counted_characterize) == 2
        # ... and the entry was rewritten cleanly.
        assert json.loads(open(path).read())["key"] == key.as_dict()

    def test_mismatched_schema_is_a_miss(self, tmp_path,
                                         counted_characterize):
        key = CharacterizationKey(**SMALL)
        cache = CharacterizationCache(cache_dir=str(tmp_path))
        cache.models_for(key)
        path = cache.path_for(key)
        entry = json.loads(open(path).read())
        entry["schema"] = 99
        with open(path, "w") as fh:
            json.dump(entry, fh)
        fresh = CharacterizationCache(cache_dir=str(tmp_path))
        fresh.models_for(key)
        assert len(counted_characterize) == 2


class TestSharedCostBuild:
    """The acceptance regression: one characterization per config."""

    def test_measure_twice_characterizes_once(self, counted_characterize,
                                              monkeypatch):
        monkeypatch.delenv(cache_mod.CACHE_DIR_ENV, raising=False)
        reset_cache()
        first = PlatformCosts.measure(SecurityPlatform.base(),
                                      fixtures.SERVER_512)
        second = PlatformCosts.measure(SecurityPlatform.base(),
                                       fixtures.SERVER_512)
        assert len(counted_characterize) == 1
        assert first.rsa_public_cycles == second.rsa_public_cycles
        assert first.ecdh_cycles == pytest.approx(second.ecdh_cycles)

    def test_cli_ssl_warm_cache_zero_characterizations(
            self, tmp_path, capsys, counted_characterize, monkeypatch):
        from repro.cli import main
        monkeypatch.delenv(cache_mod.CACHE_DIR_ENV, raising=False)
        reset_cache()
        assert main(["ssl", "--sizes", "1", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        cold = len(counted_characterize)
        assert cold == 2        # base + extended, exactly once each
        assert json.loads(capsys.readouterr().out)["results"]["rows"]
        # Simulate a new process against the warm store.
        reset_cache()
        assert main(["ssl", "--sizes", "1", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        assert len(counted_characterize) == cold   # zero new passes
        assert json.loads(capsys.readouterr().out)["results"]["rows"]


class TestPlatformCostsVocabulary:
    def test_measured_costs_include_ecdh(self):
        base = PlatformCosts.measure(SecurityPlatform.base(),
                                     fixtures.SERVER_512)
        opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                    fixtures.SERVER_512)
        assert base.ecdh_cycles and opt.ecdh_cycles
        # TIE extensions help EC far less than RSA: the ECDH gain is
        # well under the RSA-private gain.
        ecdh_gain = base.ecdh_cycles / opt.ecdh_cycles
        rsa_gain = base.rsa_private_cycles / opt.rsa_private_cycles
        assert 1.0 < ecdh_gain < rsa_gain

    def test_ecdh_fallback_documented_equivalence(self):
        costs = PlatformCosts(name="hand-built", rsa_public_cycles=1e6,
                              rsa_private_cycles=1e7,
                              cipher_cycles_per_byte=100.0,
                              hash_cycles_per_byte=50.0)
        assert costs.ecdh_handshake_cycles() == \
            pytest.approx(ECDH_RSA_PUBLIC_EQUIV * 1e6)

    def test_workload_prices_wtls_through_costs(self):
        from repro.farm.workload import SessionRequest, ecdh_cycles, cost_of
        measured = PlatformCosts(name="m", rsa_public_cycles=1e6,
                                 rsa_private_cycles=1e7,
                                 cipher_cycles_per_byte=100.0,
                                 hash_cycles_per_byte=50.0,
                                 ecdh_cycles=3e6)
        assert ecdh_cycles(measured) == 3e6
        request = SessionRequest(seq=0, arrival_cycle=0.0,
                                 protocol="wtls", size_bytes=1024,
                                 resumed=False, client_id=0)
        assert cost_of(request, measured).public_key_cycles == 3e6

    def test_per_protocol_overheads_are_fields(self):
        from repro.farm.workload import SessionRequest, cost_of
        cheap = PlatformCosts(name="c", rsa_public_cycles=1e6,
                              rsa_private_cycles=1e7,
                              cipher_cycles_per_byte=100.0,
                              hash_cycles_per_byte=50.0,
                              rc4_cycles_per_byte=1.0,
                              wep_frame_fixed_cycles=0.0)
        dear = PlatformCosts(name="d", rsa_public_cycles=1e6,
                             rsa_private_cycles=1e7,
                             cipher_cycles_per_byte=100.0,
                             hash_cycles_per_byte=50.0,
                             rc4_cycles_per_byte=100.0,
                             wep_frame_fixed_cycles=5000.0)
        request = SessionRequest(seq=0, arrival_cycle=0.0,
                                 protocol="wep", size_bytes=2048,
                                 resumed=False, client_id=0)
        assert cost_of(request, cheap).cycles < \
            cost_of(request, dear).cycles

    def test_platform_costs_convenience(self):
        costs = SecurityPlatform.base().costs(fixtures.SERVER_512)
        assert isinstance(costs, PlatformCosts)
        assert costs.name == "base"


class TestBackends:
    def test_macro_vs_iss_agree_on_matched_modexp(self):
        """Operation-level check: on a platform whose software config
        matches the ISS kernel's algorithm (Montgomery, binary, no
        CRT), the two backends price an RSA public op within the
        validated band."""
        platform = SecurityPlatform(
            "iss-match",
            ModExpConfig(modmul="montgomery", window=1, crt="none"))
        macro = MacroModelBackend().rsa_public_cycles(
            platform, fixtures.SERVER_512)
        iss = IssBackend().rsa_public_cycles(platform, fixtures.SERVER_512)
        assert abs(macro - iss) / iss < 0.25

    def test_iss_backend_declines_ecdh(self):
        with pytest.raises(NotImplementedError):
            IssBackend().ecdh_cycles(SecurityPlatform.base())

    def test_iss_leaf_cycles_deterministic(self):
        a = IssBackend().leaf_cycles("mpn_addmul_1", 8)
        b = IssBackend().leaf_cycles("mpn_addmul_1", 8)
        assert a == b > 0


class TestCrossValidation:
    def test_reports_mpn_leaf_error(self):
        report = cross_validate(sizes=(2, 4, 8, 16), reps=1)
        assert {r.routine for r in report.rows} == set(MPN_LEAF_ROUTINES)
        assert 0.0 <= report.mean_abs_pct_error < 25.0
        payload = report.as_dict()
        assert payload["platform"] == "base"
        assert len(payload["routines"]) == len(MPN_LEAF_ROUTINES)

    def test_extended_platform_validates_too(self):
        report = cross_validate(add_width=8, mac_width=8,
                                routines=("mpn_add_n", "mpn_addmul_1"),
                                sizes=(4, 8, 16), reps=1)
        assert report.platform == "ext(add8,mac8)"
        assert report.mean_abs_pct_error < 25.0

    def test_empty_report_raises(self):
        from repro.costs import CrossValidation
        with pytest.raises(ValueError):
            CrossValidation(platform="x").mean_abs_pct_error
