"""Tests for the data-cache model and the energy model."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cache import CacheConfig, DataCache
from repro.isa.custom import make_desround
from repro.isa.energy import (custom_instruction_energy, estimate_energy,
                              FETCH_DECODE_PJ)
from repro.isa.machine import Machine


class TestCacheModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)  # not a power of two
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, line_bytes=128)

    def test_cold_miss_then_hit(self):
        cache = DataCache(CacheConfig(size_bytes=256, line_bytes=16,
                                      miss_penalty=7))
        assert cache.access(0x100) == 7
        assert cache.access(0x104) == 0  # same line
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_conflict_eviction(self):
        cache = DataCache(CacheConfig(size_bytes=64, line_bytes=16,
                                      miss_penalty=5))
        assert cache.access(0x000) == 5
        assert cache.access(0x040) == 5  # maps to the same index
        assert cache.access(0x000) == 5  # evicted -> miss again

    def test_flush(self):
        cache = DataCache(CacheConfig(size_bytes=64, line_bytes=16))
        cache.access(0)
        cache.flush()
        assert cache.access(0) == cache.config.miss_penalty

    def test_miss_rate(self):
        cache = DataCache(CacheConfig(size_bytes=64, line_bytes=16))
        for _ in range(4):
            cache.access(0)
        assert cache.stats.miss_rate == 0.25


class TestMachineWithCache:
    SOURCE = """
    main:
        lw r2, 0(r1)
        lw r2, 0(r1)
        halt
    """

    def test_cache_penalty_charged(self):
        program = assemble(self.SOURCE)
        cold = Machine(program, dcache=CacheConfig(miss_penalty=10))
        cold.run("main", [0x2000])
        warm = Machine(program)
        warm.run("main", [0x2000])
        # One cold miss (second access hits) adds exactly the penalty.
        assert cold.cycles == warm.cycles + 10
        assert cold.dcache.stats.accesses == 2
        assert cold.dcache.stats.misses == 1

    def test_no_cache_by_default(self):
        machine = Machine(assemble(self.SOURCE))
        assert machine.dcache is None

    def test_thrashing_costs_more(self):
        source = """
        main:
            li r3, 64
        loop:
            lw r4, 0(r1)
            lw r4, 0(r2)
            subi r3, r3, 1
            bne r3, r0, loop
            halt
        """
        program = assemble(source)
        tiny = Machine(program, dcache=CacheConfig(size_bytes=32,
                                                   line_bytes=16,
                                                   miss_penalty=10))
        # Two addresses 32 apart conflict in a 2-line cache of 16B lines.
        tiny.run("main", [0x2000, 0x2020])
        big = Machine(program, dcache=CacheConfig(size_bytes=1024,
                                                  line_bytes=16,
                                                  miss_penalty=10))
        big.run("main", [0x2000, 0x2020])
        assert tiny.cycles > big.cycles
        assert big.dcache.stats.misses == 2  # compulsory only


class TestEnergyModel:
    def test_opcode_histogram(self):
        machine = Machine(assemble("main: addi r1, r1, 1\n addi r1, r1, 1\n halt"))
        machine.run("main")
        assert machine.opcode_counts["addi"] == 2
        assert machine.opcode_counts["halt"] == 1

    def test_energy_positive_and_classified(self):
        machine = Machine(assemble(
            "main: lw r2, 0(r1)\n mul r3, r2, r2\n sw r3, 4(r1)\n halt"))
        machine.run("main", [0x2000])
        estimate = estimate_energy(machine)
        assert estimate.total_pj > 0
        assert set(estimate.by_class) == {"load", "mul", "store", "halt"}
        assert estimate.by_class["mul"] > estimate.by_class["store"]

    def test_custom_instruction_energy_exceeds_fetch(self):
        instr = make_desround(8)
        assert custom_instruction_energy(instr) > FETCH_DECODE_PJ

    def test_energy_accumulates_across_runs(self):
        machine = Machine(assemble("main: addi r1, r1, 1\n halt"))
        machine.run("main")
        first = estimate_energy(machine).total_pj
        machine.run("main")
        assert estimate_energy(machine).total_pj == pytest.approx(2 * first)


class TestEnergyOnKernels:
    def test_custom_instructions_save_energy(self):
        """The paper's energy-efficiency claim: the extended platform
        spends less total energy per DES block despite busier
        datapaths, because fetch/decode collapses."""
        from repro.isa.kernels.des_kernels import DesKernel
        key = bytes.fromhex("133457799BBCDFF1")
        block = b"ABCDEFGH"

        base = DesKernel()
        machine_b = base.runner.machine()
        ks = base._stage_schedule(machine_b, key, False)
        sp, ip, fp = base._stage_tables(machine_b)
        in_a, out_a = machine_b.alloc(8), machine_b.alloc(8)
        machine_b.write_bytes(in_a, block)
        machine_b.run("des_encrypt", [in_a, out_a, ks, sp, ip, fp])
        base_energy = estimate_energy(machine_b).total_pj

        ext = DesKernel(extended=True)
        machine_e = ext.runner.machine()
        ks_e = ext._stage_schedule(machine_e, key, False)
        in_e, out_e = machine_e.alloc(8), machine_e.alloc(8)
        machine_e.write_bytes(in_e, block)
        machine_e.run("des_encrypt", [in_e, out_e, ks_e])
        ext_energy = estimate_energy(machine_e).total_pj

        assert ext_energy < base_energy / 3
