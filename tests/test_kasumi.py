"""KASUMI: reference cipher, XT32 kernel, and cost-model wiring."""

import pytest

from repro.costs import (KASUMI_CYCLES_PER_BYTE, PlatformCosts)
from repro.crypto.api import SecurityApi
from repro.crypto.kasumi import S7, S9, Kasumi
from repro.isa.kernels.kasumi_kernels import KasumiKernel, schedule_words

# 3GPP TS 35.203 test set (the published KASUMI block vector).
VECTOR_KEY = bytes.fromhex("2BD6459F82C5B300952C49104881FF48")
VECTOR_PT = bytes.fromhex("EA024714AD5C4D84")
VECTOR_CT = bytes.fromhex("DF1F9B251C0BF45F")


def test_sboxes_are_permutations():
    assert sorted(S7) == list(range(128))
    assert sorted(S9) == list(range(512))


def test_published_vector():
    cipher = Kasumi(VECTOR_KEY)
    assert cipher.encrypt_block(VECTOR_PT) == VECTOR_CT


def test_roundtrip():
    cipher = Kasumi(bytes(range(16)))
    for i in range(4):
        block = bytes((b * 17 + i) & 0xFF for b in range(8))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_key_size_enforced():
    with pytest.raises(ValueError):
        Kasumi(b"short")


def test_api_dispatch_roundtrip():
    api = SecurityApi()
    key = api.generate_symmetric_key("kasumi")
    assert len(key) == 16
    data = b"link-layer payload for the f8 stream"
    iv = bytes(8)
    ct = api.encrypt("kasumi", key, data, iv=iv)
    assert api.decrypt("kasumi", key, ct, iv=iv) == data


def test_schedule_words_shape():
    words = schedule_words(VECTOR_KEY)
    assert len(words) == 64
    assert all(0 <= w <= 0xFFFF for w in words)


class TestKernel:
    @pytest.fixture(scope="class")
    def kernel(self):
        return KasumiKernel()

    def test_matches_reference(self, kernel):
        reference = Kasumi(VECTOR_KEY)
        for i in range(3):
            block = bytes((b + 31 * i) & 0xFF for b in range(8))
            out, cycles = kernel.crypt_block(block, VECTOR_KEY)
            assert out == reference.encrypt_block(block)
            assert cycles > 0

    def test_published_vector_on_iss(self, kernel):
        out, _ = kernel.crypt_block(VECTOR_PT, VECTOR_KEY)
        assert out == VECTOR_CT

    def test_cycles_per_byte_matches_calibration(self, kernel):
        rate = kernel.cycles_per_byte(blocks=2)
        assert rate > 0
        # The documented fallback constant tracks the measured rate.
        assert rate == pytest.approx(KASUMI_CYCLES_PER_BYTE, rel=0.05)


def test_costs_overhead_fallback():
    costs = PlatformCosts(name="canned", rsa_public_cycles=1.0,
                          rsa_private_cycles=1.0,
                          cipher_cycles_per_byte=1.0,
                          hash_cycles_per_byte=1.0)
    assert costs.overhead("kasumi_cycles_per_byte",
                          KASUMI_CYCLES_PER_BYTE) == KASUMI_CYCLES_PER_BYTE
    measured = PlatformCosts(
        name="measured", rsa_public_cycles=1.0, rsa_private_cycles=1.0,
        cipher_cycles_per_byte=1.0, hash_cycles_per_byte=1.0,
        protocol_overheads={"kasumi_cycles_per_byte": 100.0})
    assert measured.overhead("kasumi_cycles_per_byte",
                             KASUMI_CYCLES_PER_BYTE) == 100.0
    assert measured.as_dict()["protocol_overheads"] == {
        "kasumi_cycles_per_byte": 100.0}
