"""Tests for the extension features: sliding windows, SSL resumption,
and the ECC-enabled SecurityApi."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.mp import DeterministicPrng
from repro.ssl import fixtures
from repro.ssl.handshake import (SslClient, SslServer, make_record_channels,
                                 run_handshake, run_resumed_handshake)
from repro.costs import PlatformCosts
from repro.ssl.transaction import SslWorkloadModel

MOD = (1 << 192) + 0x4BD


class TestSlidingWindow:
    @settings(max_examples=25)
    @given(base=st.integers(min_value=0, max_value=(1 << 128) - 1),
           exp=st.integers(min_value=1, max_value=(1 << 96) - 1))
    def test_matches_pow(self, base, exp):
        eng = ModExpEngine(ModExpConfig(strategy="sliding", window=4,
                                        crt="none"))
        assert int(eng.powm(base, exp, MOD)) == pow(base, exp, MOD)

    @pytest.mark.parametrize("window", [1, 2, 3, 5])
    def test_all_windows(self, window):
        eng = ModExpEngine(ModExpConfig(strategy="sliding", window=window,
                                        crt="none"))
        assert int(eng.powm(0xABCDEF, 0xFEDCBA987, MOD)) == \
            pow(0xABCDEF, 0xFEDCBA987, MOD)

    def test_exponent_all_ones(self):
        eng = ModExpEngine(ModExpConfig(strategy="sliding", window=5,
                                        crt="none"))
        e = (1 << 64) - 1
        assert int(eng.powm(3, e, MOD)) == pow(3, e, MOD)

    def test_exponent_power_of_two(self):
        eng = ModExpEngine(ModExpConfig(strategy="sliding", window=5,
                                        crt="none"))
        assert int(eng.powm(3, 1 << 63, MOD)) == pow(3, 1 << 63, MOD)

    def test_sliding_uses_fewer_multiplies(self):
        """Same window size, fewer mm.mul calls than fixed windows."""
        from repro.crypto.modmul import MontgomeryModMul
        counts = {}
        for strategy in ("fixed", "sliding"):
            eng = ModExpEngine(ModExpConfig(strategy=strategy, window=4,
                                            crt="none"))
            calls = {"mul": 0}
            orig_mul = MontgomeryModMul.mul

            def counting_mul(self, a, b, _calls=calls, _orig=orig_mul):
                _calls["mul"] += 1
                return _orig(self, a, b)

            MontgomeryModMul.mul = counting_mul
            try:
                eng.powm(3, (1 << 256) - 0x6789, MOD)
            finally:
                MontgomeryModMul.mul = orig_mul
            counts[strategy] = calls["mul"]
        assert counts["sliding"] < counts["fixed"]

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            ModExpConfig(strategy="interleZved")


class TestResumption:
    def _session(self):
        client = SslClient(fixtures.CLIENT_512, prng=DeterministicPrng(1))
        server = SslServer(fixtures.SERVER_512)
        return run_handshake(client, server, "aes")

    def test_resumed_keys_differ_but_work(self):
        full = self._session()
        resumed = run_resumed_handshake(full, DeterministicPrng(5))
        assert resumed.master == full.master
        assert resumed.keys.client_key != full.keys.client_key
        sender, receiver = make_record_channels(resumed)
        wire = sender.seal(b"resumed data")
        assert receiver.open(wire[0]) == b"resumed data"

    def test_distinct_resumptions_get_distinct_keys(self):
        full = self._session()
        r1 = run_resumed_handshake(full, DeterministicPrng(5))
        r2 = run_resumed_handshake(full, DeterministicPrng(6))
        assert r1.keys.client_key != r2.keys.client_key

    def test_resumed_transaction_has_no_public_key_cycles(self):
        costs = PlatformCosts(name="x", rsa_public_cycles=1e6,
                              rsa_private_cycles=1e7,
                              cipher_cycles_per_byte=100,
                              hash_cycles_per_byte=50)
        bd = SslWorkloadModel.breakdown(costs, 1024, resumed=True)
        assert bd.public_key == 0
        full = SslWorkloadModel.breakdown(costs, 1024)
        assert bd.total < full.total / 5

    def test_resumption_gain_larger_for_small_transactions(self):
        costs = PlatformCosts(name="x", rsa_public_cycles=1e6,
                              rsa_private_cycles=1e7,
                              cipher_cycles_per_byte=100,
                              hash_cycles_per_byte=50)
        model = SslWorkloadModel(costs, costs)
        assert model.resumption_gain(costs, 1024) > \
            model.resumption_gain(costs, 1 << 20)


class TestApiEcc:
    @pytest.fixture
    def api(self):
        from repro.crypto.api import SecurityApi
        return SecurityApi(prng=DeterministicPrng(11))

    def test_ecdh_through_api(self, api):
        a = api.generate_ec_keypair("secp160r1")
        b = api.generate_ec_keypair("secp160r1")
        assert api.ecdh(a.private, b.public) == api.ecdh(b.private, a.public)

    def test_ecdsa_through_api(self, api):
        kp = api.generate_ec_keypair("secp160r1")
        sig = api.ecdsa_sign(b"doc", kp)
        assert api.ecdsa_verify(b"doc", sig, kp)
        assert not api.ecdsa_verify(b"doX", sig, kp)

    def test_unknown_curve(self, api):
        with pytest.raises(ValueError):
            api.generate_ec_keypair("secp999z9")
