"""Known-vector and property tests for DES, 3DES, AES and RC4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes, SBOX, INV_SBOX
from repro.crypto.des import Des, TripleDes
from repro.crypto.rc4 import Rc4

DES_VECTORS = [
    # (key, plaintext, ciphertext) -- classic FIPS 46 validation triples.
    ("133457799BBCDFF1", "0123456789ABCDEF", "85E813540F0AB405"),
    ("0000000000000000", "0000000000000000", "8CA64DE9C1B123A7"),
    ("FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "7359B2163E4EDC58"),
    ("0123456789ABCDEF", "4E6F772069732074", "3FA40E8A984D4815"),
]

AES_VECTORS = [
    # FIPS 197 Appendix C vectors.
    (16, "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (24, "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (32, "8ea2b7ca516745bfeafc49904b496089"),
]
AES_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestDesVectors:
    @pytest.mark.parametrize("key,pt,ct", DES_VECTORS)
    def test_encrypt(self, key, pt, ct):
        assert Des(bytes.fromhex(key)).encrypt_block(
            bytes.fromhex(pt)).hex().upper() == ct

    @pytest.mark.parametrize("key,pt,ct", DES_VECTORS)
    def test_decrypt(self, key, pt, ct):
        assert Des(bytes.fromhex(key)).decrypt_block(
            bytes.fromhex(ct)).hex().upper() == pt


class TestDesProperties:
    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    def test_roundtrip(self, key, block):
        des = Des(key)
        assert des.decrypt_block(des.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8))
    def test_complementation_property(self, block):
        """DES(~K, ~P) == ~DES(K, P) -- a well-known structural identity."""
        key = bytes.fromhex("0123456789ABCDEF")
        inv_key = bytes(b ^ 0xFF for b in key)
        inv_block = bytes(b ^ 0xFF for b in block)
        ct = Des(key).encrypt_block(block)
        inv_ct = Des(inv_key).encrypt_block(inv_block)
        assert inv_ct == bytes(b ^ 0xFF for b in ct)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Des(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            Des(bytes(8)).encrypt_block(b"tiny")


class TestTripleDes:
    def test_ede_with_equal_keys_degenerates_to_des(self):
        key = bytes.fromhex("133457799BBCDFF1")
        single = Des(key)
        triple = TripleDes(key * 3)
        block = bytes.fromhex("0123456789ABCDEF")
        assert triple.encrypt_block(block) == single.encrypt_block(block)

    def test_two_key_variant(self):
        k1, k2 = bytes(range(8)), bytes(range(8, 16))
        assert TripleDes(k1 + k2).encrypt_block(bytes(8)) == \
            TripleDes(k1 + k2 + k1).encrypt_block(bytes(8))

    @given(st.binary(min_size=24, max_size=24), st.binary(min_size=8, max_size=8))
    def test_roundtrip(self, key, block):
        tdes = TripleDes(key)
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            TripleDes(bytes(10))


class TestAesVectors:
    @pytest.mark.parametrize("keylen,ct", AES_VECTORS)
    def test_fips197_encrypt(self, keylen, ct):
        assert Aes(bytes(range(keylen))).encrypt_block(
            AES_PLAINTEXT).hex() == ct

    @pytest.mark.parametrize("keylen,ct", AES_VECTORS)
    def test_fips197_decrypt(self, keylen, ct):
        assert Aes(bytes(range(keylen))).decrypt_block(
            bytes.fromhex(ct)) == AES_PLAINTEXT

    def test_sbox_is_bijection(self):
        assert sorted(SBOX) == list(range(256))
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16


class TestAesProperties:
    @settings(max_examples=25)
    @given(st.sampled_from([16, 24, 32]), st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_roundtrip(self, keylen, keyseed, block):
        key = (keyseed * 2)[:keylen]
        aes = Aes(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Aes(bytes(17))

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            Aes(bytes(16)).encrypt_block(bytes(15))

    def test_round_key_count(self):
        assert len(Aes(bytes(16)).round_keys) == 11
        assert len(Aes(bytes(24)).round_keys) == 13
        assert len(Aes(bytes(32)).round_keys) == 15


class TestRc4:
    def test_known_vector(self):
        assert Rc4(b"Key").process(b"Plaintext").hex().upper() == \
            "BBF316E8D940AF0AD3"

    def test_known_vector_wiki(self):
        assert Rc4(b"Wiki").process(b"pedia").hex().upper() == "1021BF0420"

    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=256))
    def test_symmetric(self, key, data):
        assert Rc4(key).process(Rc4(key).process(data)) == data

    def test_streaming_matches_oneshot(self):
        key = b"secret"
        oneshot = Rc4(key).process(b"A" * 100)
        streamed = Rc4(key)
        parts = b"".join(streamed.process(b"A" * 20) for _ in range(5))
        assert parts == oneshot

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Rc4(b"")
