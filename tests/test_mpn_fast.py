"""Equivalence suite for the flat mpn fast path.

:mod:`repro.mp.mpn_fast` must match the reference loops on **values**
and on **trace sequences** (names, order, size parameters) -- the
latter is what keeps macro-model cycle estimates, and therefore every
recorded baseline, byte-identical under the fast backend.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import (MPN_BACKEND_ENV, active_backend, mpn_backend,
                      select_backend, Mpz)
from repro.mp import mpn, mpn_fast
from repro.mp.hooks import traced
from repro.mp.limb import RADIX16, RADIX32

RADICES = (RADIX32, RADIX16)

limb32 = st.integers(0, RADIX32.mask)
nonneg = st.integers(min_value=0, max_value=(1 << 512) - 1)
positive = st.integers(min_value=1, max_value=(1 << 512) - 1)


def traced_call(fn, *args, **kwargs):
    """Run ``fn`` capturing (result, [(trace name, params), ...])."""
    calls = []
    with traced(lambda name, params: calls.append(
            (name, tuple(sorted(params.items()))))):
        result = fn(*args, **kwargs)
    return result, calls


def assert_equivalent(reference, fast, *args, radix=RADIX32):
    ref = traced_call(reference, *args, radix)
    got = traced_call(fast, *args, radix)
    assert ref == got


def vec_strategy(radix, min_size=1, max_size=12):
    return st.lists(st.integers(0, radix.mask),
                    min_size=min_size, max_size=max_size)


# ---------------------------------------------------------------------------
# Per-function parity (values + traces), both radices
# ---------------------------------------------------------------------------

class TestLeafParity:
    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=60)
    def test_addmul_1(self, radix, data):
        n = data.draw(st.integers(1, 10))
        rp = data.draw(vec_strategy(radix, n, n))
        up = data.draw(vec_strategy(radix, n, n))
        v = data.draw(st.integers(0, radix.mask))
        assert_equivalent(mpn.addmul_1, mpn_fast.addmul_1, rp, up, v,
                          radix=radix)

    def test_addmul_1_length_mismatch(self):
        with pytest.raises(ValueError):
            mpn_fast.addmul_1([1, 2], [1], 3)

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=60)
    def test_addmul_1_into(self, radix, data):
        n = data.draw(st.integers(1, 8))
        offset = data.draw(st.integers(0, 3))
        rp = data.draw(vec_strategy(radix, offset + n, offset + n + 4))
        up = data.draw(vec_strategy(radix, n, n))
        v = data.draw(st.integers(0, radix.mask))
        ref_rp, fast_rp = list(rp), list(rp)
        ref = traced_call(mpn._addmul_1_into, ref_rp, offset, up, v, radix)
        got = traced_call(mpn_fast._addmul_1_into, fast_rp, offset, up, v,
                          radix)
        assert ref == got and ref_rp == fast_rp

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=60)
    def test_mul_basecase(self, radix, data):
        up = data.draw(vec_strategy(radix))
        vp = data.draw(vec_strategy(radix))
        assert_equivalent(mpn.mul_basecase, mpn_fast.mul_basecase,
                          up, vp, radix=radix)

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=40)
    def test_sqr(self, radix, data):
        # Sizes straddle KARATSUBA_THRESHOLD to cover both the flat
        # base case and the delegated Karatsuba path.
        up = data.draw(vec_strategy(radix, 1,
                                    2 * mpn.KARATSUBA_THRESHOLD + 4))
        assert_equivalent(mpn.sqr, mpn_fast.sqr, up, radix=radix)

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=60)
    def test_divrem_1(self, radix, data):
        up = data.draw(vec_strategy(radix))
        v = data.draw(st.integers(1, radix.mask))
        assert_equivalent(mpn.divrem_1, mpn_fast.divrem_1, up, v,
                          radix=radix)

    def test_divrem_1_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            mpn_fast.divrem_1([1], 0)

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    @given(data=st.data())
    @settings(max_examples=80)
    def test_divrem(self, radix, data):
        up = data.draw(vec_strategy(radix, 1, 14))
        vp = data.draw(vec_strategy(radix, 1, 8))
        if mpn.normalize(vp) == [0]:
            vp[-1] = data.draw(st.integers(1, radix.mask))
        assert_equivalent(mpn.divrem, mpn_fast.divrem, up, vp,
                          radix=radix)

    def test_divrem_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            mpn_fast.divrem([1, 2], [0, 0])

    @given(nonneg, positive)
    @settings(max_examples=60)
    def test_divrem_matches_int(self, a, b):
        q, r = mpn_fast.divrem(mpn.from_int(a), mpn.from_int(b))
        assert mpn.to_int(q) == a // b
        assert mpn.to_int(r) == a % b


class TestAddbackPath:
    """The crafted Algorithm D add-back trigger (from test_mpn.py,
    generalized per radix): the divisor's zero middle limb blinds the
    3-limb qhat check, D4 underflows, and the rare D6 correction runs.
    The fast path must take it on the same iteration with the same
    ``mpn_add_n`` trace."""

    @staticmethod
    def trigger(radix):
        half = radix.base // 2
        u = [0, 0, half, half - 1]
        v = [radix.mask, 0, half]
        return u, v

    @pytest.mark.parametrize("radix", RADICES, ids=("r32", "r16"))
    def test_addback_fires_identically(self, radix):
        u, v = self.trigger(radix)
        ref = traced_call(mpn.divrem, u, v, radix)
        got = traced_call(mpn_fast.divrem, u, v, radix)
        assert ref == got
        addbacks = [c for c in got[1] if c[0] == "mpn_add_n"]
        assert len(addbacks) == 1
        assert addbacks[0][1] == (("n", len(v)),)
        a, b = mpn.to_int(u, radix), mpn.to_int(v, radix)
        q, r = got[0]
        assert mpn.to_int(q, radix) == a // b
        assert mpn.to_int(r, radix) == a % b


# ---------------------------------------------------------------------------
# Backend selection and integration
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_default_follows_environment(self):
        # reference unless the suite itself runs under
        # $REPRO_MPN_BACKEND=fast (CI's fast-path job), which installs
        # the fast backend at import time.
        expected = ("fast" if os.environ.get(MPN_BACKEND_ENV, "")
                    .strip().lower() == "fast" else "reference")
        assert active_backend() == expected

    def test_select_and_restore(self):
        assert select_backend("fast") == "fast"
        try:
            assert active_backend() == "fast"
            assert mpn.addmul_1 is mpn_fast.addmul_1
            assert mpn.divrem is mpn_fast.divrem
        finally:
            assert select_backend("reference") == "reference"
        assert active_backend() == "reference"
        assert mpn.divrem is not mpn_fast.divrem

    def test_alias_and_env(self, monkeypatch):
        assert select_backend("ref") == "reference"
        monkeypatch.setenv("REPRO_MPN_BACKEND", "fast")
        try:
            assert select_backend() == "fast"
        finally:
            select_backend("reference")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            select_backend("turbo")

    def test_scope_restores(self):
        with mpn_backend("fast"):
            assert active_backend() == "fast"
        assert active_backend() == "reference"

    def test_install_idempotent(self):
        mpn_fast.install()
        try:
            saved_divrem = mpn.divrem
            mpn_fast.install()
            assert mpn.divrem is saved_divrem is mpn_fast.divrem
        finally:
            mpn_fast.uninstall()
            mpn_fast.uninstall()
        assert not mpn_fast.installed()


class TestIntegration:
    @given(nonneg, nonneg)
    @settings(max_examples=25)
    def test_mpz_mul_under_fast_backend(self, a, b):
        with mpn_backend("fast"):
            assert int(Mpz(a) * Mpz(b)) == a * b

    @given(nonneg, positive)
    @settings(max_examples=25)
    def test_mpz_divmod_under_fast_backend(self, a, b):
        with mpn_backend("fast"):
            q, r = divmod(Mpz(a), Mpz(b))
            assert (int(q), int(r)) == divmod(a, b)

    def test_powm_value_and_estimate_identical(self):
        """A full Montgomery powm must produce the same value AND the
        same macro-model cycle estimate under either backend (trace
        identity end to end)."""
        from repro.costs.cache import characterize_cached
        from repro.crypto.modexp import ModExpEngine
        from repro.macromodel import estimate_cycles
        models = characterize_cached(0, 0)
        modulus = (1 << 256) - 189     # odd
        results = {}
        for backend in ("reference", "fast"):
            # Fresh engine per backend: the per-modulus Montgomery
            # setup cache would otherwise hide setup traces from the
            # second run regardless of backend.
            engine = ModExpEngine()
            op = lambda: engine.powm(0x12345, 0x10001, modulus)
            with mpn_backend(backend):
                est = estimate_cycles(models, op)
                results[backend] = (int(op()), est.cycles)
        assert results["reference"] == results["fast"]
