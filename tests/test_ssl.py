"""Tests for the SSL handshake, record layer, and transaction model."""

import pytest

from repro.mp import DeterministicPrng
from repro.crypto.aes import Aes
from repro.ssl import fixtures
from repro.ssl.handshake import (SslClient, SslServer, derive_keys,
                                 make_record_channels, run_handshake,
                                 ssl3_expand)
from repro.ssl.record import RecordError, RecordLayer
from repro.costs import PlatformCosts
from repro.ssl.transaction import SslWorkloadModel, TransactionBreakdown


def fresh_pair(seed=1):
    client = SslClient(fixtures.CLIENT_512, prng=DeterministicPrng(seed))
    server = SslServer(fixtures.SERVER_512)
    return client, server


class TestKeyDerivation:
    def test_expand_length_and_determinism(self):
        a = ssl3_expand(b"secret", b"seed", 100)
        b = ssl3_expand(b"secret", b"seed", 100)
        assert len(a) == 100 and a == b

    def test_expand_sensitive_to_inputs(self):
        assert ssl3_expand(b"s1", b"seed", 48) != ssl3_expand(b"s2", b"seed", 48)
        assert ssl3_expand(b"s", b"seed1", 48) != ssl3_expand(b"s", b"seed2", 48)

    def test_derive_keys_distinct(self):
        keys = derive_keys(b"m" * 48, b"c" * 32, b"s" * 32, "aes")
        material = [keys.client_mac, keys.server_mac, keys.client_key,
                    keys.server_key, keys.client_iv, keys.server_iv]
        assert len({bytes(m) for m in material}) == 6
        assert len(keys.client_key) == 16
        assert len(keys.client_iv) == 16


class TestHandshake:
    @pytest.mark.parametrize("cipher", ["des", "3des", "aes"])
    def test_full_handshake(self, cipher):
        client, server = fresh_pair()
        result = run_handshake(client, server, cipher)
        assert len(result.master) == 48
        assert result.cipher_name == cipher

    def test_handshake_deterministic_given_seeds(self):
        r1 = run_handshake(*fresh_pair(7), "aes",
                           prng=DeterministicPrng(3))
        r2 = run_handshake(*fresh_pair(7), "aes",
                           prng=DeterministicPrng(3))
        assert r1.master == r2.master

    def test_unknown_cipher_suite(self):
        with pytest.raises(ValueError):
            run_handshake(*fresh_pair(), "rc5")

    def test_wrong_client_key_fails_verify(self):
        client, server = fresh_pair()
        client_hello = client.hello()
        server_random, server_public = server.hello(client_hello,
                                                    DeterministicPrng(9))
        _, encrypted, signature = client.key_exchange(server_random,
                                                      server_public)
        with pytest.raises(ValueError, match="CertificateVerify"):
            # Server checks against the *server* public key instead.
            server.receive_key_exchange(encrypted, signature,
                                        fixtures.SERVER_512.public)


class TestRecordLayer:
    def _channel(self):
        key = bytes(range(16))
        mac = bytes(range(20))
        iv = bytes(16)
        return (RecordLayer(Aes(key), mac, iv), RecordLayer(Aes(key), mac, iv))

    def test_roundtrip(self):
        sender, receiver = self._channel()
        records = sender.seal(b"hello world")
        assert len(records) == 1
        assert receiver.open(records[0]) == b"hello world"

    def test_fragmentation_over_16k(self):
        sender, receiver = self._channel()
        data = bytes(i & 0xFF for i in range(40_000))
        records = sender.seal(data)
        assert len(records) == 3
        assert b"".join(receiver.open(r) for r in records) == data

    def test_sequence_protects_against_replay(self):
        sender, receiver = self._channel()
        record = sender.seal(b"once")[0]
        assert receiver.open(record) == b"once"
        with pytest.raises(RecordError):
            receiver.open(record)  # replay: wrong seq and wrong IV chain

    def test_tampered_record_rejected(self):
        sender, receiver = self._channel()
        record = bytearray(sender.seal(b"payload")[0])
        record[-1] ^= 1
        with pytest.raises(RecordError):
            receiver.open(bytes(record))

    def test_truncated_record_rejected(self):
        _, receiver = self._channel()
        with pytest.raises(RecordError):
            receiver.open(b"\x17")

    def test_ciphertext_differs_per_record(self):
        sender, _ = self._channel()
        r1 = sender.seal(b"same plaintext")[0]
        r2 = sender.seal(b"same plaintext")[0]
        assert r1 != r2  # CBC chaining + sequence number in the MAC

    def test_end_to_end_after_handshake(self):
        result = run_handshake(*fresh_pair(), "aes")
        sender, receiver = make_record_channels(result)
        data = b"m-commerce order: 1 handset"
        wire = sender.seal(data)
        assert b"".join(receiver.open(r) for r in wire) == data


class TestTransactionModel:
    @pytest.fixture(scope="class")
    def model(self):
        base = PlatformCosts(name="base", rsa_public_cycles=600_000,
                             rsa_private_cycles=60_000_000,
                             cipher_cycles_per_byte=700,
                             hash_cycles_per_byte=50)
        opt = PlatformCosts(name="opt", rsa_public_cycles=120_000,
                            rsa_private_cycles=2_000_000,
                            cipher_cycles_per_byte=21,
                            hash_cycles_per_byte=50)
        return SslWorkloadModel(base, opt)

    def test_breakdown_sums(self, model):
        bd = model.breakdown(model.base_costs, 1024)
        assert bd.total == pytest.approx(bd.public_key + bd.symmetric
                                         + bd.misc)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_small_transactions_public_key_bound(self, model):
        bd = model.breakdown(model.base_costs, 1024)
        assert bd.fractions()["public_key"] > 0.8

    def test_large_transactions_bulk_bound(self, model):
        bd = model.breakdown(model.base_costs, 1 << 20)
        assert bd.fractions()["public_key"] < 0.1

    def test_speedup_declines_with_size(self, model):
        speedups = [model.speedup(size) for size in
                    (1024, 4096, 32768, 1 << 20)]
        assert speedups == sorted(speedups, reverse=True)

    def test_speedup_approaches_asymptote(self, model):
        asymptote = model.asymptotic_speedup()
        assert model.speedup(1 << 26) == pytest.approx(asymptote, rel=0.05)
        assert model.speedup(1024) > 2 * asymptote

    def test_series_rows(self, model):
        rows = model.series([1024, 2048])
        assert len(rows) == 2
        assert rows[0]["speedup"] > 1
        assert set(rows[0]["base_fractions"]) == \
            {"public_key", "symmetric", "misc"}


class TestMeasuredCosts:
    def test_measure_on_platforms(self):
        from repro.platform import SecurityPlatform
        base = PlatformCosts.measure(SecurityPlatform.base(),
                                     fixtures.SERVER_512)
        opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                    fixtures.SERVER_512)
        assert base.rsa_private_cycles > opt.rsa_private_cycles
        assert base.cipher_cycles_per_byte > opt.cipher_cycles_per_byte
        # misc (hashing) is identical: not accelerated
        assert base.hash_cycles_per_byte == opt.hash_cycles_per_byte
