"""Tests for DH, WEP, ESP and CRC-32."""

import binascii

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes
from repro.crypto.crc import crc32
from repro.crypto.dh import (DiffieHellman, DhGroup, OAKLEY_GROUP1,
                             generate_group, validate_group)
from repro.crypto.modexp import ModExpConfig
from repro.mp import DeterministicPrng, Mpz
from repro.protocols.esp import EspError, EspSecurityAssociation
from repro.protocols.wep import WepError, WepPeer


class TestCrc32:
    @given(st.binary(max_size=300))
    def test_matches_binascii(self, data):
        assert crc32(data) == binascii.crc32(data)

    def test_incremental(self):
        assert crc32(b"world", crc32(b"hello ")) == crc32(b"hello world")

    def test_known_vector(self):
        assert crc32(b"123456789") == 0xCBF43926


class TestDiffieHellman:
    @pytest.fixture(scope="class")
    def group(self):
        # A small safe-prime group so tests stay fast.
        return generate_group(48, DeterministicPrng(31))

    def test_agreement(self, group):
        alice = DiffieHellman(group, prng=DeterministicPrng(1))
        bob = DiffieHellman(group, prng=DeterministicPrng(2))
        assert int(alice.shared_secret(bob.public)) == \
            int(bob.shared_secret(alice.public))

    def test_distinct_privates_distinct_publics(self, group):
        a = DiffieHellman(group, prng=DeterministicPrng(1))
        b = DiffieHellman(group, prng=DeterministicPrng(2))
        assert int(a.public) != int(b.public)

    def test_peer_value_validated(self, group):
        alice = DiffieHellman(group, prng=DeterministicPrng(1))
        with pytest.raises(ValueError):
            alice.shared_secret(Mpz(1))
        with pytest.raises(ValueError):
            alice.shared_secret(group.p - 1)

    def test_group_validation(self, group):
        assert validate_group(group)
        assert not validate_group(DhGroup(p=Mpz(15), g=Mpz(2)))

    def test_oakley_group1_is_valid(self):
        assert OAKLEY_GROUP1.bits == 768
        assert validate_group(OAKLEY_GROUP1, rounds=4)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            DiffieHellman(DhGroup(p=Mpz(16), g=Mpz(2)))

    def test_agreement_across_configs(self, group):
        """Different modexp configurations must agree on the secret."""
        a = DiffieHellman(group, ModExpConfig(modmul="barrett", window=2),
                          prng=DeterministicPrng(5))
        b = DiffieHellman(group, ModExpConfig(modmul="montgomery", window=5,
                                              caching="full"),
                          prng=DeterministicPrng(6))
        assert int(a.shared_secret(b.public)) == \
            int(b.shared_secret(a.public))


class TestWep:
    KEY = b"\x01\x02\x03\x04\x05"

    def test_roundtrip(self):
        sender = WepPeer(self.KEY, DeterministicPrng(1))
        receiver = WepPeer(self.KEY)
        frame = sender.seal(b"802.11 payload")
        assert receiver.open(frame) == b"802.11 payload"

    def test_wep104(self):
        key = bytes(range(13))
        frame = WepPeer(key, DeterministicPrng(2)).seal(b"data")
        assert WepPeer(key).open(frame) == b"data"

    def test_bad_key_length(self):
        with pytest.raises(WepError):
            WepPeer(b"\x00" * 7)

    def test_tampering_detected(self):
        sender = WepPeer(self.KEY, DeterministicPrng(1))
        frame = bytearray(sender.seal(b"payload!"))
        frame[6] ^= 0x40
        with pytest.raises(WepError):
            WepPeer(self.KEY).open(bytes(frame))

    def test_short_frame(self):
        with pytest.raises(WepError):
            WepPeer(self.KEY).open(b"\x00\x00\x00\x00")

    def test_iv_varies_per_frame(self):
        sender = WepPeer(self.KEY, DeterministicPrng(1))
        f1 = sender.seal(b"same")
        f2 = sender.seal(b"same")
        assert f1[:3] != f2[:3]
        assert f1[4:] != f2[4:]

    def test_keystream_reuse_weakness(self):
        """WEP's defining flaw: a repeated IV leaks the XOR of the
        plaintexts -- demonstrable, not just folklore."""
        sender = WepPeer(self.KEY)
        iv = b"\x00\x00\x01"
        p1, p2 = b"ATTACK AT DAWN!!", b"RETREAT AT DUSK!"
        c1 = sender.seal(p1, iv=iv)[4:]
        c2 = sender.seal(p2, iv=iv)[4:]
        xor_ct = bytes(a ^ b for a, b in zip(c1[:16], c2[:16]))
        xor_pt = bytes(a ^ b for a, b in zip(p1, p2))
        assert xor_ct == xor_pt


class TestEsp:
    def _pair(self):
        cipher_key = bytes(range(16))
        auth = b"auth-key"
        out_sa = EspSecurityAssociation(0x1001, Aes(cipher_key), auth,
                                        DeterministicPrng(1))
        in_sa = EspSecurityAssociation(0x1001, Aes(cipher_key), auth)
        return out_sa, in_sa

    def test_roundtrip(self):
        out_sa, in_sa = self._pair()
        packet = out_sa.seal(b"inner IP datagram")
        assert in_sa.open(packet) == b"inner IP datagram"

    @settings(max_examples=10)
    @given(payload=st.binary(max_size=200))
    def test_roundtrip_property(self, payload):
        out_sa, in_sa = self._pair()
        assert in_sa.open(out_sa.seal(payload)) == payload

    def test_replay_rejected(self):
        out_sa, in_sa = self._pair()
        packet = out_sa.seal(b"once")
        in_sa.open(packet)
        with pytest.raises(EspError, match="replay"):
            in_sa.open(packet)

    def test_out_of_order_within_window_ok(self):
        out_sa, in_sa = self._pair()
        p1 = out_sa.seal(b"one")
        p2 = out_sa.seal(b"two")
        assert in_sa.open(p2) == b"two"
        assert in_sa.open(p1) == b"one"  # late but inside the window

    def test_too_old_rejected(self):
        out_sa, in_sa = self._pair()
        first = out_sa.seal(b"ancient")
        for i in range(70):
            in_sa.open(out_sa.seal(b"filler %d" % i))
        with pytest.raises(EspError, match="old"):
            in_sa.open(first)

    def test_tampering_detected(self):
        out_sa, in_sa = self._pair()
        packet = bytearray(out_sa.seal(b"payload"))
        packet[10] ^= 1
        with pytest.raises(EspError, match="ICV"):
            in_sa.open(bytes(packet))

    def test_wrong_spi(self):
        out_sa, _ = self._pair()
        other = EspSecurityAssociation(0x2002, Aes(bytes(range(16))),
                                       b"auth-key")
        with pytest.raises(EspError):
            other.open(out_sa.seal(b"x"))

    def test_bad_spi_value(self):
        with pytest.raises(EspError):
            EspSecurityAssociation(0, Aes(bytes(16)), b"k")

    def test_short_packet(self):
        _, in_sa = self._pair()
        with pytest.raises(EspError, match="short"):
            in_sa.open(b"\x00" * 10)
