"""Tests for joint HW/SW exploration and the data-rate feasibility model."""

import pytest

from repro.crypto.modexp import ModExpConfig
from repro.explore.codesign import (CodesignExplorer, CodesignPoint,
                                    DEFAULT_HW_SWEEP, HardwareConfig)
from repro.explore.explorer import RsaDecryptWorkload
from repro.macromodel import characterize_platform
from repro.ssl.throughput import (bulk_cycles_per_byte, feasibility,
                                  feasibility_table, max_secure_rate,
                                  RATE_TARGETS)
from repro.costs import PlatformCosts


class TestHardwareConfig:
    def test_base_has_zero_area(self):
        assert HardwareConfig(0, 0).area == 0.0
        assert HardwareConfig(0, 0).is_base

    def test_area_grows_with_width(self):
        areas = [HardwareConfig(w, w).area for w in (2, 4, 8)]
        assert areas == sorted(areas)
        assert areas[0] > 0

    def test_labels(self):
        assert HardwareConfig(0, 0).label() == "base"
        assert HardwareConfig(8, 4).label() == "add8/mac4"


@pytest.fixture(scope="module")
def explorer():
    hw_subset = (HardwareConfig(0, 0), HardwareConfig(8, 4))
    models = {hw: characterize_platform(hw.add_width, hw.mac_width,
                                        reps=1, sizes=(1, 2, 4, 8, 16))
              for hw in hw_subset}
    return CodesignExplorer(RsaDecryptWorkload.bits512(),
                            models_by_hw=models), hw_subset


class TestCodesignSweep:
    SW = (ModExpConfig(modmul="schoolbook", window=1, crt="none"),
          ModExpConfig(modmul="montgomery", window=4, crt="garner"))

    def test_sweep_covers_product(self, explorer):
        ex, hw_subset = explorer
        points = ex.sweep(hw_subset, self.SW)
        assert len(points) == len(hw_subset) * len(self.SW)
        cycles = [p.estimated_cycles for p in points]
        assert cycles == sorted(cycles)

    def test_joint_optimum_beats_marginals(self, explorer):
        """The co-design point (good HW + good SW) beats fixing either
        dimension at its worst."""
        ex, hw_subset = explorer
        points = ex.sweep(hw_subset, self.SW)
        best = points[0]
        assert best.software.modmul == "montgomery"
        assert not best.hardware.is_base
        worst = points[-1]
        assert worst.estimated_cycles > 5 * best.estimated_cycles

    def test_selection_respects_area_budget(self, explorer):
        ex, hw_subset = explorer
        points = ex.sweep(hw_subset, self.SW)
        zero_budget = CodesignExplorer.select(points, 0)
        assert zero_budget.hardware.is_base
        # With zero hardware budget the winner is the SW-only tuned config.
        assert zero_budget.software.modmul == "montgomery"
        rich = CodesignExplorer.select(points, 1e9)
        assert rich.estimated_cycles <= zero_budget.estimated_cycles

    def test_select_infeasible(self):
        point = CodesignPoint(HardwareConfig(8, 4),
                              ModExpConfig(), 1e6, area=5000)
        with pytest.raises(ValueError):
            CodesignExplorer.select([point], area_budget=10)

    def test_pareto_frontier(self, explorer):
        ex, hw_subset = explorer
        points = ex.sweep(hw_subset, self.SW)
        frontier = CodesignExplorer.pareto(points)
        assert 1 <= len(frontier) <= len(points)
        # No frontier point dominates another.
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not (a.area <= b.area
                                and a.estimated_cycles <= b.estimated_cycles)

    def test_default_sweep_definition(self):
        assert DEFAULT_HW_SWEEP[0].is_base
        areas = [hw.area for hw in DEFAULT_HW_SWEEP]
        assert areas == sorted(areas)


class TestThroughput:
    def _costs(self, cpb, name="x"):
        return PlatformCosts(name=name, rsa_public_cycles=1e5,
                             rsa_private_cycles=1e6,
                             cipher_cycles_per_byte=cpb,
                             hash_cycles_per_byte=50)

    def test_bulk_cycles_composition(self):
        costs = self._costs(100)
        assert bulk_cycles_per_byte(costs) == \
            100 + 50 + costs.protocol_cycles_per_byte

    def test_max_rate_scales_with_clock(self):
        costs = self._costs(100)
        assert max_secure_rate(costs, clock_hz=2e8) == \
            pytest.approx(2 * max_secure_rate(costs, clock_hz=1e8))

    def test_cpu_fraction(self):
        costs = self._costs(100)
        full = max_secure_rate(costs, cpu_fraction=1.0)
        half = max_secure_rate(costs, cpu_fraction=0.5)
        assert half == pytest.approx(full / 2)
        with pytest.raises(ValueError):
            max_secure_rate(costs, cpu_fraction=0)

    def test_feasibility_thresholds(self):
        # Even a free cipher leaves MAC+protocol cycles, so 55 Mbps
        # needs a faster clock -- check against a 2 GHz bound.
        fast = feasibility(self._costs(10), clock_hz=2e9)
        slow = feasibility(self._costs(100_000))  # ~15 kbps-class
        assert all(fast.feasible.values())
        assert not any(slow.feasible.values())
        mid = feasibility(self._costs(10))  # 188 MHz, ~17 Mbps
        assert mid.feasible["3G high (2 Mbps)"]
        assert not mid.feasible["WLAN high (55 Mbps)"]

    def test_table(self):
        reports = feasibility_table([self._costs(10, "a"),
                                     self._costs(1000, "b")])
        assert [r.platform for r in reports] == ["a", "b"]

    def test_targets_cover_papers_bands(self):
        assert RATE_TARGETS["3G high (2 Mbps)"] == 2e6
        assert RATE_TARGETS["WLAN high (55 Mbps)"] == 55e6
