"""Tests for the XT32 assembler."""

import pytest

from repro.isa.assembler import AssemblyError, Program, assemble
from repro.isa.extensions import CustomInstruction, ExtensionSet


class TestBasicAssembly:
    def test_simple_program(self):
        prog = assemble("""
        main:
            li r1, 42
            halt
        """)
        assert len(prog) == 2
        assert prog.entry("main") == 0
        assert prog.instructions[0].op == "li"
        assert prog.instructions[0].args == (1, 42)

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        # full-line comment
        main:
            li r1, 1   # trailing comment
            halt       ; alt comment style
        """)
        assert len(prog) == 2

    def test_hex_and_negative_immediates(self):
        prog = assemble("main: li r1, 0xFF\n li r2, -5\n halt")
        assert prog.instructions[0].args == (1, 0xFF)
        assert prog.instructions[1].args == (2, -5)

    def test_memory_operands(self):
        prog = assemble("main: lw r1, 8(r2)\n sw r1, -4(r3)\n halt")
        assert prog.instructions[0].args == (1, (8, 2))
        assert prog.instructions[1].args == (1, (-4, 3))

    def test_label_resolution(self):
        prog = assemble("""
        start:
            j end
            li r1, 1
        end:
            halt
        """)
        assert prog.instructions[0].args == (2,)

    def test_label_on_same_line(self):
        prog = assemble("main: halt")
        assert prog.entry("main") == 0

    def test_multiple_labels_same_instruction(self):
        prog = assemble("a: b:\n halt")
        assert prog.entry("a") == prog.entry("b") == 0


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            assemble("main: frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("main: add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble("main: li r16, 0")

    def test_bad_register_name(self):
        with pytest.raises(AssemblyError, match="expected register"):
            assemble("main: li x1, 0")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("main: j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a: halt\na: halt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="offset"):
            assemble("main: lw r1, r2")

    def test_unknown_entry(self):
        prog = assemble("main: halt")
        with pytest.raises(AssemblyError, match="unknown label"):
            prog.entry("other")


class TestExtensions:
    def _ext(self, name="myop", signature="rr"):
        return ExtensionSet([CustomInstruction(
            name=name, signature=signature, semantics=lambda m, a: None)])

    def test_custom_opcode_assembles(self):
        prog = assemble("main: myop r1, r2\n halt", self._ext())
        assert prog.instructions[0].op == "myop"
        assert prog.instructions[0].args == (1, 2)

    def test_custom_opcode_unknown_without_extension(self):
        with pytest.raises(AssemblyError):
            assemble("main: myop r1, r2\n halt")

    def test_shadowing_base_opcode_rejected(self):
        with pytest.raises(AssemblyError, match="shadows"):
            assemble("main: halt", self._ext(name="add", signature="rrr"))
