"""Tests for macro-model persistence."""

import pytest

from repro.macromodel import characterize_platform
from repro.macromodel.persist import (load_modelset, modelset_from_dict,
                                      modelset_to_dict, save_modelset)


@pytest.fixture(scope="module")
def models():
    return characterize_platform(reps=1, sizes=(1, 2, 4, 8),
                                 modmul_overhead=False)


class TestPersistence:
    def test_dict_roundtrip(self, models):
        restored = modelset_from_dict(modelset_to_dict(models))
        assert restored.platform == models.platform
        assert restored.routines() == models.routines()
        for routine in models.routines():
            for n in (1, 4, 16):
                assert restored.predict(routine, n) == \
                    pytest.approx(models.predict(routine, n))

    def test_file_roundtrip(self, models, tmp_path):
        path = tmp_path / "models.json"
        save_modelset(models, str(path))
        restored = load_modelset(str(path))
        assert restored.predict("mpn_add_n", 8) == \
            pytest.approx(models.predict("mpn_add_n", 8))

    def test_json_is_stable(self, models, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_modelset(models, str(p1))
        save_modelset(models, str(p2))
        assert p1.read_text() == p2.read_text()

    def test_bad_schema_rejected(self, models):
        data = modelset_to_dict(models)
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            modelset_from_dict(data)

    def test_bad_schema_file_rejected(self, models, tmp_path):
        import json
        path = tmp_path / "models.json"
        save_modelset(models, str(path))
        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            load_modelset(str(path))

    def test_restored_models_usable_by_estimator(self, models):
        from repro.macromodel import estimate_cycles
        from repro.mp import Mpz
        restored = modelset_from_dict(modelset_to_dict(models))
        est = estimate_cycles(restored, lambda: Mpz(1 << 100) * Mpz(3))
        assert est.cycles > 0
