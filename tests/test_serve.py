"""The farm soak service (`repro.farm.serve`): epoch replay,
virtual-time accounting, and the HTTP scrape surface."""

import json
import urllib.error
import urllib.request

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmConfig, FarmSoakService, FaultEvent,
                        FaultPlan, TrafficProfile, build_farm)
from repro.obs.slo import SloTarget

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _config(**kwargs):
    kwargs.setdefault("profile", TrafficProfile(arrival_rate=40.0))
    return FarmConfig(
        specs=tuple(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)),
        seed=7, **kwargs)


def _get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestSoakService:
    def test_epochs_accumulate_deterministically(self):
        service = FarmSoakService(_config(), epoch_seconds=1.0)
        service.run(max_epochs=2)
        assert service.epochs == 2
        assert service.virtual_seconds == pytest.approx(2.0)
        # Each 1 s epoch at 40 req/s serves 40 requests.
        counter = service.registry.counter(
            "farm.requests.completed", scheduler="preferential")
        assert counter.value == 80
        # Epoch 1's series is rebased past epoch 0's.
        boundary = service.epoch_cycles
        assert any(s.t_cycles > boundary for s in service.series.samples)
        marks = [e for e in service.series.events
                 if e.name == "soak.epoch"]
        assert [e.attrs["epoch"] for e in marks] == [0, 1]
        assert all(e.attrs["completed"] == 40 for e in marks)

    def test_same_seed_same_soak(self):
        runs = []
        for _ in range(2):
            service = FarmSoakService(_config(), epoch_seconds=1.0)
            service.run(max_epochs=2)
            runs.append(service.render_prometheus())
        assert runs[0] == runs[1]

    def test_faults_windowed_onto_epoch_timeline(self):
        clock = _config().clock_hz
        plan = FaultPlan(events=(
            # Lands in epoch 1 (epoch_seconds=1.0).
            FaultEvent(cycle=1.5 * clock, kind="core_down", core=1),
        ), degraded_costs=BASE_COSTS)
        service = FarmSoakService(_config(faults=plan),
                                  epoch_seconds=1.0)
        service.run(max_epochs=2)
        downs = [e for e in service.series.events
                 if e.name == "fault.core_down"]
        assert len(downs) == 1
        assert downs[0].t_cycles == pytest.approx(1.5 * clock)

    def test_slo_monitor_persists_across_epochs(self):
        # An unattainable latency target alerts in every window.
        service = FarmSoakService(
            _config(slo=SloTarget(p99_ms=0.0001),
                    slo_window_seconds=0.5),
            epoch_seconds=1.0)
        service.run(max_epochs=2)
        payload = service.slo_payload()
        assert payload["windows_evaluated"] >= 2
        assert payload["attainment"] < 1.0
        alerts = [e for e in service.series.events
                  if e.name == "slo.alert"]
        assert alerts and {a.attrs["epoch"] for a in alerts} == {0, 1}

    def test_stop_halts_the_loop(self):
        service = FarmSoakService(_config(), epoch_seconds=1.0)
        service.stop()
        assert service.run(max_epochs=50) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="epoch_seconds"):
            FarmSoakService(_config(), epoch_seconds=0.0)
        with pytest.raises(ValueError, match="series_interval_seconds"):
            FarmSoakService(_config(), series_interval_seconds=0.0)
        with pytest.raises(ValueError, match="profile"):
            FarmSoakService(FarmConfig(
                specs=tuple(build_farm(2, BASE_COSTS, OPT_COSTS, 0.5)),
                requests=()))


class TestHttpSurface:
    def test_scrape_cycle(self):
        service = FarmSoakService(
            _config(slo=SloTarget(p99_ms=50.0)), epoch_seconds=1.0)
        port = service.serve()
        try:
            service.run_epoch()

            status, metrics = _get(port, "/metrics")
            assert status == 200
            line = next(l for l in metrics.splitlines()
                        if l.startswith("farm_requests_completed"))
            # Sample lines carry the virtual timestamp (1 s = 1000 ms).
            assert line.endswith(" 1000")
            assert 'scheduler="preferential"' in line

            status, body = _get(port, "/healthz")
            health = json.loads(body)
            assert (status, health["status"]) == (200, "ok")
            assert health["epochs"] == 1
            assert health["virtual_seconds"] == pytest.approx(1.0)

            status, body = _get(port, "/slo")
            assert status == 200
            assert json.loads(body)["target"]["p99_ms"] == 50.0

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/nope")
            assert excinfo.value.code == 404

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/quit", method="POST",
                data=b"")
            with urllib.request.urlopen(request, timeout=10) as resp:
                assert resp.status == 200
            assert service.stopping
            # A quit service refuses further epochs.
            assert service.run(max_epochs=10) == 1
        finally:
            service.shutdown()

    def test_slo_endpoint_without_target(self):
        service = FarmSoakService(_config(), epoch_seconds=1.0)
        port = service.serve()
        try:
            status, body = _get(port, "/slo")
            assert status == 200
            assert json.loads(body) == {"slo": None}
        finally:
            service.shutdown()

    def test_serve_twice_is_an_error(self):
        service = FarmSoakService(_config(), epoch_seconds=1.0)
        service.serve()
        try:
            with pytest.raises(RuntimeError, match="already serving"):
                service.serve()
        finally:
            service.shutdown()
        service.shutdown()      # idempotent
