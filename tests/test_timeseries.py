"""Virtual-time metrics series (`repro.obs.timeseries`), the farm
recorder (`repro.farm.timeseries`), and their exporters."""

import io
import json

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmConfig, FarmSimulator, FaultEvent,
                        FaultPlan, TrafficProfile, build_farm,
                        generate_requests, make_scheduler, run_farm,
                        series_of)
from repro.farm.timeseries import FarmSeriesRecorder
from repro.obs import (MetricsRegistry, MetricsTimeSeries,
                       TimeSeriesSampler, read_series_jsonl,
                       render_dashboard_html, render_metrics,
                       render_series, snapshot_registry, sparkline,
                       write_series_jsonl)
from repro.ssl.throughput import DEFAULT_CLOCK_HZ

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _series(samples=((1.0, {"a": 1.0}), (2.0, {"a": 3.0}))):
    series = MetricsTimeSeries(clock_hz=1.0, interval_cycles=1.0)
    for t, values in samples:
        series.append(t, values)
    return series


class TestSnapshotRegistry:
    def test_flattens_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("reqs", scheduler="pref").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("lat_ms").observe(4.0)
        registry.histogram("lat_ms").observe(12.0)
        values = snapshot_registry(registry)
        assert values["reqs{scheduler=pref}"] == 3.0
        assert values["depth"] == 2.5
        assert values["lat_ms:count"] == 2.0
        assert values["lat_ms:sum"] == 16.0
        assert values["lat_ms:mean"] == 8.0
        assert "lat_ms:p99" in values and "lat_ms:p50" in values


class TestMetricsTimeSeries:
    def test_ring_evicts_and_counts_drops(self):
        series = MetricsTimeSeries(clock_hz=1.0, interval_cycles=1.0,
                                   capacity=3)
        for t in range(5):
            series.append(float(t), {"a": float(t)})
        assert len(series) == 3
        assert series.dropped == 2
        assert [s.t_cycles for s in series.samples] == [2.0, 3.0, 4.0]

    def test_windowed_queries(self):
        series = MetricsTimeSeries(clock_hz=2.0, interval_cycles=1.0)
        for t, v in ((0.0, 0.0), (2.0, 4.0), (4.0, 6.0)):
            series.append(t, {"c": v})
        assert series.delta("c") == 6.0
        # 6 units over 4 cycles at 2 Hz = 2 virtual seconds.
        assert series.rate("c") == pytest.approx(3.0)
        assert series.max_over_time("c", start_cycles=1.0) == 6.0
        assert series.quantile_over_time("c", 0.5) == 4.0
        assert series.delta("missing") == 0.0
        assert series.rate("c", start_cycles=3.0) == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            _series().quantile_over_time("a", 0.0)

    def test_events_between(self):
        series = _series()
        series.annotate(1.5, "fault.core_down", core=2)
        series.annotate(3.0, "slo.alert")
        assert [e.name for e in series.events_between(0.0, 2.0)] == \
            ["fault.core_down"]

    def test_merge_rebases_timestamps(self):
        soak = MetricsTimeSeries(clock_hz=1.0, interval_cycles=1.0)
        epoch = _series()
        epoch.annotate(1.5, "fault.degrade", core=0)
        soak.merge(epoch, offset_cycles=10.0)
        assert [s.t_cycles for s in soak.samples] == [11.0, 12.0]
        assert soak.events[0].t_cycles == 11.5
        assert soak.events[0].attrs == {"core": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsTimeSeries(clock_hz=0.0, interval_cycles=1.0)
        with pytest.raises(ValueError):
            MetricsTimeSeries(clock_hz=1.0, interval_cycles=0.0)
        with pytest.raises(ValueError):
            MetricsTimeSeries(clock_hz=1.0, interval_cycles=1.0,
                              capacity=0)


class TestSampler:
    def test_boundary_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        sampler = TimeSeriesSampler(registry, clock_hz=1.0,
                                    interval_cycles=10.0)
        counter.inc()          # lands at t=0, before any boundary
        sampler.advance(25.0)  # boundaries 10 and 20 fire
        counter.inc()
        series = sampler.finish(30.0)
        times = [s.t_cycles for s in series.samples]
        assert times == [10.0, 20.0, 30.0]
        assert [s.values["n"] for s in series.samples] == \
            [1.0, 1.0, 2.0]

    def test_event_on_boundary_included_in_that_sample(self):
        registry = MetricsRegistry()
        sampler = TimeSeriesSampler(registry, clock_hz=1.0,
                                    interval_cycles=10.0)
        registry.counter("n").inc()     # exactly at the t=10 boundary
        sampler.advance(10.0)           # strictly-before: nothing yet
        assert len(sampler.series) == 0
        sampler.advance(10.1)
        assert sampler.series.samples[0].values["n"] == 1.0

    def test_before_sample_hook_sees_sample_time(self):
        registry = MetricsRegistry()
        seen = []
        sampler = TimeSeriesSampler(registry, clock_hz=1.0,
                                    interval_cycles=5.0,
                                    before_sample=seen.append)
        sampler.finish(12.0)
        assert seen == [5.0, 10.0, 12.0]


class TestJsonlRoundTrip:
    def test_exact_round_trip(self):
        series = _series()
        series.annotate(1.5, "fault.core_down", core=2)
        buf = io.StringIO()
        n = write_series_jsonl(series, buf)
        text = buf.getvalue()
        assert n == len(text.splitlines())
        again = io.StringIO()
        write_series_jsonl(read_series_jsonl(io.StringIO(text)), again)
        assert again.getvalue() == text

    def test_header_validates(self):
        with pytest.raises(ValueError, match="not a"):
            read_series_jsonl(io.StringIO('{"format": "bogus"}\n'))
        with pytest.raises(ValueError, match="empty"):
            read_series_jsonl(io.StringIO(""))

    def test_truncation_detected(self):
        buf = io.StringIO()
        write_series_jsonl(_series(), buf)
        lines = buf.getvalue().splitlines()
        clipped = "\n".join(lines[:-1]) + "\n"
        with pytest.raises(ValueError, match="truncated"):
            read_series_jsonl(io.StringIO(clipped))

    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "series.jsonl"
        write_series_jsonl(_series(), str(path))
        restored = read_series_jsonl(str(path))
        assert [s.t_cycles for s in restored.samples] == [1.0, 2.0]


class TestRendering:
    def test_sparkline_spikes_survive_downsampling(self):
        values = [1.0] * 100
        values[50] = 9.0
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert "█" in line

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([2.0, 2.0, 2.0])
        assert len(flat) == 3 and len(set(flat)) == 1

    def test_render_series_lists_keys_and_events(self):
        series = _series()
        series.annotate(1.5, "fault.core_down", core=2)
        text = render_series(series)
        assert "a" in text
        assert "fault.core_down" in text
        assert "min=1 max=3 last=3" in text

    def test_dashboard_html_is_self_contained(self):
        series = _series()
        series.annotate(1.5, "slo.alert", window=0)
        html = render_dashboard_html(series)
        assert html.startswith("<!DOCTYPE html>")
        assert "slo.alert" in html
        assert "<svg" in html
        assert "http" not in html          # no external assets
        assert render_dashboard_html(series) == html


class TestPrometheusExport:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a\\b"c\nd').inc()
        text = render_metrics(registry, format="prometheus")
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert "\n\n" not in text           # the newline was escaped

    def test_timestamps_stamp_every_sample_line(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        text = render_metrics(registry, format="prometheus",
                              timestamp_ms=1500)
        for line in text.splitlines():
            if not line.startswith("#"):
                assert line.endswith(" 1500")

    def test_timestamp_requires_prometheus(self):
        with pytest.raises(ValueError, match="timestamp_ms"):
            render_metrics(MetricsRegistry(), format="text",
                           timestamp_ms=1)


class TestFarmSeries:
    @staticmethod
    def _config(**kwargs):
        return FarmConfig(
            specs=tuple(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)),
            profile=TrafficProfile(arrival_rate=60.0),
            n_requests=150, seed=1, **kwargs)

    @staticmethod
    def _export(series) -> str:
        buf = io.StringIO()
        write_series_jsonl(series, buf)
        return buf.getvalue()

    def test_no_series_by_default(self):
        assert run_farm(self._config()).series is None

    def test_series_has_interval_gauges_and_counters(self):
        run = run_farm(self._config(series_interval_seconds=0.1))
        series = run.series
        keys = series.keys()
        tag = "{scheduler=preferential}"
        assert f"farm.requests.completed{tag}" in keys
        assert f"farm.interval.p99_ms{tag}" in keys
        assert f"farm.utilization{tag}" in keys
        # The cumulative completion counter ends at the request count.
        assert series.samples[-1].values[
            f"farm.requests.completed{tag}"] == 150.0
        assert series.samples[-1].t_cycles == run.result.makespan_cycles

    def test_live_sampling_equals_posthoc_derivation(self):
        specs = build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)
        requests = generate_requests(TrafficProfile(arrival_rate=60.0),
                                     150, seed=1)
        recorder = FarmSeriesRecorder(
            scheduler="preferential", n_cores=4,
            clock_hz=DEFAULT_CLOCK_HZ, interval_seconds=0.1)
        result = FarmSimulator(specs, make_scheduler("preferential"),
                               sampler=recorder).run(requests)
        recorder.finish(result.makespan_cycles)
        posthoc = series_of(result, interval_seconds=0.1)
        assert self._export(recorder.series) == self._export(posthoc)

    def test_sharded_series_independent_of_jobs(self):
        from repro.parallel import ThreadExecutor
        config = self._config(series_interval_seconds=0.1, shards=2)
        serial = self._export(run_farm(config).series)
        with ThreadExecutor(2) as pool:
            parallel = self._export(
                run_farm(config, executor=pool).series)
        assert serial == parallel

    def test_fault_and_slo_events_annotated(self):
        from repro.obs.slo import SloTarget
        clock = DEFAULT_CLOCK_HZ
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.5 * clock, kind="core_down", core=1),
            FaultEvent(cycle=1.5 * clock, kind="core_up", core=1),
        ), degraded_costs=BASE_COSTS)
        run = run_farm(self._config(
            faults=plan, slo=SloTarget(p99_ms=0.001),
            series_interval_seconds=0.1))
        names = [e.name for e in run.series.events]
        assert "fault.core_down" in names
        assert "slo.alert" in names
        down = next(e for e in run.series.events
                    if e.name == "fault.core_down")
        assert down.t_cycles == 0.5 * clock
        assert down.attrs == {"core": 1}

    def test_autoscale_report_carries_series(self):
        from repro.farm import AutoscalePolicy, run_autoscale
        config = FarmConfig(
            specs=tuple(build_farm(6, BASE_COSTS, OPT_COSTS, 0.5)),
            profile=TrafficProfile(arrival_rate=40.0), seed=1)
        report = run_autoscale(config, policy=AutoscalePolicy(
            min_cores=2, max_cores=6), n_epochs=4, epoch_seconds=1.0)
        series = report.series
        assert len(series.samples) == 4
        assert [s.t_cycles / config.clock_hz
                for s in series.samples] == [1.0, 2.0, 3.0, 4.0]
        assert "autoscale.active_cores" in series.keys()
        # The series mirrors the epoch rows exactly.
        for sample, epoch in zip(series.samples, report.epochs):
            assert sample.values["autoscale.p99_ms"] == epoch.p99_ms
            assert sample.values["autoscale.active_cores"] == \
                float(epoch.active_cores)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="series_interval_seconds"):
            self._config(series_interval_seconds=0.0)
        with pytest.raises(ValueError, match="series_capacity"):
            self._config(series_capacity=0)


class TestTimeseriesCli:
    def test_render_and_html(self, tmp_path, capsys):
        from repro.cli import main
        series = _series()
        series.annotate(1.5, "fault.core_down", core=2)
        path = tmp_path / "series.jsonl"
        write_series_jsonl(series, str(path))
        html = tmp_path / "dash.html"
        assert main(["timeseries", "--series", str(path),
                     "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert "fault.core_down" in out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_json_and_key_filter(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "series.jsonl"
        write_series_jsonl(_series(), str(path))
        assert main(["timeseries", "--series", str(path),
                     "--key", "a", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]["samples"][0]["values"] == {"a": 1.0}

    def test_unknown_key_is_an_error(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "series.jsonl"
        write_series_jsonl(_series(), str(path))
        assert main(["timeseries", "--series", str(path),
                     "--key", "nope"]) == 2
        assert "unknown series key" in capsys.readouterr().err

    def test_unreadable_series_is_an_error(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["timeseries", "--series",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read series" in capsys.readouterr().err
