"""Tests for the disassembler (assemble/disassemble round trips)."""

import pytest

from repro.isa.assembler import assemble, disassemble
from repro.isa.kernels.des_kernels import base_source as des_source
from repro.isa.kernels.hash_kernels import source as sha1_source
from repro.isa.kernels.mpn_kernels import (BASE_SOURCE, ext_source,
                                           mp_kernel_extensions)


def _decoded(program):
    return [(i.op, i.args) for i in program.instructions]


class TestRoundTrip:
    @pytest.mark.parametrize("source_fn", [
        lambda: BASE_SOURCE, des_source, sha1_source])
    def test_base_isa_kernels(self, source_fn):
        original = assemble(source_fn())
        recovered = assemble(disassemble(original))
        assert _decoded(original) == _decoded(recovered)

    def test_extended_kernels(self):
        ext = mp_kernel_extensions(8, 4)
        original = assemble(ext_source(8, 4), ext)
        recovered = assemble(disassemble(original, ext), ext)
        assert _decoded(original) == _decoded(recovered)

    def test_labels_preserved(self):
        program = assemble("start:\n li r1, 5\nmid: halt")
        text = disassemble(program)
        assert "start:" in text and "mid:" in text
        recovered = assemble(text)
        assert recovered.entry("start") == 0
        assert recovered.entry("mid") == 1

    def test_backward_branch_target_synthesized(self):
        # A loop whose head label exists gets reused; strip it to force
        # synthesis by rebuilding a program with a renamed head.
        program = assemble("""
        main:
            li r1, 3
        head:
            subi r1, r1, 1
            bne r1, r0, head
            halt
        """)
        text = disassemble(program)
        recovered = assemble(text)
        assert _decoded(program) == _decoded(recovered)

    def test_memory_and_negative_operands(self):
        program = assemble("main: lw r1, -8(r2)\n li r3, -1\n halt")
        text = disassemble(program)
        assert "-8(r2)" in text
        assert _decoded(assemble(text)) == _decoded(program)

    def test_executable_after_roundtrip(self):
        from repro.isa.machine import Machine
        program = assemble("""
        main:
            li r1, 0
            li r2, 5
        loop:
            add r1, r1, r2
            subi r2, r2, 1
            bne r2, r0, loop
            halt
        """)
        recovered = assemble(disassemble(program))
        machine = Machine(recovered)
        assert machine.run("main") == 15
