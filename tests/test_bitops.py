"""Tests for the Layer-1 bit-level basic operations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import bitops
from repro.mp.hooks import traced


class TestBitPermute:
    def test_identity(self):
        table = list(range(1, 9))
        assert bitops.bit_permute(0b10110010, table, 8) == 0b10110010

    def test_reverse(self):
        table = list(range(8, 0, -1))
        assert bitops.bit_permute(0b10000000, table, 8) == 0b00000001

    def test_expansion(self):
        # Duplicate the MSB into two output bits.
        assert bitops.bit_permute(0b10, [1, 1, 2], 2) == 0b110

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_permutation_preserves_popcount(self, x):
        table = [13, 2, 15, 8, 1, 6, 11, 4, 16, 9, 3, 14, 5, 12, 7, 10]
        assert bin(bitops.bit_permute(x, table, 16)).count("1") == bin(x).count("1")

    def test_traced(self):
        calls = []
        with traced(lambda n, p: calls.append((n, p))):
            bitops.bit_permute(5, [1, 2, 3], 3)
        assert calls == [("bit_permute", {"n": 3})]


class TestXor:
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_xor_words(self, a, b):
        assert bitops.xor_words(a, b, 48) == a ^ b

    def test_xor_bytes(self):
        assert bitops.xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            bitops.xor_bytes(b"\x00", b"\x00\x00")

    @given(st.binary(min_size=0, max_size=64))
    def test_xor_bytes_involution(self, data):
        key = bytes((i * 37) & 0xFF for i in range(len(data)))
        assert bitops.xor_bytes(bitops.xor_bytes(data, key), key) == data


class TestRotate:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=64))
    def test_rotl_rotr_inverse(self, x, c):
        assert bitops.rotr(bitops.rotl(x, c, 32), c, 32) == x

    def test_rotl_known(self):
        assert bitops.rotl(0x80000000, 1, 32) == 1
        assert bitops.rotr(1, 1, 32) == 0x80000000

    @given(st.integers(min_value=0, max_value=(1 << 28) - 1))
    def test_rotl_28bit(self, x):
        # DES key halves are 28-bit; full rotation is identity.
        assert bitops.rotl(x, 28, 28) == x


class TestGf256:
    def test_known_products(self):
        # FIPS 197 examples: {57} x {83} = {c1} and {57} x {13} = {fe}
        assert bitops.gf256_mul(0x57, 0x83) == 0xC1
        assert bitops.gf256_mul(0x57, 0x13) == 0xFE

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_commutative(self, a, b):
        assert bitops.gf256_mul(a, b) == bitops.gf256_mul(b, a)

    @given(st.integers(min_value=0, max_value=255))
    def test_identity_and_zero(self, a):
        assert bitops.gf256_mul(a, 1) == a
        assert bitops.gf256_mul(a, 0) == 0

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_distributive(self, a, b, c):
        left = bitops.gf256_mul(a, b ^ c)
        right = bitops.gf256_mul(a, b) ^ bitops.gf256_mul(a, c)
        assert left == right


class TestWordConversion:
    @given(st.binary(min_size=0, max_size=64).filter(lambda b: len(b) % 4 == 0))
    def test_roundtrip(self, data):
        assert bitops.words_to_bytes(bitops.bytes_to_words(data)) == data

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            bitops.bytes_to_words(b"\x00\x01\x02")

    def test_big_endian(self):
        assert bitops.bytes_to_words(b"\x01\x02\x03\x04") == [0x01020304]
