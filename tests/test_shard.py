"""Tests for sharded farm simulation, event queues, and trace replay.

Same frozen measured unit costs as ``test_farm.py`` -- the shard layer
is a pure function of these numbers, so no ISS characterization runs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.costs import PlatformCosts
from repro.farm import (FarmSimulator, TrafficProfile, build_farm,
                        export_workload, generate_requests,
                        import_workload, make_event_queue,
                        make_scheduler, merge_results, queue_kinds,
                        run_sharded, shard_workload, summarize)
from repro.farm.events import CalendarEventQueue, HeapEventQueue
from repro.farm.shard import partition_requests
from repro.mp import DeterministicPrng
from repro.parallel import SerialExecutor, ThreadExecutor

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _farm(n_cores=8, fraction=0.5):
    return build_farm(n_cores, BASE_COSTS, OPT_COSTS, fraction)


_events = st.lists(
    st.tuples(
        # Coarse-grained times force plenty of exact ties, so the
        # (kind, seq, core) tie-break actually gets exercised.
        st.integers(min_value=0, max_value=50).map(lambda t: t / 2.0),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=-1, max_value=63)),
    max_size=80)


class TestEventQueues:
    def test_registry(self):
        assert queue_kinds() == ["heap", "calendar"]
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"),
                          CalendarEventQueue)
        with pytest.raises(ValueError, match="unknown event queue"):
            make_event_queue("wheel")

    def test_empty_pop_raises(self):
        for kind in queue_kinds():
            with pytest.raises(IndexError):
                make_event_queue(kind).pop()

    def test_invalid_calendar_parameters(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(bucket_count=0)
        with pytest.raises(ValueError):
            CalendarEventQueue(bucket_width=0.0)

    @given(events=_events)
    @settings(max_examples=200)
    def test_drain_matches_sorted(self, events):
        for kind in queue_kinds():
            queue = make_event_queue(kind)
            for event in events:
                queue.push(event)
            drained = [queue.pop() for _ in range(len(events))]
            assert drained == sorted(events)
            assert len(queue) == 0 and not queue

    @given(events=_events, data=st.data())
    @settings(max_examples=200)
    def test_interleaved_pop_order_equivalence(self, events, data):
        """Heap and calendar pop identically under arbitrary push/pop
        interleavings -- including pushes into the calendar's past."""
        heap, cal = make_event_queue("heap"), make_event_queue("calendar")
        pending = list(events)
        while pending or heap:
            push = pending and (not heap
                                or data.draw(st.booleans(), label="push"))
            if push:
                event = pending.pop()
                heap.push(event)
                cal.push(event)
            else:
                assert heap.pop() == cal.pop()
        assert len(cal) == 0

    def test_stats_are_deterministic_counters(self):
        events = [(float(t % 7), t % 2, t, -1) for t in range(40)]

        def drain(kind):
            queue = make_event_queue(kind)
            for event in events:
                queue.push(event)
            while queue:
                queue.pop()
            return queue.stats()

        first, second = drain("calendar"), drain("calendar")
        assert first == second
        assert first["pushes"] == first["pops"] == 40.0
        heap_stats = drain("heap")
        assert heap_stats["kind"] == "heap"
        assert heap_stats["pushes"] == 40.0

    def test_simulator_queue_kinds_agree(self):
        requests = generate_requests(
            TrafficProfile(arrival_rate=120.0), 150, seed=3)
        results = {}
        for kind in queue_kinds():
            sim = FarmSimulator(_farm(), make_scheduler("preferential"),
                                queue=kind)
            results[kind] = sim.run(requests)
            assert sim.last_queue_stats["kind"] == kind
        assert (results["heap"].completions
                == results["calendar"].completions)
        assert (results["heap"].makespan_cycles
                == results["calendar"].makespan_cycles)


class TestForkHygiene:
    def test_distinct_shard_labels_are_independent(self):
        root = DeterministicPrng(11)
        streams = {label: root.fork(label)
                   for label in ("shard[1]", "shard[10]", "shard[0]")}
        draws = {label: [prng.next_u64() for _ in range(32)]
                 for label, prng in streams.items()}
        values = list(draws.values())
        assert values[0] != values[1]
        assert values[0] != values[2]
        assert values[1] != values[2]

    def test_nested_forks_are_independent(self):
        root = DeterministicPrng(11)
        inner_a = root.fork("shard[1]").fork("epoch[0]")
        inner_b = root.fork("shard[1]").fork("epoch[1]")
        outer = root.fork("epoch[0]")
        a = [inner_a.next_u64() for _ in range(16)]
        b = [inner_b.next_u64() for _ in range(16)]
        c = [outer.next_u64() for _ in range(16)]
        assert a != b and a != c

    def test_fork_ignores_draw_position(self):
        fresh = DeterministicPrng(11).fork("shard[3]")
        consumed = DeterministicPrng(11)
        for _ in range(100):
            consumed.next_u64()
        late_fork = consumed.fork("shard[3]")
        assert ([fresh.next_u64() for _ in range(8)]
                == [late_fork.next_u64() for _ in range(8)])


class TestShardWorkload:
    def test_one_shard_is_the_plain_stream(self):
        profile = TrafficProfile(arrival_rate=80.0)
        assert shard_workload(profile, 120, 1, seed=5) == \
            [generate_requests(profile, 120, seed=5)]

    def test_shards_are_disjoint_and_complete(self):
        profile = TrafficProfile(arrival_rate=80.0, clients=64)
        workloads = shard_workload(profile, 100, 4, seed=5)
        assert len(workloads) == 4
        assert sum(len(w) for w in workloads) == 100
        seqs = [r.seq for shard in workloads for r in shard]
        assert sorted(seqs) == list(range(100))
        for i, shard in enumerate(workloads):
            assert all(r.seq % 4 == i for r in shard)
            assert all(r.client_id % 4 == i for r in shard)
            assert all(r.client_id < profile.clients for r in shard)

    def test_sharded_workload_is_deterministic(self):
        profile = TrafficProfile(arrival_rate=80.0)
        assert shard_workload(profile, 100, 4, seed=5) == \
            shard_workload(profile, 100, 4, seed=5)

    def test_validation(self):
        profile = TrafficProfile(clients=4)
        with pytest.raises(ValueError):
            shard_workload(profile, 10, 0)
        with pytest.raises(ValueError):
            shard_workload(profile, 10, 8)    # more shards than clients
        with pytest.raises(ValueError):
            shard_workload(profile, -1, 2)

    def test_partition_requests_recovers_generated_shards(self):
        profile = TrafficProfile(arrival_rate=80.0)
        workloads = shard_workload(profile, 100, 4, seed=5)
        flat = sorted((r for shard in workloads for r in shard),
                      key=lambda r: r.seq)
        assert partition_requests(flat, 4) == workloads
        assert partition_requests(flat, 1) == [flat]


class TestShardedRun:
    def test_shards1_bit_identical_to_simulator(self):
        profile = TrafficProfile(arrival_rate=80.0)
        requests = generate_requests(profile, 150, seed=3)
        specs = _farm()
        plain = FarmSimulator(specs,
                              make_scheduler("preferential")).run(requests)
        run = run_sharded(specs, "preferential", profile, 150, shards=1,
                          seed=3)
        assert run.result.completions == plain.completions
        assert run.result.makespan_cycles == plain.makespan_cycles
        assert run.result.offered == plain.offered
        assert run.result.events_processed == plain.events_processed
        assert run.shards == 1 and run.executor == "serial"

    def test_merged_metrics_independent_of_executor(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        specs = _farm(16)
        rows = []
        for executor in (SerialExecutor(), ThreadExecutor(4)):
            with executor:
                run = run_sharded(specs, "preferential", profile, 160,
                                  shards=8, seed=3, executor=executor)
            assert run.result.offered == 160
            rows.append(summarize(run.result).as_dict())
        assert rows[0] == rows[1]

    def test_repeated_runs_reproduce(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        specs = _farm(16)
        a = run_sharded(specs, "preferential", profile, 120, shards=8,
                        seed=9)
        b = run_sharded(specs, "preferential", profile, 120, shards=8,
                        seed=9)
        assert summarize(a.result).as_dict() == \
            summarize(b.result).as_dict()
        assert a.queue_stats == b.queue_stats

    def test_merge_order_does_not_change_metrics(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        specs = _farm(8)
        workloads = shard_workload(profile, 120, 4, seed=9)

        def shard_results(order):
            results = []
            for i in order:
                sim = FarmSimulator(list(specs[i::4]),
                                    make_scheduler("preferential"))
                results.append(sim.run(workloads[i]))
            return results

        forward = summarize(
            merge_results(shard_results([0, 1, 2, 3]))).as_dict()
        reversed_ = summarize(
            merge_results(shard_results([3, 2, 1, 0]))).as_dict()
        # Scalar metrics are permutation-invariant; the per-core
        # utilization vector is only defined up to shard order.
        forward_util = sorted(forward.pop("core_utilization"))
        reversed_util = sorted(reversed_.pop("core_utilization"))
        assert forward == reversed_
        assert forward_util == reversed_util

    def test_merged_core_indices_are_consistent(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        run = run_sharded(_farm(8), "least-loaded", profile, 100,
                          shards=4, seed=2)
        result = run.result
        assert len(result.cores) == 8
        assert [core.index for core in result.cores] == list(range(8))
        for completion in result.completions:
            assert result.cores[completion.core_index].index == \
                completion.core_index
        finishes = [c.finish_cycle for c in result.completions]
        assert finishes == sorted(finishes)

    def test_calendar_queue_matches_heap_when_sharded(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        specs = _farm(16)
        by_queue = {
            kind: summarize(run_sharded(specs, "preferential", profile,
                                        160, shards=8, seed=3,
                                        queue=kind).result).as_dict()
            for kind in queue_kinds()}
        assert by_queue["heap"] == by_queue["calendar"]

    def test_more_shards_than_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            run_sharded(_farm(4), "preferential",
                        TrafficProfile(clients=64), 50, shards=8)

    def test_requires_workload_or_profile(self):
        with pytest.raises(ValueError, match="requests"):
            run_sharded(_farm(4), "preferential")

    def test_replay_partition_equals_generated(self):
        profile = TrafficProfile(arrival_rate=200.0, clients=128)
        specs = _farm(8)
        generated = run_sharded(specs, "preferential", profile, 120,
                                shards=4, seed=9)
        flat = sorted((r for shard in
                       shard_workload(profile, 120, 4, seed=9)
                       for r in shard), key=lambda r: r.seq)
        replayed = run_sharded(specs, "preferential", shards=4,
                               requests=flat)
        assert summarize(generated.result).as_dict() == \
            summarize(replayed.result).as_dict()


class TestReplay:
    def test_round_trip_is_exact(self, tmp_path):
        profile = TrafficProfile(arrival_rate=80.0)
        requests = generate_requests(profile, 120, seed=3)
        path = tmp_path / "trace.jsonl"
        assert export_workload(path, requests, seed=3,
                               profile="default") == 120
        trace = import_workload(path)
        assert trace.requests == requests
        assert trace.meta == {"seed": 3, "profile": "default"}

    def test_replayed_run_is_identical(self, tmp_path):
        profile = TrafficProfile(arrival_rate=80.0)
        requests = generate_requests(profile, 120, seed=3)
        path = tmp_path / "trace.jsonl"
        export_workload(path, requests)
        specs = _farm()
        original = FarmSimulator(
            specs, make_scheduler("preferential")).run(requests)
        replayed = FarmSimulator(
            specs, make_scheduler("preferential")).run(
                import_workload(path).requests)
        assert replayed.completions == original.completions
        assert replayed.makespan_cycles == original.makespan_cycles

    def test_rejects_foreign_and_truncated_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a"):
            import_workload(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            import_workload(empty)
        requests = generate_requests(TrafficProfile(), 10, seed=1)
        full = tmp_path / "full.jsonl"
        export_workload(full, requests)
        lines = full.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            import_workload(truncated)
