"""Tests for the WTLS protocol model (ECDH handshake + records)."""

import pytest

from repro.crypto.ec import TINY_CURVE
from repro.mp import DeterministicPrng
from repro.protocols.wtls import (WtlsClient, WtlsError, WtlsGateway,
                                  WtlsRecordLayer, derive_session,
                                  make_channels, prf)


@pytest.fixture(scope="module")
def session():
    gateway = WtlsGateway(prng=DeterministicPrng(1))
    client = WtlsClient(prng=DeterministicPrng(2))
    return client.handshake(gateway, "des")


class TestPrf:
    def test_deterministic_and_sized(self):
        a = prf(b"secret", b"label", b"seed", 77)
        assert len(a) == 77
        assert a == prf(b"secret", b"label", b"seed", 77)

    def test_sensitive_to_label(self):
        assert prf(b"s", b"l1", b"seed", 20) != prf(b"s", b"l2", b"seed", 20)


class TestHandshake:
    def test_session_keys_distinct(self, session):
        parts = [session.client_write_key, session.server_write_key,
                 session.client_mac_key, session.server_mac_key]
        assert len({bytes(p) for p in parts}) == 4

    def test_aes_suite(self):
        gateway = WtlsGateway(prng=DeterministicPrng(3))
        sess = WtlsClient(prng=DeterministicPrng(4)).handshake(gateway,
                                                               "aes")
        assert len(sess.client_write_key) == 16

    def test_unknown_suite(self):
        gateway = WtlsGateway(prng=DeterministicPrng(3))
        with pytest.raises(WtlsError):
            WtlsClient().handshake(gateway, "rc6")

    def test_distinct_clients_distinct_sessions(self):
        gateway = WtlsGateway(prng=DeterministicPrng(3))
        s1 = WtlsClient(prng=DeterministicPrng(10)).handshake(gateway)
        s2 = WtlsClient(prng=DeterministicPrng(11)).handshake(gateway)
        assert s1.client_write_key != s2.client_write_key


class TestRecords:
    def test_roundtrip(self, session):
        sender, receiver = make_channels(session)
        record = sender.seal(b"wap page request")
        assert receiver.open(record) == b"wap page request"

    def test_sequence_enforced(self, session):
        sender, receiver = make_channels(session)
        record = sender.seal(b"once")
        receiver.open(record)
        with pytest.raises(WtlsError):
            receiver.open(record)

    def test_tamper_detected(self, session):
        sender, receiver = make_channels(session)
        record = bytearray(sender.seal(b"payload"))
        record[-1] ^= 1
        with pytest.raises(WtlsError):
            receiver.open(bytes(record))

    def test_short_record(self, session):
        _, receiver = make_channels(session)
        with pytest.raises(WtlsError):
            receiver.open(b"\x00")

    def test_directions_use_distinct_keys(self, session):
        client_side = WtlsRecordLayer(session, client_side=True)
        server_side = WtlsRecordLayer(session, client_side=False)
        record = client_side.seal(b"data")
        with pytest.raises(WtlsError):
            server_side.open(record)

    def test_multiple_records_chain(self, session):
        sender, receiver = make_channels(session)
        for i in range(5):
            msg = bytes([i]) * (i + 1)
            assert receiver.open(sender.seal(msg)) == msg


class TestDerivation:
    def test_derive_session_deterministic(self):
        a = derive_session(b"pm", b"seed", "des")
        b = derive_session(b"pm", b"seed", "des")
        assert a.client_write_key == b.client_write_key

    def test_seed_changes_keys(self):
        a = derive_session(b"pm", b"seed1", "des")
        b = derive_session(b"pm", b"seed2", "des")
        assert a.client_write_key != b.client_write_key
