"""Unit and property tests for the Mpz signed integer layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import Mpz, RADIX16
from repro.mp.hooks import traced

ints = st.integers(min_value=-(1 << 256), max_value=(1 << 256) - 1)
nonzero = ints.filter(lambda x: x != 0)
small_pos = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestConstruction:
    @given(ints)
    def test_int_roundtrip(self, x):
        assert int(Mpz(x)) == x

    def test_copy_constructor(self):
        a = Mpz(42)
        b = Mpz(a)
        assert int(b) == 42

    def test_radix_conversion_on_copy(self):
        a = Mpz(1 << 100)
        b = Mpz(a, radix=RADIX16)
        assert int(b) == 1 << 100
        assert b.radix is RADIX16

    def test_from_bytes_roundtrip(self):
        data = b"\x01\x02\x03\x04\x05"
        assert Mpz.from_bytes(data).to_bytes(5) == data

    def test_to_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            Mpz(-1).to_bytes(4)


class TestArithmetic:
    @given(ints, ints)
    def test_add(self, a, b):
        assert int(Mpz(a) + Mpz(b)) == a + b

    @given(ints, ints)
    def test_sub(self, a, b):
        assert int(Mpz(a) - Mpz(b)) == a - b

    @given(ints, ints)
    def test_mul(self, a, b):
        assert int(Mpz(a) * Mpz(b)) == a * b

    @given(ints)
    def test_neg_abs(self, a):
        assert int(-Mpz(a)) == -a
        assert int(abs(Mpz(a))) == abs(a)

    @given(ints, nonzero)
    def test_divmod_matches_python(self, a, b):
        q, r = divmod(Mpz(a), Mpz(b))
        eq, er = divmod(a, b)
        assert (int(q), int(r)) == (eq, er)

    @given(ints, nonzero)
    def test_floordiv_mod(self, a, b):
        assert int(Mpz(a) // Mpz(b)) == a // b
        assert int(Mpz(a) % Mpz(b)) == a % b

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            divmod(Mpz(1), Mpz(0))

    @given(ints, st.integers(min_value=0, max_value=200))
    def test_shifts(self, a, cnt):
        assert int(Mpz(a) << cnt) == a << cnt
        assert int(Mpz(a) >> cnt) == a >> cnt

    @given(ints, ints)
    def test_mixed_int_operands(self, a, b):
        assert int(Mpz(a) + b) == a + b
        assert int(a + Mpz(b)) == a + b
        assert int(a - Mpz(b)) == a - b
        assert int(Mpz(a) * b) == a * b

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=0, max_value=12))
    def test_pow(self, a, e):
        assert int(Mpz(a) ** e) == a ** e


class TestComparison:
    @given(ints, ints)
    def test_ordering(self, a, b):
        assert (Mpz(a) < Mpz(b)) == (a < b)
        assert (Mpz(a) <= Mpz(b)) == (a <= b)
        assert (Mpz(a) == Mpz(b)) == (a == b)
        assert (Mpz(a) >= Mpz(b)) == (a >= b)
        assert (Mpz(a) > Mpz(b)) == (a > b)

    @given(ints)
    def test_compare_with_int(self, a):
        assert Mpz(a) == a
        assert (Mpz(a) < a + 1)

    @given(ints)
    def test_hash_consistent(self, a):
        assert hash(Mpz(a)) == hash(Mpz(a))

    def test_bool(self):
        assert not Mpz(0)
        assert Mpz(1)
        assert Mpz(-1)


class TestBits:
    @given(st.integers(min_value=0, max_value=(1 << 256) - 1))
    def test_bit_length(self, a):
        assert Mpz(a).bit_length() == a.bit_length()

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=0, max_value=200))
    def test_test_bit(self, a, i):
        assert Mpz(a).test_bit(i) == (a >> i) & 1

    @given(ints)
    def test_parity(self, a):
        assert Mpz(a).is_odd() == bool(a & 1)
        assert Mpz(a).is_even() == (not a & 1)


class TestModularOps:
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=0, max_value=(1 << 16) - 1),
           st.integers(min_value=1, max_value=(1 << 128) - 1))
    @settings(max_examples=30)
    def test_pow_mod(self, base, exp, mod):
        assert int(Mpz(base).pow_mod(exp, mod)) == pow(base, exp, mod)

    def test_pow_mod_negative_exponent_uses_inverse(self):
        # 3^-1 mod 7 == 5, so 3^-2 mod 7 == 25 mod 7 == 4
        assert int(Mpz(3).pow_mod(-2, 7)) == 4

    def test_pow_mod_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            Mpz(2).pow_mod(3, 0)

    @given(st.integers(min_value=1, max_value=(1 << 128) - 1),
           st.integers(min_value=1, max_value=(1 << 128) - 1))
    def test_gcdext_bezout(self, a, b):
        g, s, t = Mpz(a).gcdext(b)
        import math
        assert int(g) == math.gcd(a, b)
        assert int(s) * a + int(t) * b == int(g)

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1))
    def test_invert(self, a):
        mod = (1 << 127) - 1  # Mersenne prime: everything nonzero inverts
        a = a % mod or 1
        inv = Mpz(a).invert(mod)
        assert (int(inv) * a) % mod == 1

    def test_invert_nonexistent(self):
        with pytest.raises(ValueError):
            Mpz(4).invert(8)


class TestTracing:
    def test_leaf_routines_report_to_tracer(self):
        calls = []
        with traced(lambda name, params: calls.append((name, params))):
            _ = Mpz(1 << 200) * Mpz(1 << 200)
        names = {name for name, _ in calls}
        assert "mpn_mul_1" in names or "mpn_addmul_1" in names

    def test_tracer_cleared_after_context(self):
        from repro.mp.hooks import get_tracer
        with traced(lambda name, params: None):
            pass
        assert get_tracer() is None


class TestRadix16Mpz:
    @given(ints, ints)
    @settings(max_examples=30)
    def test_mul_radix16(self, a, b):
        assert int(Mpz(a, RADIX16) * Mpz(b, RADIX16)) == a * b

    @given(ints, nonzero)
    @settings(max_examples=30)
    def test_divmod_radix16(self, a, b):
        q, r = divmod(Mpz(a, RADIX16), Mpz(b, RADIX16))
        assert (int(q), int(r)) == divmod(a, b)
