"""Tests for elliptic-curve cryptography (point math, ECDH, ECDSA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ec import (CURVES, Curve, EcError, Point, SECP160R1,
                             SECP192R1, TINY_CURVE, ecdh_shared_secret,
                             ecdsa_sign, ecdsa_verify, generate_ec_keypair)
from repro.mp import DeterministicPrng, Mpz


class TestCurveParameters:
    @pytest.mark.parametrize("curve", [SECP160R1, SECP192R1, TINY_CURVE])
    def test_generator_on_curve(self, curve):
        assert curve.contains(curve.gx, curve.gy)

    @pytest.mark.parametrize("curve", [SECP160R1, SECP192R1])
    def test_generator_order(self, curve):
        assert curve.generator().scalar_mul(curve.n).is_infinity()

    def test_tiny_curve_order(self):
        g = TINY_CURVE.generator()
        assert g.scalar_mul(TINY_CURVE.n).is_infinity()
        assert not g.scalar_mul(TINY_CURVE.n - 1).is_infinity()

    def test_off_curve_point_rejected(self):
        with pytest.raises(EcError):
            Point(TINY_CURVE, Mpz(1), Mpz(1))


class TestGroupLaw:
    def _points(self):
        g = TINY_CURVE.generator()
        return [TINY_CURVE.infinity()] + \
            [g.scalar_mul(k) for k in range(1, TINY_CURVE.n)]

    def test_identity(self):
        o = TINY_CURVE.infinity()
        for point in self._points():
            assert point + o == point
            assert o + point == point

    def test_inverse(self):
        for point in self._points():
            assert (point + (-point)).is_infinity()

    def test_commutativity(self):
        pts = self._points()
        for a in pts:
            for b in pts:
                assert a + b == b + a

    def test_associativity(self):
        pts = self._points()
        for a in pts[:4]:
            for b in pts[:4]:
                for c in pts[:4]:
                    assert (a + b) + c == a + (b + c)

    def test_subgroup_closure(self):
        pts = set(self._points())
        for a in pts:
            for b in pts:
                assert a + b in pts

    @given(k=st.integers(min_value=0, max_value=10 ** 9))
    @settings(max_examples=25)
    def test_scalar_mul_matches_double_and_add(self, k):
        g = TINY_CURVE.generator()
        # reference: repeated addition over the tiny group
        reference = TINY_CURVE.infinity()
        for _ in range(k % TINY_CURVE.n):
            reference = reference + g
        assert g.scalar_mul(k) == reference

    @pytest.mark.parametrize("window", [1, 2, 4, 6])
    def test_windows_agree(self, window):
        g = SECP160R1.generator()
        k = 0xDEADBEEF12345
        assert g.scalar_mul(k, window=window) == g.scalar_mul(k, window=4)

    def test_bad_window(self):
        with pytest.raises(EcError):
            TINY_CURVE.generator().scalar_mul(2, window=0)

    def test_distributivity_on_real_curve(self):
        g = SECP160R1.generator()
        a, b = 0x1234567, 0x89ABCD
        assert g.scalar_mul(a) + g.scalar_mul(b) == g.scalar_mul(a + b)


class TestEcdh:
    def test_agreement(self):
        alice = generate_ec_keypair(SECP160R1, DeterministicPrng(1))
        bob = generate_ec_keypair(SECP160R1, DeterministicPrng(2))
        assert ecdh_shared_secret(alice.private, bob.public) == \
            ecdh_shared_secret(bob.private, alice.public)

    def test_infinity_rejected(self):
        alice = generate_ec_keypair(TINY_CURVE, DeterministicPrng(1))
        with pytest.raises(EcError):
            ecdh_shared_secret(alice.private, TINY_CURVE.infinity())

    def test_keypair_consistency(self):
        kp = generate_ec_keypair(SECP192R1, DeterministicPrng(3))
        assert kp.public == SECP192R1.generator().scalar_mul(kp.private)


class TestEcdsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_ec_keypair(SECP160R1, DeterministicPrng(7))

    def test_sign_verify(self, keypair):
        sig = ecdsa_sign(b"handset order", keypair, DeterministicPrng(9))
        assert ecdsa_verify(b"handset order", sig, SECP160R1,
                            keypair.public)

    def test_tampered_message_rejected(self, keypair):
        sig = ecdsa_sign(b"message", keypair, DeterministicPrng(9))
        assert not ecdsa_verify(b"messagE", sig, SECP160R1, keypair.public)

    def test_wrong_key_rejected(self, keypair):
        other = generate_ec_keypair(SECP160R1, DeterministicPrng(8))
        sig = ecdsa_sign(b"message", keypair, DeterministicPrng(9))
        assert not ecdsa_verify(b"message", sig, SECP160R1, other.public)

    def test_out_of_range_signature_rejected(self, keypair):
        assert not ecdsa_verify(b"m", (0, 1), SECP160R1, keypair.public)
        assert not ecdsa_verify(b"m", (1, SECP160R1.n), SECP160R1,
                                keypair.public)

    def test_nonce_variation_changes_signature(self, keypair):
        s1 = ecdsa_sign(b"m", keypair, DeterministicPrng(1))
        s2 = ecdsa_sign(b"m", keypair, DeterministicPrng(2))
        assert s1 != s2
        assert ecdsa_verify(b"m", s1, SECP160R1, keypair.public)
        assert ecdsa_verify(b"m", s2, SECP160R1, keypair.public)


class TestRegistry:
    def test_curves_registered(self):
        assert set(CURVES) == {"secp160r1", "secp192r1", "tiny97"}

    def test_bits(self):
        assert SECP160R1.bits == 160
        assert SECP192R1.bits == 192
