"""Tests for repro.obs.profile: span-tree reconstruction, merge-by-path
attribution, exact conservation on a traced farm run, call-graph
profiles, and the folded/JSON exports."""

import io
import json

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmSimulator, PreferentialScheduler,
                        TrafficProfile, build_farm, generate_requests)
from repro.isa.machine import Profile as IssProfile
from repro.obs import (CycleProfile, Tracer, read_events_jsonl,
                       write_events_jsonl)
from repro.tie.callgraph import CallGraph

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


def _traced_farm_run(n_requests=120, seed=7):
    tracer = Tracer()
    requests = generate_requests(TrafficProfile(arrival_rate=80.0),
                                 n_requests, seed=seed)
    sim = FarmSimulator(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5),
                        PreferentialScheduler(), tracer=tracer)
    return tracer, sim.run(requests)


def _sequential_tracer():
    """A logical-clock trace: strictly nested, no concurrency."""
    tracer = Tracer()
    with tracer.span("main"):
        for _ in range(3):
            with tracer.span("handshake"):
                with tracer.span("rsa"):
                    pass
                with tracer.span("hash"):
                    pass
        with tracer.span("bulk"):
            pass
    return tracer


class TestSpanTreeMerging:
    def test_merges_repeated_paths_with_counts(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        main = profile.roots["main"]
        assert main.count == 1
        handshake = main.children["handshake"]
        assert handshake.count == 3
        assert handshake.children["rsa"].count == 3
        assert main.children["bulk"].count == 1
        assert handshake.path == ("main", "handshake")

    def test_unparented_spans_become_roots(self):
        tracer = Tracer()
        tracer.record("a", start=0.0, end=10.0)
        tracer.record("b", start=0.0, end=5.0, parent_id=999)  # orphan
        profile = CycleProfile.from_tracer(tracer)
        assert sorted(profile.roots) == ["a", "b"]

    def test_unfinished_spans_are_skipped(self):
        tracer = Tracer()
        open_span = tracer.open_virtual("never.closed", 0.0)
        tracer.record("child", start=1.0, end=2.0,
                      parent_id=open_span.span_id)
        profile = CycleProfile.from_tracer(tracer)
        assert sorted(profile.roots) == ["child"]

    def test_group_by_attr_splits_paths(self):
        tracer = Tracer()
        tracer.record("req", start=0.0, end=4.0, protocol="ssl")
        tracer.record("req", start=0.0, end=2.0, protocol="wep")
        tracer.record("req", start=4.0, end=10.0, protocol="ssl")
        profile = CycleProfile.from_tracer(tracer,
                                           group_by=("protocol",))
        assert sorted(profile.roots) == ["req{protocol=ssl}",
                                        "req{protocol=wep}"]
        assert profile.roots["req{protocol=ssl}"].count == 2
        assert profile.roots["req{protocol=ssl}"].cum_cycles == 10.0


class TestInvariants:
    """On sequential traces: 0 <= self <= cum, child cum <= parent cum."""

    def test_self_within_cumulative_everywhere(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        for node in profile.nodes():
            assert 0.0 <= node.self_cycles <= node.cum_cycles

    def test_children_cumulative_bounded_by_parent(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        for node in profile.nodes():
            child_total = sum(c.cum_cycles
                              for c in node.children.values())
            assert child_total <= node.cum_cycles
            for child in node.children.values():
                assert child.cum_cycles <= node.cum_cycles

    def test_self_le_cum_even_on_concurrent_farm_tree(self):
        tracer, _ = _traced_farm_run(n_requests=60)
        profile = CycleProfile.from_tracer(tracer)
        for node in profile.nodes():
            assert node.self_cycles <= node.cum_cycles

    def test_conservation_on_sequential_trace(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        assert profile.total_self() == profile.total_cycles()


class TestFarmConservation:
    """Acceptance: every simulated cycle is attributed exactly once."""

    def test_root_cumulative_equals_total_simulated_cycles(self):
        tracer, result = _traced_farm_run()
        profile = CycleProfile.from_tracer(tracer)
        root = profile.roots["farm.run"]
        assert root.cum_cycles == result.makespan_cycles  # exact

    def test_summed_self_equals_root_cumulative(self):
        tracer, result = _traced_farm_run()
        profile = CycleProfile.from_tracer(tracer)
        root = profile.roots["farm.run"]
        assert profile.total_self() == root.cum_cycles  # exact
        assert profile.total_self() == profile.total_cycles()

    def test_wait_and_service_tile_each_request_exactly(self):
        tracer, result = _traced_farm_run()
        profile = CycleProfile.from_tracer(tracer)
        request = profile.roots["farm.run"].children["farm.request"]
        assert sorted(request.children) == ["farm.service", "farm.wait"]
        # Children cover the request span exactly: zero self residue.
        assert request.self_cycles == 0.0
        assert request.count == len(result.completions)
        # Service cycles match the cores' busy accounting.
        service = request.children["farm.service"]
        busy = sum(core.busy_cycles for core in result.cores)
        assert service.cum_cycles == pytest.approx(busy)

    def test_profile_is_deterministic_across_runs(self):
        dumps = []
        for _ in range(2):
            tracer, _ = _traced_farm_run()
            profile = CycleProfile.from_tracer(tracer)
            dumps.append(json.dumps(profile.as_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]


class TestCallGraphProfiles:
    def _graph(self):
        graph = CallGraph("modexp")
        graph.add_edge("modexp", "mont_mul", 4)
        graph.add_edge("mont_mul", "mpn_addmul_1", 8)
        graph.add_edge("modexp", "mpn_add_n", 2)
        graph.set_local_cycles("modexp", 100.0)
        graph.set_local_cycles("mont_mul", 50.0)
        graph.set_local_cycles("mpn_addmul_1", 30.0)
        graph.set_local_cycles("mpn_add_n", 10.0)
        return graph

    def test_root_cum_matches_callgraph_total(self):
        graph = self._graph()
        profile = CycleProfile.from_callgraph(graph)
        root = profile.roots["modexp"]
        assert root.cum_cycles == pytest.approx(graph.total_cycles())
        assert profile.total_self() == profile.total_cycles()

    def test_counts_multiply_along_call_edges(self):
        profile = CycleProfile.from_callgraph(self._graph())
        mont = profile.roots["modexp"].children["mont_mul"]
        assert mont.count == 4
        assert mont.children["mpn_addmul_1"].count == 32
        assert mont.children["mpn_addmul_1"].self_cycles == 32 * 30.0

    def test_from_iss_profile_reuses_callgraph_names(self):
        iss = IssProfile(
            local_cycles={"modexp": 100, "mont_mul": 400,
                          "mpn_addmul_1": 960},
            call_edges={("<entry>", "modexp"): 1,
                        ("modexp", "mont_mul"): 4,
                        ("mont_mul", "mpn_addmul_1"): 32},
            call_counts={"modexp": 1, "mont_mul": 4,
                         "mpn_addmul_1": 32})
        profile = CycleProfile.from_iss_profile(iss, "modexp")
        graph = CallGraph.from_profile(iss, "modexp")
        assert set(profile.roots) == {"modexp"}
        node = profile.find(("modexp", "mont_mul", "mpn_addmul_1"))
        assert node is not None and node.name in graph.nodes
        assert profile.roots["modexp"].cum_cycles == pytest.approx(
            graph.total_cycles())


class TestExports:
    def test_folded_lines_format(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        lines = profile.folded()
        assert lines
        for line in lines:
            stack, _, cycles = line.rpartition(" ")
            assert stack and int(cycles) > 0
        assert any(line.startswith("main;handshake;rsa ")
                   for line in lines)

    def test_top_sorted_by_self_then_path(self):
        tracer, _ = _traced_farm_run(n_requests=60)
        profile = CycleProfile.from_tracer(tracer)
        top = profile.top(3)
        selfs = [n.self_cycles for n in top]
        assert selfs == sorted(selfs, reverse=True)
        with pytest.raises(ValueError):
            profile.top(3, key="bogus")

    def test_render_top_mentions_hot_paths(self):
        tracer, _ = _traced_farm_run(n_requests=60)
        rendered = CycleProfile.from_tracer(tracer).render_top(5)
        assert "farm.run;farm.request;farm.service" in rendered

    def test_as_dict_round_trips_through_json(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        payload = json.loads(json.dumps(profile.as_dict()))
        assert payload["total_cycles"] == payload["total_self_cycles"]
        assert payload["roots"][0]["name"] == "main"

    def test_profile_from_jsonl_round_trip_matches_live(self):
        tracer, _ = _traced_farm_run(n_requests=40)
        live = CycleProfile.from_tracer(tracer)
        buf = io.StringIO()
        write_events_jsonl(tracer, buf)
        buf.seek(0)
        replayed = CycleProfile.from_tracer(read_events_jsonl(buf))
        assert (json.dumps(replayed.as_dict(), sort_keys=True)
                == json.dumps(live.as_dict(), sort_keys=True))

    def test_find_returns_none_for_unknown_paths(self):
        profile = CycleProfile.from_tracer(_sequential_tracer())
        assert profile.find(()) is None
        assert profile.find(("main", "nope")) is None
        assert profile.find(("main", "bulk")).name == "bulk"
