"""Deterministic fault injection: plans, failure-aware scheduling,
sharded chaos identity, and the FarmConfig/run_farm facade.

Same frozen measured unit costs as ``test_farm.py`` -- fault handling
is a pure function of these numbers, so no ISS characterization runs.
"""

import warnings
from dataclasses import replace

import pytest

from repro.costs import PlatformCosts
from repro.farm import (AutoscalePolicy, FarmConfig, FarmSimulator,
                        FaultEvent, FaultPlan, TrafficProfile,
                        build_farm, generate_fault_plan,
                        generate_requests, make_scheduler,
                        run_autoscale, run_farm, run_sharded,
                        simulate_autoscale, summarize)
from repro.farm.faults import summarize_faults
from repro.farm.workload import SessionRequest
from repro.obs.slo import SloTarget
from repro.parallel import ThreadExecutor
from repro.ssl.throughput import DEFAULT_CLOCK_HZ

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)

#: Comfortably longer than any single handshake at these costs.
GAP = 100e6


def _farm(n_cores=8, fraction=0.5):
    return build_farm(n_cores, BASE_COSTS, OPT_COSTS, fraction)


def _req(seq, arrival, client=0, resumed=False, protocol="ssl"):
    return SessionRequest(seq=seq, arrival_cycle=arrival,
                          protocol=protocol, size_bytes=1024,
                          resumed=resumed, client_id=client)


def _run_with_plan(specs, scheduler, requests, plan):
    sim = FarmSimulator(list(specs), make_scheduler(scheduler),
                        faults=plan)
    return sim.run(list(requests))


class TestFaultEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(cycle=0.0, kind="meteor", core=0)

    @pytest.mark.parametrize("kwargs", [
        dict(cycle=-1.0, kind="core_down", core=0),
        dict(cycle=0.0, kind="core_down", core=-1),
    ])
    def test_negative_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)

    def test_round_trip(self):
        event = FaultEvent(cycle=12.5, kind="cache_flush", core=3)
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestFaultPlan:
    def test_events_sorted_with_declaration_tiebreak(self):
        plan = FaultPlan(events=(
            FaultEvent(cycle=5.0, kind="core_up", core=1),
            FaultEvent(cycle=1.0, kind="core_down", core=1),
            FaultEvent(cycle=5.0, kind="cache_flush", core=0),
        ))
        assert [e.cycle for e in plan.events] == [1.0, 5.0, 5.0]
        # Same-cycle events keep declaration order.
        assert plan.events[1].kind == "core_up"
        assert plan.events[2].kind == "cache_flush"

    def test_bool_and_penalty_validation(self):
        assert not FaultPlan()
        assert FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="core_down", core=0),))
        with pytest.raises(ValueError, match="penalty"):
            FaultPlan(redispatch_penalty_cycles=-1.0)

    def test_subplan_strided_partitions_events(self):
        plan = generate_fault_plan(3, 8, 1e9, episodes=6)
        shards = 4
        recovered = []
        for shard in range(shards):
            sub = plan.subplan_strided(shards, shard)
            assert sub.redispatch_penalty_cycles == \
                plan.redispatch_penalty_cycles
            for event in sub.events:
                # Local core g//shards on shard g%shards is global
                # core g under the specs[i::shards] ownership.
                recovered.append(replace(
                    event, core=event.core * shards + shard))
        key = lambda e: (e.cycle, e.kind, e.core)
        assert sorted(recovered, key=key) == \
            sorted(plan.events, key=key)

    def test_subplan_validation_and_identity(self):
        plan = FaultPlan(events=(
            FaultEvent(cycle=1.0, kind="core_down", core=2),))
        assert plan.subplan_strided(1, 0) is plan
        with pytest.raises(ValueError):
            plan.subplan_strided(0, 0)
        with pytest.raises(ValueError):
            plan.subplan_strided(2, 2)

    def test_window_filters_and_rebases(self):
        plan = FaultPlan(events=(
            FaultEvent(cycle=10.0, kind="core_down", core=0),
            FaultEvent(cycle=25.0, kind="core_up", core=0),
            FaultEvent(cycle=40.0, kind="cache_flush", core=1),
        ))
        window = plan.window(20.0, 40.0)
        assert [(e.cycle, e.kind) for e in window.events] == \
            [(5.0, "core_up")]
        with pytest.raises(ValueError):
            plan.window(10.0, 5.0)

    def test_round_trip(self):
        plan = generate_fault_plan(9, 4, 1e8, episodes=2,
                                   degraded_costs=BASE_COSTS)
        rebuilt = FaultPlan.from_dict(plan.as_dict(),
                                      degraded_costs=BASE_COSTS)
        assert rebuilt.events == plan.events
        assert rebuilt.redispatch_penalty_cycles == \
            plan.redispatch_penalty_cycles
        assert rebuilt.degraded_costs is BASE_COSTS


class TestGenerateFaultPlan:
    def test_deterministic(self):
        a = generate_fault_plan(7, 8, 1e9, episodes=5)
        b = generate_fault_plan(7, 8, 1e9, episodes=5)
        assert a.events == b.events

    def test_seed_changes_schedule(self):
        a = generate_fault_plan(7, 8, 1e9, episodes=5)
        b = generate_fault_plan(8, 8, 1e9, episodes=5)
        assert a.events != b.events

    def test_events_target_known_cores_within_horizon(self):
        plan = generate_fault_plan(1, 4, 1e9, episodes=10)
        assert plan.events
        for event in plan.events:
            assert 0 <= event.core < 4
            assert event.cycle >= 0.0
            assert event.kind in ("core_down", "core_up",
                                  "cache_flush", "degrade")

    @pytest.mark.parametrize("kwargs", [
        dict(seed=1, n_cores=0, horizon_cycles=1e9),
        dict(seed=1, n_cores=4, horizon_cycles=0.0),
        dict(seed=1, n_cores=4, horizon_cycles=1e9, episodes=-1),
        dict(seed=1, n_cores=4, horizon_cycles=1e9,
             mean_outage_fraction=0.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            generate_fault_plan(**kwargs)


class TestSimulatorUnderFaults:
    def test_no_dispatch_to_dead_core(self):
        # Kill core 0 before traffic; everything must land on core 1.
        specs = _farm(2, 0.0)
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="core_down", core=0),))
        requests = [_req(i, (i + 1) * GAP, client=i) for i in range(6)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        assert len(result.completions) == 6
        assert all(c.core_index == 1 for c in result.completions)

    def test_no_dispatch_during_downtime_window(self):
        specs = _farm(4, 0.5)
        down, up = 2 * GAP, 6 * GAP
        plan = FaultPlan(events=(
            FaultEvent(cycle=down, kind="core_down", core=1),
            FaultEvent(cycle=up, kind="core_up", core=1),))
        requests = generate_requests(
            TrafficProfile(arrival_rate=60.0), 200, seed=3)
        result = _run_with_plan(specs, "least-loaded", requests, plan)
        assert len(result.completions) == 200
        for c in result.completions:
            if c.core_index == 1:
                assert c.start_cycle < down or c.start_cycle >= up

    def test_in_flight_request_redispatched_with_penalty(self):
        specs = _farm(2, 0.0)
        # seq 0 starts on core 0 at cycle 0; the core dies mid-service.
        plan = FaultPlan(events=(
            FaultEvent(cycle=1000.0, kind="core_down", core=0),))
        requests = [_req(0, 0.0)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        assert result.redispatches == 1
        (completion,) = result.completions
        assert completion.core_index == 1
        # Re-arrival at crash + penalty, so latency covers both.
        assert completion.start_cycle >= \
            1000.0 + plan.redispatch_penalty_cycles

    def test_queued_requests_displaced_too(self):
        specs = _farm(1, 0.0)
        # Three arrivals stack on the only core; it dies mid-first,
        # recovers later, and every request still completes.
        plan = FaultPlan(events=(
            FaultEvent(cycle=1000.0, kind="core_down", core=0),
            FaultEvent(cycle=5 * GAP, kind="core_up", core=0),))
        requests = [_req(i, float(i)) for i in range(3)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        assert len(result.completions) == 3
        assert result.redispatches == 3
        assert all(c.start_cycle >= 5 * GAP for c in result.completions)

    def test_farm_wide_outage_stalls_arrivals(self):
        specs = _farm(1, 0.0)
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="core_down", core=0),
            FaultEvent(cycle=3 * GAP, kind="core_up", core=0),))
        requests = [_req(0, GAP)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        (completion,) = result.completions
        # Arrival stamp is unchanged; the outage shows up as latency.
        assert completion.start_cycle >= 3 * GAP
        assert completion.latency_cycles >= 2 * GAP
        assert result.cores[0].down_cycles == pytest.approx(3 * GAP)

    def test_cache_flush_forces_rehandshake(self):
        specs = _farm(2, 0.0)
        requests = [_req(0, 0.0, client=1),
                    _req(1, GAP, client=1, resumed=True),
                    _req(2, 2 * GAP, client=1, resumed=True)]
        flush = FaultPlan(events=(
            FaultEvent(cycle=1.5 * GAP, kind="cache_flush", core=0),))
        warm = _run_with_plan(specs, "preferential", requests, None)
        flushed = _run_with_plan(specs, "preferential", requests, flush)
        by_seq = lambda result: {c.request.seq: c
                                 for c in result.completions}
        assert by_seq(warm)[1].cache_hit and by_seq(warm)[2].cache_hit
        assert by_seq(flushed)[1].cache_hit
        assert not by_seq(flushed)[2].cache_hit
        assert flushed.cores[0].sessions_flushed == 1

    def test_degrade_reprices_extended_core(self):
        specs = _farm(1, 1.0)
        requests = [_req(0, 0.0)]
        degrade = FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="degrade", core=0),),
            degraded_costs=BASE_COSTS)
        healthy = _run_with_plan(specs, "round-robin", requests, None)
        degraded = _run_with_plan(specs, "round-robin", requests,
                                  degrade)
        assert degraded.completions[0].service_cycles > \
            healthy.completions[0].service_cycles
        # Without a degraded cost table the event is recorded but the
        # pricing is untouched.
        recorded = _run_with_plan(
            specs, "round-robin", requests,
            FaultPlan(events=degrade.events))
        assert recorded.completions[0].service_cycles == \
            healthy.completions[0].service_cycles
        assert recorded.fault_events == 1

    def test_degrade_recovers_on_core_up(self):
        specs = _farm(1, 1.0)
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="degrade", core=0),
            FaultEvent(cycle=GAP, kind="core_up", core=0),),
            degraded_costs=BASE_COSTS)
        requests = [_req(0, 0.0), _req(1, 2 * GAP)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        by_seq = {c.request.seq: c for c in result.completions}
        assert by_seq[0].service_cycles > by_seq[1].service_cycles

    def test_preferential_affinity_falls_back_and_rewarms(self):
        specs = _farm(4, 0.5)
        requests = [_req(0, 0.0, client=1),
                    _req(1, GAP, client=1, resumed=True),
                    _req(2, 3 * GAP, client=1, resumed=True),
                    _req(3, 5 * GAP, client=1, resumed=True)]
        warm = _run_with_plan(specs, "preferential", requests, None)
        home = {c.request.seq: c.core_index
                for c in warm.completions}[1]
        plan = FaultPlan(events=(
            FaultEvent(cycle=2 * GAP, kind="core_down", core=home),
            FaultEvent(cycle=4 * GAP, kind="core_up", core=home),))
        result = _run_with_plan(specs, "preferential", requests, plan)
        by_seq = {c.request.seq: c for c in result.completions}
        # While the affine core is down, resumption falls back to a
        # live core and misses (the cache died with the core).
        assert by_seq[2].core_index != home
        assert not by_seq[2].cache_hit
        # The fallback core's cache re-warmed: the next resumed
        # request is affine to it and hits.
        assert by_seq[3].core_index == by_seq[2].core_index
        assert by_seq[3].cache_hit

    def test_double_down_and_double_up_are_noops(self):
        specs = _farm(2, 0.0)
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.0, kind="core_down", core=0),
            FaultEvent(cycle=1.0, kind="core_down", core=0),
            FaultEvent(cycle=2.0, kind="cache_flush", core=0),
            FaultEvent(cycle=GAP, kind="core_up", core=0),
            FaultEvent(cycle=GAP + 1, kind="core_up", core=0),))
        requests = [_req(0, 2 * GAP)]
        result = _run_with_plan(specs, "round-robin", requests, plan)
        # down, up: the duplicates and the flush-while-dead don't count.
        assert result.fault_events == 2
        assert result.cores[0].fault_kinds == ["core_down", "core_up"]

    def test_fault_metrics_summary(self):
        specs = _farm(4, 0.5)
        plan = generate_fault_plan(5, 4, 2e9, episodes=3)
        requests = generate_requests(
            TrafficProfile(arrival_rate=100.0), 150, seed=2)
        result = _run_with_plan(specs, "preferential", requests, plan)
        report = summarize_faults(result, plan)
        assert report.events_injected == result.fault_events
        assert report.redispatches == result.redispatches
        assert report.as_dict()["by_kind"] == report.by_kind
        assert sum(report.by_kind.values()) == report.events_injected


class TestFaultFreeIdentity:
    def test_empty_plan_bit_identical_to_no_plan(self):
        specs = _farm(4, 0.5)
        requests = generate_requests(
            TrafficProfile(arrival_rate=60.0), 200, seed=1)
        bare = _run_with_plan(specs, "preferential", requests, None)
        empty = _run_with_plan(specs, "preferential", requests,
                               FaultPlan())
        assert bare.completions == empty.completions
        assert bare.makespan_cycles == empty.makespan_cycles
        assert bare.events_processed == empty.events_processed

    def test_run_farm_without_faults_matches_plain_simulator(self):
        specs = _farm(4, 0.5)
        requests = generate_requests(
            TrafficProfile(arrival_rate=60.0), 200, seed=1)
        plain = FarmSimulator(
            list(specs), make_scheduler("preferential")).run(
            list(requests))
        run = run_farm(FarmConfig(specs=tuple(specs),
                                  requests=tuple(requests)))
        assert run.result.completions == plain.completions
        assert run.result.makespan_cycles == plain.makespan_cycles
        assert run.faults is None and run.slo is None


class TestShardedChaosIdentity:
    def test_shards1_matches_plain_simulator_with_plan(self):
        specs = _farm(8, 0.5)
        plan = generate_fault_plan(11, 8, 2e9, episodes=4)
        requests = generate_requests(
            TrafficProfile(arrival_rate=120.0, clients=64), 300,
            seed=1)
        plain = FarmSimulator(list(specs),
                              make_scheduler("preferential"),
                              faults=plan).run(list(requests))
        run = run_farm(FarmConfig(specs=tuple(specs),
                                  requests=tuple(requests),
                                  faults=plan))
        assert run.result.completions == plain.completions
        assert run.result.fault_events == plain.fault_events
        assert run.result.redispatches == plain.redispatches

    def test_sharded_chaos_repeatable_and_executor_independent(self):
        config = FarmConfig(
            specs=tuple(_farm(8, 0.5)),
            profile=TrafficProfile(arrival_rate=120.0, clients=64),
            n_requests=300, shards=4, seed=1,
            faults=generate_fault_plan(11, 8, 2e9, episodes=4))
        serial = run_farm(config)
        again = run_farm(config)
        with ThreadExecutor(2) as pool:
            threaded = run_farm(config, executor=pool)
        assert serial.result.completions == again.result.completions
        assert serial.result.completions == \
            threaded.result.completions
        assert serial.result.fault_events == \
            threaded.result.fault_events
        assert serial.faults.as_dict() == threaded.faults.as_dict()


class TestFarmConfig:
    def test_validation(self):
        specs = tuple(_farm(4, 0.5))
        profile = TrafficProfile()
        with pytest.raises(ValueError, match="at least one core"):
            FarmConfig(specs=(), profile=profile)
        with pytest.raises(ValueError, match="unknown scheduler"):
            FarmConfig(specs=specs, profile=profile, scheduler="fifo")
        with pytest.raises(ValueError, match="requests= or profile="):
            FarmConfig(specs=specs)
        with pytest.raises(ValueError, match="shards"):
            FarmConfig(specs=specs, profile=profile, shards=5)
        with pytest.raises(ValueError, match="slo_window_seconds"):
            FarmConfig(specs=specs, profile=profile,
                       slo_window_seconds=0.0)

    def test_build_and_with_scheduler(self):
        config = FarmConfig.build(4, BASE_COSTS, OPT_COSTS,
                                  profile=TrafficProfile())
        assert len(config.specs) == 4
        assert config.scheduler == "preferential"
        swept = config.with_scheduler("round-robin")
        assert swept.scheduler == "round-robin"
        assert swept.specs == config.specs

    def test_run_farm_slo_report(self):
        config = FarmConfig(
            specs=tuple(_farm(4, 0.5)),
            profile=TrafficProfile(arrival_rate=60.0),
            n_requests=150, seed=1,
            slo=SloTarget(p99_ms=1e-6))   # unmeetably tight
        run = run_farm(config)
        assert run.slo is not None
        assert run.slo.windows_violated > 0
        assert run.slo.attainment < 1.0


class TestDeprecatedShims:
    def test_run_sharded_delegates_bit_identically(self):
        specs = _farm(8, 0.5)
        profile = TrafficProfile(arrival_rate=120.0, clients=64)
        with pytest.deprecated_call():
            legacy = run_sharded(specs, "preferential", profile, 200,
                                 shards=4, seed=1)
        direct = run_farm(FarmConfig(
            specs=tuple(specs), scheduler="preferential",
            profile=profile, n_requests=200, shards=4,
            seed=1)).sharded
        assert legacy.result.completions == direct.result.completions
        assert legacy.result.makespan_cycles == \
            direct.result.makespan_cycles
        assert summarize(legacy.result).as_dict() == \
            summarize(direct.result).as_dict()

    def test_simulate_autoscale_delegates_bit_identically(self):
        specs = _farm(8, 0.5)
        profile = TrafficProfile(arrival_rate=150.0)
        slo = SloTarget(p99_ms=50.0)
        with pytest.deprecated_call():
            legacy = simulate_autoscale(specs, "preferential", profile,
                                        slo=slo, n_epochs=6,
                                        curve="bursty", seed=2)
        direct = run_autoscale(
            FarmConfig(specs=tuple(specs), scheduler="preferential",
                       profile=profile, seed=2, slo=slo),
            n_epochs=6, curve="bursty")
        assert legacy.as_dict() == direct.as_dict()

    def test_slo_target_import_shim_warns(self):
        from repro.farm import autoscale
        with pytest.deprecated_call():
            shimmed = autoscale.SloTarget
        assert shimmed is SloTarget
        with pytest.raises(AttributeError):
            autoscale.no_such_name


class TestAutoscaleUnderFaults:
    def test_failures_consume_capacity(self):
        second = DEFAULT_CLOCK_HZ
        # Kill two pool cores early, permanently: the active set
        # shrinks and the policy has to scale the capacity back.
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.5 * second, kind="core_down", core=0),
            FaultEvent(cycle=2.5 * second, kind="core_down", core=1),))
        config = FarmConfig(
            specs=tuple(_farm(8, 0.5)),
            profile=TrafficProfile(arrival_rate=150.0), seed=1,
            faults=plan, slo=SloTarget(p99_ms=100.0))
        policy = AutoscalePolicy(min_cores=4, max_cores=8,
                                 warmup_epochs=1)
        report = run_autoscale(config, policy=policy, n_epochs=8,
                               epoch_seconds=1.0, curve="constant")
        assert report.core_failures == 2
        assert any(e.failed_cores for e in report.epochs)
        healthy = run_autoscale(replace(config, faults=None),
                                policy=policy, n_epochs=8,
                                epoch_seconds=1.0, curve="constant")
        assert healthy.core_failures == 0
        # Deterministic: the same config reproduces the same report.
        assert run_autoscale(config, policy=policy, n_epochs=8,
                             epoch_seconds=1.0,
                             curve="constant").as_dict() == \
            report.as_dict()

    def test_epoch_reports_carry_violation_counts(self):
        config = FarmConfig(
            specs=tuple(_farm(4, 0.5)),
            profile=TrafficProfile(arrival_rate=200.0), seed=1,
            slo=SloTarget(p99_ms=1e-6))   # every epoch violates
        report = run_autoscale(config, n_epochs=4, epoch_seconds=1.0,
                               curve="constant")
        assert all(e.slo_violations >= 1 for e in report.epochs)
        assert all(not e.slo_met for e in report.epochs)
        payload = report.as_dict()
        assert all("slo_violations" in e and "failed_cores" in e
                   for e in payload["epochs"])
