"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("argv", [
        ["characterize"],
        ["characterize", "--ext", "-o", "out.json"],
        ["characterize", "--json", "--no-cache"],
        ["explore", "--stride", "45", "--top", "3"],
        ["explore", "--json", "--cache-dir", "/tmp/store"],
        ["speedups"],
        ["speedups", "--json", "--no-cache"],
        ["ssl", "--sizes", "1,32"],
        ["ssl", "--json"],
        ["ssl", "--cache-dir", "/tmp/store"],
        ["farm", "--no-cache"],
        ["farm", "--trace-out", "trace.jsonl", "--metrics"],
        ["ssl", "--metrics"],
        ["characterize", "--trace-out", "trace.jsonl"],
        ["callgraph", "--bits", "128"],
        ["farm"],
        ["farm", "--cores", "8", "--requests", "100", "--seed", "2",
         "--rate", "40", "--resumption", "0.5",
         "--extended-fraction", "0.25", "--json"],
    ])
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_explore_bits_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--bits", "2048"])


class TestExecution:
    def test_characterize_saves_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        assert main(["characterize", "-o", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "mpn_add_n" in captured

    def test_callgraph_runs(self, capsys):
        assert main(["callgraph", "--bits", "128"]) == 0
        captured = capsys.readouterr().out
        assert "mont_mul" in captured

    def test_farm_json_runs(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "farm"
        assert payload["params"]["cores"] == 2
        assert payload["params"]["requests"] == 40
        results = payload["results"]
        assert {m["scheduler"] for m in results["schedulers"]} == \
            {"round-robin", "least-loaded", "preferential"}
        assert len(results["cores"]) == 2
        assert results["capacity"]

    def test_explore_with_saved_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2"]) == 0
        captured = capsys.readouterr().out
        assert "M  " in captured  # cycle column present

    def test_characterize_json(self, capsys):
        import json
        assert main(["characterize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "characterize"
        assert payload["params"]["ext"] is False
        assert payload["results"]["platform"] == "base"
        assert "mpn_addmul_1" in payload["results"]["models"]

    def test_explore_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "explore"
        results = payload["results"]
        assert results["bits"] == 512
        assert results["candidates_evaluated"] == 3
        assert len(results["top"]) == 2
        top = results["top"][0]
        assert top["correct"] and top["estimated_cycles"] > 0

    def test_speedups_json(self, capsys):
        import json
        assert main(["speedups", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "speedups"
        results = payload["results"]
        assert results["base"]["name"] == "base"
        assert results["optimized"]["ecdh_cycles"] > 0
        for algo in ("des", "3des", "aes", "rsa_public", "rsa_private"):
            assert results["speedups"][algo] > 1.0

    def test_ssl_uses_cache_dir(self, tmp_path, capsys):
        import json
        import os
        assert main(["ssl", "--sizes", "1", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]["rows"][0]["speedup"] > 1.0
        stored = [f for f in os.listdir(tmp_path)
                  if f.startswith("models-") and f.endswith(".json")]
        assert len(stored) == 2    # base + extended platform entries

    def test_every_json_payload_uses_the_envelope(self, capsys):
        """The schema contract: every --json subcommand emits exactly
        {"command", "params", "results"} at the top level."""
        import json
        for argv in (["characterize", "--json"],
                     ["speedups", "--json"],
                     ["ssl", "--sizes", "1", "--json"],
                     ["farm", "--cores", "2", "--requests", "20",
                      "--json"]):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            assert sorted(payload) == ["command", "params", "results"]
            assert payload["command"] == argv[0]

    def test_farm_trace_out_writes_jsonl(self, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        assert main(["farm", "--cores", "2", "--requests", "30",
                     "--seed", "3", "--trace-out", str(trace),
                     "--metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["results"]["metrics"]
        assert metrics["farm.requests.completed"
                       "{scheduler=preferential}"]["value"] == 30
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        spans = [r for r in records
                 if r["kind"] == "span" and r["name"] == "farm.request"]
        # One span per request per scheduler run.
        assert len(spans) == 3 * 30
        assert {s["attrs"]["scheduler"] for s in spans} == \
            {"round-robin", "least-loaded", "preferential"}
        depth_events = [r for r in records
                        if r["kind"] == "event"
                        and r["name"] == "farm.core.queue_depth"]
        assert depth_events

    def test_characterize_metrics_reports_cache_and_fit(self, capsys):
        import json
        assert main(["characterize", "--json", "--metrics"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["results"]["metrics"]
        cache_keys = [k for k in metrics if k.startswith("costs.cache.")]
        assert cache_keys
        total = sum(metrics[k]["value"] for k in cache_keys)
        assert total >= 1   # hit or characterization, depending on state
