"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("argv", [
        ["characterize"],
        ["characterize", "--ext", "-o", "out.json"],
        ["characterize", "--json", "--no-cache"],
        ["explore", "--stride", "45", "--top", "3"],
        ["explore", "--json", "--cache-dir", "/tmp/store"],
        ["speedups"],
        ["speedups", "--json", "--no-cache"],
        ["ssl", "--sizes", "1,32"],
        ["ssl", "--json"],
        ["ssl", "--cache-dir", "/tmp/store"],
        ["farm", "--no-cache"],
        ["farm", "--trace-out", "trace.jsonl", "--metrics"],
        ["ssl", "--metrics"],
        ["characterize", "--trace-out", "trace.jsonl"],
        ["callgraph", "--bits", "128"],
        ["farm"],
        ["farm", "--cores", "8", "--requests", "100", "--seed", "2",
         "--rate", "40", "--resumption", "0.5",
         "--extended-fraction", "0.25", "--json"],
        ["explore", "--metrics", "--trace-out", "t.jsonl"],
        ["explore", "--profile", "prof.json"],
        ["speedups", "--trace-out", "t.jsonl", "--metrics"],
        ["speedups", "--profile", "prof.json", "--json"],
        ["farm", "--profile", "prof.json"],
        ["profile", "--trace", "t.jsonl"],
        ["profile", "--trace", "t.jsonl", "--top", "5", "--group-by",
         "scheduler,core", "--folded", "out.folded", "--json"],
        ["bench"],
        ["bench", "--json", "--dir", "/tmp/baselines"],
        ["bench", "--check", "--scenario", "farm_mixed", "--scenario",
         "characterize", "--report", "report.json", "--verbose"],
        ["farm", "--shards", "4", "--jobs", "2", "--queue", "calendar"],
        ["farm", "--replay", "trace.jsonl"],
        ["farm", "--list-protocols"],
        ["farm", "--mix", "tls13=0.7,wep=0.3", "--json"],
        ["farm", "--export-workload", "w.jsonl", "--shards", "2",
         "--json"],
        ["capacity"],
        ["capacity", "--users", "50000", "--per-user-kbps", "128"],
        ["capacity", "--autoscale", "--curve", "bursty", "--epochs",
         "8", "--max-cores", "8", "--json"],
        ["farm", "--faults", "7", "--fault-episodes", "2",
         "--slo", "p99_ms=5", "--slo-window", "0.5"],
        ["farm", "--faults", "plan.json", "--json"],
        ["capacity", "--autoscale", "--faults", "3",
         "--fault-episodes", "4"],
        ["farm", "--series-out", "s.jsonl", "--series-interval",
         "0.1", "--scheduler", "least-loaded"],
        ["farm", "--serve", "--port", "0", "--max-epochs", "3",
         "--epoch-seconds", "1.0", "--serve-grace", "0.5"],
        ["farm", "--metrics-out", "m.prom", "--metrics-format",
         "prometheus"],
        ["capacity", "--autoscale", "--series-out", "s.jsonl"],
        ["timeseries", "--series", "s.jsonl", "--key", "a",
         "--key", "b", "--html", "d.html", "--width", "40"],
        ["timeseries", "--series", "s.jsonl", "--json"],
    ])
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_explore_bits_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--bits", "2048"])

    def test_profile_requires_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])


class TestExecution:
    def test_characterize_saves_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        assert main(["characterize", "-o", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "mpn_add_n" in captured

    def test_callgraph_runs(self, capsys):
        assert main(["callgraph", "--bits", "128"]) == 0
        captured = capsys.readouterr().out
        assert "mont_mul" in captured

    def test_farm_json_runs(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "farm"
        assert payload["params"]["cores"] == 2
        assert payload["params"]["requests"] == 40
        results = payload["results"]
        assert {m["scheduler"] for m in results["schedulers"]} == \
            {"round-robin", "least-loaded", "preferential"}
        assert len(results["cores"]) == 2
        assert results["capacity"]

    def test_farm_list_protocols(self, capsys):
        import json
        assert main(["farm", "--list-protocols", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in payload["results"]["protocols"]]
        assert names[:4] == ["ssl", "wtls", "esp", "wep"]
        assert "tls13" in names and "kasumi" in names
        assert main(["farm", "--list-protocols"]) == 0
        assert "tls13" in capsys.readouterr().out

    def test_farm_mix_selects_protocols(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--mix", "tls13=0.7,kasumi=0.3", "--seed", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["mix"] == "tls13=0.7,kasumi=0.3"
        rows = payload["results"]["schedulers"]
        # The resumable half of the mix shows up in the per-protocol
        # session-cache report; the link-layer half cannot.
        assert all(set(m["session_cache"]) <= {"tls13"} for m in rows)

    def test_farm_mix_unknown_protocol_exits_2(self, capsys):
        assert main(["farm", "--mix", "bogus=1.0"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "registered" in err and "tls13" in err

    def test_farm_mix_malformed_exits_2(self, capsys):
        assert main(["farm", "--mix", "ssl"]) == 2
        assert "NAME=WEIGHT" in capsys.readouterr().err
        assert main(["farm", "--mix", "ssl=lots"]) == 2

    def test_explore_with_saved_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2"]) == 0
        captured = capsys.readouterr().out
        assert "M  " in captured  # cycle column present

    def test_characterize_json(self, capsys):
        import json
        assert main(["characterize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "characterize"
        assert payload["params"]["ext"] is False
        assert payload["results"]["platform"] == "base"
        assert "mpn_addmul_1" in payload["results"]["models"]

    def test_explore_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "explore"
        results = payload["results"]
        assert results["bits"] == 512
        assert results["candidates_evaluated"] == 3
        assert len(results["top"]) == 2
        top = results["top"][0]
        assert top["correct"] and top["estimated_cycles"] > 0

    def test_speedups_json(self, capsys):
        import json
        assert main(["speedups", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "speedups"
        results = payload["results"]
        assert results["base"]["name"] == "base"
        assert results["optimized"]["ecdh_cycles"] > 0
        for algo in ("des", "3des", "aes", "rsa_public", "rsa_private"):
            assert results["speedups"][algo] > 1.0

    def test_ssl_uses_cache_dir(self, tmp_path, capsys):
        import json
        import os
        assert main(["ssl", "--sizes", "1", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]["rows"][0]["speedup"] > 1.0
        stored = [f for f in os.listdir(tmp_path)
                  if f.startswith("models-") and f.endswith(".json")]
        assert len(stored) == 2    # base + extended platform entries

    def test_every_json_payload_uses_the_envelope(self, capsys):
        """The schema contract: every --json subcommand emits exactly
        {"command", "params", "results"} at the top level."""
        import json
        for argv in (["characterize", "--json"],
                     ["speedups", "--json"],
                     ["ssl", "--sizes", "1", "--json"],
                     ["farm", "--cores", "2", "--requests", "20",
                      "--json"]):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            assert sorted(payload) == ["command", "params", "results"]
            assert payload["command"] == argv[0]

    def test_farm_trace_out_writes_jsonl(self, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        assert main(["farm", "--cores", "2", "--requests", "30",
                     "--seed", "3", "--trace-out", str(trace),
                     "--metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["results"]["metrics"]
        assert metrics["farm.requests.completed"
                       "{scheduler=preferential}"]["value"] == 30
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        spans = [r for r in records
                 if r["kind"] == "span" and r["name"] == "farm.request"]
        # One span per request per scheduler run.
        assert len(spans) == 3 * 30
        assert {s["attrs"]["scheduler"] for s in spans} == \
            {"round-robin", "least-loaded", "preferential"}
        depth_events = [r for r in records
                        if r["kind"] == "event"
                        and r["name"] == "farm.core.queue_depth"]
        assert depth_events

    def test_characterize_metrics_reports_cache_and_fit(self, capsys):
        import json
        assert main(["characterize", "--json", "--metrics"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["results"]["metrics"]
        cache_keys = [k for k in metrics if k.startswith("costs.cache.")]
        assert cache_keys
        total = sum(metrics[k]["value"] for k in cache_keys)
        assert total >= 1   # hit or characterization, depending on state

    def test_farm_profile_writes_attribution_json(self, tmp_path,
                                                  capsys):
        import json
        prof = tmp_path / "prof.json"
        assert main(["farm", "--cores", "2", "--requests", "30",
                     "--seed", "3", "--profile", str(prof)]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        payload = json.loads(prof.read_text())
        roots = {r["name"] for r in payload["roots"]}
        assert "farm.run" in roots
        # Conservation holds in the exported profile too.
        assert payload["total_cycles"] == payload["total_self_cycles"]

    def test_speedups_obs_flags_trace_and_metrics(self, tmp_path,
                                                  capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        prof = tmp_path / "prof.json"
        assert main(["speedups", "--json", "--metrics",
                     "--trace-out", str(trace),
                     "--profile", str(prof)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["command", "params", "results"]
        metrics = payload["results"]["metrics"]
        speedup_keys = [k for k in metrics
                        if k.startswith("speedups.speedup")]
        assert speedup_keys
        spans = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        names = {r["name"] for r in spans if r["kind"] == "span"}
        assert {"speedups.measure", "speedups.cipher"} <= names
        assert prof.exists()

    def test_explore_metrics_counts_candidates(self, tmp_path, capsys):
        import json
        models = tmp_path / "models.json"
        main(["characterize", "-o", str(models)])
        capsys.readouterr()
        assert main(["explore", "--models", str(models), "--stride",
                     "150", "--top", "2", "--json", "--metrics"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["results"]["metrics"]
        assert metrics["explore.candidates"]["value"] == 3
        assert metrics["explore.best_cycles"]["value"] > 0

    def _write_sample_trace(self, path):
        from repro.obs import Tracer, write_events_jsonl
        tracer = Tracer()
        with tracer.span("main"):
            with tracer.span("rsa", scheduler="rr"):
                pass
            with tracer.span("rsa", scheduler="ll"):
                pass
        write_events_jsonl(tracer, str(path))

    def test_profile_subcommand_analyses_a_trace(self, tmp_path,
                                                 capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        folded = tmp_path / "out.folded"
        self._write_sample_trace(trace)
        assert main(["profile", "--trace", str(trace),
                     "--folded", str(folded)]) == 0
        out = capsys.readouterr().out
        assert "cycles attributed" in out and "main;rsa" in out
        assert any(line.startswith("main ")
                   for line in folded.read_text().splitlines())
        # JSON mode keeps the envelope and honours --group-by.
        assert main(["profile", "--trace", str(trace), "--json",
                     "--group-by", "scheduler"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["command", "params", "results"]
        main_root = payload["results"]["roots"][0]
        children = {c["name"] for c in main_root["children"]}
        assert children == {"rsa{scheduler=ll}", "rsa{scheduler=rr}"}

    def test_profile_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["profile", "--trace",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_bench_cli_record_then_gate_then_regress(self, tmp_path,
                                                     capsys):
        import json
        from repro.obs import bench
        from repro.obs.bench import Gate, Scenario
        metrics = {"cycles": 100.0}
        bench.register_scenario(Scenario(
            name="clistub", description="cli stub",
            run=lambda: dict(metrics),
            gates={"cycles": Gate(tolerance=0.10, direction="lower")}))
        try:
            assert main(["bench", "--dir", str(tmp_path),
                         "--scenario", "clistub"]) == 0
            assert "recorded clistub" in capsys.readouterr().out
            assert (tmp_path / "BENCH_clistub.json").exists()
            assert main(["bench", "--check", "--dir", str(tmp_path),
                         "--scenario", "clistub"]) == 0
            assert "bench gate: ok" in capsys.readouterr().out
            # Inject a +20% cycle regression: the gate must fail.
            metrics["cycles"] = 120.0
            report = tmp_path / "report.json"
            assert main(["bench", "--check", "--dir", str(tmp_path),
                         "--scenario", "clistub",
                         "--report", str(report)]) == 1
            out = capsys.readouterr().out
            assert "REGRESSIONS DETECTED" in out
            payload = json.loads(report.read_text())
            assert payload["ok"] is False
            assert payload["scenarios"][0]["scenario"] == "clistub"
        finally:
            del bench._SCENARIOS["clistub"]

    def test_bench_unknown_scenario_exits_2(self, capsys):
        assert main(["bench", "--scenario", "nope"]) == 2
        assert "unknown bench scenario" in capsys.readouterr().err

    def test_farm_json_surfaces_parallel_speedup(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "30",
                     "--seed", "1", "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        # Same envelope keys the explore command reports.
        assert results["parallel_speedup"] > 0
        assert results["jobs"] == 1
        assert results["executor"] == "serial"
        sharding = results["sharding"]
        assert sharding["shards"] == 1
        assert sharding["queue"] == "heap"
        assert sharding["queue_stats"]["kind"] == "heap"

    def test_farm_sharded_with_calendar_queue(self, capsys):
        import json
        assert main(["farm", "--cores", "4", "--requests", "40",
                     "--seed", "2", "--shards", "2", "--jobs", "1",
                     "--queue", "calendar", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["shards"] == 2
        results = payload["results"]
        assert len(results["schedulers"]) == 3
        assert results["sharding"]["shards"] == 2
        assert results["sharding"]["queue"] == "calendar"
        assert results["sharding"]["queue_stats"]["pops"] > 0

    def test_farm_sharded_matches_unsharded_metrics(self, capsys):
        import json

        def run(extra):
            assert main(["farm", "--cores", "4", "--requests", "60",
                         "--seed", "5", "--json"] + extra) == 0
            results = json.loads(capsys.readouterr().out)["results"]
            return {m["scheduler"]: m["completed"]
                    for m in results["schedulers"]}
        # Sharding repartitions work but conserves every request.
        assert run([]) == run(["--shards", "2"])

    def test_farm_rejects_bad_shard_args(self, capsys):
        assert main(["farm", "--cores", "2", "--shards", "4"]) == 2
        assert "--shards cannot exceed --cores" in \
            capsys.readouterr().err
        assert main(["farm", "--queue", "wheelbarrow"]) == 2
        assert "--queue must be one of" in capsys.readouterr().err

    def test_farm_export_then_replay_round_trip(self, tmp_path,
                                                capsys):
        import json
        trace = tmp_path / "workload.jsonl"
        argv = ["farm", "--cores", "2", "--requests", "30",
                "--seed", "7", "--json"]
        assert main(argv + ["--export-workload", str(trace)]) == 0
        exported = json.loads(capsys.readouterr().out)["results"]
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["format"] == "repro.farm.workload"
        assert header["count"] == 30
        assert main(["farm", "--cores", "2", "--json",
                     "--replay", str(trace)]) == 0
        replayed = json.loads(capsys.readouterr().out)["results"]
        assert replayed["schedulers"] == exported["schedulers"]

    def test_farm_replay_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["farm", "--replay",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_capacity_json_envelope(self, capsys):
        import json
        assert main(["capacity", "--users", "50000",
                     "--per-user-kbps", "128", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["command", "params", "results"]
        assert payload["command"] == "capacity"
        assert payload["params"]["users"] == 50000
        results = payload["results"]
        assert results["plan"]["cores"] >= 1
        assert results["table"]
        assert "autoscale" not in results

    def test_capacity_plan_round_trips_through_envelope(self, capsys):
        import json
        from repro.farm import CapacityPlan
        assert main(["capacity", "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        plan = CapacityPlan.from_dict(results["plan"])
        assert plan.as_dict() == results["plan"]

    def test_capacity_autoscale_reports_epochs(self, capsys):
        import json
        assert main(["capacity", "--autoscale", "--curve", "bursty",
                     "--epochs", "8", "--max-cores", "8",
                     "--rate", "400", "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        report = results["autoscale"]
        assert report["curve"] == "bursty"
        assert len(report["epochs"]) == 8
        assert report["peak_cores"] <= 8
        assert report["policy"]["max_cores"] == 8

    def test_capacity_text_mode_prints_plan(self, capsys):
        assert main(["capacity", "--users", "50000",
                     "--per-user-kbps", "128"]) == 0
        out = capsys.readouterr().out
        assert "cheapest plan for 50,000 users" in out
        assert "farm Mgates" in out

    def test_capacity_rejects_bad_args(self, capsys):
        assert main(["capacity", "--users", "0"]) == 2
        assert "--users" in capsys.readouterr().err
        assert main(["capacity", "--curve", "square"]) == 2
        assert "--curve must be one of" in capsys.readouterr().err


class TestChaosCli:
    def test_farm_faults_json_blocks(self, capsys):
        import json
        assert main(["farm", "--cores", "4", "--requests", "80",
                     "--seed", "1", "--rate", "150", "--faults", "7",
                     "--slo", "p99_ms=5,secure_mbps=1",
                     "--slo-window", "0.5", "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        faults = results["faults"]
        assert faults["plan"]["events"]
        assert set(faults["by_scheduler"]) == \
            {m["scheduler"] for m in results["schedulers"]}
        for report in faults["by_scheduler"].values():
            assert report["events_injected"] >= 1
            assert sum(report["by_kind"].values()) == \
                report["events_injected"]
        slo = results["slo"]
        assert slo["target"]["p99_ms"] == 5.0
        assert slo["window_seconds"] == 0.5
        for report in slo["by_scheduler"].values():
            assert report["windows_evaluated"] >= 1
            assert 0.0 <= report["attainment"] <= 1.0

    def test_farm_without_faults_omits_blocks(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "30",
                     "--seed", "1", "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        assert "faults" not in results
        assert "slo" not in results

    def test_farm_fault_plan_file_round_trip(self, tmp_path, capsys):
        import json
        from repro.farm import generate_fault_plan
        plan = generate_fault_plan(9, 4, 2e9, episodes=2)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_dict()))
        assert main(["farm", "--cores", "4", "--requests", "60",
                     "--seed", "1", "--faults", str(path),
                     "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        assert results["faults"]["plan"]["events"] == \
            plan.as_dict()["events"]

    def test_farm_text_mode_prints_chaos_and_slo_tables(self, capsys):
        assert main(["farm", "--cores", "4", "--requests", "60",
                     "--seed", "1", "--rate", "150", "--faults", "7",
                     "--slo", "p99_ms=5"]) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert "slo (p99_ms=5" in out

    def test_farm_rejects_bad_chaos_args(self, capsys):
        assert main(["farm", "--faults", "not-a-seed.txt"]) == 2
        assert "--faults" in capsys.readouterr().err
        assert main(["farm", "--slo", "latency=5"]) == 2
        assert "unknown SLO metric" in capsys.readouterr().err
        assert main(["farm", "--slo-window", "0",
                     "--slo", "p99_ms=5"]) == 2
        assert "--slo-window" in capsys.readouterr().err
        assert main(["farm", "--fault-episodes", "-1",
                     "--faults", "1"]) == 2
        assert "--fault-episodes" in capsys.readouterr().err

    def test_capacity_autoscale_reports_chaos_columns(self, capsys):
        import json
        argv = ["capacity", "--autoscale", "--curve", "constant",
                "--epochs", "6", "--max-cores", "8", "--rate", "300",
                "--faults", "3", "--json"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)["results"][
            "autoscale"]
        for epoch in report["epochs"]:
            assert "slo_violations" in epoch
            assert "failed_cores" in epoch
        assert main(argv[:-1]) == 0   # text mode
        out = capsys.readouterr().out
        assert "viol" in out and "fail" in out
        assert "core failures" in out


class TestSeriesCli:
    def test_farm_series_out_round_trips(self, tmp_path, capsys):
        from repro.obs import read_series_jsonl
        path = tmp_path / "series.jsonl"
        assert main(["farm", "--cores", "4", "--requests", "80",
                     "--seed", "1", "--rate", "150", "--faults", "7",
                     "--slo", "p99_ms=5",
                     "--series-out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        series = read_series_jsonl(str(path))
        assert series.samples
        tag = "{scheduler=preferential}"
        assert f"farm.requests.completed{tag}" in series.keys()
        names = {e.name for e in series.events}
        assert any(n.startswith("fault.") for n in names)

    def test_farm_slo_json_reports_per_window_attainment(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--seed", "1", "--rate", "150",
                     "--slo", "p99_ms=0.001", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        slo = payload["results"]["slo"]["by_scheduler"]["preferential"]
        assert slo["windows"], "expected per-window entries"
        for window in slo["windows"]:
            assert 0.0 <= window["attainment"] <= 1.0
        assert slo["windows"][-1]["attainment"] == \
            pytest.approx(slo["attainment"])

    def test_metrics_out_writes_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--seed", "1", "--metrics-out", str(path),
                     "--metrics-format", "prometheus"]) == 0
        assert "wrote prometheus metrics" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE farm_requests_completed counter" in text
        assert 'scheduler="preferential"' in text

    def test_serve_smoke_bounded_epochs(self, tmp_path, capsys):
        path = tmp_path / "soak.jsonl"
        assert main(["farm", "--cores", "2", "--rate", "40",
                     "--seed", "3", "--serve", "--port", "0",
                     "--max-epochs", "2", "--epoch-seconds", "0.5",
                     "--series-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "soak: listening on port" in out
        assert "soak: served 2 epochs, 1.0s virtual" in out
        assert path.exists()

    def test_capacity_series_out_needs_autoscale(self, tmp_path,
                                                 capsys):
        assert main(["capacity", "--series-out", "s.jsonl"]) == 2
        assert "--autoscale" in capsys.readouterr().err

    def test_capacity_autoscale_series_out(self, tmp_path, capsys):
        from repro.obs import read_series_jsonl
        path = tmp_path / "autoscale.jsonl"
        assert main(["capacity", "--autoscale", "--curve", "constant",
                     "--epochs", "4", "--max-cores", "8",
                     "--series-out", str(path)]) == 0
        series = read_series_jsonl(str(path))
        assert len(series.samples) == 4
        assert "autoscale.active_cores" in series.keys()

    def test_farm_rejects_bad_series_args(self, capsys):
        assert main(["farm", "--scheduler", "fifo"]) == 2
        assert "--scheduler" in capsys.readouterr().err
        assert main(["farm", "--series-out", "s.jsonl",
                     "--series-interval", "0"]) == 2
        assert "--series-interval" in capsys.readouterr().err
        assert main(["farm", "--serve", "--replay", "t.jsonl"]) == 2
        assert "--serve" in capsys.readouterr().err
        assert main(["farm", "--serve", "--max-epochs", "0"]) == 2
        assert "--max-epochs" in capsys.readouterr().err
