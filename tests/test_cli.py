"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("argv", [
        ["characterize"],
        ["characterize", "--ext", "-o", "out.json"],
        ["characterize", "--json", "--no-cache"],
        ["explore", "--stride", "45", "--top", "3"],
        ["explore", "--json", "--cache-dir", "/tmp/store"],
        ["speedups"],
        ["speedups", "--json", "--no-cache"],
        ["ssl", "--sizes", "1,32"],
        ["ssl", "--json"],
        ["ssl", "--cache-dir", "/tmp/store"],
        ["farm", "--no-cache"],
        ["callgraph", "--bits", "128"],
        ["farm"],
        ["farm", "--cores", "8", "--requests", "100", "--seed", "2",
         "--rate", "40", "--resumption", "0.5",
         "--extended-fraction", "0.25", "--json"],
    ])
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_explore_bits_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--bits", "2048"])


class TestExecution:
    def test_characterize_saves_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        assert main(["characterize", "-o", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "mpn_add_n" in captured

    def test_callgraph_runs(self, capsys):
        assert main(["callgraph", "--bits", "128"]) == 0
        captured = capsys.readouterr().out
        assert "mont_mul" in captured

    def test_farm_json_runs(self, capsys):
        import json
        assert main(["farm", "--cores", "2", "--requests", "40",
                     "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {m["scheduler"] for m in payload["schedulers"]} == \
            {"round-robin", "least-loaded", "preferential"}
        assert len(payload["cores"]) == 2
        assert payload["capacity"]

    def test_explore_with_saved_models(self, tmp_path, capsys):
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2"]) == 0
        captured = capsys.readouterr().out
        assert "M  " in captured  # cycle column present

    def test_characterize_json(self, capsys):
        import json
        assert main(["characterize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "base"
        assert "mpn_addmul_1" in payload["models"]

    def test_explore_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "models.json"
        main(["characterize", "-o", str(out)])
        capsys.readouterr()
        assert main(["explore", "--models", str(out), "--stride", "150",
                     "--top", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bits"] == 512
        assert payload["candidates_evaluated"] == 3
        assert len(payload["top"]) == 2
        top = payload["top"][0]
        assert top["correct"] and top["estimated_cycles"] > 0

    def test_speedups_json(self, capsys):
        import json
        assert main(["speedups", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["base"]["name"] == "base"
        assert payload["optimized"]["ecdh_cycles"] > 0
        for algo in ("des", "3des", "aes", "rsa_public", "rsa_private"):
            assert payload["speedups"][algo] > 1.0

    def test_ssl_uses_cache_dir(self, tmp_path, capsys):
        import json
        import os
        assert main(["ssl", "--sizes", "1", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["speedup"] > 1.0
        stored = [f for f in os.listdir(tmp_path)
                  if f.startswith("models-") and f.endswith(".json")]
        assert len(stored) == 2    # base + extended platform entries
