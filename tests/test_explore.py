"""Tests for algorithm design-space exploration."""

import pytest

from repro.crypto.modexp import ModExpConfig, iter_configs
from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
from repro.macromodel import characterize_platform


@pytest.fixture(scope="module")
def explorer():
    models = characterize_platform(reps=1, sizes=(1, 2, 4, 8, 16))
    return AlgorithmExplorer(models, RsaDecryptWorkload.bits512())


class TestWorkload:
    def test_decrypt_recovers_expected(self, explorer):
        from repro.crypto.modexp import ModExpEngine
        result = explorer.workload.run(ModExpEngine(ModExpConfig()))
        assert result == explorer._expected


class TestEvaluation:
    def test_evaluate_single_config(self, explorer):
        result = explorer.evaluate(ModExpConfig())
        assert result.correct
        assert result.estimated_cycles > 0
        assert result.label == ModExpConfig().label()

    def test_montgomery_beats_schoolbook(self, explorer):
        school = explorer.evaluate(ModExpConfig(
            modmul="schoolbook", window=1, crt="none"))
        mont = explorer.evaluate(ModExpConfig(
            modmul="montgomery", window=1, crt="none"))
        assert mont.estimated_cycles < school.estimated_cycles

    def test_crt_beats_no_crt(self, explorer):
        plain = explorer.evaluate(ModExpConfig(crt="none"))
        garner = explorer.evaluate(ModExpConfig(crt="garner"))
        assert garner.estimated_cycles < plain.estimated_cycles

    def test_window_helps_long_exponents(self, explorer):
        w1 = explorer.evaluate(ModExpConfig(window=1, crt="none"))
        w5 = explorer.evaluate(ModExpConfig(window=5, crt="none"))
        assert w5.estimated_cycles < w1.estimated_cycles

    def test_radix32_beats_radix16(self, explorer):
        r32 = explorer.evaluate(ModExpConfig(radix_bits=32))
        r16 = explorer.evaluate(ModExpConfig(radix_bits=16))
        assert r32.estimated_cycles < r16.estimated_cycles


class TestExploration:
    def test_subset_exploration_sorted_and_correct(self, explorer):
        subset = list(iter_configs())[::45]  # 10 spread-out candidates
        results = explorer.explore(subset)
        assert len(results) == len(subset)
        cycles = [r.estimated_cycles for r in results]
        assert cycles == sorted(cycles)
        assert all(r.correct for r in results)

    def test_best_prefers_tuned_shape(self, explorer):
        """The winner among a representative slice uses CRT and a
        reduction-based modmul -- the paper's exploration conclusion."""
        candidates = [
            ModExpConfig(modmul="schoolbook", window=1, crt="none"),
            ModExpConfig(modmul="barrett", window=4, crt="garner"),
            ModExpConfig(modmul="montgomery", window=5, crt="garner",
                         caching="constants"),
            ModExpConfig(modmul="interleaved", window=2, crt="classic"),
        ]
        results = explorer.explore(candidates)
        best = AlgorithmExplorer.best(results)
        assert best.config.crt in ("garner", "classic")
        assert best.config.modmul in ("montgomery", "barrett")

    def test_progress_callback(self, explorer):
        seen = []
        explorer.explore([ModExpConfig()],
                         progress=lambda i, r: seen.append(i))
        assert seen == [0]

    def test_best_requires_correct_results(self):
        from repro.explore.explorer import ExplorationResult
        broken = ExplorationResult(config=ModExpConfig(),
                                   estimated_cycles=1.0, wall_seconds=0.0,
                                   correct=False)
        with pytest.raises(ValueError):
            AlgorithmExplorer.best([broken])
