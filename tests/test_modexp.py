"""Tests for the modular exponentiation configuration space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modexp import (CACHING_OPTIONS, CRT_VARIANTS,
                                 ModExpConfig, ModExpEngine, WINDOW_SIZES,
                                 config_space_size, iter_configs)

ODD_MOD = (1 << 128) + 51


class TestConfigSpace:
    def test_space_has_450_points(self):
        assert config_space_size() == 450
        assert len(list(iter_configs())) == 450

    def test_all_configs_distinct(self):
        configs = list(iter_configs())
        assert len(set(configs)) == 450

    def test_labels_distinct(self):
        labels = {c.label() for c in iter_configs()}
        assert len(labels) == 450

    @pytest.mark.parametrize("field,value", [
        ("modmul", "fft"), ("window", 6), ("crt", "mixed"),
        ("radix_bits", 64), ("caching", "everything"),
    ])
    def test_invalid_configs_rejected(self, field, value):
        with pytest.raises(ValueError):
            ModExpConfig(**{field: value})


class TestPowm:
    @pytest.mark.parametrize("window", WINDOW_SIZES)
    def test_windows(self, window):
        eng = ModExpEngine(ModExpConfig(window=window))
        assert int(eng.powm(0xABCDEF, 0x123456789, ODD_MOD)) == \
            pow(0xABCDEF, 0x123456789, ODD_MOD)

    @pytest.mark.parametrize("modmul", ["schoolbook", "karatsuba", "barrett",
                                        "montgomery", "interleaved"])
    def test_modmul_choices(self, modmul):
        eng = ModExpEngine(ModExpConfig(modmul=modmul))
        assert int(eng.powm(987654321, 0xFEDCBA, ODD_MOD)) == \
            pow(987654321, 0xFEDCBA, ODD_MOD)

    @settings(max_examples=20)
    @given(base=st.integers(min_value=0, max_value=(1 << 128) - 1),
           exp=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_random_inputs_default_config(self, base, exp):
        eng = ModExpEngine()
        assert int(eng.powm(base, exp, ODD_MOD)) == pow(base, exp, ODD_MOD)

    def test_exponent_zero(self):
        assert int(ModExpEngine().powm(5, 0, 97)) == 1

    def test_exponent_one(self):
        assert int(ModExpEngine().powm(5, 1, 97)) == 5

    def test_modulus_one(self):
        assert int(ModExpEngine().powm(5, 3, 1)) == 0

    def test_negative_exponent(self):
        # 3^-1 mod 97 then squared
        assert int(ModExpEngine().powm(3, -2, 97)) == pow(pow(3, -1, 97), 2, 97)

    def test_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            ModExpEngine().powm(2, 3, 0)

    def test_base_larger_than_modulus(self):
        assert int(ModExpEngine().powm(ODD_MOD + 7, 12, ODD_MOD)) == \
            pow(7, 12, ODD_MOD)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_broad_config_sample_agrees(self, seed):
        """Every 29th config must agree with pow() on a random instance."""
        base = (seed * 0x9E3779B9) % ODD_MOD
        exp = (seed ^ 0x5DEECE66D) & ((1 << 48) - 1)
        want = pow(base, exp, ODD_MOD)
        configs = list(iter_configs())
        for cfg in configs[seed % 29::29]:
            assert int(ModExpEngine(cfg).powm(base, exp, ODD_MOD)) == want, \
                cfg.label()


class TestCrt:
    P, Q = 1000003, 1000033
    D = 65537

    @pytest.mark.parametrize("crt", CRT_VARIANTS)
    def test_crt_variants_agree(self, crt):
        eng = ModExpEngine(ModExpConfig(crt=crt))
        n = self.P * self.Q
        got = int(eng.powm_crt(123456789, self.D, self.P, self.Q))
        assert got == pow(123456789, self.D, n)

    def test_derives_missing_crt_params(self):
        eng = ModExpEngine(ModExpConfig(crt="garner"))
        n = self.P * self.Q
        dp = self.D % (self.P - 1)
        dq = self.D % (self.Q - 1)
        qinv = pow(self.Q, -1, self.P)
        explicit = int(eng.powm_crt(42, self.D, self.P, self.Q,
                                    dp=dp, dq=dq, qinv=qinv))
        derived = int(eng.powm_crt(42, self.D, self.P, self.Q))
        assert explicit == derived == pow(42, self.D, n)


class TestCaching:
    @pytest.mark.parametrize("caching", CACHING_OPTIONS)
    def test_caching_does_not_change_results(self, caching):
        eng = ModExpEngine(ModExpConfig(caching=caching))
        for base in (3, 3, 5, 3):  # repeated bases exercise the caches
            assert int(eng.powm(base, 0xBEEF, ODD_MOD)) == \
                pow(base, 0xBEEF, ODD_MOD)

    def test_constants_cache_reuses_modmul(self):
        eng = ModExpEngine(ModExpConfig(caching="constants"))
        eng.powm(2, 10, ODD_MOD)
        first = eng._modmul_cache[ODD_MOD]
        eng.powm(3, 10, ODD_MOD)
        assert eng._modmul_cache[ODD_MOD] is first

    def test_none_caching_keeps_no_state(self):
        eng = ModExpEngine(ModExpConfig(caching="none"))
        eng.powm(2, 10, ODD_MOD)
        assert not eng._modmul_cache
        assert not eng._table_cache

    def test_full_caching_stores_window_table(self):
        eng = ModExpEngine(ModExpConfig(caching="full"))
        eng.powm(7, 100, ODD_MOD)
        assert any(key[0] == 7 and key[1] == ODD_MOD
                   for key in eng._table_cache)

    def test_effective_window_adapts_to_exponent(self):
        eng = ModExpEngine(ModExpConfig(window=5))
        assert eng.effective_window(17) <= 2
        assert eng.effective_window(1024) == 5
        assert eng.effective_window(1) == 1
