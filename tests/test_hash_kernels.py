"""Tests for the MD5 compression kernel (SHA-1's is in test_kernels)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import md5 as md5_mod
from repro.isa.kernels.md5_kernel import Md5Kernel


@pytest.fixture(scope="module")
def kernel():
    return Md5Kernel()


class TestMd5Kernel:
    @settings(max_examples=10, deadline=None)
    @given(block=st.binary(min_size=64, max_size=64))
    def test_matches_reference_compress(self, kernel, block):
        state = list(md5_mod._H0)
        got, _ = kernel.compress(state, block)
        assert got == list(md5_mod._compress(tuple(state), block))

    def test_chained_blocks(self, kernel):
        state = list(md5_mod._H0)
        ref_state = tuple(md5_mod._H0)
        for i in range(3):
            block = bytes((i * 7 + j) & 0xFF for j in range(64))
            state, _ = kernel.compress(state, block)
            ref_state = md5_mod._compress(ref_state, block)
        assert state == list(ref_state)

    def test_bad_block_size(self, kernel):
        with pytest.raises(ValueError):
            kernel.compress(list(md5_mod._H0), bytes(63))

    def test_cheaper_than_sha1(self, kernel):
        from repro.isa.kernels.hash_kernels import Sha1Kernel
        assert kernel.cycles_per_byte() < Sha1Kernel().cycles_per_byte()

    def test_md5_model_is_measured_not_aliased(self):
        from repro.macromodel import characterize_platform
        models = characterize_platform(reps=1, sizes=(1, 2, 4),
                                       modmul_overhead=False)
        assert models.predict("md5_compress") != \
            models.predict("sha1_compress")
