"""Tests for the multi-core security-processor farm.

Uses canned :class:`PlatformCosts` (the measured base/optimized unit
costs, frozen) so no ISS characterization runs -- the farm layer is a
pure function of these numbers.
"""

import pytest

from repro.farm import (FarmSimulator, LeastLoadedScheduler,
                        PreferentialScheduler, RoundRobinScheduler,
                        SCHEDULERS, SessionRequest, TrafficProfile,
                        build_farm, capacity_table, cores_for_rate,
                        cost_of, farm_rate_targets, generate_requests,
                        is_public_key_heavy, make_scheduler, percentile,
                        plan_farm, session_id_for_client,
                        specs_as_configs, summarize)
from repro.farm.simulator import BASE_CORE_GATES, extension_gates
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.costs import PlatformCosts

#: Frozen measured unit costs (same figures the benches reproduce);
#: the ECDH figures are what PlatformCosts.measure computes through
#: the macro-model backend for the stock configurations.
BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)

EXT_GATES = BASE_CORE_GATES + extension_gates()


def _farm(n_cores=4, fraction=0.5):
    return build_farm(n_cores, BASE_COSTS, OPT_COSTS, fraction)


def _run(scheduler, n_cores=4, n_requests=200, rate=60.0,
         resumption=0.4, seed=1, fraction=0.5):
    profile = TrafficProfile(arrival_rate=rate,
                             resumption_ratio=resumption)
    requests = generate_requests(profile, n_requests, seed=seed)
    sim = FarmSimulator(_farm(n_cores, fraction), scheduler)
    return sim.run(requests)


class TestWorkload:
    def test_generation_is_deterministic(self):
        profile = TrafficProfile()
        a = generate_requests(profile, 100, seed=7)
        b = generate_requests(profile, 100, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        profile = TrafficProfile()
        a = generate_requests(profile, 100, seed=7)
        b = generate_requests(profile, 100, seed=8)
        assert a != b

    def test_arrivals_monotone_and_sequenced(self):
        requests = generate_requests(TrafficProfile(), 200, seed=3)
        for prev, cur in zip(requests, requests[1:]):
            assert cur.arrival_cycle >= prev.arrival_cycle
            assert cur.seq == prev.seq + 1

    def test_resumption_is_causal(self):
        """A resumed request's client issued a full handshake before."""
        requests = generate_requests(
            TrafficProfile(resumption_ratio=0.9), 300, seed=5)
        seen = set()
        resumed = 0
        for request in requests:
            if request.protocol != "ssl":
                continue
            if request.resumed:
                resumed += 1
                assert request.client_id in seen
            else:
                seen.add(request.client_id)
        assert resumed > 0

    def test_mix_respected(self):
        profile = TrafficProfile(mix={"esp": 1.0})
        requests = generate_requests(profile, 50, seed=1)
        assert {r.protocol for r in requests} == {"esp"}

    @pytest.mark.parametrize("kwargs", [
        {"arrival_rate": 0.0},
        {"arrival_rate": -1.0},
        {"resumption_ratio": 1.5},
        {"clients": 0},
        {"mix": {"quic": 1.0}},
        {"mix": {}},
        {"sizes_kb": (1, 2), "size_weights": (1,)},
    ])
    def test_profile_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrafficProfile(**kwargs)

    def test_cost_resumed_hit_cheaper_than_miss(self):
        request = SessionRequest(seq=0, arrival_cycle=0.0,
                                 protocol="ssl", size_bytes=4096,
                                 resumed=True, client_id=1)
        hit = cost_of(request, BASE_COSTS, cache_hit=True)
        miss = cost_of(request, BASE_COSTS, cache_hit=False)
        assert hit.cycles < miss.cycles
        assert hit.public_key_cycles == 0.0
        assert miss.public_key_cycles > 0.0

    def test_cost_all_protocols_positive(self):
        for protocol in ("ssl", "wtls", "esp", "wep"):
            request = SessionRequest(seq=0, arrival_cycle=0.0,
                                     protocol=protocol, size_bytes=2048,
                                     resumed=False, client_id=0)
            cost = cost_of(request, OPT_COSTS)
            assert cost.cycles > 0
            assert cost.payload_bytes == 2048

    def test_unknown_protocol_raises(self):
        request = SessionRequest(seq=0, arrival_cycle=0.0,
                                 protocol="quic", size_bytes=1024,
                                 resumed=False, client_id=0)
        with pytest.raises(ValueError):
            cost_of(request, BASE_COSTS)

    def test_public_key_heavy_classification(self):
        def req(protocol, resumed=False):
            return SessionRequest(seq=0, arrival_cycle=0.0,
                                  protocol=protocol, size_bytes=1024,
                                  resumed=resumed, client_id=0)
        assert is_public_key_heavy(req("ssl"))
        assert is_public_key_heavy(req("wtls"))
        assert not is_public_key_heavy(req("ssl", resumed=True))
        assert not is_public_key_heavy(req("esp"))
        assert not is_public_key_heavy(req("wep"))


class TestSimulator:
    def test_event_ordering_determinism(self):
        """Two identical runs produce byte-identical completions."""
        a = _run(make_scheduler("preferential"))
        b = _run(make_scheduler("preferential"))
        assert [(c.request.seq, c.core_index, c.start_cycle,
                 c.finish_cycle) for c in a.completions] == \
               [(c.request.seq, c.core_index, c.start_cycle,
                 c.finish_cycle) for c in b.completions]
        assert summarize(a).as_dict() == summarize(b).as_dict()

    def test_all_requests_served_once(self):
        result = _run(make_scheduler("round-robin"), n_requests=150)
        assert len(result.completions) == 150
        assert len({c.request.seq for c in result.completions}) == 150

    def test_timing_invariants(self):
        result = _run(make_scheduler("least-loaded"))
        for c in result.completions:
            assert c.start_cycle >= c.request.arrival_cycle
            assert c.finish_cycle == pytest.approx(
                c.start_cycle + c.service_cycles)
            assert c.latency_cycles >= c.service_cycles * (1 - 1e-12)

    def test_cores_never_overlap_service(self):
        """Per-core service intervals must not overlap (one request in
        flight per core at a time)."""
        result = _run(make_scheduler("round-robin"))
        per_core = {}
        for c in sorted(result.completions,
                        key=lambda c: (c.core_index, c.start_cycle)):
            last_end = per_core.get(c.core_index, 0.0)
            assert c.start_cycle >= last_end - 1e-6
            per_core[c.core_index] = c.finish_cycle

    def test_utilization_bounded(self):
        metrics = summarize(_run(make_scheduler("least-loaded")))
        assert all(0.0 <= u <= 1.0 + 1e-9
                   for u in metrics.core_utilization)

    def test_build_farm_composition(self):
        specs = build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)
        assert [s.extended for s in specs] == [True, True, False, False]
        assert specs[0].gates == EXT_GATES
        assert specs[3].gates == BASE_CORE_GATES
        assert all(s.extended for s in build_farm(3, BASE_COSTS,
                                                  OPT_COSTS, 1.0))
        assert not any(s.extended for s in build_farm(3, BASE_COSTS,
                                                      OPT_COSTS, 0.0))

    def test_build_farm_validation(self):
        with pytest.raises(ValueError):
            build_farm(0, BASE_COSTS, OPT_COSTS)
        with pytest.raises(ValueError):
            build_farm(2, BASE_COSTS, OPT_COSTS, extended_fraction=1.5)


class TestSchedulers:
    def test_registry_and_factory(self):
        assert set(SCHEDULERS) == {"round-robin", "least-loaded",
                                   "preferential"}
        assert isinstance(make_scheduler("round-robin"),
                          RoundRobinScheduler)
        assert isinstance(make_scheduler("least-loaded"),
                          LeastLoadedScheduler)
        assert isinstance(make_scheduler("preferential"),
                          PreferentialScheduler)
        with pytest.raises(ValueError):
            make_scheduler("fifo")

    def test_round_robin_rotates(self):
        result = _run(make_scheduler("round-robin"), n_cores=4,
                      n_requests=8, rate=1.0)
        order = [c.core_index for c in
                 sorted(result.completions,
                        key=lambda c: c.request.seq)]
        assert order == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_preferential_routes_by_class(self):
        """Under light load, pk-heavy work lands on extended cores and
        bulk work on base cores."""
        result = _run(make_scheduler("preferential"), rate=5.0,
                      n_requests=120, resumption=0.0)
        ext = {c.index for c in result.cores if c.spec.extended}
        for c in result.completions:
            if is_public_key_heavy(c.request):
                assert c.core_index in ext
            else:
                assert c.core_index not in ext

    def test_preferential_homogeneous_fallback(self):
        """With no base cores, bulk work still finds a core."""
        result = _run(make_scheduler("preferential"), fraction=1.0)
        assert len(result.completions) == 200

    def test_session_cache_affinity_hits(self):
        """Under resumption traffic the preferential scheduler realizes
        abbreviated handshakes: farm-wide hit rate is positive and
        resumed requests are served where their session lives."""
        result = _run(make_scheduler("preferential"), resumption=0.6)
        metrics = summarize(result)
        assert metrics.cache_hit_rate > 0.0
        hits = [c for c in result.completions
                if c.request.resumed and c.cache_hit]
        assert hits
        for c in hits:
            sid = session_id_for_client(c.request.client_id)
            assert sid in result.cores[c.core_index].cache

    def test_affinity_can_be_disabled(self):
        result = _run(PreferentialScheduler(affinity=False),
                      resumption=0.6)
        with_affinity = _run(PreferentialScheduler(affinity=True),
                             resumption=0.6)
        assert summarize(with_affinity).cache_hit_rate >= \
            summarize(result).cache_hit_rate

    def test_preferential_beats_round_robin_heterogeneous(self):
        pref = summarize(_run(make_scheduler("preferential")))
        rr = summarize(_run(make_scheduler("round-robin")))
        assert pref.sessions_per_s >= rr.sessions_per_s


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 1) == 10.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_percentiles_ordered(self):
        metrics = summarize(_run(make_scheduler("least-loaded")))
        assert metrics.p50_ms <= metrics.p95_ms <= metrics.p99_ms
        assert metrics.sessions_per_s > 0
        assert metrics.secure_mbps > 0
        assert metrics.total_gates == 2 * EXT_GATES + 2 * BASE_CORE_GATES


class TestCapacity:
    def test_more_cores_more_throughput(self):
        """Capacity planner monotonicity, checked by simulation: at a
        fixed (overload) offered rate, adding cores of one
        configuration never lowers served sessions/s (matching the
        planner's per-configuration sizing claim)."""
        rates = []
        for n_cores in (1, 2, 4, 8):
            metrics = summarize(_run(make_scheduler("preferential"),
                                     n_cores=n_cores, rate=400.0,
                                     n_requests=300, fraction=1.0))
            rates.append(metrics.sessions_per_s)
        assert all(b >= a * 0.999 for a, b in zip(rates, rates[1:]))

    def test_cores_for_rate_monotone(self):
        targets = [1e6, 1e7, 1e8]
        needs = [cores_for_rate(OPT_COSTS, t) for t in targets]
        assert needs == sorted(needs)
        assert needs[0] >= 1
        assert cores_for_rate(OPT_COSTS, 0.0) == 0
        with pytest.raises(ValueError):
            cores_for_rate(OPT_COSTS, -1.0)

    def test_optimized_needs_fewer_cores(self):
        target = 50e6
        assert cores_for_rate(OPT_COSTS, target) < \
            cores_for_rate(BASE_COSTS, target)

    def test_farm_rate_targets_scale_with_population(self):
        targets = farm_rate_targets(populations=(1_000, 100_000))
        assert targets["100,000 users x 3G low (384 kbps)"] == \
            pytest.approx(100 * targets["1,000 users x 3G low (384 kbps)"])
        with pytest.raises(ValueError):
            farm_rate_targets(activity_factor=0.0)

    def test_capacity_table_covers_all_pairs(self):
        configs = specs_as_configs(_farm())
        targets = farm_rate_targets(populations=(1_000,))
        plans = capacity_table(configs, targets)
        assert len(plans) == len(configs) * len(targets)
        for plan in plans:
            assert plan.cores >= 1
            assert plan.farm_gates == plan.cores * dict(
                (n, g) for n, _, g in configs)[plan.config_name]

    def test_plan_farm_picks_cheapest(self):
        configs = specs_as_configs(_farm())
        best = plan_farm(1_000_000, 384e3, configs)
        # The extended core's ~13x rate advantage dwarfs its ~2.8x
        # area overhead, so the optimized configuration always wins.
        assert best.config_name == "optimized"
        assert best.cores >= 1
        with pytest.raises(ValueError):
            plan_farm(0, 384e3, configs)
