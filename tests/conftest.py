"""Shared test configuration.

Hypothesis's default per-example deadline misfires on the slower
property tests (anything that spins up the instruction-set simulator),
so the suite runs under a no-deadline profile; example counts are set
per-test where the default is too heavy.

The :mod:`repro.obs` layer keeps a process-global metrics registry and
tracer; the autouse fixture below resets both around every test so a
test that configures tracing (or an instrumented code path that writes
counters) can never bleed state into a later test's assertions.
"""

import pytest
from hypothesis import HealthCheck, settings

from repro.obs import reset_metrics, reset_tracing

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolate_observability():
    """Fresh global registry and disabled tracer around each test."""
    reset_metrics()
    reset_tracing()
    yield
    reset_metrics()
    reset_tracing()
