"""Shared test configuration.

Hypothesis's default per-example deadline misfires on the slower
property tests (anything that spins up the instruction-set simulator),
so the suite runs under a no-deadline profile; example counts are set
per-test where the default is too heavy.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
