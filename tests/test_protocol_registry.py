"""The pluggable protocol registry and its consumers.

The toy-protocol test is the seam's proof: a protocol registered by a
*test* (no edits to the workload generator, simulator, or scheduler)
flows through generation, simulation, scheduling affinity, shard
merge, and trace replay exactly like the built-ins.
"""

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmSimulator, TrafficProfile, build_farm,
                        export_workload, generate_requests,
                        import_workload, make_scheduler, run_sharded,
                        summarize)
from repro.farm.workload import SessionRequest, cost_of, is_public_key_heavy
from repro.protocols import (ProtocolModel, RequestCost,
                             UnknownProtocolError, default_mix,
                             get_protocol, protocol_names,
                             register_protocol, unregister_protocol)

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


# -- the registry itself -----------------------------------------------------

def test_builtin_registration_order():
    names = protocol_names()
    # The legacy four first (their order IS the PRNG draw order that
    # keeps seeded streams and committed baselines byte-identical),
    # then the pure-registration additions.
    assert names[:4] == ("ssl", "wtls", "esp", "wep")
    assert "tls13" in names and "kasumi" in names


def test_default_mix_excludes_zero_weight():
    mix = default_mix()
    assert mix == {"ssl": 0.5, "wtls": 0.2, "esp": 0.2, "wep": 0.1}
    assert "tls13" not in mix and "kasumi" not in mix


def test_get_protocol_unknown_names_choices():
    with pytest.raises(UnknownProtocolError) as err:
        get_protocol("quic")
    assert "quic" in str(err.value)
    assert "ssl" in str(err.value)


def test_profile_rejects_unknown_mix():
    with pytest.raises(UnknownProtocolError) as err:
        TrafficProfile(mix={"ssl": 0.5, "bogus": 0.5})
    message = str(err.value)
    assert "bogus" in message and "registered" in message
    assert "tls13" in message      # the error lists what IS available


def test_abstract_model_rejects_registration():
    with pytest.raises(ValueError):
        register_protocol(ProtocolModel())


def test_protocols_tuple_deprecation_shim():
    from repro.farm import workload
    with pytest.warns(DeprecationWarning):
        names = workload.PROTOCOLS
    assert names == protocol_names()
    with pytest.raises(AttributeError):
        workload.NOT_A_THING


# -- the registered TLS-1.3 and KASUMI models --------------------------------

def test_tls13_resumption_skips_public_key():
    full = SessionRequest(seq=0, arrival_cycle=0.0, protocol="tls13",
                          size_bytes=2048, resumed=False, client_id=7)
    resumed = SessionRequest(seq=1, arrival_cycle=0.0, protocol="tls13",
                             size_bytes=2048, resumed=True, client_id=7)
    full_cost = cost_of(full, BASE_COSTS)
    hit = cost_of(resumed, BASE_COSTS, cache_hit=True)
    miss = cost_of(resumed, BASE_COSTS, cache_hit=False)
    assert full_cost.public_key_cycles > 0
    assert hit.public_key_cycles == 0
    assert miss.public_key_cycles == full_cost.public_key_cycles
    assert hit.cycles < full_cost.cycles
    assert is_public_key_heavy(full) and not is_public_key_heavy(resumed)


def test_kasumi_cost_uses_measured_overhead():
    request = SessionRequest(seq=0, arrival_cycle=0.0, protocol="kasumi",
                             size_bytes=3000, resumed=False, client_id=1)
    fallback = cost_of(request, BASE_COSTS)
    measured = PlatformCosts(
        name="m", rsa_public_cycles=1.0, rsa_private_cycles=1.0,
        cipher_cycles_per_byte=1.0, hash_cycles_per_byte=1.0,
        protocol_overheads={"kasumi_cycles_per_byte": 10.0})
    cheap = cost_of(request, measured)
    assert fallback.public_key_cycles == 0
    assert cheap.cycles < fallback.cycles
    assert not is_public_key_heavy(request)


# -- the toy protocol: the zero-core-edit proof ------------------------------

class ToyProtocolModel(ProtocolModel):
    """A resumable out-of-tree protocol: flat per-byte rate, one RSA
    public op per full handshake, tuple cache keys."""

    name = "toy"
    default_mix_weight = 0.0
    resumable = True

    def request_cost(self, request, costs, cache_hit=False):
        public_key = (0.0 if request.resumed and cache_hit
                      else costs.rsa_public_cycles)
        return RequestCost(
            cycles=public_key + 12.0 * request.size_bytes,
            public_key_cycles=public_key,
            payload_bytes=request.size_bytes)

    def public_key_heavy(self, request):
        return not request.resumed

    def cache_key(self, client_id):
        return ("toy", client_id)


@pytest.fixture
def toy_protocol():
    model = ToyProtocolModel()
    register_protocol(model)
    yield model
    unregister_protocol("toy")


def test_toy_protocol_end_to_end(toy_protocol, tmp_path):
    profile = TrafficProfile(arrival_rate=80.0, resumption_ratio=0.6,
                             mix={"toy": 0.7, "wep": 0.3})
    specs = build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)
    requests = generate_requests(profile, 80, seed=3)
    by_protocol = {r.protocol for r in requests}
    assert by_protocol <= {"toy", "wep"}
    assert any(r.protocol == "toy" and r.resumed for r in requests)

    # Plain simulation: toy sessions populate per-protocol caches and
    # resumed toy requests hit them.
    sim = FarmSimulator(specs, make_scheduler("preferential"))
    result = sim.run(requests)
    assert result.completions
    toy_hits = sum(core.caches["toy"].hits for core in result.cores
                   if "toy" in core.caches)
    assert toy_hits > 0
    metrics = summarize(result)
    assert metrics.session_cache["toy"]["hits"] == float(toy_hits)

    # Preferential affinity routes a resumed toy request to the core
    # holding its session, so it beats blind round-robin on hits.
    rr_hits = sum(
        core.caches["toy"].hits
        for core in FarmSimulator(
            specs, make_scheduler("round-robin")).run(requests).cores
        if "toy" in core.caches)
    assert toy_hits >= rr_hits

    # Shard merge: the sharded runner prices and merges toy traffic.
    sharded = run_sharded(specs, "preferential", shards=2,
                          requests=requests)
    assert summarize(sharded.result).completed > 0

    # Replay round-trip: export -> import preserves every request.
    trace_path = tmp_path / "toy.jsonl"
    export_workload(trace_path, requests, seed=3)
    trace = import_workload(trace_path)
    assert trace.requests == list(requests)


def test_replay_rejects_unregistered_protocol(toy_protocol, tmp_path):
    profile = TrafficProfile(mix={"toy": 1.0}, resumption_ratio=0.0)
    requests = generate_requests(profile, 5, seed=1)
    trace_path = tmp_path / "toy.jsonl"
    export_workload(trace_path, requests, seed=1)
    unregister_protocol("toy")
    try:
        with pytest.raises(ValueError) as err:
            import_workload(trace_path)
        assert "toy" in str(err.value) and "registered" in str(err.value)
    finally:
        register_protocol(toy_protocol)   # fixture teardown unregisters


def test_unregister_is_idempotent():
    assert not unregister_protocol("never-registered")
