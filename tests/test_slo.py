"""SLO vocabulary (`repro.obs.slo`) and its per-window plumbing."""

import pytest

from repro.costs import PlatformCosts
from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                        run_farm, window_metrics)
from repro.obs import MetricsRegistry
from repro.obs.slo import (SloMonitor, SloObjective, SloReport,
                           SloTarget, SloWindow, parse_slo)

BASE_COSTS = PlatformCosts(
    name="base", rsa_public_cycles=631103.0,
    rsa_private_cycles=61433705.5, cipher_cycles_per_byte=703.5,
    hash_cycles_per_byte=50.84375, ecdh_cycles=4451571.0)
OPT_COSTS = PlatformCosts(
    name="optimized", rsa_public_cycles=124890.5,
    rsa_private_cycles=2139136.0, cipher_cycles_per_byte=21.375,
    hash_cycles_per_byte=50.84375, ecdh_cycles=2903293.8)


class TestSloObjective:
    def test_lower_direction(self):
        latency = SloObjective(metric="p99_ms", target=5.0)
        assert latency.violated_by(5.1)
        assert not latency.violated_by(5.0)
        assert not latency.violated_by(1.0)

    def test_higher_direction(self):
        rate = SloObjective(metric="secure_mbps", target=10.0,
                            direction="higher")
        assert rate.violated_by(9.9)
        assert not rate.violated_by(10.0)

    def test_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            SloObjective(metric="p99_ms", target=5.0,
                         direction="sideways")

    def test_as_gate_shares_direction(self):
        gate = SloObjective(metric="secure_mbps", target=1.0,
                            direction="higher").as_gate()
        assert gate.direction == "higher"
        assert gate.tolerance == 0.0


class TestSloTarget:
    def test_objectives_in_declaration_order(self):
        target = SloTarget(p99_ms=5.0, secure_mbps=10.0,
                           cache_hit_rate=0.8, utilization=0.3)
        objectives = target.objectives()
        assert [o.metric for o in objectives] == \
            ["p99_ms", "secure_mbps", "cache_hit_rate", "utilization"]
        assert [o.direction for o in objectives] == \
            ["lower", "higher", "higher", "higher"]

    def test_none_fields_skipped(self):
        assert SloTarget().objectives() == ()
        assert [o.metric
                for o in SloTarget(utilization=0.5).objectives()] == \
            ["utilization"]

    def test_violations_ignore_unmeasured_metrics(self):
        target = SloTarget(p99_ms=5.0, cache_hit_rate=0.9)
        # No cache lookups this window: hit rate unmeasured, not zero.
        assert target.violations({"p99_ms": 9.0}) == ["p99_ms"]
        assert target.violations(
            {"p99_ms": 1.0, "cache_hit_rate": 0.5}) == \
            ["cache_hit_rate"]
        assert target.violations({"p99_ms": 1.0}) == []

    def test_met_by_legacy_surface(self):
        target = SloTarget(p99_ms=5.0, secure_mbps=10.0)
        assert target.met_by(p99_ms=4.0, secure_mbps=11.0)
        assert not target.met_by(p99_ms=6.0, secure_mbps=11.0)
        assert not target.met_by(p99_ms=4.0, secure_mbps=9.0)

    def test_round_trip(self):
        target = SloTarget(p99_ms=5.0, utilization=0.25)
        assert SloTarget.from_dict(target.as_dict()) == target


class TestParseSlo:
    def test_parses_multiple_metrics(self):
        target = parse_slo("p99_ms=5, secure_mbps=10.5")
        assert target == SloTarget(p99_ms=5.0, secure_mbps=10.5)

    @pytest.mark.parametrize("spec", [
        "", "p99_ms", "p99_ms=fast", "latency=5"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_slo(spec)


class TestSloMonitor:
    def test_report_accumulates_windows(self):
        monitor = SloMonitor(SloTarget(p99_ms=5.0), window_seconds=0.5)
        good = monitor.observe({"p99_ms": 2.0})
        bad = monitor.observe({"p99_ms": 7.0})
        assert good.met and not bad.met
        assert (bad.start_s, bad.end_s) == (0.5, 1.0)
        report = monitor.finish()
        assert len(report.windows) == 2
        assert report.windows_violated == 1
        assert report.violations == 1
        assert report.attainment == pytest.approx(0.5)

    def test_empty_report_attains_fully(self):
        report = SloReport(target=SloTarget(p99_ms=5.0),
                           window_seconds=1.0)
        assert report.attainment == 1.0
        assert report.as_dict()["windows_evaluated"] == 0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            SloMonitor(SloTarget(p99_ms=5.0), window_seconds=0.0)

    def test_publishes_farm_slo_metrics(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(
            SloTarget(p99_ms=5.0, secure_mbps=10.0),
            registry=registry, scheduler="preferential")
        windows = monitor.observe_all([
            {"p99_ms": 1.0, "secure_mbps": 20.0},
            {"p99_ms": 9.0, "secure_mbps": 20.0},
            {"p99_ms": 9.0, "secure_mbps": 1.0},
        ])
        # observe_all returns the per-window verdicts, each stamped
        # with the cumulative attainment through that window.
        assert [w.met for w in windows] == [True, False, False]
        assert [w.attainment for w in windows] == \
            pytest.approx([1.0, 0.5, 1 / 3])
        monitor.finish()
        tag = dict(scheduler="preferential")
        assert registry.counter("farm.slo_windows", **tag).value == 3
        assert registry.counter("farm.slo_violations", **tag).value == 3
        assert registry.counter("farm.slo_alerts", metric="p99_ms",
                                **tag).value == 2
        assert registry.counter("farm.slo_alerts",
                                metric="secure_mbps", **tag).value == 1
        assert registry.gauge("farm.slo_attainment", **tag).value == \
            pytest.approx(1 / 3)

    def test_no_registry_is_fine(self):
        monitor = SloMonitor(SloTarget(p99_ms=5.0))
        windows = monitor.observe_all([{"p99_ms": 9.0}])
        assert len(windows) == 1 and not windows[0].met
        assert monitor.finish().windows_violated == 1

    def test_window_as_dict(self):
        window = SloWindow(index=0, start_s=0.0, end_s=1.0,
                           sample={"p99_ms": 9.0},
                           violations=["p99_ms"])
        payload = window.as_dict()
        assert payload["met"] is False
        assert payload["violations"] == ["p99_ms"]
        # Hand-built windows carry no cumulative attainment; the
        # monitor stamps it when it appends the window to its report.
        assert payload["attainment"] is None


class TestWindowMetrics:
    @staticmethod
    def _result(n_requests=200, rate=60.0):
        config = FarmConfig(
            specs=tuple(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)),
            profile=TrafficProfile(arrival_rate=rate),
            n_requests=n_requests, seed=1)
        return run_farm(config).result

    def test_windows_cover_makespan(self):
        result = self._result()
        window_seconds = 0.5
        samples = window_metrics(result, window_seconds)
        expected = result.makespan_cycles / result.clock_hz
        assert len(samples) * window_seconds >= expected
        assert (len(samples) - 1) * window_seconds < expected

    def test_every_completion_counted_once(self):
        result = self._result()
        samples = window_metrics(result, 0.5)
        total_bits = sum(s.get("secure_mbps", 0.0) * 0.5 * 1e6
                        for s in samples)
        assert total_bits == pytest.approx(
            sum(c.request.size_bytes * 8 for c in result.completions))

    def test_samples_feed_the_monitor(self):
        result = self._result()
        samples = window_metrics(result, 1.0)
        monitor = SloMonitor(SloTarget(utilization=0.0),
                             window_seconds=1.0)
        windows = monitor.observe_all(samples)
        report = monitor.finish()
        assert len(windows) == len(samples)
        assert len(report.windows) == len(samples)
        assert all("utilization" in w.sample for w in report.windows)
        assert all(0.0 <= w.sample["utilization"] <= 1.0
                   for w in report.windows)

    def test_validation(self):
        result = self._result(n_requests=10)
        with pytest.raises(ValueError):
            window_metrics(result, 0.0)

    def test_window_longer_than_run(self):
        # One window swallows the whole run: every completion lands in
        # it and nothing is invented past the makespan.
        result = self._result(n_requests=20)
        samples = window_metrics(result, 1000.0)
        assert len(samples) == 1
        assert samples[0]["completed"] == float(len(result.completions))
        assert 0.0 <= samples[0]["utilization"] <= 1.0

    def test_zero_request_windows_are_explicit(self):
        # Narrow windows leave gaps with no finishes; those samples
        # report zero throughput and zero completions rather than
        # omitting the window (an unmeasured window would hide an
        # outage), and never invent a latency figure.
        result = self._result(n_requests=40, rate=20.0)
        samples = window_metrics(result, 0.01)
        empty = [s for s in samples if s["completed"] == 0.0]
        assert empty, "expected at least one idle window"
        for sample in empty:
            assert sample["secure_mbps"] == 0.0
            assert "p99_ms" not in sample
            assert "cache_hit_rate" not in sample

    def test_completions_conserved_across_windows(self):
        # Conservation: windowing neither drops nor double-counts, for
        # any window size -- including windows that straddle fault
        # transitions of a chaos-injected run.
        from repro.farm import FaultEvent, FaultPlan
        clock = self._result(n_requests=10).clock_hz
        plan = FaultPlan(events=(
            FaultEvent(cycle=0.5 * clock, kind="core_down", core=1),
            FaultEvent(cycle=1.5 * clock, kind="core_up", core=1),
        ), degraded_costs=BASE_COSTS)
        config = FarmConfig(
            specs=tuple(build_farm(4, BASE_COSTS, OPT_COSTS, 0.5)),
            profile=TrafficProfile(arrival_rate=60.0),
            n_requests=200, seed=1, faults=plan)
        result = run_farm(config).result
        total = float(len(result.completions))
        for window_seconds in (0.25, 0.5, 0.7, 1.0, 3.0):
            samples = window_metrics(result, window_seconds)
            assert sum(s["completed"] for s in samples) == total
