"""Ablation: custom-instruction granularity and resource sweeps.

DESIGN.md calls out the choice between fine-grained (more S-box /
MixColumns units) and cheap (time-multiplexed) round instructions.
This bench sweeps the DES round instruction's S-box parallelism and the
AES round variants and reports the full area-vs-cycles/byte tradeoff.
"""

from benchmarks._report import table, write_report
from repro.isa.custom import (AES_VARIANTS, DES_SBOX_UNITS,
                              aes_extension_set, des_extension_set)
from repro.isa.kernels.aes_kernels import AesKernel
from repro.isa.kernels.des_kernels import DesKernel


def test_ablation_granularity(benchmark):
    key = bytes.fromhex("133457799BBCDFF1")
    block = bytes.fromhex("0123456789ABCDEF")
    base_des = DesKernel()
    _, base_cycles = base_des.crypt_block(block, key)

    rows = [["DES base software", "0", f"{base_cycles / 8:.1f}", "1.0x"]]
    prev_cpb = None
    for units in DES_SBOX_UNITS:
        kern = DesKernel(extended=True, sbox_units=units)
        _, cycles = kern.crypt_block(block, key)
        area = des_extension_set(units).area
        cpb = cycles / 8
        rows.append([f"DES desround_{units}", f"{area:.0f}", f"{cpb:.1f}",
                     f"{base_cycles / cycles:.1f}x"])
        if prev_cpb is not None:
            assert cpb <= prev_cpb  # more S-box units never slower
        prev_cpb = cpb

    aes_key = bytes(range(16))
    aes_block = bytes.fromhex("00112233445566778899aabbccddeeff")
    base_aes = AesKernel()
    _, aes_base_cycles = benchmark.pedantic(
        lambda: base_aes.encrypt_block(aes_block, aes_key),
        rounds=1, iterations=1)
    rows.append(["AES base software", "0",
                 f"{aes_base_cycles / 16:.1f}", "1.0x"])
    for sbox_units, mixcol_units in AES_VARIANTS:
        kern = AesKernel(extended=True, sbox_units=sbox_units,
                         mixcol_units=mixcol_units)
        _, cycles = kern.encrypt_block(aes_block, aes_key)
        area = aes_extension_set(sbox_units, mixcol_units).area
        rows.append([f"AES aesrnd_{sbox_units}_{mixcol_units}",
                     f"{area:.0f}", f"{cycles / 16:.1f}",
                     f"{aes_base_cycles / cycles:.1f}x"])

    report = table(rows, ["configuration", "area (GE)", "cycles/byte",
                          "speedup"])
    report += ("\n\nEven the cheapest (1 S-box) DES round instruction "
               "yields a large\nspeedup because it eliminates the "
               "permutation software entirely;\nextra units then trade "
               "area for the last factor of ~2.")
    write_report("ablation_granularity", report)

    # Cheapest DES variant already wins by >10x.
    cheap = DesKernel(extended=True, sbox_units=1)
    _, cheap_cycles = cheap.crypt_block(block, key)
    assert base_cycles / cheap_cycles > 10
