"""Figure 6: Cartesian-product reduction via sharing and dominance.

Paper: combining the 5-point A-D curves of mpn_add_n and mpn_addmul_1
yields 25 candidate design points, which reduce to 9 distinct points
because entries share instructions or reduce to the same set (add_4
dominates add_2, etc.).
"""

from benchmarks._report import table, write_report
from repro.tie.formulation import adcurve_mpn_add_n, adcurve_mpn_addmul_1
from repro.tie.selection import combine_curves, reduce_instruction_set


def test_fig6_reduction(benchmark):
    add_curve = adcurve_mpn_add_n(16)
    mac_curve = adcurve_mpn_addmul_1(16)

    combined = benchmark.pedantic(
        lambda: combine_curves("root", [(add_curve, 1), (mac_curve, 1)],
                               pareto=False),
        rounds=1, iterations=1)

    rows = [[p.label(), f"{p.area:.0f}", f"{p.cycles:.0f}"]
            for p in sorted(combined, key=lambda p: p.area)]
    report = (f"raw Cartesian product: {combined.raw_combination_count} "
              f"points (paper: 25)\n"
              f"after sharing + dominance: {len(combined)} points "
              f"(paper: 9)\n\n" +
              table(rows, ["instruction set", "area (GE)", "cycles"]))
    write_report("fig6_reduction", report)

    assert combined.raw_combination_count == 25
    assert len(combined) == 9
    # Spot-check the paper's worked example: {add_2, add_4, mul_1}
    # reduces to {add_4, mul_1}.
    reduced = reduce_instruction_set({"vaddc_2", "vaddc_4", "macmul_1"})
    assert reduced == {"vaddc_4", "macmul_1"}
    benchmark.extra_info["raw_points"] = combined.raw_combination_count
    benchmark.extra_info["reduced_points"] = len(combined)
