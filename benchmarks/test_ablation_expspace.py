"""Ablation: who wins where in the exponentiation design space.

Slices the 450-point space along each dimension (holding the others at
the tuned values) and reports the marginal effect -- the "crossovers"
the exploration phase exists to find: CRT's gain grows with modulus
size, windows only pay off for long exponents, Montgomery vs Barrett
is close while schoolbook/interleaved trail badly.
"""

import pytest

from benchmarks._report import table, write_report
from repro.crypto.modexp import ModExpConfig
from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
from repro.macromodel import estimate_cycles
from repro.crypto.modexp import ModExpEngine
from repro.ssl import fixtures

TUNED = dict(modmul="montgomery", window=5, crt="garner", radix_bits=32,
             caching="constants")


def _vary(**overrides) -> ModExpConfig:
    params = dict(TUNED)
    params.update(overrides)
    return ModExpConfig(**params)


def test_ablation_exponentiation_space(base_models, benchmark):
    explorer = AlgorithmExplorer(base_models, RsaDecryptWorkload.bits512())

    sections = []

    # --- modmul dimension ---
    rows = []
    modmul_cycles = {}
    for name in ("schoolbook", "karatsuba", "barrett", "montgomery",
                 "interleaved"):
        result = explorer.evaluate(_vary(modmul=name))
        modmul_cycles[name] = result.estimated_cycles
        rows.append([name, f"{result.estimated_cycles / 1e6:.2f}M"])
    sections.append("modular multiplication (512-bit decrypt):\n"
                    + table(rows, ["algorithm", "est. cycles"]))

    # --- CRT dimension at two key sizes ---
    rows = []
    crt_gain = {}
    for bits, workload in ((512, RsaDecryptWorkload.bits512()),
                           (1024, RsaDecryptWorkload.bits1024())):
        ex = AlgorithmExplorer(base_models, workload)
        none = ex.evaluate(_vary(crt="none")).estimated_cycles
        garner = ex.evaluate(_vary(crt="garner")).estimated_cycles
        classic = ex.evaluate(_vary(crt="classic")).estimated_cycles
        crt_gain[bits] = none / garner
        rows.append([bits, f"{none / 1e6:.2f}M", f"{classic / 1e6:.2f}M",
                     f"{garner / 1e6:.2f}M", f"{none / garner:.2f}x"])
    sections.append("\nCRT variants by key size:\n"
                    + table(rows, ["key bits", "none", "classic", "garner",
                                   "garner gain"]))

    # --- window dimension: long private exponent vs short public one ---
    rows = []
    priv = {}
    for w in (1, 2, 3, 4, 5):
        result = explorer.evaluate(_vary(window=w))
        priv[w] = result.estimated_cycles
        rows.append([w, f"{result.estimated_cycles / 1e6:.2f}M"])
    engine_w1 = ModExpEngine(_vary(window=1))
    engine_w5 = ModExpEngine(_vary(window=5))
    kp = fixtures.SERVER_512
    pub_w1 = estimate_cycles(base_models, engine_w1.powm, 0xC0FFEE,
                             kp.public.e, kp.public.n).cycles
    pub_w5 = benchmark.pedantic(
        lambda: estimate_cycles(base_models, engine_w5.powm, 0xC0FFEE,
                                kp.public.e, kp.public.n).cycles,
        rounds=1, iterations=1)
    sections.append("\nwindow size (512-bit private exponent):\n"
                    + table(rows, ["window", "est. cycles"]))
    sections.append(f"\npublic exponent (17-bit): w=1 {pub_w1 / 1e3:.0f}k vs "
                    f"w<=5 {pub_w5 / 1e3:.0f}k cycles "
                    f"(adaptive window clamps the table cost)")
    write_report("ablation_expspace", "\n".join(sections))

    # Crossover/ordering claims.
    assert modmul_cycles["montgomery"] < modmul_cycles["schoolbook"]
    assert modmul_cycles["barrett"] < modmul_cycles["schoolbook"]
    assert modmul_cycles["interleaved"] > modmul_cycles["montgomery"]
    # CRT gain grows with key size (quadratic modmul cost).
    assert crt_gain[1024] > crt_gain[512] > 2.0
    # Windows monotonically help long exponents...
    assert priv[5] < priv[3] < priv[1]
    # ...but the adaptive window keeps short public exponents unharmed
    # (w is clamped to ~2 for a 17-bit exponent, so the 30-multiply
    # table build of a naive w=5 never happens).
    assert pub_w5 == pytest.approx(pub_w1, rel=0.15)
