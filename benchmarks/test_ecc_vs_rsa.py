"""Extension bench: ECC vs RSA signature cost (paper reference [28]).

The paper's related work points at elliptic curves as the reduced-
complexity alternative public-key family.  With ECC implemented on the
same Mpz substrate, the macro-model estimator prices both families in
the same currency (base-platform cycles):

- ECDSA over secp160r1 (the ~RSA-1024-equivalent curve of the era)
  signs in a fraction of the reference RSA-1024 cycles;
- it also beats the *tuned* RSA-1024 configuration, provided the field
  arithmetic avoids per-operation division (Jacobian coordinates +
  Barrett reduction -- the bench quantifies how essential that is).
"""

from benchmarks._report import table, write_report
from repro.crypto.ec import SECP160R1, ecdsa_sign, ecdsa_verify, generate_ec_keypair
from repro.crypto.rsa import Rsa
from repro.macromodel import estimate_cycles
from repro.mp import DeterministicPrng
from repro.platform import REFERENCE_CONFIG, TUNED_CONFIG
from repro.ssl import fixtures


def test_ecc_vs_rsa(base_models, benchmark):
    keypair = generate_ec_keypair(SECP160R1, DeterministicPrng(1))
    est_ec_sign = benchmark.pedantic(
        lambda: estimate_cycles(base_models, ecdsa_sign, b"m", keypair,
                                DeterministicPrng(2)),
        rounds=1, iterations=1)
    sig = est_ec_sign.result
    assert ecdsa_verify(b"m", sig, SECP160R1, keypair.public)
    est_ec_verify = estimate_cycles(base_models, ecdsa_verify, b"m", sig,
                                    SECP160R1, keypair.public)

    rsa_ref = Rsa(REFERENCE_CONFIG)
    rsa_tuned = Rsa(TUNED_CONFIG)
    kp1024 = fixtures.SERVER_1024
    est_ref_sign = estimate_cycles(base_models, rsa_ref.sign, b"m",
                                   kp1024.private)
    est_tuned_sign = estimate_cycles(base_models, rsa_tuned.sign, b"m",
                                     kp1024.private)
    est_rsa_verify = estimate_cycles(
        base_models, rsa_tuned.verify, b"m", est_tuned_sign.result,
        kp1024.public)

    rows = [
        ["ECDSA-160 sign", f"{est_ec_sign.cycles / 1e6:.2f}M"],
        ["ECDSA-160 verify", f"{est_ec_verify.cycles / 1e6:.2f}M"],
        ["RSA-1024 sign (reference sw)", f"{est_ref_sign.cycles / 1e6:.2f}M"],
        ["RSA-1024 sign (tuned sw)", f"{est_tuned_sign.cycles / 1e6:.2f}M"],
        ["RSA-1024 verify (e=65537)", f"{est_rsa_verify.cycles / 1e6:.2f}M"],
    ]
    report = table(rows, ["operation", "base-platform cycles"])
    report += ("\n\nECC signs cheaper than even tuned RSA at equivalent "
               "security, but\nverifies slower (RSA's tiny public "
               "exponent) -- the classic tradeoff\nthe platform's "
               "programmability accommodates.")
    write_report("ecc_vs_rsa", report)

    assert est_ec_sign.cycles < 0.5 * est_tuned_sign.cycles
    assert est_ec_sign.cycles < 0.15 * est_ref_sign.cycles
    # RSA's verify advantage: tiny public exponent.
    assert est_rsa_verify.cycles < est_ec_verify.cycles
