"""Figure 4: the annotated call graph of an optimized modular
exponentiation.

The paper profiles its optimized modexp and renders the function call
graph with per-edge call counts (decrypt calling mpz_mul x4, mod_hw x4,
mpz_mod x2, ... down to the mpn leaf routines).  We run the full
Montgomery modular exponentiation on the XT32 ISS under the profiler
and extract the same artifact: modexp -> mont_mul -> mpn_addmul_1 /
mpn_sub_n with call counts and local cycles.
"""

from benchmarks._report import write_report
from repro.isa.kernels.modexp_kernel import ModExpKernel
from repro.tie.callgraph import CallGraph


def test_fig4_callgraph(benchmark):
    kernel = ModExpKernel()
    modulus = (1 << 256) + 0x169
    base, exp = 0xFEEDFACECAFEBEEF1234567, 0xA5A5A

    result, cycles, profile = benchmark.pedantic(
        lambda: kernel.powm(base, exp, modulus), rounds=1, iterations=1)
    assert result == pow(base, exp, modulus)

    graph = CallGraph.from_profile(profile, "modexp")
    graph.validate_acyclic()

    lines = [f"ISS run: {cycles} cycles, "
             f"{profile.instructions} instructions",
             "",
             "annotated call graph (edge = calls per invocation):",
             graph.render(),
             "",
             "absolute call counts:"]
    for func, count in sorted(profile.call_counts.items()):
        local = profile.local_cycles.get(func, 0)
        lines.append(f"  {func:16s} called {count:6d}x, "
                     f"local cycles {local}")
    write_report("fig4_callgraph", "\n".join(lines))

    # Structure assertions: the paper's graph shape.
    assert "mont_mul" in graph.nodes
    assert ("modexp", "mont_mul") in profile.call_edges
    assert ("mont_mul", "mpn_addmul_1") in profile.call_edges
    # Each mont_mul performs 2k addmul rows (mul phase + REDC phase).
    k = (modulus.bit_length() + 31) // 32
    montmuls = profile.call_counts["mont_mul"]
    addmuls = profile.call_counts["mpn_addmul_1"]
    assert addmuls == 2 * k * montmuls
    # The multiply-accumulate leaf dominates the cycle budget.
    leaf_cycles = profile.local_cycles["mpn_addmul_1"]
    assert leaf_cycles > 0.6 * profile.total_cycles
