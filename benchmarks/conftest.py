"""Shared fixtures for the benchmark/reproduction harness.

Everything expensive (platform characterization, cost measurement) is
session-scoped so the whole `pytest benchmarks/ --benchmark-only` run
pays for it once.
"""

import pytest

from repro.macromodel import characterize_platform
from repro.platform import SecurityPlatform
from repro.ssl import fixtures
from repro.costs import PlatformCosts


@pytest.fixture(scope="session")
def base_models():
    return characterize_platform()


@pytest.fixture(scope="session")
def ext_models():
    return characterize_platform(add_width=8, mac_width=8)


@pytest.fixture(scope="session")
def base_platform(base_models):
    return SecurityPlatform.base(models=base_models)


@pytest.fixture(scope="session")
def optimized_platform(ext_models):
    return SecurityPlatform.optimized(models=ext_models)


@pytest.fixture(scope="session")
def base_costs(base_platform):
    return PlatformCosts.measure(base_platform, fixtures.SERVER_1024)


@pytest.fixture(scope="session")
def optimized_costs(optimized_platform):
    return PlatformCosts.measure(optimized_platform, fixtures.SERVER_1024)
