"""The reproduction benchmark harness (one target per paper table/figure).

This is a package so ``from benchmarks._report import ...`` resolves
regardless of how pytest is invoked (``pytest`` vs ``python -m pytest``).
"""
