"""The introduction's motivation numbers, re-derived (paper Section 1).

"A PalmIIIx handset requires 3.4 minutes to perform 512-bit RSA key
generation, 7 seconds to perform digital signature generation, and can
perform (single) DES encryption at only 13 kbps."

We re-derive the *structure* of those claims on the base platform at a
PDA-class clock (the Palm's MC68EZ328 ran at 16 MHz): RSA-512 key
generation costs minutes, signatures cost seconds, and DES throughput
sits orders of magnitude below 3G rates.  Absolute numbers differ (the
Dragonball was 16-bit with unoptimized software; our base core is a
32-bit RISC running tuned C-equivalent kernels), so the assertions are
on magnitudes.
"""

from benchmarks._report import table, write_report
from repro.crypto.rsa import Rsa, generate_rsa_keypair
from repro.macromodel import estimate_cycles
from repro.mp import DeterministicPrng
from repro.platform import REFERENCE_CONFIG
from repro.ssl import fixtures

PDA_CLOCK_HZ = 16e6


def test_motivation(base_models, base_platform, benchmark):
    # RSA-512 key generation (reference software, full prime search).
    est_keygen = benchmark.pedantic(
        lambda: estimate_cycles(base_models, generate_rsa_keypair, 512,
                                DeterministicPrng(77)),
        rounds=1, iterations=1)
    keygen_seconds = est_keygen.cycles / PDA_CLOCK_HZ

    # RSA-512 signature with the reference software.
    rsa = Rsa(REFERENCE_CONFIG)
    est_sign = estimate_cycles(base_models, rsa.sign, b"payment",
                               fixtures.SERVER_512.private)
    sign_seconds = est_sign.cycles / PDA_CLOCK_HZ

    # Single-DES throughput.
    des_cpb = base_platform.cipher_cycles_per_byte("des")
    des_kbps = PDA_CLOCK_HZ / des_cpb * 8 / 1e3

    rows = [
        ["RSA-512 keygen", f"{est_keygen.cycles / 1e6:.0f}M cycles",
         f"{keygen_seconds:.0f} s", "204 s (3.4 min)"],
        ["RSA-512 signature", f"{est_sign.cycles / 1e6:.1f}M cycles",
         f"{sign_seconds:.1f} s", "7 s"],
        ["DES throughput", f"{des_cpb:.0f} c/B",
         f"{des_kbps:.0f} kbps", "13 kbps"],
    ]
    report = table(rows, ["operation", "measured cost",
                          f"at {PDA_CLOCK_HZ / 1e6:.0f} MHz", "paper (Palm)"])
    report += ("\n\nMagnitudes reproduce: keygen costs whole minutes-class "
               "work, signatures\nseconds-class, and single-DES throughput "
               "cannot keep up with 3G data\nrates -- the security "
               "processing gap the platform exists to close.")
    write_report("motivation", report)

    # Structure assertions (order-of-magnitude bands; our 32-bit core
    # with tuned kernels is a single order faster than the 16-bit Palm).
    assert keygen_seconds > 3           # whole-seconds-to-minutes class
    assert 0.1 < sign_seconds < 30      # seconds-class
    assert keygen_seconds > 5 * sign_seconds
    assert des_kbps < 2000              # far below the 2 Mbps 3G target
