"""Figure 1: the security processing gap.

Paper: projected security-processing MIPS requirements (2G -> 2.5G ->
3G data rates, stronger suites) grow much faster than embedded
processor MIPS (0.35u -> 0.10u nodes), so the gap widens.
"""

from benchmarks._report import table, write_report
from repro.gap import GapModel


def test_fig1_gap(benchmark):
    model = GapModel()
    rows = benchmark.pedantic(model.gap_series, rounds=1, iterations=1)

    req = [[r["generation"], r["year"], f"{r['mips']:.0f}"]
           for r in model.requirement_series()]
    cap = [[r["node"], r["year"], f"{r['mips']:.0f}"]
           for r in model.capability_series()]
    gap = [[r["generation"], f"{r['required_mips']:.0f}",
            f"{r['available_mips']:.0f}", f"{r['gap_ratio']:.2f}"]
           for r in rows]
    report = ("security processing requirement (MIPS):\n"
              + table(req, ["generation", "year", "MIPS required"])
              + "\n\nembedded processor capability (MIPS):\n"
              + table(cap, ["node", "year", "MIPS delivered"])
              + "\n\nthe gap (requirement / capability):\n"
              + table(gap, ["generation", "need", "have", "ratio"]))
    write_report("fig1_gap", report)

    assert model.gap_widens()
    ratios = [r["gap_ratio"] for r in rows]
    assert ratios[-1] > 10 * ratios[0]
    three_g = next(r for r in rows if r["generation"] == "3G")
    assert three_g["gap_ratio"] > 1.0  # 3G security alone swamps the CPU
