"""Figure 8: estimated SSL transaction speedups vs session size.

Paper: transaction sizes 1KB-32KB; small transactions (public-key
bound) speed up ~21.8x, large transactions saturate at ~3.05x because
the miscellaneous component is not accelerated.  The figure also shows
the workload breakdown (public-key / symmetric / misc) per size.

Our base platform's RSA software is *relatively* slower than the
paper's baseline (they started from an already CRT-optimized library),
so the public-key-bound region extends further right: we report sizes
up to 1 MB to show the same saturation behaviour, and assert the
qualitative shape -- monotone decline from >15x toward the
single-digit (sym+misc)-bound asymptote.
"""

from benchmarks._report import table, write_report
from repro.ssl.transaction import SslWorkloadModel

SIZES_KB = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig8_ssl_speedups(base_costs, optimized_costs, benchmark):
    model = SslWorkloadModel(base_costs, optimized_costs)
    benchmark.pedantic(lambda: model.series([s * 1024 for s in SIZES_KB]),
                       rounds=1, iterations=1)
    rows = []
    speedups = []
    for kb in SIZES_KB:
        row = model.series([kb * 1024])[0]
        speedups.append(row["speedup"])
        bf = row["base_fractions"]
        rows.append([f"{kb}KB", f"{row['speedup']:.1f}x",
                     f"{bf['public_key']:.2f}", f"{bf['symmetric']:.2f}",
                     f"{bf['misc']:.2f}"])
    rows.append(["asymptote", f"{model.asymptotic_speedup():.2f}x",
                 "-", "-", "-"])
    report = table(rows, ["size", "speedup", "base pk", "base sym",
                          "base misc"])
    report += ("\n\npaper: ~21.8x at small sizes, ~3.05x at 32KB "
               "(saturation set by the unaccelerated misc component)")
    write_report("fig8_ssl_speedups", report)

    # Shape assertions.
    assert speedups[0] > 15                      # public-key bound region
    assert speedups == sorted(speedups, reverse=True)  # monotone decline
    asymptote = model.asymptotic_speedup()
    assert 2 < asymptote < 12
    assert speedups[-1] < 1.2 * asymptote        # saturation reached
    # Breakdown crossover: pk dominates small, bulk dominates large.
    small = model.breakdown(base_costs, 1024).fractions()
    large = model.breakdown(base_costs, 1024 * 1024).fractions()
    assert small["public_key"] > 0.8
    assert large["public_key"] < 0.25
    benchmark.extra_info["speedup_1KB"] = round(speedups[0], 1)
    benchmark.extra_info["asymptote"] = round(asymptote, 2)
