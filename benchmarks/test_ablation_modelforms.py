"""Ablation: macro-model form selection (affine / quadratic / step).

The paper notes performance profiles are "regular (piecewise linear,
quadratic, etc.)".  The base-ISA kernels are exactly affine in the limb
count; the chunked extended-ISA kernels have a staircase profile that a
plain affine model smooths over -- the step_affine form recovers it.
"""

from benchmarks._report import table, write_report
from repro.isa.kernels.mpn_kernels import MpnKernels
from repro.macromodel.regression import fit_form, r_squared
from repro.mp.prng import DeterministicPrng


def _samples(kernels, sizes, prng):
    samples = []
    for n in sizes:
        up, vp = prng.next_limbs(n), prng.next_limbs(n)
        _, _, cycles = kernels.add_n(up, vp)
        samples.append((float(n), float(cycles)))
    return samples


def test_ablation_model_forms(benchmark):
    prng = DeterministicPrng(77)
    sizes = tuple(range(1, 33))
    base_samples = benchmark.pedantic(
        lambda: _samples(MpnKernels(), sizes, prng), rounds=1, iterations=1)
    ext_samples = _samples(MpnKernels(add_width=8, mac_width=1), sizes, prng)

    rows = []
    fits = {}
    for label, samples in (("base", base_samples), ("ext", ext_samples)):
        for form, width in (("affine", 1), ("quadratic", 1),
                            ("step_affine", 8), ("chunk_affine", 8)):
            fit = fit_form(samples, form, width)
            fits[(label, form)] = fit
            rows.append([label, form, f"{fit.mean_abs_pct_error:.2f}%",
                         f"{fit.max_abs_pct_error:.2f}%",
                         f"{r_squared(samples, fit):.4f}"])
    report = table(rows, ["platform", "form", "mean |err|", "max |err|",
                          "R^2"])
    report += ("\n\nBase kernels are exactly affine; the chunked extended "
               "kernel's\nsawtooth (vector chunks + scalar tail) is exact "
               "under the chunk_affine form.")
    write_report("ablation_modelforms", report)

    # Base: affine is already essentially exact.
    assert fits[("base", "affine")].mean_abs_pct_error < 1.0
    # Ext: the chunk form captures the sawtooth almost exactly
    # (small residual from branch-taken penalties at loop exits)...
    assert fits[("ext", "chunk_affine")].mean_abs_pct_error < 2.5
    # ...which plain affine (and even quadratic) cannot.
    assert fits[("ext", "affine")].mean_abs_pct_error > \
        10 * fits[("ext", "chunk_affine")].mean_abs_pct_error
