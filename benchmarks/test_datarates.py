"""The paper's stated objective: secure 3G/WLAN data rates.

Section 1.1: "enable secure communications at data rates provided by
3G cellular (100 kbps - 2 Mbps) and wireless LAN (10 - 55 Mbps)".

This bench evaluates both platforms' maximum sustainable secure data
rate (bulk cipher + MAC + protocol per byte at the 188 MHz clock) and
checks the feasibility table: the base platform cannot even saturate
3G; the optimized platform covers the 3G band with headroom (and the
lower WLAN band when given the full CPU with AES instead of 3DES).
"""

from benchmarks._report import table, write_report
from repro.platform import SecurityPlatform
from repro.ssl import fixtures
from repro.costs import PlatformCosts
from repro.ssl.throughput import RATE_TARGETS, feasibility


def test_datarates(base_platform, optimized_platform, base_costs,
                   optimized_costs, benchmark):
    # Also evaluate AES as the bulk cipher (the faster suite).
    import dataclasses
    variants = []
    for costs, platform in ((base_costs, base_platform),
                            (optimized_costs, optimized_platform)):
        variants.append((f"{costs.name}/3DES", costs))
        aes_costs = dataclasses.replace(
            costs, cipher_cycles_per_byte=platform.cipher_cycles_per_byte(
                "aes"))
        variants.append((f"{costs.name}/AES", aes_costs))

    reports = {}
    rows = []
    for name, costs in variants:
        report = benchmark.pedantic(lambda c=costs: feasibility(c),
                                    rounds=1, iterations=1) \
            if not reports else feasibility(costs)
        reports[name] = report
        marks = ["yes" if report.feasible[t] else "no"
                 for t in RATE_TARGETS]
        rows.append([name, f"{report.cycles_per_byte:.0f}",
                     f"{report.max_rate_bps / 1e6:.2f} Mbps"] + marks)
    headers = (["platform/suite", "c/B", "max secure rate"]
               + list(RATE_TARGETS))
    report_text = table(rows, headers)
    report_text += ("\n\nThe base platform cannot sustain even the 3G "
                    "high band; the optimized\nplatform secures the full "
                    "3G range and reaches into the WLAN band with\nAES -- "
                    "the paper's objective, reproduced from measured "
                    "kernel cycles.")
    write_report("datarates", report_text)

    assert not reports["base/3DES"].feasible["3G high (2 Mbps)"]
    assert reports["optimized/3DES"].feasible["3G high (2 Mbps)"]
    assert reports["optimized/AES"].feasible["3G high (2 Mbps)"]
    assert reports["optimized/AES"].feasible["WLAN low (10 Mbps)"]
    # 55 Mbps exceeds what MAC+protocol overhead allows at 188 MHz --
    # honest accounting, matching the era's need for WLAN offload NICs.
    assert not reports["optimized/AES"].feasible["WLAN high (55 Mbps)"]
