"""Table 1: per-algorithm speedups, optimized platform vs base.

Paper (DES/3DES/AES in cycles/byte on the Xtensa T1040; RSA per op):

    DES  enc/dec   476.8 -> 15.4   (31.0x)
    3DES enc/dec  1426.4 -> 42.1   (33.9x)
    AES  enc/dec  1526.2 -> 87.5   (17.4x)
    RSA  enc       3.16e6 cyc      (10.8x)
    RSA  dec      12.658e6 cyc     (66.4x)

We reproduce the *shape*: block ciphers measured end-to-end on the
XT32 ISS, RSA estimated with per-platform macro-models on the 1024-bit
fixture key.  Expected bands: DES/3DES ~25-40x, AES ~12-22x (smaller
than DES -- software AES is already table-friendly), RSA decrypt much
larger than RSA encrypt.
"""

import pytest

from benchmarks._report import table, write_report

PAPER = {"des": 31.0, "3des": 33.9, "aes": 17.4,
         "rsa_enc": 10.8, "rsa_dec": 66.4}


@pytest.fixture(scope="module")
def measured(base_platform, optimized_platform, base_costs, optimized_costs):
    rows = {}
    for algo in ("des", "3des", "aes"):
        base_cpb = base_platform.cipher_cycles_per_byte(algo)
        opt_cpb = optimized_platform.cipher_cycles_per_byte(algo)
        rows[algo] = (base_cpb, opt_cpb, base_cpb / opt_cpb)
    rows["rsa_enc"] = (base_costs.rsa_public_cycles,
                       optimized_costs.rsa_public_cycles,
                       base_costs.rsa_public_cycles
                       / optimized_costs.rsa_public_cycles)
    rows["rsa_dec"] = (base_costs.rsa_private_cycles,
                       optimized_costs.rsa_private_cycles,
                       base_costs.rsa_private_cycles
                       / optimized_costs.rsa_private_cycles)
    return rows


def test_table1(measured, benchmark, optimized_platform):
    benchmark.pedantic(
        lambda: optimized_platform.cipher_cycles_per_byte("des"),
        rounds=1, iterations=1)
    out_rows = []
    for algo in ("des", "3des", "aes", "rsa_enc", "rsa_dec"):
        base, opt, speedup = measured[algo]
        unit = "c/B" if algo in ("des", "3des", "aes") else "cyc/op"
        out_rows.append([algo.upper(), f"{base:.1f}", f"{opt:.1f}", unit,
                         f"{speedup:.1f}x", f"{PAPER[algo]}x"])
    report = table(out_rows, ["algorithm", "base", "optimized", "unit",
                              "speedup", "paper"])
    write_report("table1_speedups", report)

    # Shape assertions (paper Table 1 structure).
    assert 15 < measured["des"][2] < 60
    assert 15 < measured["3des"][2] < 60
    assert 8 < measured["aes"][2] < 30
    assert measured["aes"][2] < measured["des"][2]          # AES gains least
    assert measured["rsa_dec"][2] > 3 * measured["rsa_enc"][2]
    assert measured["rsa_dec"][2] > 15                      # "up to" band
    for info_key, algo in (("des", "des"), ("rsa_dec", "rsa_dec")):
        benchmark.extra_info[f"{info_key}_speedup"] = \
            round(measured[algo][2], 1)
