"""Figure 5: A-D curves and their propagation through a call graph.

(a) the ``mpn_add_n`` curve: base software point (zero area, ~200
    cycles at n=16 in the paper) plus add_2/add_4/add_8/add_16 points
    with diminishing returns;
(b) the ``mpn_addmul_1`` curve (adder array shared with (a), plus a
    multiplier);
(c) combining both under a root node, with Pareto pruning removing an
    inferior point (the paper's P1).
"""

from benchmarks._report import table, write_report
from repro.tie.formulation import adcurve_mpn_add_n, adcurve_mpn_addmul_1
from repro.tie.selection import combine_curves


def _curve_rows(curve):
    return [[p.label(), f"{p.area:.0f}", f"{p.cycles:.0f}"]
            for p in sorted(curve, key=lambda p: p.area)]


def test_fig5_adcurves(benchmark):
    add_curve = benchmark.pedantic(lambda: adcurve_mpn_add_n(16),
                                   rounds=1, iterations=1)
    mac_curve = adcurve_mpn_addmul_1(16)

    sections = ["(a) mpn_add_n, n=16 (paper base point: 202 cycles)"]
    sections.append(table(_curve_rows(add_curve),
                          ["instructions", "area (GE)", "cycles"]))
    sections.append("\n(b) mpn_addmul_1, n=16")
    sections.append(table(_curve_rows(mac_curve),
                          ["instructions", "area (GE)", "cycles"]))

    unpruned = combine_curves("root", [(add_curve, 4), (mac_curve, 4)],
                              local_cycles=40, pareto=False)
    pruned = unpruned.pareto()
    sections.append(f"\n(c) combined root curve: {len(unpruned)} points, "
                    f"{len(pruned)} after Pareto pruning")
    sections.append(table(_curve_rows(pruned),
                          ["instructions", "area (GE)", "cycles"]))
    write_report("fig5_adcurves", "\n".join(sections))

    # (a): monotone tradeoff with diminishing returns.
    points = sorted(add_curve, key=lambda p: p.area)
    assert points[0].area == 0
    cycles = [p.cycles for p in points]
    assert cycles == sorted(cycles, reverse=True)
    gains = [cycles[i] - cycles[i + 1] for i in range(len(cycles) - 1)]
    assert gains[0] > gains[-1]  # diminishing returns
    # (b): every accelerated point shares the adder family + multiplier.
    for p in mac_curve:
        if p.instructions:
            assert "macmul_1" in p.instructions
    # (c): Pareto pruning removed at least one point.
    assert len(pruned) < len(unpruned)
    assert pruned.base_point.cycles == unpruned.base_point.cycles
