"""Ablation: data-cache configuration vs cipher kernel performance.

The Xtensa's configurability includes the cache/memory interface
(paper Section 2.1).  The base-ISA cipher kernels are table-driven
(DES: ~34 KB of SP/IP/FP tables; AES: 4 KB of T-tables + round keys),
so their throughput is sensitive to the data-cache size -- and the
custom-instruction variants, whose tables live in dedicated hardware
LUTs, are immune.  This is a real secondary benefit of the paper's
approach that the cycle numbers alone hide.
"""

from benchmarks._report import table, write_report
from repro.isa.cache import CacheConfig
from repro.isa.kernels.des_kernels import DesKernel
from repro.isa.machine import Machine

KEY = bytes.fromhex("133457799BBCDFF1")
BLOCK = bytes.fromhex("0123456789ABCDEF")


def _des_base_cycles(dcache=None, warm_blocks=6, measured_blocks=4):
    """Steady-state cycles/block: warm the cache, then measure."""
    kernel = DesKernel()
    machine = Machine(kernel.runner.program, kernel.runner.extensions,
                      kernel.runner.mem_size, dcache=dcache)
    ks = kernel._stage_schedule(machine, KEY, False)
    sp, ip, fp = kernel._stage_tables(machine)
    in_a, out_a = machine.alloc(8), machine.alloc(8)

    def encrypt(i):
        machine.write_bytes(in_a, bytes((b + i) & 0xFF for b in BLOCK))
        machine.run("des_encrypt", [in_a, out_a, ks, sp, ip, fp])

    for i in range(warm_blocks):
        encrypt(i)
    start = machine.cycles
    for i in range(measured_blocks):
        encrypt(100 + i)
    cycles = (machine.cycles - start) / measured_blocks
    miss_rate = machine.dcache.stats.miss_rate if machine.dcache else 0.0
    return cycles, miss_rate


def test_ablation_cache(benchmark):
    ideal_cycles, _ = benchmark.pedantic(_des_base_cycles, rounds=1,
                                         iterations=1)
    rows = [["ideal memory", "-", f"{ideal_cycles / 8:.1f}", "-"]]
    cycles_by_size = {}
    for size_kb in (2, 4, 8, 16, 32, 64):
        config = CacheConfig(size_bytes=size_kb * 1024, line_bytes=16,
                             miss_penalty=12)
        cycles, miss_rate = _des_base_cycles(config)
        cycles_by_size[size_kb] = cycles
        rows.append([f"{size_kb} KB dcache", f"{miss_rate * 100:.1f}%",
                     f"{cycles / 8:.1f}",
                     f"{cycles / ideal_cycles:.2f}x"])
    report = table(rows, ["memory system", "miss rate", "cycles/byte",
                          "vs ideal"])
    report += ("\n\nThe table-driven software DES needs a large dcache to "
               "approach the\nideal-memory number; the desround custom "
               "instruction keeps its S-boxes\nin dedicated LUTs and never "
               "touches the dcache for them.")
    write_report("ablation_cache", report)

    # More cache -> monotonically fewer cycles, approaching ideal.
    sizes = sorted(cycles_by_size)
    series = [cycles_by_size[s] for s in sizes]
    assert all(a >= b for a, b in zip(series, series[1:]))
    assert series[0] > 1.2 * ideal_cycles     # 2 KB thrashes the tables
    assert series[-1] < 1.12 * ideal_cycles   # 64 KB approaches ideal
