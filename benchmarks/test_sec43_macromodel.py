"""Section 4.3: algorithm design-space exploration via macro-models.

Paper: over 450 modular-exponentiation candidates (5 modmul algorithms
x 5 block sizes x 3 CRT x 2 radices x 3 caching options) evaluated with
macro-model-based native estimation in under 4h40m, vs only six
candidates in 66 hours of ISS time -- ~1407x faster per candidate, with
11.8 % mean absolute estimation error.

This bench (i) evaluates the full 450-point space on a 512-bit RSA
decryption workload, (ii) validates estimates against full ISS runs of
the Montgomery modular exponentiation on both platforms, and (iii)
reports the per-candidate native-vs-ISS wall-clock ratio.  Our native
execution is interpreted Python rather than compiled C, so the
wall-clock ratio is in the tens, not the thousands; the *accuracy* band
reproduces directly.
"""

import os
import time

import pytest

from benchmarks._report import table, write_report
from repro.crypto.modexp import ModExpConfig, ModExpEngine, iter_configs
from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
from repro.isa.kernels.modexp_kernel import ModExpKernel
from repro.macromodel import estimate_cycles

#: Set REPRO_QUICK=1 to evaluate every 9th candidate (CI-speed run).
QUICK = os.environ.get("REPRO_QUICK") == "1"


def test_sec43_exploration(base_models, ext_models, benchmark):
    explorer = AlgorithmExplorer(base_models, RsaDecryptWorkload.bits512())
    configs = list(iter_configs())
    if QUICK:
        configs = configs[::9]

    start = time.perf_counter()
    results = benchmark.pedantic(lambda: explorer.explore(configs),
                                 rounds=1, iterations=1)
    explore_wall = time.perf_counter() - start

    assert len(results) == len(configs)
    assert all(r.correct for r in results)

    best, worst = results[0], results[-1]
    rows = [[r.label, f"{r.estimated_cycles / 1e6:.2f}M"]
            for r in results[:10]]
    report_parts = [
        f"evaluated {len(results)} candidates in {explore_wall:.0f}s "
        f"({explore_wall / len(results):.2f}s per candidate) "
        f"[paper: 450+ candidates in 4h40m]",
        "",
        "top-10 candidates (512-bit RSA decrypt):",
        table(rows, ["configuration", "est. cycles"]),
        "",
        f"worst candidate: {worst.label} "
        f"({worst.estimated_cycles / 1e6:.1f}M cycles, "
        f"{worst.estimated_cycles / best.estimated_cycles:.1f}x the best)",
    ]

    # The paper's exploration conclusions: reduction-based modmul + CRT
    # + windowing + 32-bit radix win.
    assert best.config.crt != "none"
    assert best.config.modmul in ("montgomery", "barrett")
    assert best.config.radix_bits == 32
    assert best.config.window >= 3
    assert worst.estimated_cycles > 10 * best.estimated_cycles

    # ---- accuracy + speed validation against the ISS (6 points) ----
    validation = []
    errors = []
    ratios = []
    for bits in (256, 512, 1024):
        for widths in ((0, 0), (8, 8)):
            modulus = (1 << bits) + 0x169
            base_int, exp = 0xABCDEF987654321, 0xF731
            iss = ModExpKernel(*widths)
            t0 = time.perf_counter()
            got, iss_cycles, _ = iss.powm(base_int, exp, modulus)
            iss_wall = time.perf_counter() - t0
            assert got == pow(base_int, exp, modulus)
            models = base_models if widths == (0, 0) else ext_models
            engine = ModExpEngine(ModExpConfig(
                modmul="montgomery", window=1, crt="none"))
            est = estimate_cycles(models, engine.powm, base_int, exp,
                                  modulus)
            err = abs(est.cycles - iss_cycles) / iss_cycles * 100
            errors.append(err)
            ratio = iss_wall / max(est.wall_seconds, 1e-9)
            ratios.append(ratio)
            plat = "base" if widths == (0, 0) else "ext"
            validation.append([f"{bits}b/{plat}", f"{iss_cycles}",
                               f"{est.cycles:.0f}", f"{err:.1f}%",
                               f"{ratio:.0f}x"])

    mean_err = sum(errors) / len(errors)
    report_parts += [
        "",
        "macro-model validation against full ISS modexp runs:",
        table(validation, ["workload", "ISS cycles", "estimate", "error",
                           "native speedup"]),
        "",
        f"mean absolute error: {mean_err:.1f}%  (paper: 11.8%)",
        f"mean native-vs-ISS wall speedup: "
        f"{sum(ratios) / len(ratios):.0f}x  (paper: 1407x with "
        f"compiled-C native runs; ours is interpreted Python)",
    ]
    write_report("sec43_macromodel", "\n".join(report_parts))

    assert mean_err < 25.0
    assert all(r > 1 for r in ratios)
    benchmark.extra_info["mean_abs_error_pct"] = round(mean_err, 1)
    benchmark.extra_info["best_config"] = best.label
