"""Ablation: Cartesian-product reduction on vs off (DESIGN.md item).

The paper contains the combination blowup "using several techniques";
this bench quantifies what sharing and dominance buy as the number of
combined children grows.
"""

from benchmarks._report import table, write_report
from repro.isa.extensions import CustomInstruction
from repro.tie.adcurve import ADCurve, DesignPoint
from repro.tie.selection import combine_curves


def _family_curve(name, widths, unit_area, catalogue, base_cycles):
    points = [DesignPoint(cycles=base_cycles, area=0.0)]
    for w in widths:
        iname = f"{name}_{w}"
        catalogue[iname] = CustomInstruction(
            name=iname, signature="r", semantics=lambda m, a: None,
            resources={"adder32": w * unit_area})
        points.append(DesignPoint(cycles=base_cycles / (1 + w),
                                  area=catalogue[iname].area,
                                  instructions=frozenset({iname})))
    return ADCurve(name, points, catalogue)


def test_ablation_reduction(benchmark):
    catalogue = {}
    widths = (2, 4, 8, 16)
    # Four children that all share the same instruction family.
    children = [( _family_curve("add", widths, 1, catalogue, 200 + 10 * i), i + 1)
                for i in range(4)]

    with_reduction = benchmark.pedantic(
        lambda: combine_curves("root", children, pareto=False),
        rounds=1, iterations=1)
    without = combine_curves("root", children, reduce=False, pareto=False)

    rows = [["children", len(children), len(children)],
            ["raw Cartesian points", with_reduction.raw_combination_count,
             without.raw_combination_count],
            ["distinct design points", len(with_reduction), len(without)],
            ["after Pareto", len(with_reduction.pareto()),
             len(without.pareto())]]
    report = table(rows, ["metric", "with dominance", "sharing only"])
    report += ("\n\nWith a shared instruction family, dominance reduction "
               "collapses the\nexponential product to one point per "
               "family member (plus base).")
    write_report("ablation_reduction", report)

    assert with_reduction.raw_combination_count == 5 ** 4
    # With dominance, the composite has exactly |family|+1 points.
    assert len(with_reduction) == len(widths) + 1
    assert len(without) > 3 * len(with_reduction)
