"""Energy efficiency of the optimized platform (paper Section 1).

"The proposed system design methodology and security processing
platform architecture result in large improvements in performance *as
well as energy efficiency*" -- the paper defers details for space; this
bench supplies the activity-based estimate for DES and AES blocks and
the inner modular-exponentiation workload.
"""

from benchmarks._report import table, write_report
from repro.isa.energy import estimate_energy
from repro.isa.kernels.aes_kernels import AesKernel
from repro.isa.kernels.des_kernels import DesKernel



def _des_energy(extended):
    kernel = DesKernel(extended=extended)
    machine = kernel.runner.machine()
    key = bytes.fromhex("133457799BBCDFF1")
    ks = kernel._stage_schedule(machine, key, False)
    args_extra = []
    if not extended:
        args_extra = list(kernel._stage_tables(machine))
    in_a, out_a = machine.alloc(8), machine.alloc(8)
    machine.write_bytes(in_a, b"ABCDEFGH")
    machine.run("des_encrypt", [in_a, out_a, ks] + args_extra)
    return estimate_energy(machine).total_pj / 8  # per byte


def _aes_energy(extended):
    # encrypt_block builds a fresh machine internally; stage an owned
    # one here so the opcode histogram can be read back.
    kernel = AesKernel(extended=extended)
    block, key = bytes(16), bytes(range(16))
    machine = kernel.runner.machine()
    in_a = machine.alloc(16)
    machine.write_bytes(in_a, block)
    out_a = machine.alloc(16)
    if extended:
        rk = machine.alloc(16 * 11)
        from repro.crypto.aes import Aes
        machine.write_bytes(rk, b"".join(bytes(k) for k in
                                         Aes(key).round_keys))
        machine.run("aes_encrypt", [in_a, out_a, rk])
    else:
        from repro.isa.kernels.aes_kernels import key_schedule_words
        from repro.crypto.aes import SBOX
        rk = machine.alloc(16 * 11)
        machine.write_words(rk, [w for ws in key_schedule_words(key)
                                 for w in ws])
        t = machine.alloc(4 * len(kernel._t_flat))
        machine.write_words(t, kernel._t_flat)
        sb = machine.alloc(256)
        machine.write_bytes(sb, bytes(SBOX))
        machine.run("aes_encrypt", [in_a, out_a, rk, t, sb, 10])
    return estimate_energy(machine).total_pj / 16


def test_energy(benchmark):
    des_base = benchmark.pedantic(lambda: _des_energy(False),
                                  rounds=1, iterations=1)
    des_ext = _des_energy(True)
    aes_base = _aes_energy(False)
    aes_ext = _aes_energy(True)

    rows = [
        ["DES", f"{des_base:.0f}", f"{des_ext:.0f}",
         f"{des_base / des_ext:.1f}x"],
        ["AES", f"{aes_base:.0f}", f"{aes_ext:.0f}",
         f"{aes_base / aes_ext:.1f}x"],
    ]
    report = table(rows, ["algorithm", "base pJ/byte", "optimized pJ/byte",
                          "energy gain"])
    report += ("\n\nCustom instructions toggle wider datapaths per cycle "
               "but execute\norders of magnitude fewer fetched/decoded "
               "instructions, so net\nenergy per byte drops -- the paper's "
               "energy-efficiency claim.")
    write_report("energy", report)

    assert des_ext < des_base / 3
    assert aes_ext < aes_base / 3
    benchmark.extra_info["des_energy_gain"] = round(des_base / des_ext, 1)
