"""The joint HW/SW co-design sweep (paper Section 3.1's outer loop).

Sweeps processor configurations (custom-instruction widths) against the
algorithm slice and reports the joint area-cycles frontier -- showing
(i) that HW and SW gains compose, and (ii) that the co-design optimum
under a tight area budget is a *pairing*, not the independent best of
each dimension.
"""

from benchmarks._report import table, write_report
from repro.explore.codesign import (CodesignExplorer, DEFAULT_HW_SWEEP,
                                    DEFAULT_SW_SLICE, HardwareConfig)
from repro.explore.explorer import RsaDecryptWorkload
from repro.macromodel import characterize_platform


def test_codesign_sweep(base_models, benchmark):
    hw_sweep = (HardwareConfig(0, 0), HardwareConfig(2, 1),
                HardwareConfig(8, 4), HardwareConfig(8, 8))
    models = {hw: (base_models if hw.is_base
                   else characterize_platform(hw.add_width, hw.mac_width))
              for hw in hw_sweep}
    explorer = CodesignExplorer(RsaDecryptWorkload.bits512(),
                                models_by_hw=models)
    points = benchmark.pedantic(
        lambda: explorer.sweep(hw_sweep, DEFAULT_SW_SLICE),
        rounds=1, iterations=1)

    rows = [[p.hardware.label(), p.software.label(), f"{p.area:.0f}",
             f"{p.estimated_cycles / 1e6:.2f}M"]
            for p in points]
    report = table(rows, ["hardware", "software", "area (GE)",
                          "est. cycles"])

    frontier = CodesignExplorer.pareto(points)
    report += "\n\narea-cycles Pareto frontier:\n"
    report += table([[p.hardware.label(), p.software.label(),
                      f"{p.area:.0f}", f"{p.estimated_cycles / 1e6:.2f}M"]
                     for p in frontier],
                    ["hardware", "software", "area (GE)", "est. cycles"])

    budgets = (0, 15_000, 60_000, 1_000_000)
    sel_rows = []
    for budget in budgets:
        pick = CodesignExplorer.select(points, budget)
        sel_rows.append([budget, pick.label(),
                         f"{pick.estimated_cycles / 1e6:.2f}M"])
    report += "\n\nselection under area budgets:\n"
    report += table(sel_rows, ["budget (GE)", "configuration",
                               "est. cycles"])
    write_report("codesign", report)

    best = points[0]
    worst = points[-1]
    # HW and SW gains compose: the joint optimum is much better than
    # either dimension alone.
    sw_only = CodesignExplorer.select(points, 0)
    hw_only = min((p for p in points if p.software.modmul == "schoolbook"),
                  key=lambda p: p.estimated_cycles)
    assert best.estimated_cycles < 0.7 * sw_only.estimated_cycles
    assert best.estimated_cycles < 0.5 * hw_only.estimated_cycles
    assert worst.estimated_cycles > 10 * best.estimated_cycles
    # The joint best uses both a tuned algorithm and real hardware.
    assert best.software.modmul == "montgomery"
    assert not best.hardware.is_base
