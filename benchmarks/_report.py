"""Report writer for the reproduction benches.

Each bench renders the same rows/series the paper reports and writes
them to ``benchmarks/results/<name>.txt`` (and stdout), so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n===== {name} =====\n{text}")
    return path


def table(rows, headers) -> str:
    """Render rows (list of lists) as a fixed-width text table."""
    cols = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            cols[i] = max(cols[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, cols))
    lines = [fmt(headers), fmt(["-" * w for w in cols])]
    lines += [fmt(row) for row in rendered]
    return "\n".join(lines)
