"""Extension bench: SSL session resumption (paper reference [27]).

The paper cites Goldberg et al.: "Secure Server Performance
Dramatically Improved by Caching SSL Session Keys".  With the full
protocol stack implemented, we can quantify the claim on the handset
side and show how resumption reshapes Figure 8: resumed transactions
skip all public-key work, so the *platform* speedup for resumed small
transactions collapses to the symmetric/misc bound.
"""

from benchmarks._report import table, write_report
from repro.ssl.transaction import SslWorkloadModel


def test_resumption(base_costs, optimized_costs, benchmark):
    model = SslWorkloadModel(base_costs, optimized_costs)
    rows = []
    benchmark.pedantic(lambda: model.speedup(4096, resumed=True),
                       rounds=1, iterations=1)
    for kb in (1, 4, 16, 64):
        size = kb * 1024
        gain_base = model.resumption_gain(base_costs, size)
        gain_opt = model.resumption_gain(optimized_costs, size)
        full_speedup = model.speedup(size)
        resumed_speedup = model.speedup(size, resumed=True)
        rows.append([f"{kb}KB", f"{gain_base:.1f}x", f"{gain_opt:.1f}x",
                     f"{full_speedup:.1f}x", f"{resumed_speedup:.1f}x"])
    report = table(rows, ["size", "resume gain (base)",
                          "resume gain (opt)", "platform speedup (full)",
                          "platform speedup (resumed)"])
    report += ("\n\nResumption removes the public-key component entirely: "
               "a dramatic win on\nthe base platform (as [27] reported for "
               "servers), and after it the\nplatform speedup is set by the "
               "bulk path alone.")
    write_report("resumption", report)

    # [27]'s claim on the base platform: dramatic for small transactions.
    assert model.resumption_gain(base_costs, 1024) > 10
    # Resumption gain fades as bulk data grows.
    assert model.resumption_gain(base_costs, 1024) > \
        model.resumption_gain(base_costs, 64 * 1024)
    # Resumed platform speedup ~ the sym/misc-bound asymptote.
    resumed = model.speedup(1024, resumed=True)
    assert resumed < 0.6 * model.speedup(1024)
    assert resumed > 1.5
