"""Farm scaling: sessions/s vs core count, round-robin vs preferential.

Extension bench (beyond the paper's single-core evaluation): a
heterogeneous farm of base and TIE-extended cores serves the mixed
protocol stream, at two operating points per core count:

- **low load** -- offered rate at 60% of the farm's analytic capacity
  (clock over mean per-session service cycles, summed across cores):
  the preferential farm serves essentially everything it is offered,
  so served sessions/s scales near-linearly with farm capacity;
- **overload** -- a fixed offered rate far above capacity: served
  sessions/s measures scheduling quality, where the preferential
  policy's class routing (handshakes never queue behind bulk on a slow
  base core) beats blind round-robin.
"""

from benchmarks._report import table, write_report
from repro.farm import (FarmSimulator, TrafficProfile, build_farm,
                        cost_of, generate_requests, make_scheduler,
                        summarize)
from repro.ssl.throughput import DEFAULT_CLOCK_HZ

CORE_COUNTS = (1, 2, 4, 8)
OVERLOAD_RATE = 400.0
N_REQUESTS = 300


def _mean_service_cycles(costs, requests) -> float:
    """Average full-price session cost for one core configuration."""
    return sum(cost_of(r, costs).cycles for r in requests) / len(requests)


def _farm_capacity_sessions(specs, requests) -> float:
    """Analytic farm ceiling in sessions/second: each core serves the
    mixed stream at its own mean service time."""
    return sum(DEFAULT_CLOCK_HZ / _mean_service_cycles(s.costs, requests)
               for s in specs)


def _served(specs, scheduler_name, rate, n_requests=N_REQUESTS):
    profile = TrafficProfile(arrival_rate=rate)
    requests = generate_requests(profile, n_requests, seed=1)
    sim = FarmSimulator(specs, make_scheduler(scheduler_name))
    return summarize(sim.run(requests))


def test_farm_scaling(base_costs, optimized_costs, benchmark):
    # A probe stream (any rate) to estimate the per-config mean cost.
    probe = generate_requests(TrafficProfile(arrival_rate=50.0),
                              N_REQUESTS, seed=1)
    rows = []
    low_metrics = {}
    over_metrics = {}
    low_rates = {}
    for n_cores in CORE_COUNTS:
        specs = build_farm(n_cores, base_costs, optimized_costs,
                           extended_fraction=0.5)
        low_rate = 0.6 * _farm_capacity_sessions(specs, probe)
        low_rates[n_cores] = low_rate
        for sched in ("round-robin", "preferential"):
            if not rows:
                low = benchmark.pedantic(
                    lambda: _served(specs, sched, low_rate),
                    rounds=1, iterations=1)
            else:
                low = _served(specs, sched, low_rate)
            over = _served(specs, sched, OVERLOAD_RATE)
            low_metrics[(n_cores, sched)] = low
            over_metrics[(n_cores, sched)] = over
            rows.append([
                n_cores, sched, f"{low_rate:.0f}",
                f"{low.sessions_per_s:.1f}",
                f"{low.sessions_per_s / low_rate:.2f}",
                f"{low.p95_ms:.1f}",
                f"{over.sessions_per_s:.1f}",
                f"{over.sessions_per_s_per_mgate:.1f}",
            ])

    report = table(rows, ["cores", "scheduler", "offered/s",
                          "served/s", "served/offered", "p95 ms",
                          "overload/s", "/s/Mgate"])
    report += ("\n\nLow load: the offered rate is 60% of each farm's "
               "analytic capacity, so the\npreferential farm serving "
               "~its whole offer means served sessions/s scales\n"
               "near-linearly with farm capacity.  Overload: served "
               "rate is pure scheduling\nquality; round-robin parks "
               "public-key handshakes behind bulk work on slow\nbase "
               "cores while the preferential policy keeps classes on "
               "their cores.")
    write_report("farm_scaling", report)

    for n_cores in CORE_COUNTS:
        # Preferential at least matches round-robin at every size.
        for regime in (low_metrics, over_metrics):
            pref = regime[(n_cores, "preferential")].sessions_per_s
            rr = regime[(n_cores, "round-robin")].sessions_per_s
            assert pref >= rr * 0.999
        # Near-linear scaling at low load: served tracks the
        # capacity-proportional offered rate.
        low = low_metrics[(n_cores, "preferential")]
        assert low.completed == N_REQUESTS
        assert low.sessions_per_s >= 0.85 * low_rates[n_cores]
    # Overload throughput grows with the farm (capacity monotonicity).
    over_rates = [over_metrics[(n, "preferential")].sessions_per_s
                  for n in CORE_COUNTS]
    assert over_rates[-1] > over_rates[0]
