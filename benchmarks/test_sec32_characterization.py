"""Section 3.2: performance characterization and macro-modeling.

The paper's running example: ``mpn_add_n``'s execution time is
expressed as a function of its input bit-widths; arithmetic routines
show regular (piecewise linear / quadratic) profiles, so regression
fits them easily and accurately.  This bench characterizes the leaf
routines on both platforms and reports the fitted model forms,
coefficients and fit errors.
"""

from benchmarks._report import table, write_report
from repro.isa.kernels.mpn_kernels import MpnKernels
from repro.mp.prng import DeterministicPrng


def test_sec32_characterization(base_models, ext_models, benchmark):
    rows = []
    for models in (base_models, ext_models):
        for model in sorted(models, key=lambda m: m.routine):
            coeffs = ", ".join(f"{c:.2f}" for c in model.fit.coeffs)
            rows.append([models.platform, model.routine, model.fit.form,
                         coeffs, f"{model.fit.mean_abs_pct_error:.2f}%"])
    report = table(rows, ["platform", "routine", "model form",
                          "coefficients", "fit error"])

    # Demonstrate prediction vs fresh measurement on unseen sizes.
    kernels = MpnKernels()
    prng = DeterministicPrng(0xBEEF)
    check_rows = []
    max_err = 0.0
    for n in (5, 10, 20, 28):  # none of these are characterization sizes
        up, vp = prng.next_limbs(n), prng.next_limbs(n)
        _, _, measured = benchmark.pedantic(
            lambda u=up, v=vp: kernels.add_n(u, v),
            rounds=1, iterations=1) if n == 5 else kernels.add_n(up, vp)
        predicted = base_models.predict("mpn_add_n", n)
        err = abs(predicted - measured) / measured * 100
        max_err = max(max_err, err)
        check_rows.append([n, measured, f"{predicted:.0f}", f"{err:.2f}%"])
    report += ("\n\nmpn_add_n prediction vs measurement at unseen sizes:\n"
               + table(check_rows, ["limbs", "measured", "predicted",
                                    "error"]))
    write_report("sec32_characterization", report)

    # The profiles are regular: interpolation error is tiny.
    assert max_err < 5.0
    addn = base_models.get("mpn_add_n")
    assert addn.fit.form == "affine"
    assert addn.fit.mean_abs_pct_error < 2.0
