#!/usr/bin/env python
"""Quickstart: the security platform's Layer-3 API in five minutes.

Covers the primitives a protocol developer ports against (paper
Section 2.2): symmetric encryption, hashing/MACs, RSA and ElGamal --
and shows how the platform configuration (the co-design output) is
swapped without touching application code.

Run:  python examples/quickstart.py
"""

from repro import SecurityPlatform
from repro.mp import DeterministicPrng


def main() -> None:
    # A platform = a processor configuration + a tuned software library.
    platform = SecurityPlatform.optimized()
    api = platform.api(DeterministicPrng(42))

    # --- symmetric encryption (DES / 3DES / AES, ECB / CBC) ------------
    message = b"Sensitive m-commerce order: 3 handsets, ship to Princeton"
    for algorithm, iv_len in (("des", 8), ("3des", 8), ("aes", 16)):
        key = api.generate_symmetric_key(algorithm)
        iv = bytes(iv_len)
        ciphertext = api.encrypt(algorithm, key, message, iv=iv)
        recovered = api.decrypt(algorithm, key, ciphertext, iv=iv)
        assert recovered == message
        print(f"{algorithm.upper():5s}: {len(ciphertext)} ciphertext bytes, "
              f"roundtrip OK")

    # --- hashing and MACs -----------------------------------------------
    digest = api.hash("sha1", message)
    mac = api.hmac("sha1", b"session-mac-key", message)
    print(f"SHA-1: {digest.hex()[:24]}...  HMAC: {mac.hex()[:24]}...")

    # --- RSA: encrypt / decrypt / sign / verify -------------------------
    keypair = api.generate_keypair("rsa", 512)
    sealed = api.rsa_encrypt(b"premaster secret", keypair.public)
    assert api.rsa_decrypt(sealed, keypair.private) == b"premaster secret"
    signature = api.rsa_sign(message, keypair.private)
    assert api.rsa_verify(message, signature, keypair.public)
    assert not api.rsa_verify(message + b"!", signature, keypair.public)
    print(f"RSA-512: encrypt/decrypt + sign/verify OK "
          f"(n = {int(keypair.public.n):#x}...)"[:70])

    # --- ElGamal ---------------------------------------------------------
    eg_pair = api.generate_keypair("elgamal", 48)
    ct = api.elgamal_encrypt(123456, eg_pair.public)
    assert api.elgamal_decrypt(ct, eg_pair.private) == 123456
    print("ElGamal-48: encrypt/decrypt OK")

    # --- the co-design payoff: same API, different platform -------------
    base = SecurityPlatform.base()
    kp = api.generate_keypair("rsa", 512)
    base_cycles = base.rsa_private_cycles(kp)
    opt_cycles = platform.rsa_private_cycles(kp)
    print(f"\nRSA-512 private op: {base_cycles / 1e6:.1f}M cycles on the "
          f"base platform,\n{opt_cycles / 1e6:.2f}M on the optimized one "
          f"-> {base_cycles / opt_cycles:.1f}x speedup from HW/SW co-design")


if __name__ == "__main__":
    main()
