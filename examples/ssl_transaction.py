#!/usr/bin/env python
"""A complete SSL transaction on the security platform.

Executes the full protocol (handshake with client authentication,
key derivation, record-protected data transfer) on the library's own
crypto, then reports the paper's Figure 8 analysis for the transfer:
how many cycles the handset would spend on each workload component,
and the speedup of the optimized platform over the base one.

Run:  python examples/ssl_transaction.py
"""

from repro.mp import DeterministicPrng
from repro.platform import SecurityPlatform
from repro.ssl import fixtures
from repro.ssl.handshake import (SslClient, SslServer,
                                 make_record_channels, run_handshake)
from repro.costs import PlatformCosts
from repro.ssl.transaction import SslWorkloadModel


def main() -> None:
    # --- run the actual protocol -----------------------------------------
    client = SslClient(fixtures.CLIENT_512, prng=DeterministicPrng(7))
    server = SslServer(fixtures.SERVER_512)
    result = run_handshake(client, server, cipher_name="3des")
    print(f"handshake complete: master secret "
          f"{result.master.hex()[:20]}..., suite=3DES/HMAC-SHA1")

    sender, receiver = make_record_channels(result)
    payload = bytes(i & 0xFF for i in range(8 * 1024))  # an 8 KB page
    records = sender.seal(payload)
    received = b"".join(receiver.open(r) for r in records)
    assert received == payload
    print(f"transferred {len(payload)} bytes in {len(records)} protected "
          f"record(s); MACs verified")

    # --- the Figure 8 analysis -------------------------------------------
    print("\nmeasuring platform costs (ISS kernels + macro-models)...")
    base = PlatformCosts.measure(SecurityPlatform.base(),
                                 fixtures.SERVER_512)
    opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                fixtures.SERVER_512)
    model = SslWorkloadModel(base, opt)

    print(f"\n{'size':>8s} {'speedup':>8s}   base workload "
          f"(pk / sym / misc)")
    for kb in (1, 2, 4, 8, 16, 32):
        size = kb * 1024
        row = model.series([size])[0]
        bf = row["base_fractions"]
        print(f"{kb:6d}KB {row['speedup']:7.1f}x   "
              f"{bf['public_key']:.2f} / {bf['symmetric']:.2f} / "
              f"{bf['misc']:.2f}")
    print(f"\nlarge-transfer asymptote: {model.asymptotic_speedup():.1f}x "
          f"(set by the unaccelerated misc component)")


if __name__ == "__main__":
    main()
