#!/usr/bin/env python
"""Algorithm design-space exploration, end to end (paper Section 3.2/4.3).

1. Characterize the library leaf routines on the cycle-accurate ISS
   (a one-time cost) and fit performance macro-models.
2. Natively evaluate a slice of the 450-candidate modular
   exponentiation space on an RSA decryption workload.
3. Report the ranking and the dimensions of the winning configuration.

Run:  python examples/design_space_exploration.py [--full]
      (--full evaluates all 450 candidates; default evaluates 50)
"""

import sys
import time

from repro.crypto.modexp import iter_configs
from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
from repro.macromodel import characterize_platform


def main() -> None:
    full = "--full" in sys.argv

    print("characterizing leaf routines on the ISS...")
    t0 = time.perf_counter()
    models = characterize_platform()
    print(f"  {len(models)} macro-models fitted in "
          f"{time.perf_counter() - t0:.1f}s:")
    for model in sorted(models, key=lambda m: m.routine)[:6]:
        coeffs = ", ".join(f"{c:.1f}" for c in model.fit.coeffs)
        print(f"    {model.routine:16s} ~ {model.fit.form}({coeffs})")

    configs = list(iter_configs())
    if not full:
        configs = configs[::9]  # a spread-out 50-candidate slice
    print(f"\nexploring {len(configs)} candidates on a 512-bit RSA "
          f"decryption workload...")

    explorer = AlgorithmExplorer(models, RsaDecryptWorkload.bits512())
    t0 = time.perf_counter()
    results = explorer.explore(configs)
    wall = time.perf_counter() - t0
    print(f"  done in {wall:.0f}s ({wall / len(configs):.2f}s per "
          f"candidate, natively -- no ISS runs)")

    print("\ntop 5 candidates:")
    for result in results[:5]:
        print(f"  {result.estimated_cycles / 1e6:8.2f}M cycles  "
              f"{result.label}")
    print("bottom 3:")
    for result in results[-3:]:
        print(f"  {result.estimated_cycles / 1e6:8.2f}M cycles  "
              f"{result.label}")

    best = results[0]
    print(f"\nwinner: {best.label}")
    print(f"  -> {results[-1].estimated_cycles / best.estimated_cycles:.0f}x "
          f"faster than the worst candidate, from algorithm choices alone")


if __name__ == "__main__":
    main()
