#!/usr/bin/env python
"""A WAP browsing session over WTLS with elliptic-curve key exchange.

The paper's platform must interwork across protocol standards (WEP /
IPSec / SSL / WTLS).  This example runs the WTLS path end to end -- an
ECDH handshake against the gateway's static secp160r1 key, record-
protected page fetches -- and then compares the handset's public-key
cycle bill against the SSL/RSA equivalent using the macro-model
estimator.

Run:  python examples/wtls_browsing.py
"""

from repro.crypto.ec import SECP160R1, ecdsa_sign, generate_ec_keypair
from repro.crypto.rsa import Rsa
from repro.macromodel import characterize_platform, estimate_cycles
from repro.mp import DeterministicPrng
from repro.platform import TUNED_CONFIG
from repro.protocols.wtls import WtlsClient, WtlsGateway, make_channels
from repro.ssl import fixtures


def main() -> None:
    # --- the protocol, actually executed --------------------------------
    gateway = WtlsGateway(prng=DeterministicPrng(100))
    client = WtlsClient(prng=DeterministicPrng(200))
    session = client.handshake(gateway, cipher_name="des")
    print(f"WTLS handshake complete over {gateway.curve.name} "
          f"(ECDH, {gateway.curve.bits}-bit keys)")

    sender, receiver = make_channels(session)
    pages = [b"<wml><card>stock quotes</card></wml>",
             b"<wml><card>order: buy 10 NEC</card></wml>",
             b"<wml><card>confirmation #4711</card></wml>"]
    for page in pages:
        record = sender.seal(page)
        assert receiver.open(record) == page
    print(f"fetched {len(pages)} WML pages over protected records")

    # --- the handset's public-key bill, WTLS/ECC vs SSL/RSA --------------
    print("\nestimating handset public-key cycles (base platform "
          "macro-models)...")
    models = characterize_platform()
    ec_key = generate_ec_keypair(SECP160R1, DeterministicPrng(5))

    # Authenticated handshakes on the handset side:
    #   WTLS/ECC: ephemeral keygen + ECDH (2 scalar mults) + ECDSA sign
    #   SSL/RSA:  encrypt premaster (public) + sign CertificateVerify
    est_keygen = estimate_cycles(models, SECP160R1.generator().scalar_mul,
                                 ec_key.private)
    est_sign = estimate_cycles(models, ecdsa_sign, b"order", ec_key,
                               DeterministicPrng(6))
    wtls_total = 2 * est_keygen.cycles + est_sign.cycles

    rsa = Rsa(TUNED_CONFIG)
    kp = fixtures.SERVER_1024
    est_rsa_enc = estimate_cycles(models, rsa.encrypt, b"premaster" * 5,
                                  kp.public, DeterministicPrng(7))
    est_rsa_sign = estimate_cycles(models, rsa.sign, b"order", kp.private)
    ssl_total = est_rsa_enc.cycles + est_rsa_sign.cycles

    print(f"  WTLS (ECC-160): 2 scalar mults "
          f"({2 * est_keygen.cycles / 1e6:.1f}M) + ECDSA sign "
          f"({est_sign.cycles / 1e6:.1f}M) = {wtls_total / 1e6:.1f}M cycles")
    print(f"  SSL  (RSA-1024): encrypt ({est_rsa_enc.cycles / 1e6:.1f}M) "
          f"+ sign ({est_rsa_sign.cycles / 1e6:.1f}M) = "
          f"{ssl_total / 1e6:.1f}M cycles")
    print(f"  signature alone: ECDSA {est_sign.cycles / 1e6:.1f}M vs "
          f"RSA {est_rsa_sign.cycles / 1e6:.1f}M "
          f"({est_rsa_sign.cycles / est_sign.cycles:.1f}x) -- the "
          f"private-key op is where\n  ECC's small keys pay, which is "
          f"why WTLS standardized elliptic curves.")


if __name__ == "__main__":
    main()
