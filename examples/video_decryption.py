#!/usr/bin/env python
"""Real-time video decryption demo (the paper's board prototype scenario).

The paper demonstrated its XT-2000 prototype decrypting video to an LCD
panel in real time.  We recreate the scenario synthetically: a stream
of encrypted QCIF frames is decrypted with AES-CBC through the
platform API, and the ISS-measured cycles/byte determine the frame
rate each platform configuration could sustain at the paper's 188 MHz
clock.

Run:  python examples/video_decryption.py
"""

from repro.mp import DeterministicPrng
from repro.platform import SecurityPlatform

CLOCK_HZ = 188e6           # the paper's Xtensa core clock
FRAME_W, FRAME_H = 352, 288  # CIF (the prototype's LCD-panel stream)
BYTES_PER_FRAME = FRAME_W * FRAME_H * 3 // 2  # YUV 4:2:0
TARGET_FPS = 30


def synth_frame(index: int) -> bytes:
    """A deterministic synthetic YUV frame (moving gradient)."""
    return bytes(((x + index * 3) ^ (x >> 8)) & 0xFF
                 for x in range(BYTES_PER_FRAME))


def main() -> None:
    prng = DeterministicPrng(99)
    platform = SecurityPlatform.optimized()
    api = platform.api(prng)
    key = api.generate_symmetric_key("aes")
    iv = prng.next_bytes(16)

    # Encrypt then decrypt a short stream, verifying frame integrity.
    frames = 2
    total_bytes = 0
    for i in range(frames):
        frame = synth_frame(i)
        ciphertext = api.encrypt("aes", key, frame, iv=iv)
        recovered = api.decrypt("aes", key, ciphertext, iv=iv)
        assert recovered == frame
        total_bytes += len(frame)
    print(f"decrypted {frames} CIF frames "
          f"({total_bytes / 1024:.0f} KB) through the platform API")

    # Sustained-rate analysis from ISS-measured cipher costs.
    print(f"\nsustained AES-CBC decryption at {CLOCK_HZ / 1e6:.0f} MHz:")
    for plat in (SecurityPlatform.base(), platform):
        cpb = plat.cipher_cycles_per_byte("aes")
        fps = CLOCK_HZ / (cpb * BYTES_PER_FRAME)
        verdict = "real-time OK" if fps >= TARGET_FPS else \
            f"below the {TARGET_FPS} fps target"
        print(f"  {plat.name:10s} {cpb:6.1f} cycles/byte -> "
              f"{fps:7.1f} fps  ({verdict})")
    print(f"\nThe base processor cannot sustain {TARGET_FPS} fps CIF video "
          "decryption; the\noptimized platform does it with most of the CPU "
          "to spare --\nthe prototype demonstration in the paper's "
          "Section 4.2.")


if __name__ == "__main__":
    main()
