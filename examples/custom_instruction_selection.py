#!/usr/bin/env python
"""Custom instruction formulation + global selection (paper §3.3/3.4).

1. Formulate A-D curves for the hot leaf routines by sweeping hardware
   resources on the simulator (Figure 5a/5b).
2. Profile a real modular exponentiation on the ISS to get the
   annotated call graph (Figure 4).
3. Propagate the curves bottom-up through the graph with sharing +
   dominance reduction (Figure 6) and pick the best configuration
   under several area budgets.

Run:  python examples/custom_instruction_selection.py
"""

from repro.isa.kernels.modexp_kernel import ModExpKernel
from repro.tie.callgraph import CallGraph
from repro.tie.formulation import adcurve_mpn_add_n, adcurve_mpn_addmul_1
from repro.tie.selection import propagate, select_point


def main() -> None:
    print("formulating A-D curves on the simulator...")
    add_curve = adcurve_mpn_add_n(16)
    mac_curve = adcurve_mpn_addmul_1(16)
    for curve in (add_curve, mac_curve):
        print(f"\n  {curve.name}:")
        for point in sorted(curve, key=lambda p: p.area):
            print(f"    {point.label():24s} area={point.area:7.0f} GE  "
                  f"cycles={point.cycles:5.0f}")

    print("\nprofiling a 256-bit modular exponentiation on the ISS...")
    kernel = ModExpKernel()
    _, cycles, profile = kernel.powm(0xFEEDFACE, 0xA5A5, (1 << 256) + 0x169)
    graph = CallGraph.from_profile(profile, "modexp")
    print(f"  {cycles} cycles; annotated call graph:")
    for line in graph.render().splitlines():
        print("   " + line)

    leaf_curves = {"mpn_addmul_1": mac_curve, "mpn_add_n": add_curve}
    root = propagate(graph, leaf_curves)
    print(f"\ncomposite root A-D curve ({len(root)} Pareto points):")
    for point in sorted(root, key=lambda p: p.area):
        print(f"    {point.label():40s} area={point.area:7.0f}  "
              f"cycles={point.cycles / 1e3:7.1f}k")

    software = root.base_point.cycles
    print("\nselection under area budgets:")
    for budget in (0, 5_000, 10_000, 50_000):
        point, _ = select_point(graph, leaf_curves, budget)
        print(f"  budget {budget:6d} GE -> {point.label():40s} "
              f"{software / point.cycles:4.1f}x speedup")


if __name__ == "__main__":
    main()
