#!/usr/bin/env python
"""An IPSec ESP tunnel from the handset (the paper's VPN scenario).

Section 1 motivates the platform with "access to corporate data,
virtual private networks".  This example runs an ESP security
association end to end -- tunnel-mode packet protection with
anti-replay -- and checks what VPN throughput each platform
configuration sustains at the 188 MHz clock.

Run:  python examples/ipsec_vpn.py
"""

import dataclasses

from repro.crypto.aes import Aes
from repro.mp import DeterministicPrng
from repro.platform import SecurityPlatform
from repro.protocols.esp import EspError, EspSecurityAssociation
from repro.ssl import fixtures
from repro.costs import PlatformCosts
from repro.ssl.throughput import feasibility

CLOCK_MHZ = 188


def main() -> None:
    # --- the protocol, actually executed --------------------------------
    prng = DeterministicPrng(0xE5B)
    cipher_key = prng.next_bytes(16)
    auth_key = prng.next_bytes(20)
    outbound = EspSecurityAssociation(0xC0DE, Aes(cipher_key), auth_key,
                                      DeterministicPrng(1))
    inbound = EspSecurityAssociation(0xC0DE, Aes(cipher_key), auth_key)

    datagrams = [b"GET /payroll HTTP/1.0" + bytes(i) for i in range(5)]
    for datagram in datagrams:
        packet = outbound.seal(datagram)
        assert inbound.open(packet) == datagram
    print(f"tunnelled {len(datagrams)} datagrams through the ESP SA "
          f"(SPI {outbound.spi:#x})")

    replayed = outbound.seal(b"replay me")
    inbound.open(replayed)
    try:
        inbound.open(replayed)
        raise AssertionError("replay slipped through")
    except EspError:
        print("anti-replay window rejected a duplicated packet")

    # --- VPN throughput per platform -------------------------------------
    print(f"\nsustainable VPN throughput at {CLOCK_MHZ} MHz "
          f"(AES-ESP + HMAC-SHA1-96):")
    for platform in (SecurityPlatform.base(), SecurityPlatform.optimized()):
        costs = PlatformCosts.measure(platform, fixtures.SERVER_512,
                                      cipher="aes")
        report = feasibility(costs)
        marks = ", ".join(name for name, ok in report.feasible.items() if ok)
        print(f"  {platform.name:10s} {report.cycles_per_byte:5.0f} c/B -> "
              f"{report.max_rate_bps / 1e6:5.2f} Mbps  (meets: {marks})")


if __name__ == "__main__":
    main()
