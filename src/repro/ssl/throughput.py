"""Secure data-rate feasibility (the paper's stated objective).

Paper Section 1.1: "The objective is to enable secure communications at
data rates provided by 3G cellular (100 kbps - 2 Mbps) and wireless LAN
(10 - 55 Mbps) technologies."

This module computes the maximum *secure* data rate a platform
sustains: bulk protection costs (cipher + MAC + per-byte protocol work)
against the core's clock, with an optional CPU-budget fraction (a
handset does more than crypto).
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.costs import PlatformCosts

#: The paper's 188 MHz Xtensa clock.
DEFAULT_CLOCK_HZ = 188e6

#: Named rate targets from the paper's objective.
RATE_TARGETS: Dict[str, float] = {
    "2.5G (144 kbps)": 144e3,
    "3G low (384 kbps)": 384e3,
    "3G high (2 Mbps)": 2e6,
    "WLAN low (10 Mbps)": 10e6,
    "WLAN high (55 Mbps)": 55e6,
}


@dataclass
class ThroughputReport:
    platform: str
    cycles_per_byte: float
    max_rate_bps: float
    feasible: Dict[str, bool]


def bulk_cycles_per_byte(costs: PlatformCosts) -> float:
    """Steady-state protected-byte cost (cipher + MAC + protocol)."""
    return (costs.cipher_cycles_per_byte + costs.hash_cycles_per_byte
            + costs.protocol_cycles_per_byte)


def max_secure_rate(costs: PlatformCosts,
                    clock_hz: float = DEFAULT_CLOCK_HZ,
                    cpu_fraction: float = 1.0) -> float:
    """Maximum sustainable secure data rate in bits/second."""
    if not 0 < cpu_fraction <= 1:
        raise ValueError("cpu_fraction must be in (0, 1]")
    bytes_per_second = clock_hz * cpu_fraction / bulk_cycles_per_byte(costs)
    return bytes_per_second * 8


def feasibility(costs: PlatformCosts,
                clock_hz: float = DEFAULT_CLOCK_HZ,
                cpu_fraction: float = 1.0,
                targets: Dict[str, float] = RATE_TARGETS
                ) -> ThroughputReport:
    """Which of the paper's rate targets the platform can sustain."""
    rate = max_secure_rate(costs, clock_hz, cpu_fraction)
    return ThroughputReport(
        platform=costs.name,
        cycles_per_byte=bulk_cycles_per_byte(costs),
        max_rate_bps=rate,
        feasible={name: rate >= target for name, target in targets.items()})


def feasibility_table(all_costs: Sequence[PlatformCosts],
                      clock_hz: float = DEFAULT_CLOCK_HZ,
                      cpu_fraction: float = 1.0) -> List[ThroughputReport]:
    return [feasibility(costs, clock_hz, cpu_fraction)
            for costs in all_costs]
