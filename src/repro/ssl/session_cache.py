"""Server-side SSL session cache (paper reference [27]).

Goldberg et al. showed that caching SSL session keys dramatically
improves secure-server performance; the handset-side effect is modeled
in :mod:`repro.ssl.transaction` (resumed transactions).  This module
supplies the cache itself: a bounded LRU of session master secrets
keyed by session id, as a server (or WAP gateway) would keep.
"""

from collections import OrderedDict
from typing import Optional

from repro.crypto.sha1 import sha1
from repro.ssl.handshake import HandshakeResult


class SessionCache:
    """Bounded LRU cache of resumable sessions."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, HandshakeResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def session_id(result: HandshakeResult) -> bytes:
        """Derive a public session identifier (never the master secret)."""
        return sha1(b"session-id" + result.client_random
                    + result.server_random)[:16]

    def store(self, result: HandshakeResult) -> bytes:
        """Cache a completed handshake; returns its session id."""
        return self.store_entry(self.session_id(result), result)

    def store_entry(self, session_id: bytes, entry) -> bytes:
        """Cache ``entry`` under an externally derived key.

        Protocol models that are not SSL handshakes (TLS 1.3 tickets,
        plugin protocols) derive their own cache keys; the LRU
        mechanics are identical to :meth:`store`.
        """
        self._entries[session_id] = entry
        self._entries.move_to_end(session_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return session_id

    def lookup(self, session_id: bytes) -> Optional[HandshakeResult]:
        """Fetch a resumable session (refreshing its LRU position)."""
        entry = self._entries.get(session_id)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(session_id)
        self.hits += 1
        return entry

    def invalidate(self, session_id: bytes) -> bool:
        """Drop a session (e.g. on a fatal alert)."""
        return self._entries.pop(session_id, None) is not None

    def flush(self) -> int:
        """Drop every cached session, keeping the hit/miss counters.

        Models a cache wiped by a core failure or an operational flush:
        the sessions are gone (future resumptions miss and re-handshake)
        but the traffic history already counted stays counted.  Returns
        the number of entries dropped.
        """
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, session_id: bytes) -> bool:
        """Membership probe that neither counts as a hit/miss nor
        refreshes LRU position (schedulers peek, resumptions look up)."""
        return session_id in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
