"""SSL transaction model (paper Section 4.2, Figure 8).

A simplified but *executed* SSL: a client and server actually run the
handshake (RSA key exchange with client authentication, transcript
hashing, key derivation) and transfer bulk data through a record layer
(HMAC-SHA1 MAC-then-encrypt over a block cipher), all on the library's
own primitives.

Cycle accounting mirrors the paper's workload breakdown: the
public-key component is estimated with performance macro-models, the
symmetric component uses ISS-measured cycles/byte, and the
miscellaneous component (hashing + protocol overhead) is charged
identically on both platforms because the selected custom instructions
do not accelerate it -- that is exactly what saturates the
large-transaction speedup in Figure 8.
"""

from repro.ssl.record import RecordLayer, RecordError
from repro.ssl.handshake import SslClient, SslServer, run_handshake
from repro.ssl.transaction import (PlatformCosts, SslWorkloadModel,
                                   TransactionBreakdown)

__all__ = ["RecordLayer", "RecordError", "SslClient", "SslServer",
           "run_handshake", "PlatformCosts", "SslWorkloadModel",
           "TransactionBreakdown"]
