"""SSL transaction model (paper Section 4.2, Figure 8).

A simplified but *executed* SSL: a client and server actually run the
handshake (RSA key exchange with client authentication, transcript
hashing, key derivation) and transfer bulk data through a record layer
(HMAC-SHA1 MAC-then-encrypt over a block cipher), all on the library's
own primitives.

Cycle accounting mirrors the paper's workload breakdown: the
public-key component is estimated with performance macro-models, the
symmetric component uses ISS-measured cycles/byte, and the
miscellaneous component (hashing + protocol overhead) is charged
identically on both platforms because the selected custom instructions
do not accelerate it -- that is exactly what saturates the
large-transaction speedup in Figure 8.
"""

import warnings

from repro.ssl.record import RecordLayer, RecordError
from repro.ssl.handshake import SslClient, SslServer, run_handshake
from repro.ssl.transaction import SslWorkloadModel, TransactionBreakdown

__all__ = ["RecordLayer", "RecordError", "SslClient", "SslServer",
           "run_handshake", "SslWorkloadModel", "TransactionBreakdown"]


def __getattr__(name: str):
    # PlatformCosts moved to the unified cost layer (repro.costs);
    # keep the old import path working, loudly.
    if name in ("PlatformCosts", "PROTOCOL_CYCLES_PER_BYTE",
                "PROTOCOL_FIXED_CYCLES"):
        warnings.warn(
            f"importing {name} from repro.ssl is deprecated; "
            f"import it from repro.costs instead",
            DeprecationWarning, stacklevel=2)
        from repro import costs
        return getattr(costs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
