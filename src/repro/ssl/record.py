"""The SSL record layer: fragmentation, MAC-then-encrypt, sequencing.

Functionally executed on the library's own HMAC-SHA1 and block ciphers
(CBC).  Record format (simplified SSLv3/TLS):

    ciphertext = CBC-Enc(key, iv, plaintext || HMAC || PKCS7-padding)

with the MAC computed over (sequence number || record type || length ||
plaintext).  Each endpoint keeps independent send/receive sequence
numbers; replayed or reordered records fail MAC verification.
"""

import struct
from typing import List

from repro.crypto import modes
from repro.crypto.hmac import hmac

MAX_FRAGMENT = 16384  # SSL's 2^14 fragment bound
RECORD_TYPE_DATA = 23


class RecordError(ValueError):
    """MAC failure, bad padding, or malformed record."""


class RecordLayer:
    """One direction of an SSL connection's record protection."""

    def __init__(self, cipher, mac_key: bytes, iv: bytes):
        self.cipher = cipher
        self.mac_key = mac_key
        self._chain_iv = iv
        self.send_seq = 0
        self.recv_seq = 0

    def _mac(self, seq: int, payload: bytes) -> bytes:
        header = struct.pack(">QBH", seq, RECORD_TYPE_DATA, len(payload))
        return hmac(self.mac_key, header + payload, "sha1")

    def seal(self, plaintext: bytes) -> List[bytes]:
        """Protect application data; returns the wire records."""
        records = []
        for off in range(0, max(len(plaintext), 1), MAX_FRAGMENT):
            fragment = plaintext[off: off + MAX_FRAGMENT]
            mac = self._mac(self.send_seq, fragment)
            self.send_seq += 1
            body = modes.pkcs7_pad(fragment + mac, self.cipher.block_size)
            ct = modes.cbc_encrypt(self.cipher, self._chain_iv, body)
            self._chain_iv = ct[-self.cipher.block_size:]
            records.append(struct.pack(">BH", RECORD_TYPE_DATA, len(ct)) + ct)
        return records

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one wire record."""
        if len(record) < 3:
            raise RecordError("record too short")
        rtype, length = struct.unpack(">BH", record[:3])
        if rtype != RECORD_TYPE_DATA:
            raise RecordError(f"unexpected record type {rtype}")
        ct = record[3:]
        if len(ct) != length or length % self.cipher.block_size:
            raise RecordError("bad record length")
        body = modes.cbc_decrypt(self.cipher, self._chain_iv, ct)
        self._chain_iv = ct[-self.cipher.block_size:]
        try:
            body = modes.pkcs7_unpad(body, self.cipher.block_size)
        except ValueError as exc:
            raise RecordError(str(exc))
        if len(body) < 20:
            raise RecordError("record smaller than its MAC")
        fragment, mac = body[:-20], body[-20:]
        if self._mac(self.recv_seq, fragment) != mac:
            raise RecordError("MAC verification failed")
        self.recv_seq += 1
        return fragment
