"""A simplified-but-executed SSL handshake with client authentication.

The flow (RSA key exchange, SSLv3-flavoured key derivation):

1. ClientHello: client random.
2. ServerHello: server random + server RSA public key ("certificate").
3. ClientKeyExchange: client RSA-encrypts the premaster secret to the
   server key (public-key operation on the handset).
4. CertificateVerify: client signs the handshake transcript with its
   own RSA key (private-key operation on the handset -- the paper's
   platform accelerates exactly this mix, which is why small-
   transaction SSL speedups exceed the RSA-encrypt-only speedup).
5. Both sides derive the master secret and record keys with the
   SSLv3-style MD5(SHA1(...)) expansion and verify Finished MACs over
   the transcript.

Everything actually executes on the library's own crypto, so a
handshake test failing means a real interoperability bug somewhere in
the stack.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto.md5 import md5
from repro.crypto.rsa import Rsa, RsaKeyPair
from repro.crypto.sha1 import sha1
from repro.mp import DeterministicPrng

_CIPHERS = {"des": (Des, 8), "3des": (TripleDes, 24), "aes": (Aes, 16)}


def ssl3_expand(secret: bytes, seed: bytes, length: int) -> bytes:
    """SSLv3-style key block expansion: MD5(secret || SHA1(label_i ||
    secret || seed)) with labels 'A', 'BB', 'CCC', ..."""
    out = b""
    i = 0
    while len(out) < length:
        label = bytes([ord("A") + i]) * (i + 1)
        out += md5(secret + sha1(label + secret + seed))
        i += 1
    return out[:length]


@dataclass
class SessionKeys:
    client_mac: bytes
    server_mac: bytes
    client_key: bytes
    server_key: bytes
    client_iv: bytes
    server_iv: bytes


def derive_keys(master: bytes, client_random: bytes, server_random: bytes,
                cipher_name: str) -> SessionKeys:
    _, key_len = _CIPHERS[cipher_name]
    block = _CIPHERS[cipher_name][0](bytes(key_len)).block_size
    need = 2 * 20 + 2 * key_len + 2 * block
    material = ssl3_expand(master, server_random + client_random, need)
    off = 0

    def take(n: int) -> bytes:
        nonlocal off
        chunk = material[off: off + n]
        off += n
        return chunk

    return SessionKeys(client_mac=take(20), server_mac=take(20),
                       client_key=take(key_len), server_key=take(key_len),
                       client_iv=take(block), server_iv=take(block))


class SslServer:
    """The transaction peer (an e-commerce server in the paper's story)."""

    def __init__(self, keypair: RsaKeyPair, rsa: Optional[Rsa] = None):
        self.keypair = keypair
        self.rsa = rsa or Rsa()
        self.random = b""
        self.transcript = b""

    def hello(self, client_hello: bytes,
              prng: DeterministicPrng) -> Tuple[bytes, object]:
        self.random = prng.next_bytes(32)
        self.transcript = client_hello + self.random
        return self.random, self.keypair.public

    def receive_key_exchange(self, encrypted_premaster: bytes,
                             signature: bytes, client_public) -> bytes:
        premaster = self.rsa.decrypt(encrypted_premaster,
                                     self.keypair.private)
        self.transcript += encrypted_premaster
        if not self.rsa.verify(self.transcript, signature, client_public):
            raise ValueError("client CertificateVerify failed")
        self.transcript += signature
        return premaster

    def finished_mac(self, master: bytes) -> bytes:
        return sha1(master + self.transcript)


class SslClient:
    """The wireless handset: the platform whose cycles the paper counts."""

    def __init__(self, keypair: RsaKeyPair, rsa: Optional[Rsa] = None,
                 prng: Optional[DeterministicPrng] = None):
        self.keypair = keypair
        self.rsa = rsa or Rsa()
        self.prng = prng or DeterministicPrng(0x55AA)
        self.random = b""
        self.transcript = b""

    def hello(self) -> bytes:
        self.random = self.prng.next_bytes(32)
        return self.random

    def key_exchange(self, server_random: bytes,
                     server_public) -> Tuple[bytes, bytes, bytes]:
        """Returns (premaster, encrypted premaster, transcript signature)."""
        self.transcript = self.random + server_random
        premaster = self.prng.next_bytes(48)
        encrypted = self.rsa.encrypt(premaster, server_public, self.prng)
        self.transcript += encrypted
        signature = self.rsa.sign(self.transcript, self.keypair.private)
        self.transcript += signature
        return premaster, encrypted, signature


@dataclass
class HandshakeResult:
    keys: SessionKeys
    master: bytes
    client_random: bytes
    server_random: bytes
    cipher_name: str


def run_handshake(client: SslClient, server: SslServer,
                  cipher_name: str = "3des",
                  prng: Optional[DeterministicPrng] = None
                  ) -> HandshakeResult:
    """Execute the full handshake; raises if the two sides disagree."""
    if cipher_name not in _CIPHERS:
        raise ValueError(f"unknown cipher suite {cipher_name!r}")
    prng = prng or DeterministicPrng(0x5E44)
    from repro.obs import get_registry, get_tracer
    get_registry().counter("ssl.handshakes", resumed="false").inc()
    with get_tracer().span("ssl.handshake", cipher=cipher_name,
                           resumed=False):
        client_hello = client.hello()
        server_random, server_public = server.hello(client_hello, prng)
        premaster, encrypted, signature = client.key_exchange(
            server_random, server_public)
        server_premaster = server.receive_key_exchange(
            encrypted, signature, client.keypair.public)
        if server_premaster != premaster:
            raise ValueError("premaster secrets diverged")
        master = ssl3_expand(premaster, client_hello + server_random, 48)
        keys = derive_keys(master, client_hello, server_random,
                           cipher_name)
        # Finished verification: both sides MAC the same transcript.
        if server.finished_mac(master) != sha1(master + client.transcript):
            raise ValueError("Finished MAC mismatch")
    return HandshakeResult(keys=keys, master=master,
                           client_random=client_hello,
                           server_random=server_random,
                           cipher_name=cipher_name)


def run_resumed_handshake(prior: HandshakeResult,
                          prng: Optional[DeterministicPrng] = None
                          ) -> HandshakeResult:
    """Abbreviated handshake from a cached session (paper ref. [27]:
    "Secure Server Performance Dramatically Improved by Caching SSL
    Session Keys").

    Both sides already hold the master secret; fresh randoms re-derive
    the record keys and no public-key operation runs at all -- which is
    why resumption changes the Figure 8 picture so strongly for small
    transactions.
    """
    prng = prng or DeterministicPrng(0x4E5)
    from repro.obs import get_registry, get_tracer
    get_registry().counter("ssl.handshakes", resumed="true").inc()
    with get_tracer().span("ssl.handshake", cipher=prior.cipher_name,
                           resumed=True):
        client_random = prng.next_bytes(32)
        server_random = prng.next_bytes(32)
        keys = derive_keys(prior.master, client_random, server_random,
                           prior.cipher_name)
    return HandshakeResult(keys=keys, master=prior.master,
                           client_random=client_random,
                           server_random=server_random,
                           cipher_name=prior.cipher_name)


def make_record_channels(result: HandshakeResult):
    """Record layers for the client->server direction.

    Returns (sender, receiver): the client's sealing endpoint and the
    server's opening endpoint, initialized from the same session keys
    (each side instantiates its own cipher, as real peers do).
    """
    from repro.ssl.record import RecordLayer
    cipher_cls, _ = _CIPHERS[result.cipher_name]
    sender = RecordLayer(cipher_cls(result.keys.client_key),
                         result.keys.client_mac, result.keys.client_iv)
    receiver = RecordLayer(cipher_cls(result.keys.client_key),
                           result.keys.client_mac, result.keys.client_iv)
    return sender, receiver
