"""The SSL transaction workload/cycle model (paper Figure 8).

A transaction = one handshake (public-key bound) + ``size`` bytes of
protected application data (symmetric/misc bound).  Following the
paper's breakdown, cycles split into three components:

- **public-key**: the handset's RSA work in the handshake -- verify the
  server certificate, encrypt the premaster secret, and sign the
  CertificateVerify message (client authentication).
- **symmetric**: the bulk cipher over the session data.
- **misc**: everything the custom instructions do *not* accelerate --
  record MAC and transcript hashing (SHA-1) and per-byte protocol
  processing (framing, copies), charged identically on both platforms.

As transaction size grows the unaccelerated misc component dominates
both platforms and the speedup saturates near
(sym+misc)_base / (sym+misc)_opt -- the paper's ~3x plateau.
"""

import warnings
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.costs.model import PlatformCosts as _PlatformCosts

# PlatformCosts historically lived here; it is now the heart of the
# unified cost layer (repro.costs).  The old names are kept importable
# through a deprecation shim below -- update callers to repro.costs.
_MOVED_TO_COSTS = ("PlatformCosts", "PROTOCOL_CYCLES_PER_BYTE",
                   "PROTOCOL_FIXED_CYCLES")


def __getattr__(name: str):
    if name in _MOVED_TO_COSTS:
        warnings.warn(
            f"importing {name} from repro.ssl.transaction is deprecated; "
            f"import it from repro.costs instead",
            DeprecationWarning, stacklevel=2)
        from repro import costs
        return getattr(costs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Handshake bytes hashed into the transcript (hellos, certificate,
#: key exchange, Finished) -- a representative fixed workload.
HANDSHAKE_TRANSCRIPT_BYTES = 4096


@dataclass
class TransactionBreakdown:
    """Cycle breakdown of one SSL transaction (Figure 8's stacked bars)."""

    public_key: float
    symmetric: float
    misc: float

    @property
    def total(self) -> float:
        return self.public_key + self.symmetric + self.misc

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {"public_key": self.public_key / total,
                "symmetric": self.symmetric / total,
                "misc": self.misc / total}


class SslWorkloadModel:
    """Computes Figure 8: SSL transaction speedup vs session size."""

    def __init__(self, base_costs: _PlatformCosts,
                 optimized_costs: _PlatformCosts):
        self.base_costs = base_costs
        self.optimized_costs = optimized_costs

    @staticmethod
    def breakdown(costs: _PlatformCosts, size_bytes: int,
                  resumed: bool = False) -> TransactionBreakdown:
        if resumed:
            # Abbreviated handshake (cached session keys, paper ref.
            # [27]): no public-key operations; only the short
            # hello/Finished exchange is hashed.
            public_key = 0.0
            hashed_bytes = HANDSHAKE_TRANSCRIPT_BYTES // 8 + size_bytes
        else:
            # Full handshake: verify server certificate + encrypt
            # premaster (public ops) + sign CertificateVerify (private).
            public_key = (2 * costs.rsa_public_cycles
                          + costs.rsa_private_cycles)
            hashed_bytes = HANDSHAKE_TRANSCRIPT_BYTES + size_bytes
        symmetric = size_bytes * costs.cipher_cycles_per_byte
        misc = (hashed_bytes * costs.hash_cycles_per_byte
                + size_bytes * costs.protocol_cycles_per_byte
                + costs.protocol_fixed_cycles)
        return TransactionBreakdown(public_key=public_key,
                                    symmetric=symmetric, misc=misc)

    def speedup(self, size_bytes: int, resumed: bool = False) -> float:
        base = self.breakdown(self.base_costs, size_bytes, resumed).total
        opt = self.breakdown(self.optimized_costs, size_bytes,
                             resumed).total
        return base / opt

    def resumption_gain(self, costs: _PlatformCosts,
                        size_bytes: int) -> float:
        """How much cheaper a resumed transaction is than a full one
        on the same platform (the session-caching payoff of [27])."""
        full = self.breakdown(costs, size_bytes).total
        resumed = self.breakdown(costs, size_bytes, resumed=True).total
        return full / resumed

    def asymptotic_speedup(self) -> float:
        """Large-transaction limit: the (sym+misc)-bound plateau."""
        b, o = self.base_costs, self.optimized_costs
        per_byte_base = (b.cipher_cycles_per_byte + b.hash_cycles_per_byte
                         + b.protocol_cycles_per_byte)
        per_byte_opt = (o.cipher_cycles_per_byte + o.hash_cycles_per_byte
                        + o.protocol_cycles_per_byte)
        return per_byte_base / per_byte_opt

    def series(self, sizes: Sequence[int]) -> List[dict]:
        """Rows for the Figure 8 table: size, speedup, base breakdown."""
        rows = []
        for size in sizes:
            base = self.breakdown(self.base_costs, size)
            opt = self.breakdown(self.optimized_costs, size)
            rows.append({
                "size_bytes": size,
                "speedup": base.total / opt.total,
                "base_fractions": base.fractions(),
                "opt_fractions": opt.fractions(),
                "base_cycles": base.total,
                "opt_cycles": opt.total,
            })
        return rows
