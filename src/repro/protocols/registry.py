"""The pluggable protocol-model registry.

The paper's point is one security platform serving *many* wireless
protocols, so protocol behavior must be a seam, not a hardwired menu.
A :class:`ProtocolModel` bundles everything the farm layer needs to
know about one protocol -- its per-request cycle model over
:class:`~repro.costs.PlatformCosts`, its handshake/resumption
semantics (whether it participates in session caching, and under what
affinity key), and its weight in the default traffic mix -- and
:func:`register_protocol` publishes it under its name, mirroring the
``register_algorithm`` registry of :mod:`repro.crypto.api`.

Every consumer resolves protocols through :func:`get_protocol`:
:mod:`repro.farm.workload` (generation and costing),
:mod:`repro.farm.simulator` (per-protocol session caches),
:mod:`repro.farm.scheduler` (cache affinity), :mod:`repro.farm.replay`
and :mod:`repro.farm.shard` (trace validation), and the CLI's
``--mix``/``--list-protocols``.  Adding a protocol is therefore one
registration in one file -- see :mod:`repro.protocols.tls13` and
:mod:`repro.protocols.kasumi_link` for complete examples -- with zero
edits to the farm engine (locked in by the toy-protocol plugin test).
"""

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["MTU_BYTES", "ProtocolModel", "RequestCost",
           "UnknownProtocolError", "default_mix", "get_protocol",
           "protocol_names", "register_protocol",
           "unregister_protocol"]

#: Link-layer MTU used to charge per-packet/per-frame fixed overheads
#: (historically exported by :mod:`repro.farm.workload`).
MTU_BYTES = 1500


@dataclass(frozen=True)
class RequestCost:
    """Cycle price of serving one request on one core configuration."""

    cycles: float
    public_key_cycles: float
    payload_bytes: int

    @property
    def public_key_fraction(self) -> float:
        return self.public_key_cycles / self.cycles if self.cycles else 0.0


class UnknownProtocolError(ValueError):
    """Raised for any protocol name missing from the registry.

    Always names the registered choices, so a typo in a ``--mix`` flag
    or a foreign trace file fails with the valid menu in hand.
    """

    def __init__(self, names, choices):
        names = (names,) if isinstance(names, str) else tuple(sorted(names))
        self.names = names
        self.choices = tuple(choices)
        label = "protocol" if len(names) == 1 else "protocols"
        super().__init__(
            f"unknown {label} {', '.join(repr(n) for n in names)}; "
            f"registered: {list(self.choices)}")


class ProtocolModel:
    """Everything the farm layer needs to know about one protocol.

    Subclasses override :meth:`request_cost` (mandatory) and, when the
    protocol supports session resumption, set :attr:`resumable` and
    provide :meth:`cache_key`.  Requests are duck-typed
    :class:`~repro.farm.workload.SessionRequest` records; the model
    never mutates them.
    """

    #: Registry key; also the ``protocol`` field of generated requests.
    name = "abstract"
    #: Weight in :class:`~repro.farm.workload.TrafficProfile`'s stock
    #: mix.  Zero keeps the protocol opt-in only (an explicit ``mix``
    #: entry), which is what lets new registrations leave the legacy
    #: default stream -- and its benchmark baselines -- byte-identical.
    default_mix_weight = 0.0
    #: Whether clients may resume an earlier session.  Drives the
    #: workload generator's resumption draw, the simulator's
    #: per-protocol session caches, and scheduler cache affinity.
    resumable = False

    def request_cost(self, request, costs, cache_hit=False):
        """Cycles to serve ``request`` under unit costs ``costs``.

        ``cache_hit`` applies to resumed requests only: a hit serves
        the abbreviated handshake, a miss falls back to the full one.
        Returns a :class:`RequestCost`.
        """
        raise NotImplementedError

    def public_key_heavy(self, request) -> bool:
        """Does this request's cost concentrate in public-key work?
        The preferential scheduler routes such jobs to TIE-extended
        cores."""
        return False

    def cache_key(self, client_id: int) -> bytes:
        """The session-cache/affinity key a resuming client presents."""
        raise NotImplementedError(
            f"protocol {self.name!r} is not resumable")

    def session_record(self, client_id: int):
        """What a core caches under :meth:`cache_key` after serving a
        full handshake (the cached value is never inspected, only its
        presence matters)."""
        return client_id


#: Insertion-ordered: registration order IS the default-mix key order,
#: which the seeded weighted-choice draws depend on -- register legacy
#: protocols before additions (see repro.protocols.__init__).
_REGISTRY: Dict[str, ProtocolModel] = {}


def register_protocol(model: ProtocolModel) -> ProtocolModel:
    """Publish ``model`` under ``model.name`` (latest wins)."""
    name = getattr(model, "name", "")
    if not name or name == ProtocolModel.name:
        raise ValueError("protocol model needs a concrete name")
    if model.default_mix_weight < 0:
        raise ValueError(f"protocol {name!r}: default_mix_weight "
                         "must be non-negative")
    _REGISTRY[name] = model
    return model


def unregister_protocol(name: str) -> bool:
    """Remove a registration (plugin/test cleanup); True if present."""
    return _REGISTRY.pop(name, None) is not None


def protocol_names() -> Tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


def get_protocol(name: str) -> ProtocolModel:
    """The registered model for ``name``, or a uniform error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownProtocolError(name, protocol_names()) from None


def default_mix() -> Dict[str, float]:
    """The stock traffic mix: every registered protocol with a
    positive default weight, in registration order."""
    return {name: model.default_mix_weight
            for name, model in _REGISTRY.items()
            if model.default_mix_weight > 0}
