"""802.11 WEP frame protection (the link-layer protocol of Section 1).

Frame format (classic 40/104-bit WEP):

    IV (3 bytes) || key id (1 byte) || RC4_{IV||key}(payload || CRC32)

Faithful to the original, including its famous weaknesses -- the tests
demonstrate keystream reuse under IV repetition, which is part of why
the paper's *programmable* platform matters: WEP's successors required
new algorithms, not new silicon.
"""

import struct
from typing import Optional

from repro.crypto.crc import crc32
from repro.crypto.rc4 import Rc4
from repro.mp import DeterministicPrng
from repro.obs import get_registry, get_tracer


class WepError(ValueError):
    """Malformed frame or ICV failure."""


class WepPeer:
    """One WEP endpoint (shared-key, single key slot)."""

    def __init__(self, key: bytes, prng: Optional[DeterministicPrng] = None):
        if len(key) not in (5, 13):
            raise WepError("WEP key must be 5 (WEP-40) or 13 (WEP-104) bytes")
        self.key = key
        self._prng = prng or DeterministicPrng(0x802011)
        self._iv_counter = self._prng.next_bits(24)

    def _next_iv(self) -> bytes:
        self._iv_counter = (self._iv_counter + 1) & 0xFFFFFF
        return self._iv_counter.to_bytes(3, "big")

    def seal(self, payload: bytes, iv: Optional[bytes] = None) -> bytes:
        """Protect one frame; a fresh IV is drawn unless provided."""
        with get_tracer().span("wep.seal", bytes=len(payload)):
            iv = iv if iv is not None else self._next_iv()
            if len(iv) != 3:
                raise WepError("WEP IV must be 3 bytes")
            icv = struct.pack("<I", crc32(payload))
            keystream_cipher = Rc4(iv + self.key)
            body = keystream_cipher.process(payload + icv)
        registry = get_registry()
        registry.counter("wep.frames", direction="seal").inc()
        registry.counter("wep.bytes", direction="seal").inc(len(payload))
        return iv + b"\x00" + body

    def open(self, frame: bytes) -> bytes:
        """Verify and decrypt one frame."""
        with get_tracer().span("wep.open", bytes=len(frame)):
            if len(frame) < 8:
                raise WepError("frame too short")
            iv, body = frame[:3], frame[4:]
            plaintext = Rc4(iv + self.key).process(body)
            payload, icv = plaintext[:-4], plaintext[-4:]
            if struct.pack("<I", crc32(payload)) != icv:
                get_registry().counter("wep.icv_failures").inc()
                raise WepError("ICV check failed")
        registry = get_registry()
        registry.counter("wep.frames", direction="open").inc()
        registry.counter("wep.bytes", direction="open").inc(len(payload))
        return payload
