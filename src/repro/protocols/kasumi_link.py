"""KASUMI 3G/WPA-era link-layer protocol model: a pure registration.

Like :mod:`repro.protocols.tls13`, this module proves the registry
seam: one file, one registration, zero farm-engine edits.

The model prices UMTS-style link-layer protection: every payload byte
passes through KASUMI twice -- once for f8 confidentiality (OFB-like
keystream) and once for f9 integrity (CBC-MAC) -- plus a fixed
per-frame charge for COUNT/BEARER/FRESH block setup.  The per-byte
KASUMI rate comes from the kernel-backed measurement when the platform
characterization provides one (``costs.overhead("kasumi_cycles_per_byte")``,
populated by :mod:`repro.costs.backends` from the XT32 KASUMI kernel)
and falls back to the calibrated
:data:`~repro.costs.KASUMI_CYCLES_PER_BYTE` constant otherwise.

There is no handshake and no session state: the model is not
resumable and never touches the session-cache/affinity machinery.
"""

import math

from repro.costs import KASUMI_CYCLES_PER_BYTE, KASUMI_FRAME_FIXED_CYCLES
from repro.protocols.registry import (MTU_BYTES, ProtocolModel,
                                      RequestCost, register_protocol)

__all__ = ["KasumiLinkProtocolModel"]


class KasumiLinkProtocolModel(ProtocolModel):
    name = "kasumi"
    # Opt-in only; legacy default mix stays untouched.
    default_mix_weight = 0.0

    def request_cost(self, request, costs, cache_hit=False):
        size = request.size_bytes
        rate = costs.overhead("kasumi_cycles_per_byte",
                              KASUMI_CYCLES_PER_BYTE)
        fixed = costs.overhead("kasumi_frame_fixed_cycles",
                               KASUMI_FRAME_FIXED_CYCLES)
        frames = max(1, math.ceil(size / MTU_BYTES))
        # f8 keystream + f9 MAC: two KASUMI passes over every byte.
        cycles = (size * (2.0 * rate + costs.protocol_cycles_per_byte)
                  + frames * fixed)
        return RequestCost(cycles=cycles, public_key_cycles=0.0,
                           payload_bytes=size)


register_protocol(KasumiLinkProtocolModel())
