"""TLS-1.3-style protocol model: a pure registry registration.

This module is deliberately self-contained proof of the registry seam:
it defines one :class:`~repro.protocols.registry.ProtocolModel`
subclass and registers it, with zero edits to the farm engine.

The cycle model follows the TLS 1.3 shape rather than the SSL one:

- **Full handshake (1-RTT).**  Key agreement is always ECDHE, priced
  by the measured :meth:`~repro.costs.PlatformCosts.ecdh_handshake_cycles`
  path, plus one RSA-public-scale signature operation for the
  authenticated transcript.  That replaces SSL's RSA-private decrypt,
  so full TLS 1.3 handshakes are far cheaper on the server -- which is
  the historical argument for the protocol.  The single round trip
  also hashes roughly half the transcript bytes of SSL's 2-RTT
  exchange.
- **Resumption (0-RTT session ticket).**  A PSK resumption skips
  public-key work entirely and hashes only the ticket binder.  The
  ticket feeds the farm's generic session-cache/affinity machinery:
  cores cache the ticket under a per-client key, and the scheduler
  steers resuming clients to a core already holding it.
"""

from hashlib import sha1

from repro.protocols.registry import (ProtocolModel, RequestCost,
                                      register_protocol)
from repro.ssl.transaction import HANDSHAKE_TRANSCRIPT_BYTES

__all__ = ["Tls13ProtocolModel"]


class Tls13ProtocolModel(ProtocolModel):
    name = "tls13"
    # Opt-in only: keeps the legacy default mix (and its benchmark
    # baselines) untouched.
    default_mix_weight = 0.0
    resumable = True

    def request_cost(self, request, costs, cache_hit=False):
        size = request.size_bytes
        if request.resumed and cache_hit:
            # 0-RTT PSK: no public-key work, only the ticket binder
            # transcript on top of the record payload.
            public_key = 0.0
            hashed = HANDSHAKE_TRANSCRIPT_BYTES // 8 + size
        else:
            # 1-RTT full handshake: ECDHE key agreement plus one
            # RSA-public-scale signature over the transcript.
            public_key = costs.ecdh_handshake_cycles() + costs.rsa_public_cycles
            hashed = HANDSHAKE_TRANSCRIPT_BYTES // 2 + size
        bulk = (size * costs.cipher_cycles_per_byte
                + hashed * costs.hash_cycles_per_byte
                + size * costs.protocol_cycles_per_byte
                + costs.protocol_fixed_cycles)
        return RequestCost(cycles=public_key + bulk,
                           public_key_cycles=public_key,
                           payload_bytes=size)

    def public_key_heavy(self, request) -> bool:
        return not request.resumed

    def cache_key(self, client_id: int) -> bytes:
        return sha1(b"tls13-ticket" + client_id.to_bytes(32, "big")).digest()[:16]

    def session_record(self, client_id: int):
        # The cached value is never inspected; a per-client ticket
        # stub keeps the cache contents debuggable.
        return ("tls13-ticket", client_id)


register_protocol(Tls13ProtocolModel())
