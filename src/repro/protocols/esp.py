"""IPSec ESP processing (the network-layer protocol of Section 1).

A security association protects packets as:

    SPI (4) || sequence (4) || IV || CBC-Enc(payload || pad || padlen ||
    next-header) || HMAC-SHA1-96 over everything before it

with a receive-side anti-replay window, per RFC 2406's structure.
"""

import struct
from typing import Optional

from repro.crypto import modes
from repro.crypto.hmac import hmac
from repro.mp import DeterministicPrng
from repro.obs import get_registry, get_tracer

_ICV_LEN = 12  # HMAC-SHA1-96
_REPLAY_WINDOW = 64


class EspError(ValueError):
    """Malformed packet, ICV failure, or replay."""


class EspSecurityAssociation:
    """One direction of an ESP tunnel (cipher + auth keys + replay state)."""

    def __init__(self, spi: int, cipher, auth_key: bytes,
                 prng: Optional[DeterministicPrng] = None):
        if not 0 < spi < (1 << 32):
            raise EspError("SPI must be a 32-bit nonzero value")
        self.spi = spi
        self.cipher = cipher
        self.auth_key = auth_key
        self._prng = prng or DeterministicPrng(spi)
        self.send_seq = 0
        self._highest_seen = 0
        self._window = 0  # bitmap of recently seen sequence numbers

    # -- send side ---------------------------------------------------------

    def seal(self, payload: bytes, next_header: int = 4) -> bytes:
        """Protect one packet (next_header=4: IP-in-IP tunnel mode)."""
        with get_tracer().span("esp.seal", spi=self.spi,
                               bytes=len(payload)):
            self.send_seq += 1
            if self.send_seq >= (1 << 32):
                raise EspError("sequence number exhausted; rekey required")
            bs = self.cipher.block_size
            iv = self._prng.next_bytes(bs)
            # RFC 2406 trailer: pad || pad length || next header.
            pad_len = (-(len(payload) + 2)) % bs
            trailer = (bytes(range(1, pad_len + 1))
                       + bytes([pad_len, next_header]))
            ct = modes.cbc_encrypt(self.cipher, iv, payload + trailer)
            header = struct.pack(">II", self.spi, self.send_seq)
            body = header + iv + ct
            icv = hmac(self.auth_key, body, "sha1")[:_ICV_LEN]
        registry = get_registry()
        registry.counter("esp.packets", direction="seal").inc()
        registry.counter("esp.bytes", direction="seal").inc(len(payload))
        return body + icv

    # -- receive side ---------------------------------------------------------

    def _check_replay(self, seq: int) -> None:
        if seq == 0:
            raise EspError("zero sequence number")
        if seq > self._highest_seen:
            shift = seq - self._highest_seen
            self._window = ((self._window << shift) | 1) & \
                ((1 << _REPLAY_WINDOW) - 1)
            self._highest_seen = seq
            return
        offset = self._highest_seen - seq
        if offset >= _REPLAY_WINDOW:
            raise EspError("sequence number too old")
        if self._window & (1 << offset):
            raise EspError("replayed packet")
        self._window |= (1 << offset)

    def open(self, packet: bytes) -> bytes:
        """Verify, replay-check and decrypt one packet."""
        with get_tracer().span("esp.open", spi=self.spi,
                               bytes=len(packet)):
            bs = self.cipher.block_size
            min_len = 8 + bs + bs + _ICV_LEN
            if len(packet) < min_len:
                raise EspError("packet too short")
            body, icv = packet[:-_ICV_LEN], packet[-_ICV_LEN:]
            if hmac(self.auth_key, body, "sha1")[:_ICV_LEN] != icv:
                get_registry().counter("esp.icv_failures").inc()
                raise EspError("ICV verification failed")
            spi, seq = struct.unpack(">II", body[:8])
            if spi != self.spi:
                raise EspError(f"unknown SPI {spi:#x}")
            self._check_replay(seq)
            iv = body[8: 8 + bs]
            plaintext = modes.cbc_decrypt(self.cipher, iv, body[8 + bs:])
            if len(plaintext) < 2:
                raise EspError("decrypted payload too short")
            pad_len = plaintext[-2]
            if pad_len + 2 > len(plaintext):
                raise EspError("bad pad length")
        registry = get_registry()
        registry.counter("esp.packets", direction="open").inc()
        registry.counter("esp.bytes", direction="open").inc(
            len(plaintext) - pad_len - 2)
        return plaintext[: len(plaintext) - pad_len - 2]
