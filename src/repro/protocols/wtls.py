"""WTLS-style transport security for WAP handsets.

The paper's platform targets "IPSec, SSL, WTLS" (Sections 1 and 4).
WTLS is the WAP forum's TLS variant for wireless links; notably it
standardized *elliptic-curve* key exchange early, because ECC's small
keys suited handsets -- which makes it the natural consumer of
:mod:`repro.crypto.ec` here.

The model: an ECDH handshake (ephemeral client key against the
gateway's static curve key), HMAC-SHA1-based key-block expansion, and
a compact record layer (sequence-numbered HMAC + CBC) mirroring
:mod:`repro.ssl.record` with WTLS's smaller 5-byte MAC option.
"""

import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.des import Des
from repro.crypto.ec import (Curve, Point, SECP160R1,
                             ecdh_shared_secret, generate_ec_keypair)
from repro.crypto.hmac import hmac
from repro.mp import DeterministicPrng

_CIPHERS = {"des": (Des, 8), "aes": (Aes, 16)}
_MAC_LEN = 5  # WTLS's truncated SHA-1 MAC option


class WtlsError(ValueError):
    """Handshake or record failure."""


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """HMAC-SHA1 expansion (P_SHA1 of the TLS/WTLS PRF)."""
    out = b""
    a = label + seed
    while len(out) < length:
        a = hmac(secret, a, "sha1")
        out += hmac(secret, a + label + seed, "sha1")
    return out[:length]


@dataclass
class WtlsSession:
    cipher_name: str
    client_write_key: bytes
    server_write_key: bytes
    client_mac_key: bytes
    server_mac_key: bytes
    client_iv: bytes
    server_iv: bytes


class WtlsGateway:
    """The WAP gateway: a static ECDH key on a named curve."""

    def __init__(self, curve: Curve = SECP160R1,
                 prng: Optional[DeterministicPrng] = None):
        self.curve = curve
        self.keypair = generate_ec_keypair(
            curve, prng or DeterministicPrng(0x3A7E))

    @property
    def public(self) -> Point:
        return self.keypair.public


class WtlsClient:
    """The handset: ephemeral ECDH against the gateway's static key."""

    def __init__(self, prng: Optional[DeterministicPrng] = None):
        self._prng = prng or DeterministicPrng(0xC11E)

    def handshake(self, gateway: WtlsGateway,
                  cipher_name: str = "des") -> WtlsSession:
        if cipher_name not in _CIPHERS:
            raise WtlsError(f"unknown cipher {cipher_name!r}")
        ephemeral = generate_ec_keypair(gateway.curve, self._prng)
        shared = ecdh_shared_secret(ephemeral.private, gateway.public)
        # The gateway computes the same secret from the ephemeral public.
        check = ecdh_shared_secret(gateway.keypair.private,
                                   ephemeral.public)
        if shared != check:
            raise WtlsError("ECDH agreement failure")
        secret = shared.to_bytes((gateway.curve.bits + 7) // 8, "big")
        return derive_session(secret, self._prng.next_bytes(16),
                              cipher_name)


def derive_session(premaster: bytes, seed: bytes,
                   cipher_name: str) -> WtlsSession:
    _, key_len = _CIPHERS[cipher_name]
    block = _CIPHERS[cipher_name][0](bytes(key_len)).block_size
    need = 2 * key_len + 2 * 20 + 2 * block
    material = prf(premaster, b"wtls key expansion", seed, need)
    off = 0

    def take(n: int) -> bytes:
        nonlocal off
        piece = material[off: off + n]
        off += n
        return piece

    return WtlsSession(cipher_name=cipher_name,
                       client_write_key=take(key_len),
                       server_write_key=take(key_len),
                       client_mac_key=take(20), server_mac_key=take(20),
                       client_iv=take(block), server_iv=take(block))


class WtlsRecordLayer:
    """One direction of WTLS record protection (5-byte MAC)."""

    def __init__(self, session: WtlsSession, client_side: bool):
        cipher_cls, _ = _CIPHERS[session.cipher_name]
        key = (session.client_write_key if client_side
               else session.server_write_key)
        self.cipher = cipher_cls(key)
        self.mac_key = (session.client_mac_key if client_side
                        else session.server_mac_key)
        self._iv = (session.client_iv if client_side
                    else session.server_iv)
        self.seq = 0

    def seal(self, payload: bytes) -> bytes:
        mac = hmac(self.mac_key,
                   struct.pack(">Q", self.seq) + payload)[:_MAC_LEN]
        self.seq += 1
        body = modes.pkcs7_pad(payload + mac, self.cipher.block_size)
        ct = modes.cbc_encrypt(self.cipher, self._iv, body)
        self._iv = ct[-self.cipher.block_size:]
        return struct.pack(">H", len(ct)) + ct

    def open(self, record: bytes) -> bytes:
        if len(record) < 2:
            raise WtlsError("record too short")
        (length,) = struct.unpack(">H", record[:2])
        ct = record[2:]
        if len(ct) != length or length % self.cipher.block_size:
            raise WtlsError("bad record length")
        body = modes.cbc_decrypt(self.cipher, self._iv, ct)
        self._iv = ct[-self.cipher.block_size:]
        try:
            body = modes.pkcs7_unpad(body, self.cipher.block_size)
        except ValueError as exc:
            raise WtlsError(str(exc))
        if len(body) < _MAC_LEN:
            raise WtlsError("record smaller than its MAC")
        payload, mac = body[:-_MAC_LEN], body[-_MAC_LEN:]
        want = hmac(self.mac_key,
                    struct.pack(">Q", self.seq) + payload)[:_MAC_LEN]
        if mac != want:
            raise WtlsError("MAC verification failed")
        self.seq += 1
        return payload


def make_channels(session: WtlsSession):
    """(client sender, gateway receiver) for the client->gateway flow."""
    return (WtlsRecordLayer(session, client_side=True),
            WtlsRecordLayer(session, client_side=True))
