"""The 2002 protocol menu as registry entries.

The four protocols the paper evaluates (SSL, WTLS, IPSec ESP, WEP),
each as a :class:`~repro.protocols.registry.ProtocolModel` whose
cycle arithmetic is exactly the historical ``cost_of`` chain of
:mod:`repro.farm.workload` -- the refactor is behavior-preserving, and
the legacy farm benchmark baselines gate that byte for byte.
"""

import math

from repro.protocols.registry import (MTU_BYTES, ProtocolModel,
                                      RequestCost, register_protocol)
from repro.ssl.session_cache import SessionCache
from repro.ssl.transaction import (HANDSHAKE_TRANSCRIPT_BYTES,
                                   SslWorkloadModel)

__all__ = ["EspProtocolModel", "SslProtocolModel", "WepProtocolModel",
           "WtlsProtocolModel", "farm_session", "session_id_for_client"]

_SERVER_RANDOM = b"farm-server-random".ljust(32, b"\0")


class _FarmSession:
    """Shim handshake result so cores can reuse the SSL session cache."""

    __slots__ = ("client_random", "server_random")

    def __init__(self, client_random: bytes, server_random: bytes):
        self.client_random = client_random
        self.server_random = server_random


def farm_session(client_id: int) -> _FarmSession:
    """The cacheable session record for a client's full SSL handshake."""
    return _FarmSession(
        client_random=client_id.to_bytes(32, "big"),
        server_random=_SERVER_RANDOM)


def session_id_for_client(client_id: int) -> bytes:
    """The session id a resuming SSL client presents (affinity key)."""
    return SessionCache.session_id(farm_session(client_id))


class SslProtocolModel(ProtocolModel):
    """SSL transaction: full or session-cache-resumed handshake plus
    record transfer, priced by
    :meth:`repro.ssl.transaction.SslWorkloadModel.breakdown`."""

    name = "ssl"
    default_mix_weight = 0.5
    resumable = True

    def request_cost(self, request, costs, cache_hit=False):
        resumed = request.resumed and cache_hit
        b = SslWorkloadModel.breakdown(costs, request.size_bytes,
                                       resumed=resumed)
        return RequestCost(cycles=b.total, public_key_cycles=b.public_key,
                           payload_bytes=request.size_bytes)

    def public_key_heavy(self, request) -> bool:
        return not request.resumed

    def cache_key(self, client_id: int) -> bytes:
        return session_id_for_client(client_id)

    def session_record(self, client_id: int):
        return farm_session(client_id)


class WtlsProtocolModel(ProtocolModel):
    """WTLS browsing session: ECDH (secp160r1) handshake plus record
    transfer over a leaner transcript than SSL's."""

    name = "wtls"
    default_mix_weight = 0.2

    def request_cost(self, request, costs, cache_hit=False):
        size = request.size_bytes
        public_key = costs.ecdh_handshake_cycles()
        hashed = HANDSHAKE_TRANSCRIPT_BYTES // 4 + size
        bulk = (size * costs.cipher_cycles_per_byte
                + hashed * costs.hash_cycles_per_byte
                + size * costs.protocol_cycles_per_byte
                + costs.protocol_fixed_cycles)
        return RequestCost(cycles=public_key + bulk,
                           public_key_cycles=public_key,
                           payload_bytes=size)

    def public_key_heavy(self, request) -> bool:
        return not request.resumed


class EspProtocolModel(ProtocolModel):
    """IPSec ESP bulk transfer: cipher + HMAC per byte, a fixed price
    per MTU-sized packet (header build, SA lookup, replay window)."""

    name = "esp"
    default_mix_weight = 0.2

    def request_cost(self, request, costs, cache_hit=False):
        size = request.size_bytes
        packets = max(1, math.ceil(size / MTU_BYTES))
        cycles = (size * (costs.cipher_cycles_per_byte
                          + costs.hash_cycles_per_byte
                          + costs.protocol_cycles_per_byte)
                  + packets * costs.esp_packet_fixed_cycles)
        return RequestCost(cycles=cycles, public_key_cycles=0.0,
                           payload_bytes=size)


class WepProtocolModel(ProtocolModel):
    """WEP frame burst: RC4 + CRC-32 per byte, a fixed price per
    MTU-sized frame.  Neither primitive is TIE-accelerated, so WEP is
    what keeps base cores busy in a heterogeneous farm."""

    name = "wep"
    default_mix_weight = 0.1

    def request_cost(self, request, costs, cache_hit=False):
        size = request.size_bytes
        frames = max(1, math.ceil(size / MTU_BYTES))
        cycles = (size * (costs.rc4_cycles_per_byte
                          + costs.crc32_cycles_per_byte
                          + costs.protocol_cycles_per_byte)
                  + frames * costs.wep_frame_fixed_cycles)
        return RequestCost(cycles=cycles, public_key_cycles=0.0,
                           payload_bytes=size)


# Registration order is the default-mix key order the seeded draws
# walk; ssl/wtls/esp/wep must stay first and in this order for the
# legacy request streams to stay byte-identical.
register_protocol(SslProtocolModel())
register_protocol(WtlsProtocolModel())
register_protocol(EspProtocolModel())
register_protocol(WepProtocolModel())
