"""Security protocol layers the platform targets, as pluggable models.

The paper motivates the platform with *multiple* protocol standards at
different stack layers: "WEP, IPSec, and SSL" (Section 1).  Protocol
*mechanics* live in their own modules (:mod:`repro.ssl`,
:mod:`repro.protocols.wep`, :mod:`repro.protocols.esp`,
:mod:`repro.crypto.kasumi`); what the farm layer consumes is the
:mod:`repro.protocols.registry` seam -- one :class:`ProtocolModel` per
protocol, registered by name:

- :mod:`repro.protocols.builtin` -- the legacy menu (SSL, WTLS, ESP,
  WEP) with the historical cycle arithmetic, registered first so the
  seeded default-mix draws stay byte-identical.
- :mod:`repro.protocols.tls13` -- TLS-1.3-style 1-RTT handshake with
  session-ticket 0-RTT resumption (opt-in, weight 0).
- :mod:`repro.protocols.kasumi_link` -- KASUMI f8/f9 3G link-layer
  protection (opt-in, weight 0).
"""

from repro.protocols.registry import (MTU_BYTES, ProtocolModel,
                                      RequestCost, UnknownProtocolError,
                                      default_mix, get_protocol,
                                      protocol_names, register_protocol,
                                      unregister_protocol)
# Registration order matters: legacy four first, then additions.
from repro.protocols import builtin as _builtin  # noqa: F401
from repro.protocols import tls13 as _tls13  # noqa: F401
from repro.protocols import kasumi_link as _kasumi_link  # noqa: F401
from repro.protocols.tls13 import Tls13ProtocolModel
from repro.protocols.kasumi_link import KasumiLinkProtocolModel
from repro.protocols.wep import WepError, WepPeer
from repro.protocols.esp import EspError, EspSecurityAssociation

__all__ = [
    "EspError", "EspSecurityAssociation", "KasumiLinkProtocolModel",
    "MTU_BYTES", "ProtocolModel", "RequestCost", "Tls13ProtocolModel",
    "UnknownProtocolError", "WepError", "WepPeer", "default_mix",
    "get_protocol", "protocol_names", "register_protocol",
    "unregister_protocol",
]
