"""Additional security protocol layers the platform targets.

The paper motivates the platform with *multiple* protocol standards at
different stack layers: "WEP, IPSec, and SSL" (Section 1).  SSL lives
in :mod:`repro.ssl`; this package adds the other two:

- :mod:`repro.protocols.wep` -- 802.11 WEP frame protection (RC4 +
  CRC-32 ICV), including the keystream-reuse weakness as an executable
  property.
- :mod:`repro.protocols.esp` -- IPSec ESP tunnel processing (CBC
  encryption + HMAC-SHA1-96 authentication + anti-replay window).
"""

from repro.protocols.wep import WepError, WepPeer
from repro.protocols.esp import EspError, EspSecurityAssociation

__all__ = ["WepPeer", "WepError", "EspSecurityAssociation", "EspError"]
