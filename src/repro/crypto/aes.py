"""AES-128/192/256 (FIPS 197), built on the Layer-1 bit operations.

The S-box is *derived* from the GF(2^8) field definition (multiplicative
inverse followed by the affine transform) rather than transcribed, so a
single algebraic error would break the published test vectors loudly.

State is kept column-major as in FIPS 197: ``state[r][c]``.
"""

from typing import List

from repro.crypto import bitops

BLOCK_SIZE = 16  # bytes
_ROUNDS = {16: 10, 24: 12, 32: 14}


def _build_sbox() -> List[int]:
    """Construct the AES S-box from the field inverse + affine transform."""
    # Multiplicative inverses via exponentiation by generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = bitops.gf256_mul(x, 3)
    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[(255 - log[value]) % 255]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        result = 0
        for i in range(8):
            bit = ((inv >> i) ^ (inv >> ((i + 4) % 8)) ^ (inv >> ((i + 5) % 8))
                   ^ (inv >> ((i + 6) % 8)) ^ (inv >> ((i + 7) % 8))
                   ^ (0x63 >> i)) & 1
            result |= bit << i
        sbox[value] = result
    return sbox


SBOX = _build_sbox()
INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class Aes:
    """AES block cipher with 128/192/256-bit keys."""

    block_size = BLOCK_SIZE
    name = "AES"

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS:
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.rounds = _ROUNDS[len(key)]
        self.round_keys = self._expand_key(key)

    # -- key schedule --------------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS 197 key expansion -> (rounds+1) round keys of 16 bytes."""
        nk = len(key) // 4
        words = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [bitops.sbox_lookup(SBOX, b) for b in temp]  # SubWord
                temp[0] ^= RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [bitops.sbox_lookup(SBOX, b) for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        return [sum(words[4 * r: 4 * r + 4], []) for r in range(self.rounds + 1)]

    # -- round transformations (column-major state[r][c]) ---------------------

    @staticmethod
    def _to_state(block: bytes) -> List[List[int]]:
        return [[block[r + 4 * c] for c in range(4)] for r in range(4)]

    @staticmethod
    def _from_state(state: List[List[int]]) -> bytes:
        return bytes(state[r][c] for c in range(4) for r in range(4))

    @staticmethod
    def _add_round_key(state, round_key):
        for r in range(4):
            for c in range(4):
                state[r][c] = bitops.xor_words(state[r][c], round_key[r + 4 * c], 8)

    @staticmethod
    def _sub_bytes(state, box):
        chunks = [state[r][c] for r in range(4) for c in range(4)]
        flat = bitops.sbox_layer([box] * 16, chunks)
        for i in range(16):
            state[i // 4][i % 4] = flat[i]

    @staticmethod
    def _shift_rows(state):
        for r in range(1, 4):
            state[r] = state[r][r:] + state[r][:r]

    @staticmethod
    def _inv_shift_rows(state):
        for r in range(1, 4):
            state[r] = state[r][-r:] + state[r][:-r]

    @staticmethod
    def _mix_columns(state):
        for c in range(4):
            col = [state[r][c] for r in range(4)]
            state[0][c] = (bitops.gf256_mul(col[0], 2) ^ bitops.gf256_mul(col[1], 3)
                           ^ col[2] ^ col[3])
            state[1][c] = (col[0] ^ bitops.gf256_mul(col[1], 2)
                           ^ bitops.gf256_mul(col[2], 3) ^ col[3])
            state[2][c] = (col[0] ^ col[1] ^ bitops.gf256_mul(col[2], 2)
                           ^ bitops.gf256_mul(col[3], 3))
            state[3][c] = (bitops.gf256_mul(col[0], 3) ^ col[1] ^ col[2]
                           ^ bitops.gf256_mul(col[3], 2))

    @staticmethod
    def _inv_mix_columns(state):
        for c in range(4):
            col = [state[r][c] for r in range(4)]
            state[0][c] = (bitops.gf256_mul(col[0], 14) ^ bitops.gf256_mul(col[1], 11)
                           ^ bitops.gf256_mul(col[2], 13) ^ bitops.gf256_mul(col[3], 9))
            state[1][c] = (bitops.gf256_mul(col[0], 9) ^ bitops.gf256_mul(col[1], 14)
                           ^ bitops.gf256_mul(col[2], 11) ^ bitops.gf256_mul(col[3], 13))
            state[2][c] = (bitops.gf256_mul(col[0], 13) ^ bitops.gf256_mul(col[1], 9)
                           ^ bitops.gf256_mul(col[2], 14) ^ bitops.gf256_mul(col[3], 11))
            state[3][c] = (bitops.gf256_mul(col[0], 11) ^ bitops.gf256_mul(col[1], 13)
                           ^ bitops.gf256_mul(col[2], 9) ^ bitops.gf256_mul(col[3], 14))

    # -- block operations ------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._to_state(block)
        self._add_round_key(state, self.round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state, SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self.round_keys[rnd])
        self._sub_bytes(state, SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self.round_keys[self.rounds])
        return self._from_state(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._to_state(block)
        self._add_round_key(state, self.round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, self.round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, self.round_keys[0])
        return self._from_state(state)
