"""HMAC (RFC 2104) over the library's own hash implementations."""

from repro.crypto.bitops import xor_bytes
from repro.crypto.md5 import Md5
from repro.crypto.sha1 import Sha1

_HASHES = {"sha1": Sha1, "md5": Md5}


def hmac(key: bytes, message: bytes, hash_name: str = "sha1") -> bytes:
    """Compute HMAC-<hash>(key, message)."""
    try:
        hash_cls = _HASHES[hash_name]
    except KeyError:
        raise ValueError(f"unknown hash {hash_name!r}; choose from {sorted(_HASHES)}")
    block_size = hash_cls.block_size
    if len(key) > block_size:
        key = hash_cls(key).digest()
    key = key.ljust(block_size, b"\x00")
    ipad = xor_bytes(key, b"\x36" * block_size)
    opad = xor_bytes(key, b"\x5c" * block_size)
    inner = hash_cls(ipad).update(message).digest()
    return hash_cls(opad).update(inner).digest()
