"""Block cipher modes of operation (ECB, CBC) and PKCS#7 padding.

The SSL record layer (:mod:`repro.ssl.record`) and the example
applications drive the block ciphers through these modes, matching the
bulk-data path the paper's prototype demonstrates (real-time video
decryption, SSL record processing).
"""

from typing import Protocol

from repro.crypto.bitops import xor_bytes


class BlockCipher(Protocol):
    """Structural interface every block cipher in the library satisfies."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...
    def decrypt_block(self, block: bytes) -> bytes: ...


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Append PKCS#7 padding up to a whole number of blocks."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in (0, 256)")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len] * pad_len)


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise ValueError("padded data must be a positive multiple of block size")
    pad_len = data[-1]
    if not 0 < pad_len <= block_size or data[-pad_len:] != bytes([pad_len] * pad_len):
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad_len]


def _check_aligned(data: bytes, block_size: int) -> None:
    if len(data) % block_size:
        raise ValueError("data length must be a multiple of the block size")


def ecb_encrypt(cipher: BlockCipher, data: bytes) -> bytes:
    """Electronic codebook encryption of block-aligned data."""
    bs = cipher.block_size
    _check_aligned(data, bs)
    return b"".join(cipher.encrypt_block(data[i: i + bs])
                    for i in range(0, len(data), bs))


def ecb_decrypt(cipher: BlockCipher, data: bytes) -> bytes:
    bs = cipher.block_size
    _check_aligned(data, bs)
    return b"".join(cipher.decrypt_block(data[i: i + bs])
                    for i in range(0, len(data), bs))


def cbc_encrypt(cipher: BlockCipher, iv: bytes, data: bytes) -> bytes:
    """Cipher-block-chaining encryption of block-aligned data."""
    bs = cipher.block_size
    if len(iv) != bs:
        raise ValueError("IV must be one block")
    _check_aligned(data, bs)
    out = []
    prev = iv
    for i in range(0, len(data), bs):
        block = cipher.encrypt_block(xor_bytes(data[i: i + bs], prev))
        out.append(block)
        prev = block
    return b"".join(out)


def cbc_decrypt(cipher: BlockCipher, iv: bytes, data: bytes) -> bytes:
    bs = cipher.block_size
    if len(iv) != bs:
        raise ValueError("IV must be one block")
    _check_aligned(data, bs)
    out = []
    prev = iv
    for i in range(0, len(data), bs):
        block = data[i: i + bs]
        out.append(xor_bytes(cipher.decrypt_block(block), prev))
        prev = block
    return b"".join(out)
