"""MD5 (RFC 1321), used by the SSLv3 handshake model alongside SHA-1."""

import math
import struct

from repro.crypto.bitops import rotl
from repro.mp.hooks import trace

_MASK32 = 0xFFFFFFFF
_S = ([7, 12, 17, 22] * 4) + ([5, 9, 14, 20] * 4) + ([4, 11, 16, 23] * 4) + ([6, 10, 15, 21] * 4)
# Derived constants: K[i] = floor(2^32 * |sin(i+1)|), per RFC 1321.
_K = [int(abs(math.sin(i + 1)) * (1 << 32)) & _MASK32 for i in range(64)]
_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _pad(message_len: int) -> bytes:
    pad = b"\x80" + b"\x00" * ((55 - message_len) % 64)
    return pad + struct.pack("<Q", message_len * 8)


def _compress(state, block):
    trace("md5_compress", n=1)
    m = struct.unpack("<16I", block)
    a, b, c, d = state
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
            g = i
        elif i < 32:
            f = (d & b) | (~d & c)
            g = (5 * i + 1) % 16
        elif i < 48:
            f = b ^ c ^ d
            g = (3 * i + 5) % 16
        else:
            f = c ^ (b | (~d & _MASK32))
            g = (7 * i) % 16
        f = (f + a + _K[i] + m[g]) & _MASK32
        a, d, c = d, c, b
        b = (b + rotl(f, _S[i], 32)) & _MASK32
    return tuple((s + v) & _MASK32 for s, v in zip(state, (a, b, c, d)))


class Md5:
    """Incremental MD5 with the usual update/digest interface."""

    digest_size = 16
    block_size = 64
    name = "md5"

    def __init__(self, data: bytes = b""):
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Md5":
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._state = _compress(self._state, self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        state, buffer = self._state, self._buffer + _pad(self._length)
        for i in range(0, len(buffer), 64):
            state = _compress(state, buffer[i: i + 64])
        return struct.pack("<4I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Md5":
        clone = Md5()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest."""
    return Md5(data).digest()
