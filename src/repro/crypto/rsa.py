"""RSA key generation, encryption, decryption and signatures (Layer 3).

Decryption/signing routes through the configurable
:class:`repro.crypto.modexp.ModExpEngine`, so the whole 450-point
algorithm design space (modmul x window x CRT x radix x caching) is
reachable from real RSA traffic -- exactly the workload the paper's
exploration phase optimizes.

Message padding is PKCS#1 v1.5 style (type-2 random padding for
encryption, type-1 for signatures) -- enough structure to exercise the
byte path; this repository is a performance-methodology reproduction,
not a hardened crypto library.
"""

from dataclasses import dataclass
from typing import Optional

from repro.mp import DeterministicPrng, Mpz
from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.crypto.primes import generate_prime
from repro.crypto.sha1 import sha1


@dataclass
class RsaPublicKey:
    n: Mpz
    e: Mpz

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        return (self.bits + 7) // 8


@dataclass
class RsaPrivateKey:
    n: Mpz
    e: Mpz
    d: Mpz
    p: Mpz
    q: Mpz
    dp: Mpz
    dq: Mpz
    qinv: Mpz

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        return (self.bits + 7) // 8

    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)


@dataclass
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


def generate_rsa_keypair(bits: int, prng: Optional[DeterministicPrng] = None,
                         e: int = 65537) -> RsaKeyPair:
    """Generate an RSA key pair with an n of roughly ``bits`` bits."""
    if bits < 16:
        raise ValueError("modulus must be at least 16 bits")
    if prng is None:
        prng = DeterministicPrng()
    half = bits // 2
    e_mpz = Mpz(e)
    while True:
        p = generate_prime(half, prng)
        q = generate_prime(bits - half, prng)
        if p == q:
            continue
        if p < q:
            p, q = q, p
        phi = (p - 1) * (q - 1)
        if int(phi.gcd(e_mpz)) != 1:
            continue
        n = p * q
        d = e_mpz.invert(phi)
        dp = d % (p - 1)
        dq = d % (q - 1)
        qinv = q.invert(p)
        private = RsaPrivateKey(n=n, e=e_mpz, d=d, p=p, q=q, dp=dp, dq=dq,
                                qinv=qinv)
        return RsaKeyPair(public=private.public(), private=private)


class Rsa:
    """RSA operations under a chosen modular-exponentiation configuration."""

    name = "RSA"

    def __init__(self, config: ModExpConfig = ModExpConfig()):
        self.engine = ModExpEngine(config)

    # -- raw integer ops ---------------------------------------------------

    def encrypt_int(self, m: int, key: RsaPublicKey) -> int:
        if not 0 <= m < int(key.n):
            raise ValueError("message representative out of range")
        return int(self.engine.powm(m, key.e, key.n))

    def decrypt_int(self, c: int, key: RsaPrivateKey) -> int:
        if not 0 <= c < int(key.n):
            raise ValueError("ciphertext representative out of range")
        return int(self.engine.powm_crt(c, key.d, key.p, key.q,
                                        dp=key.dp, dq=key.dq, qinv=key.qinv))

    # -- PKCS#1 v1.5-style byte ops -----------------------------------------

    def max_message_len(self, key: RsaPublicKey) -> int:
        return key.byte_size - 11

    def encrypt(self, message: bytes, key: RsaPublicKey,
                prng: Optional[DeterministicPrng] = None) -> bytes:
        """Type-2 (random nonzero) padded encryption."""
        k = key.byte_size
        if len(message) > k - 11:
            raise ValueError("message too long for modulus")
        if prng is None:
            prng = DeterministicPrng()
        pad_len = k - 3 - len(message)
        padding = bytes(prng.next_range(1, 255) for _ in range(pad_len))
        block = b"\x00\x02" + padding + b"\x00" + message
        c = self.encrypt_int(int.from_bytes(block, "big"), key)
        return c.to_bytes(k, "big")

    def decrypt(self, ciphertext: bytes, key: RsaPrivateKey) -> bytes:
        k = key.byte_size
        if len(ciphertext) != k:
            raise ValueError("ciphertext length must equal the modulus size")
        m = self.decrypt_int(int.from_bytes(ciphertext, "big"), key)
        block = m.to_bytes(k, "big")
        if block[0:2] != b"\x00\x02":
            raise ValueError("decryption error: bad padding header")
        sep = block.find(b"\x00", 2)
        if sep < 10:
            raise ValueError("decryption error: bad padding body")
        return block[sep + 1:]

    def sign(self, message: bytes, key: RsaPrivateKey) -> bytes:
        """Type-1 padded signature over SHA-1(message)."""
        k = key.byte_size
        digest = sha1(message)
        if k < len(digest) + 11:
            raise ValueError("modulus too small for a SHA-1 signature")
        block = b"\x00\x01" + b"\xff" * (k - 3 - len(digest)) + b"\x00" + digest
        s = int(self.engine.powm_crt(int.from_bytes(block, "big"), key.d,
                                     key.p, key.q, dp=key.dp, dq=key.dq,
                                     qinv=key.qinv))
        return s.to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes,
               key: RsaPublicKey) -> bool:
        k = key.byte_size
        if len(signature) != k:
            return False
        s = int.from_bytes(signature, "big")
        if not 0 <= s < int(key.n):
            return False
        m = self.encrypt_int(s, key)
        block = m.to_bytes(k, "big")
        digest = sha1(message)
        expected = b"\x00\x01" + b"\xff" * (k - 3 - len(digest)) + b"\x00" + digest
        return block == expected
