"""SHA-1 (FIPS 180-1), used by the SSL handshake/record MAC model.

Hashing is part of the "miscellaneous" SSL workload component in the
paper's Figure 8 breakdown -- it is *not* accelerated by the selected
custom instructions, which is why large-transaction SSL speedup
saturates well below the raw cipher speedups (Amdahl's law).
"""

import struct

from repro.crypto.bitops import rotl
from repro.mp.hooks import trace

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK32 = 0xFFFFFFFF


def _pad(message_len: int) -> bytes:
    """Merkle-Damgard strengthening: 0x80, zeros, 64-bit bit length."""
    pad = b"\x80" + b"\x00" * ((55 - message_len) % 64)
    return pad + struct.pack(">Q", message_len * 8)


def _compress(state, block):
    trace("sha1_compress", n=1)
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1, 32))
    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f, k = (b & c) | (~b & d), 0x5A827999
        elif t < 40:
            f, k = b ^ c ^ d, 0x6ED9EBA1
        elif t < 60:
            f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
        else:
            f, k = b ^ c ^ d, 0xCA62C1D6
        temp = (rotl(a, 5, 32) + (f & _MASK32) + e + k + w[t]) & _MASK32
        a, b, c, d, e = temp, a, rotl(b, 30, 32), c, d
    return tuple((s + v) & _MASK32 for s, v in zip(state, (a, b, c, d, e)))


class Sha1:
    """Incremental SHA-1 with the usual update/digest interface."""

    digest_size = 20
    block_size = 64
    name = "sha1"

    def __init__(self, data: bytes = b""):
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha1":
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._state = _compress(self._state, self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        state, buffer = self._state, self._buffer + _pad(self._length)
        for i in range(0, len(buffer), 64):
            state = _compress(state, buffer[i: i + 64])
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Sha1":
        clone = Sha1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest."""
    return Sha1(data).digest()
