"""Modular exponentiation design space (Layer 2, public-key path).

Section 4.3 of the paper explores "over 450 candidate algorithms" for
modular exponentiation: five modular multiplication algorithms, five
input block sizes, three Chinese Remainder Theorem implementations, two
radix sizes and three software caching options (5*5*3*2*3 = 450).
:class:`ModExpConfig` captures one point of that space and
:class:`ModExpEngine` executes it.

Dimensions:

- ``modmul``   -- one of :data:`repro.crypto.modmul.MODMUL_ALGORITHMS`.
- ``window``   -- exponent block size in bits (1..5) for left-to-right
  m-ary exponentiation; window=1 is plain binary square-and-multiply.
- ``crt``      -- ``none`` (single exponentiation mod n), ``classic``
  (textbook CRT recombination) or ``garner`` (Garner's algorithm).
- ``radix_bits`` -- 16 or 32-bit limbs for the mpn layer.
- ``caching``  -- ``none`` (rebuild everything per call), ``constants``
  (cache per-modulus precomputation: Montgomery m'/R^2, Barrett mu) or
  ``full`` (also cache the per-base window table, which pays off when
  the base repeats, e.g. fixed generators).
"""

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from repro.mp import Mpz
from repro.mp.limb import RADIX16, RADIX32
from repro.crypto.modmul import ModMul, make_modmul, MODMUL_ALGORITHMS

IntLike = Union[int, Mpz]

WINDOW_SIZES = (1, 2, 3, 4, 5)
CRT_VARIANTS = ("none", "classic", "garner")
RADIX_CHOICES = (16, 32)
CACHING_OPTIONS = ("none", "constants", "full")
#: "fixed" m-ary windows are the paper's exploration dimension;
#: "sliding" windows are the refinement-loop extension (Section 3.1's
#: "additional candidate algorithms") -- same table size but windows
#: align to set bits, skipping runs of zeros and halving the table to
#: odd powers.
STRATEGIES = ("fixed", "sliding")


@dataclass(frozen=True)
class ModExpConfig:
    """One point in the 450-candidate modular exponentiation space."""

    modmul: str = "montgomery"
    window: int = 4
    crt: str = "garner"
    radix_bits: int = 32
    caching: str = "constants"
    strategy: str = "fixed"

    def __post_init__(self):
        if self.modmul not in MODMUL_ALGORITHMS:
            raise ValueError(f"unknown modmul {self.modmul!r}")
        if self.window not in WINDOW_SIZES:
            raise ValueError(f"window must be one of {WINDOW_SIZES}")
        if self.crt not in CRT_VARIANTS:
            raise ValueError(f"crt must be one of {CRT_VARIANTS}")
        if self.radix_bits not in RADIX_CHOICES:
            raise ValueError(f"radix_bits must be one of {RADIX_CHOICES}")
        if self.caching not in CACHING_OPTIONS:
            raise ValueError(f"caching must be one of {CACHING_OPTIONS}")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}")

    @property
    def radix(self):
        return RADIX32 if self.radix_bits == 32 else RADIX16

    def label(self) -> str:
        return (f"{self.modmul}/w{self.window}/crt-{self.crt}"
                f"/r{self.radix_bits}/cache-{self.caching}")


def iter_configs() -> Iterator[ModExpConfig]:
    """Enumerate the full 450-point configuration space."""
    for modmul, window, crt, radix_bits, caching in itertools.product(
            sorted(MODMUL_ALGORITHMS), WINDOW_SIZES, CRT_VARIANTS,
            RADIX_CHOICES, CACHING_OPTIONS):
        yield ModExpConfig(modmul=modmul, window=window, crt=crt,
                           radix_bits=radix_bits, caching=caching)


def config_space_size() -> int:
    return (len(MODMUL_ALGORITHMS) * len(WINDOW_SIZES) * len(CRT_VARIANTS)
            * len(RADIX_CHOICES) * len(CACHING_OPTIONS))


class ModExpEngine:
    """Executes modular exponentiation under a :class:`ModExpConfig`."""

    def __init__(self, config: ModExpConfig = ModExpConfig()):
        self.config = config
        self._modmul_cache: Dict[int, ModMul] = {}
        self._table_cache: Dict[Tuple[int, int], List[Mpz]] = {}

    # -- caches ----------------------------------------------------------------

    def _get_modmul(self, modulus: Mpz) -> ModMul:
        if self.config.caching == "none":
            return make_modmul(self.config.modmul, modulus)
        key = int(modulus)
        engine = self._modmul_cache.get(key)
        if engine is None:
            engine = make_modmul(self.config.modmul, modulus)
            self._modmul_cache[key] = engine
        return engine

    def effective_window(self, ebits: int) -> int:
        """Window size actually used for an ``ebits``-bit exponent.

        The configured window is an upper bound; a tuned library never
        pays for a 31-entry table to raise to a 17-bit exponent.  Picks
        the w <= config.window minimizing table-build multiplies plus
        expected window multiplies.
        """
        def cost(w: int) -> float:
            table_mults = max(0, (1 << w) - 2)
            window_mults = (ebits / w) * (1 - 2.0 ** -w)
            return table_mults + window_mults

        return min(range(1, self.config.window + 1), key=cost)

    def _window_table(self, mm: ModMul, base_res: Mpz, base_int: int,
                      modulus_int: int, window: int) -> List[Mpz]:
        """Residues of base^0 .. base^(2^window - 1)."""
        if self.config.caching == "full":
            key = (base_int, modulus_int, window)
            cached = self._table_cache.get(key)
            if cached is not None:
                return cached
        size = 1 << window
        table = [mm.one(), base_res]
        for _ in range(2, size):
            table.append(mm.mul(table[-1], base_res))
        if self.config.caching == "full":
            self._table_cache[(base_int, modulus_int, window)] = table
        return table

    # -- exponentiation ----------------------------------------------------------

    def powm(self, base: IntLike, exponent: IntLike, modulus: IntLike) -> Mpz:
        """base ** exponent mod modulus with the configured algorithms."""
        radix = self.config.radix
        modulus = Mpz(int(modulus), radix)
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if modulus == 1:
            return Mpz(0, radix)
        base = Mpz(int(base) % int(modulus), radix)
        exponent = Mpz(int(exponent), radix)
        if exponent < 0:
            base = base.invert(modulus)
            exponent = -exponent
        if exponent.is_zero():
            return Mpz(1, radix)

        mm = self._get_modmul(modulus)
        base_res = mm.to_residue(base)
        ebits = exponent.bit_length()
        w = self.effective_window(ebits)
        if self.config.strategy == "sliding":
            result = self._powm_sliding(mm, base_res, exponent, ebits, w)
        else:
            result = self._powm_fixed(mm, base_res, int(base),
                                      int(modulus), exponent, ebits, w)
        return mm.from_residue(result)

    def _powm_fixed(self, mm: ModMul, base_res: Mpz, base_int: int,
                    modulus_int: int, exponent: Mpz, ebits: int,
                    w: int) -> Mpz:
        """Left-to-right fixed (m-ary) windows, MSB-aligned."""
        table = self._window_table(mm, base_res, base_int, modulus_int, w)
        nwindows = (ebits + w - 1) // w
        result = None
        for widx in range(nwindows - 1, -1, -1):
            digit = 0
            for b in range(w - 1, -1, -1):
                digit = (digit << 1) | exponent.test_bit(widx * w + b)
            if result is None:
                result = table[digit] if digit else mm.one()
                continue
            for _ in range(w):
                result = mm.sqr(result)
            if digit:
                result = mm.mul(result, table[digit])
        return result

    def _powm_sliding(self, mm: ModMul, base_res: Mpz, exponent: Mpz,
                      ebits: int, w: int) -> Mpz:
        """Left-to-right sliding windows over odd digits.

        Only the odd powers base^1, base^3, ..., base^(2^w - 1) are
        tabled (half the fixed-window table), and runs of zero bits
        cost squarings only -- fewer multiplies at equal window size.
        """
        base_sq = mm.sqr(base_res)
        odd_table = [base_res]  # odd_table[i] = base^(2i+1)
        for _ in range(1, 1 << (w - 1)):
            odd_table.append(mm.mul(odd_table[-1], base_sq))
        result = mm.one()
        i = ebits - 1
        while i >= 0:
            if not exponent.test_bit(i):
                result = mm.sqr(result)
                i -= 1
                continue
            # Longest window [j .. i] of <= w bits whose low bit is set.
            j = max(0, i - w + 1)
            while not exponent.test_bit(j):
                j += 1
            digit = 0
            for b in range(i, j - 1, -1):
                digit = (digit << 1) | exponent.test_bit(b)
            for _ in range(i - j + 1):
                result = mm.sqr(result)
            result = mm.mul(result, odd_table[digit >> 1])
            i = j - 1
        return result

    # -- CRT ---------------------------------------------------------------------

    def powm_crt(self, base: IntLike, d: IntLike, p: IntLike, q: IntLike,
                 dp: IntLike = None, dq: IntLike = None,
                 qinv: IntLike = None) -> Mpz:
        """base ** d mod (p*q) using the configured CRT variant.

        ``dp = d mod p-1``, ``dq = d mod q-1`` and ``qinv = q^-1 mod p``
        are derived if not supplied (a real key stores them).
        """
        radix = self.config.radix
        p_i, q_i, d_i = int(p), int(q), int(d)
        n = Mpz(p_i * q_i, radix)
        if self.config.crt == "none":
            return self.powm(base, d, n)

        dp_i = int(dp) if dp is not None else d_i % (p_i - 1)
        dq_i = int(dq) if dq is not None else d_i % (q_i - 1)
        m1 = int(self.powm(base, dp_i, p_i))
        m2 = int(self.powm(base, dq_i, q_i))

        if self.config.crt == "classic":
            # m = (m1 * q * (q^-1 mod p) + m2 * p * (p^-1 mod q)) mod n
            qinv_p = int(Mpz(q_i, radix).invert(Mpz(p_i, radix)))
            pinv_q = int(Mpz(p_i, radix).invert(Mpz(q_i, radix)))
            term1 = Mpz(m1, radix) * Mpz(q_i, radix) * Mpz(qinv_p, radix)
            term2 = Mpz(m2, radix) * Mpz(p_i, radix) * Mpz(pinv_q, radix)
            return (term1 + term2) % n

        # Garner: h = qinv * (m1 - m2) mod p; m = m2 + h*q
        qinv_i = int(qinv) if qinv is not None else int(
            Mpz(q_i, radix).invert(Mpz(p_i, radix)))
        h = (Mpz(qinv_i, radix) * (Mpz(m1, radix) - Mpz(m2, radix))) % Mpz(p_i, radix)
        return Mpz(m2, radix) + h * Mpz(q_i, radix)
