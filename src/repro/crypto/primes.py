"""Primality testing and prime generation (Layer 2 complex operations).

The paper's complex-operations layer includes "prime number generation,
Miller-Rabin primality testing" as the building blocks under RSA key
generation.  Everything here runs on :class:`repro.mp.Mpz`, so the
limb-level leaf routines see the real workload during characterization.
"""

from typing import Optional

from repro.mp import DeterministicPrng, Mpz

#: Trial-division screen applied before Miller-Rabin.
SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def is_probable_prime(n: Mpz, prng: Optional[DeterministicPrng] = None,
                      rounds: int = 16) -> bool:
    """Miller-Rabin probabilistic primality test.

    Witnesses are drawn from ``prng`` (a fresh deterministic stream if
    not supplied), after a small-prime trial-division screen.
    """
    n = Mpz(n) if not isinstance(n, Mpz) else n
    if n < 2:
        return False
    n_int = int(n)
    for p in SMALL_PRIMES:
        if n_int == p:
            return True
        if n_int % p == 0:
            return False
    if prng is None:
        prng = DeterministicPrng(n_int & ((1 << 64) - 1) | 1)

    # Write n-1 = 2^s * d with d odd.
    d = n - 1
    s = 0
    while d.is_even():
        d = d >> 1
        s += 1

    n_minus_1 = n - 1
    for _ in range(rounds):
        a = Mpz(prng.next_range(2, n_int - 2), n.radix)
        x = a.pow_mod(d, n)
        if x == 1 or x == n_minus_1:
            continue
        for _ in range(s - 1):
            x = x.pow_mod(2, n)
            if x == n_minus_1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, prng: DeterministicPrng,
                   rounds: int = 16) -> Mpz:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 4:
        raise ValueError("need at least 4 bits")
    while True:
        candidate = Mpz(prng.next_odd_bits(bits))
        if is_probable_prime(candidate, prng, rounds):
            return candidate


def generate_safe_prime(bits: int, prng: DeterministicPrng,
                        rounds: int = 12) -> Mpz:
    """Generate a safe prime p = 2q + 1 (q also prime).

    Used by ElGamal key generation so that the multiplicative group has
    a large prime-order subgroup.  Safe-prime search is slow; keep
    ``bits`` modest in tests.
    """
    if bits < 5:
        raise ValueError("need at least 5 bits")
    while True:
        q = generate_prime(bits - 1, prng, rounds)
        p = q * 2 + 1
        if p.bit_length() == bits and is_probable_prime(p, prng, rounds):
            return p
