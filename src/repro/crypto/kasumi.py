"""KASUMI block cipher (3GPP TS 35.202), the UMTS f8/f9 primitive.

The 3G successor to the paper's protocol menu: a 64-bit-block,
128-bit-key, 8-round Feistel cipher built from 16-bit FL/FO round
functions and two S-boxes (S7, S9).  The S-boxes are *generated* from
the specification's combinational logic equations rather than
transcribed as tables -- the generator doubles as a self-check, since
each must come out a permutation of its domain.

The pure-Python class here is the reference model; the XT32 assembly
kernel in :mod:`repro.isa.kernels.kasumi_kernels` is validated against
it block for block, and the registered ``kasumi`` link-layer protocol
model (:mod:`repro.protocols.kasumi_link`) prices traffic with the
kernel's measured cycles/byte.
"""

from typing import List, Tuple

BLOCK_SIZE = 8   # bytes
KEY_SIZE = 16    # bytes

#: Key-schedule constants C1..C8 (TS 35.202 clause 2.4).
_C = (0x0123, 0x4567, 0x89AB, 0xCDEF, 0xFEDC, 0xBA98, 0x7654, 0x3210)


def _build_s7() -> Tuple[int, ...]:
    """S7 from the spec's GF(2) logic equations (bit i of y from bits
    of x, LSB-first)."""
    table = []
    for v in range(128):
        x = [(v >> i) & 1 for i in range(7)]
        y = [0] * 7
        y[0] = ((x[1] & x[3]) ^ x[4] ^ (x[0] & x[1] & x[4]) ^ x[5]
                ^ (x[2] & x[5]) ^ (x[3] & x[4] & x[5]) ^ x[6]
                ^ (x[0] & x[6]) ^ (x[1] & x[6]) ^ (x[3] & x[6])
                ^ (x[2] & x[4] & x[6]) ^ (x[1] & x[5] & x[6])
                ^ (x[4] & x[5] & x[6]))
        y[1] = ((x[0] & x[1]) ^ (x[0] & x[4]) ^ (x[2] & x[4]) ^ x[5]
                ^ (x[1] & x[2] & x[5]) ^ (x[0] & x[3] & x[5]) ^ x[6]
                ^ (x[0] & x[2] & x[6]) ^ (x[3] & x[6])
                ^ (x[4] & x[5] & x[6]) ^ 1)
        y[2] = (x[0] ^ (x[0] & x[3]) ^ (x[2] & x[3])
                ^ (x[1] & x[2] & x[4]) ^ (x[0] & x[3] & x[4])
                ^ (x[1] & x[5]) ^ (x[0] & x[2] & x[5]) ^ (x[0] & x[6])
                ^ (x[0] & x[1] & x[6]) ^ (x[2] & x[6]) ^ (x[4] & x[6])
                ^ 1)
        y[3] = (x[1] ^ (x[0] & x[1] & x[2]) ^ (x[1] & x[4])
                ^ (x[3] & x[4]) ^ (x[0] & x[5]) ^ (x[0] & x[1] & x[5])
                ^ (x[2] & x[3] & x[5]) ^ (x[1] & x[4] & x[5])
                ^ (x[2] & x[6]) ^ (x[1] & x[3] & x[6]))
        y[4] = ((x[0] & x[2]) ^ x[3] ^ (x[1] & x[3]) ^ (x[1] & x[4])
                ^ (x[0] & x[1] & x[4]) ^ (x[2] & x[3] & x[4])
                ^ (x[0] & x[5]) ^ (x[1] & x[3] & x[5])
                ^ (x[0] & x[4] & x[5]) ^ (x[1] & x[6]) ^ (x[3] & x[6])
                ^ (x[0] & x[3] & x[6]) ^ (x[5] & x[6]) ^ 1)
        y[5] = (x[2] ^ (x[0] & x[2]) ^ (x[0] & x[3])
                ^ (x[1] & x[2] & x[3]) ^ (x[0] & x[2] & x[4])
                ^ (x[0] & x[5]) ^ (x[2] & x[5]) ^ (x[4] & x[5])
                ^ (x[1] & x[6]) ^ (x[1] & x[2] & x[6])
                ^ (x[0] & x[3] & x[6]) ^ (x[3] & x[4] & x[6])
                ^ (x[2] & x[5] & x[6]) ^ 1)
        y[6] = ((x[1] & x[2]) ^ (x[0] & x[1] & x[3]) ^ (x[0] & x[4])
                ^ (x[1] & x[5]) ^ (x[3] & x[5]) ^ x[6]
                ^ (x[0] & x[1] & x[6]) ^ (x[2] & x[3] & x[6])
                ^ (x[1] & x[4] & x[6]) ^ (x[0] & x[5] & x[6]))
        table.append(sum(b << i for i, b in enumerate(y)))
    if sorted(table) != list(range(128)):
        raise AssertionError("S7 generator is not a permutation")
    return tuple(table)


def _build_s9() -> Tuple[int, ...]:
    """S9 from the spec's GF(2) logic equations."""
    table = []
    for v in range(512):
        x = [(v >> i) & 1 for i in range(9)]
        y = [0] * 9
        y[0] = ((x[0] & x[2]) ^ x[3] ^ (x[2] & x[5]) ^ (x[5] & x[6])
                ^ (x[0] & x[7]) ^ (x[1] & x[7]) ^ (x[2] & x[7])
                ^ (x[4] & x[8]) ^ (x[5] & x[8]) ^ (x[7] & x[8]) ^ 1)
        y[1] = (x[1] ^ (x[0] & x[1]) ^ (x[2] & x[3]) ^ (x[0] & x[4])
                ^ (x[1] & x[4]) ^ (x[0] & x[5]) ^ (x[3] & x[5]) ^ x[6]
                ^ (x[1] & x[7]) ^ (x[2] & x[7]) ^ (x[5] & x[8]) ^ 1)
        y[2] = (x[1] ^ (x[0] & x[3]) ^ (x[3] & x[4]) ^ (x[0] & x[5])
                ^ (x[2] & x[6]) ^ (x[3] & x[6]) ^ (x[5] & x[6])
                ^ (x[4] & x[7]) ^ (x[5] & x[7]) ^ (x[6] & x[7]) ^ x[8]
                ^ (x[0] & x[8]) ^ 1)
        y[3] = (x[0] ^ (x[1] & x[2]) ^ (x[0] & x[3]) ^ (x[2] & x[4])
                ^ x[5] ^ (x[0] & x[6]) ^ (x[1] & x[6]) ^ (x[4] & x[7])
                ^ (x[0] & x[8]) ^ (x[1] & x[8]) ^ (x[7] & x[8]))
        y[4] = ((x[0] & x[1]) ^ (x[1] & x[3]) ^ x[4] ^ (x[0] & x[5])
                ^ (x[3] & x[6]) ^ (x[0] & x[7]) ^ (x[6] & x[7])
                ^ (x[1] & x[8]) ^ (x[2] & x[8]) ^ (x[3] & x[8]))
        y[5] = (x[2] ^ (x[1] & x[4]) ^ (x[4] & x[5]) ^ (x[0] & x[6])
                ^ (x[1] & x[6]) ^ (x[3] & x[7]) ^ (x[4] & x[7])
                ^ (x[6] & x[7]) ^ (x[5] & x[8]) ^ (x[6] & x[8])
                ^ (x[7] & x[8]) ^ 1)
        y[6] = (x[0] ^ (x[2] & x[3]) ^ (x[1] & x[5]) ^ (x[2] & x[5])
                ^ (x[4] & x[5]) ^ (x[3] & x[6]) ^ (x[4] & x[6])
                ^ (x[5] & x[6]) ^ x[7] ^ (x[1] & x[8]) ^ (x[3] & x[8])
                ^ (x[5] & x[8]) ^ (x[7] & x[8]))
        y[7] = ((x[0] & x[1]) ^ (x[0] & x[2]) ^ (x[1] & x[2]) ^ x[3]
                ^ (x[0] & x[3]) ^ (x[2] & x[3]) ^ (x[4] & x[5])
                ^ (x[2] & x[6]) ^ (x[3] & x[6]) ^ (x[2] & x[7])
                ^ (x[5] & x[7]) ^ x[8] ^ 1)
        y[8] = ((x[0] & x[1]) ^ x[2] ^ (x[1] & x[2]) ^ (x[3] & x[4])
                ^ (x[1] & x[5]) ^ (x[2] & x[5]) ^ (x[1] & x[6])
                ^ (x[4] & x[6]) ^ x[7] ^ (x[2] & x[8]) ^ (x[3] & x[8]))
        table.append(sum(b << i for i, b in enumerate(y)))
    if sorted(table) != list(range(512)):
        raise AssertionError("S9 generator is not a permutation")
    return tuple(table)


S7 = _build_s7()
S9 = _build_s9()


def _rol16(value: int, bits: int) -> int:
    return ((value << bits) | (value >> (16 - bits))) & 0xFFFF


class Kasumi:
    """KASUMI with the standard 8-round encrypt/decrypt schedule."""

    block_size = BLOCK_SIZE

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError("KASUMI key must be 16 bytes")
        self._subkeys = self.key_schedule(key)

    # -- key schedule (TS 35.202 clause 2.4) ------------------------------

    @staticmethod
    def key_schedule(key: bytes) -> List[dict]:
        """Per-round subkeys, one dict per round ``n`` in 0..7."""
        k = [(key[2 * n] << 8) | key[2 * n + 1] for n in range(8)]
        kprime = [k[n] ^ _C[n] for n in range(8)]
        rounds = []
        for n in range(8):
            rounds.append({
                "KL1": _rol16(k[n], 1),
                "KL2": kprime[(n + 2) & 7],
                "KO1": _rol16(k[(n + 1) & 7], 5),
                "KO2": _rol16(k[(n + 5) & 7], 8),
                "KO3": _rol16(k[(n + 6) & 7], 13),
                "KI1": kprime[(n + 4) & 7],
                "KI2": kprime[(n + 3) & 7],
                "KI3": kprime[(n + 7) & 7],
            })
        return rounds

    # -- round functions ---------------------------------------------------

    @staticmethod
    def _fi(value: int, subkey: int) -> int:
        """The 16-bit FI keyed permutation (two S9/S7 stages)."""
        nine = value >> 7
        seven = value & 0x7F
        nine = S9[nine] ^ seven
        seven = S7[seven] ^ (nine & 0x7F)
        seven ^= subkey >> 9
        nine ^= subkey & 0x1FF
        nine = S9[nine] ^ seven
        seven = S7[seven] ^ (nine & 0x7F)
        return (seven << 9) | nine

    @classmethod
    def _fo(cls, value: int, keys: dict) -> int:
        """The 32-bit FO function: a 3-round 16-bit Feistel of FI."""
        left = value >> 16
        right = value & 0xFFFF
        left = cls._fi(left ^ keys["KO1"], keys["KI1"]) ^ right
        right = cls._fi(right ^ keys["KO2"], keys["KI2"]) ^ left
        left = cls._fi(left ^ keys["KO3"], keys["KI3"]) ^ right
        return (right << 16) | left

    @staticmethod
    def _fl(value: int, keys: dict) -> int:
        """The 32-bit FL mixing function (AND/OR with one-bit rotates)."""
        left = value >> 16
        right = value & 0xFFFF
        right ^= _rol16(left & keys["KL1"], 1)
        left ^= _rol16(right | keys["KL2"], 1)
        return (left << 16) | right

    # -- block operations --------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("KASUMI block must be 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        for n in range(0, 8, 2):
            # Odd round (1-based): FL then FO into the right half.
            right ^= self._fo(self._fl(left, self._subkeys[n]),
                              self._subkeys[n])
            # Even round: FO then FL into the left half.
            left ^= self._fl(self._fo(right, self._subkeys[n + 1]),
                             self._subkeys[n + 1])
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("KASUMI block must be 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        for n in range(6, -1, -2):
            left ^= self._fl(self._fo(right, self._subkeys[n + 1]),
                             self._subkeys[n + 1])
            right ^= self._fo(self._fl(left, self._subkeys[n]),
                              self._subkeys[n])
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")
