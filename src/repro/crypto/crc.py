"""CRC-32 (IEEE 802.3), used as the WEP integrity check value.

Table-driven implementation built from the reflected polynomial at
import time; validated against ``binascii.crc32`` in the tests.
"""

from typing import List

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 of ``data``, continuing from ``value`` (0 to start)."""
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
