"""Bit-level basic operations (Layer 1 for the private-key algorithms).

The paper's layered software architecture decomposes private-key
ciphers into "bit-level operations" -- permutations, S-box lookups,
word XORs, rotates.  On the base processor these are expensive
sequences of shifts/masks; they are the prime candidates for custom
instructions (cf. the bit-permutation instruction literature the paper
cites [38, 39]).

Each routine reports its invocation through the tracing hook so the
macro-modeling layer can charge estimated cycles during native runs.
"""

from typing import List, Sequence

from repro.mp.hooks import trace


def bit_permute(value: int, table: Sequence[int], in_width: int) -> int:
    """General bit permutation/selection.

    ``table`` lists, for each *output* bit (MSB first), the 1-indexed
    position of the *input* bit to take (MSB of the input is position
    1) -- the convention used by the FIPS 46-3 tables.  The output has
    ``len(table)`` bits.
    """
    trace("bit_permute", n=len(table))
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (in_width - pos)) & 1)
    return out


def sbox_lookup(sbox: Sequence[int], index: int) -> int:
    """Single S-box table lookup."""
    trace("sbox_lookup", n=1)
    return sbox[index]


def sbox_layer(sboxes: Sequence[Sequence[int]], chunks: Sequence[int]) -> List[int]:
    """Apply one S-box per input chunk (the full substitution layer)."""
    trace("sbox_layer", n=len(sboxes))
    return [sbox[idx] for sbox, idx in zip(sboxes, chunks)]


def xor_words(a: int, b: int, width: int) -> int:
    """XOR of two ``width``-bit words."""
    trace("xor_words", n=(width + 31) // 32)
    return (a ^ b) & ((1 << width) - 1)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR of two equal-length byte strings (CBC chaining, HMAC pads)."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal lengths")
    trace("xor_bytes", n=len(a))
    return bytes(x ^ y for x, y in zip(a, b))


def rotl(value: int, count: int, width: int) -> int:
    """Rotate a ``width``-bit word left by ``count``."""
    trace("rotl", n=1)
    count %= width
    mask = (1 << width) - 1
    return ((value << count) | (value >> (width - count))) & mask


def rotr(value: int, count: int, width: int) -> int:
    """Rotate a ``width``-bit word right by ``count``."""
    trace("rotr", n=1)
    count %= width
    mask = (1 << width) - 1
    return ((value >> count) | (value << (width - count))) & mask


def gf256_mul(a: int, b: int, poly: int = 0x11B) -> int:
    """Multiplication in GF(2^8) modulo ``poly`` (AES MixColumns)."""
    trace("gf256_mul", n=1)
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= poly
    return result & 0xFF


def bytes_to_words(data: bytes, word_bytes: int = 4) -> List[int]:
    """Big-endian byte string -> list of words."""
    if len(data) % word_bytes:
        raise ValueError("data length must be a multiple of the word size")
    return [int.from_bytes(data[i: i + word_bytes], "big")
            for i in range(0, len(data), word_bytes)]


def words_to_bytes(words: Sequence[int], word_bytes: int = 4) -> bytes:
    """List of words -> big-endian byte string."""
    return b"".join(w.to_bytes(word_bytes, "big") for w in words)
