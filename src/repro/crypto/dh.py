"""Diffie-Hellman key agreement (Layer 3, over the modexp engine).

Rounds out the public-key primitive set: the platform's target
protocols (IPSec/IKE, TLS DHE suites) negotiate keys with DH, whose
workload is two modular exponentiations with a *fixed base* -- the
case the exploration space's ``caching="full"`` (window-table reuse)
option exists for.
"""

from dataclasses import dataclass
from typing import Optional

from repro.mp import DeterministicPrng, Mpz
from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.crypto.primes import generate_safe_prime, is_probable_prime


@dataclass(frozen=True)
class DhGroup:
    """A Diffie-Hellman group (safe prime p, generator g)."""

    p: Mpz
    g: Mpz

    @property
    def bits(self) -> int:
        return self.p.bit_length()


#: RFC 2409 Oakley Group 1 (768-bit MODP group), generator 2.
OAKLEY_GROUP1 = DhGroup(
    p=Mpz(int(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
        16)),
    g=Mpz(2))


def generate_group(bits: int,
                   prng: Optional[DeterministicPrng] = None) -> DhGroup:
    """Generate a fresh safe-prime DH group (slow for large bits)."""
    prng = prng or DeterministicPrng(0xD1F)
    p = generate_safe_prime(bits, prng)
    return DhGroup(p=p, g=Mpz(2))


class DiffieHellman:
    """One party's DH state under a chosen modexp configuration."""

    def __init__(self, group: DhGroup,
                 config: ModExpConfig = ModExpConfig(caching="full"),
                 prng: Optional[DeterministicPrng] = None):
        if group.p.is_even() or group.p < 5:
            raise ValueError("DH modulus must be an odd prime")
        self.group = group
        self.engine = ModExpEngine(config)
        self._prng = prng or DeterministicPrng(0xD4E)
        self.private = Mpz(self._prng.next_range(2, int(group.p) - 2))
        self.public = self.engine.powm(group.g, self.private, group.p)

    def shared_secret(self, peer_public: Mpz) -> Mpz:
        """Compute the shared secret from the peer's public value."""
        peer = Mpz(int(peer_public))
        if not 1 < int(peer) < int(self.group.p) - 1:
            raise ValueError("peer public value out of range")
        return self.engine.powm(peer, self.private, self.group.p)


def validate_group(group: DhGroup, rounds: int = 8) -> bool:
    """Check that p is a safe prime and g has order q or 2q.

    For a safe prime p = 2q+1, every element other than {1, p-1} has
    order q or 2q; g = 2 typically generates the prime-order-q subgroup
    (g^q == 1), which is exactly what DH wants.
    """
    p = group.p
    if not is_probable_prime(p, rounds=rounds):
        return False
    q = (p - 1) >> 1
    if not is_probable_prime(q, rounds=rounds):
        return False
    g = group.g
    if int(g.pow_mod(2, p)) == 1:   # order 1 or 2: insecure
        return False
    gq = int(g.pow_mod(q, p))
    return gq == 1 or gq == int(p) - 1
