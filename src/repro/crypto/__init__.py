"""Layered cryptographic software library (paper Section 2.2).

The library mirrors the paper's three-layer architecture:

- **Layer 3 -- security primitive API** (:mod:`repro.crypto.api`):
  key generation, encryption, decryption, signing for named algorithms
  (DES, 3DES, AES, RSA, ElGamal, ...).  Security protocols (the SSL
  model in :mod:`repro.ssl`) port against this interface.
- **Layer 2 -- complex operations** (:mod:`repro.crypto.modexp`,
  :mod:`repro.crypto.modmul`, :mod:`repro.crypto.primes`): modular
  exponentiation, modular multiplication algorithm variants, Miller-
  Rabin primality testing and prime generation.
- **Layer 1 -- basic operations** (:mod:`repro.crypto.bitops` and the
  :mod:`repro.mp.mpn` limb routines): bit-level operations used by the
  private-key algorithms, and multi-precision operations used by the
  public-key algorithms.  These are the leaf routines that the
  methodology characterizes and accelerates.

All ciphers are from-scratch implementations validated against
published test vectors; nothing here should be used to protect real
data (no constant-time guarantees, deterministic stimulus PRNG).
"""

from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto.kasumi import Kasumi
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.crypto.elgamal import ElGamalKeyPair, generate_elgamal_keypair
from repro.crypto.api import (SecurityApi, UnknownAlgorithmError,
                              register_algorithm, registered_algorithms)

__all__ = [
    "Aes", "Des", "Kasumi", "TripleDes",
    "RsaKeyPair", "RsaPrivateKey", "RsaPublicKey", "generate_rsa_keypair",
    "ElGamalKeyPair", "generate_elgamal_keypair",
    "SecurityApi", "UnknownAlgorithmError", "register_algorithm",
    "registered_algorithms",
]
