"""ElGamal encryption over a safe-prime group (Layer 3).

The paper lists ElGamal among the public-key operations the platform
supports.  A fixed generator with a cached window table is the workload
where the ``caching="full"`` option of the exploration space pays off.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mp import DeterministicPrng, Mpz
from repro.crypto.modexp import ModExpConfig, ModExpEngine
from repro.crypto.primes import generate_safe_prime


@dataclass
class ElGamalPublicKey:
    p: Mpz  # safe prime
    g: Mpz  # generator
    y: Mpz  # g^x mod p

    @property
    def bits(self) -> int:
        return self.p.bit_length()


@dataclass
class ElGamalPrivateKey:
    p: Mpz
    g: Mpz
    x: Mpz

    def public(self, engine: Optional[ModExpEngine] = None) -> ElGamalPublicKey:
        engine = engine or ModExpEngine()
        return ElGamalPublicKey(self.p, self.g, engine.powm(self.g, self.x, self.p))


@dataclass
class ElGamalKeyPair:
    public: ElGamalPublicKey
    private: ElGamalPrivateKey


def _find_generator(p: Mpz, prng: DeterministicPrng) -> Mpz:
    """Find a generator of the full group mod a safe prime p = 2q+1.

    g generates iff g^2 != 1 and g^q != 1 (mod p).
    """
    q = (p - 1) >> 1
    p_int = int(p)
    while True:
        g = Mpz(prng.next_range(2, p_int - 2))
        if g.pow_mod(2, p) != 1 and g.pow_mod(q, p) != 1:
            return g


def generate_elgamal_keypair(bits: int,
                             prng: Optional[DeterministicPrng] = None,
                             config: ModExpConfig = ModExpConfig()
                             ) -> ElGamalKeyPair:
    """Generate an ElGamal key pair over a fresh safe-prime group."""
    if prng is None:
        prng = DeterministicPrng()
    engine = ModExpEngine(config)
    p = generate_safe_prime(bits, prng)
    g = _find_generator(p, prng)
    x = Mpz(prng.next_range(2, int(p) - 2))
    private = ElGamalPrivateKey(p=p, g=g, x=x)
    return ElGamalKeyPair(public=private.public(engine), private=private)


class ElGamal:
    """ElGamal operations under a chosen exponentiation configuration."""

    name = "ElGamal"

    def __init__(self, config: ModExpConfig = ModExpConfig()):
        self.engine = ModExpEngine(config)

    def encrypt_int(self, m: int, key: ElGamalPublicKey,
                    prng: Optional[DeterministicPrng] = None
                    ) -> Tuple[int, int]:
        if not 0 < m < int(key.p):
            raise ValueError("message representative out of range")
        if prng is None:
            prng = DeterministicPrng()
        k = prng.next_range(2, int(key.p) - 2)
        c1 = self.engine.powm(key.g, k, key.p)
        shared = self.engine.powm(key.y, k, key.p)
        c2 = (Mpz(m) * shared) % key.p
        return int(c1), int(c2)

    def decrypt_int(self, ciphertext: Tuple[int, int],
                    key: ElGamalPrivateKey) -> int:
        c1, c2 = ciphertext
        shared = self.engine.powm(c1, key.x, key.p)
        inv = shared.invert(key.p)
        return int((Mpz(c2) * inv) % key.p)
