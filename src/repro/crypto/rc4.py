"""RC4 stream cipher (the WEP/SSL RC4 cipher suite option).

Included because the paper's platform targets WEP alongside IPSec/SSL;
the SSL model can select it as the bulk cipher for stream suites.
"""


class Rc4:
    """RC4 keystream generator; encryption and decryption are identical."""

    name = "RC4"

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be 1..256 bytes")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, n: int) -> bytes:
        """Generate the next ``n`` keystream bytes."""
        state, i, j = self._state, self._i, self._j
        out = bytearray()
        for _ in range(n):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out.append(state[(state[i] + state[j]) & 0xFF])
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (works for both directions)."""
        ks = self.keystream(len(data))
        return bytes(d ^ k for d, k in zip(data, ks))
