"""Layer 3: the generic security-primitive API.

Paper Section 2.2: "At the top level, the SW architecture provides a
generic interface (API) using which security protocols and applications
can be ported to our platform.  This API consists of security
primitives such as key generation, encryption, or decryption of a block
of data using a specific public- or private-key cryptographic
algorithm."

:class:`SecurityApi` is that interface.  The SSL model
(:mod:`repro.ssl`), the examples and the benchmark harness all go
through it, so the underlying algorithm configuration (the exploration
result) can be swapped without touching any caller.

Algorithm dispatch is table-driven: one :func:`register_algorithm`
registry keyed by ``(kind, name)`` backs ``encrypt``/``decrypt``/
``hash``/``hmac``/``new_block_cipher``/``generate_symmetric_key``/
``generate_keypair``, so adding an algorithm is one registration --
not another ``if``/``elif`` arm per method -- and every unknown name
fails the same way: :class:`UnknownAlgorithmError` naming the valid
choices.
"""

from typing import Callable, Dict, Optional, Tuple, Union

from repro.mp import DeterministicPrng
from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto.elgamal import (ElGamal, ElGamalKeyPair,
                                  ElGamalPrivateKey, ElGamalPublicKey,
                                  generate_elgamal_keypair)
from repro.crypto.hmac import hmac as _hmac
from repro.crypto.kasumi import Kasumi
from repro.crypto.md5 import md5
from repro.crypto.modexp import ModExpConfig
from repro.crypto.rc4 import Rc4
from repro.crypto.rsa import (Rsa, RsaKeyPair, RsaPrivateKey, RsaPublicKey,
                              generate_rsa_keypair)
from repro.crypto.sha1 import sha1


class UnknownAlgorithmError(ValueError):
    """Raised uniformly by every API method for an unregistered name."""

    def __init__(self, kind: str, name: str, choices):
        self.kind = kind
        self.name = name
        self.choices = tuple(sorted(choices))
        super().__init__(f"unknown {kind} algorithm {name!r}; "
                         f"choose from {list(self.choices)}")


# -- the algorithm registry --------------------------------------------------

#: Registered algorithm kinds.  ``cipher`` covers both block ciphers
#: (``block=True``) and stream ciphers; ``hash`` entries are one-shot
#: digest functions; ``keypair`` entries are ``(api, bits) ->`` keypair
#: factories.
ALGORITHM_KINDS = ("cipher", "hash", "keypair")

_REGISTRY: Dict[Tuple[str, str], Dict] = {}


def register_algorithm(kind: str, name: str, factory: Callable, *,
                       key_size: Optional[int] = None,
                       block: bool = False) -> None:
    """Register one algorithm under ``(kind, name)``.

    ``factory`` is what dispatch hands back: a cipher class for
    ``cipher`` entries (``block=True`` marks block ciphers eligible
    for ECB/CBC modes; otherwise it is a stream cipher class with a
    ``process`` method), a one-shot digest callable for ``hash``, or a
    ``(api, bits)`` keypair generator for ``keypair``.  ``key_size``
    (bytes) feeds :meth:`SecurityApi.generate_symmetric_key`.
    """
    if kind not in ALGORITHM_KINDS:
        raise ValueError(f"unknown algorithm kind {kind!r}; "
                         f"choose from {list(ALGORITHM_KINDS)}")
    _REGISTRY[(kind, name.lower())] = {
        "factory": factory, "key_size": key_size, "block": block}


def registered_algorithms(kind: str) -> Tuple[str, ...]:
    """Sorted registered names of one kind (introspection/errors)."""
    return tuple(sorted(n for k, n in _REGISTRY if k == kind))


def resolve_algorithm(kind: str, name: str) -> Dict:
    """The registry entry for ``(kind, name)``, or a uniform error."""
    entry = _REGISTRY.get((kind, name.lower()))
    if entry is None:
        raise UnknownAlgorithmError(kind, name,
                                    registered_algorithms(kind))
    return entry


# The stock algorithm suite.  AES key-length variants are distinct
# registrations of the same class: the registry, not the method body,
# carries the key-size knowledge.
register_algorithm("cipher", "des", Des, key_size=8, block=True)
register_algorithm("cipher", "3des", TripleDes, key_size=24, block=True)
register_algorithm("cipher", "aes", Aes, key_size=16, block=True)
register_algorithm("cipher", "aes-192", Aes, key_size=24, block=True)
register_algorithm("cipher", "aes-256", Aes, key_size=32, block=True)
register_algorithm("cipher", "rc4", Rc4, key_size=16)
register_algorithm("cipher", "kasumi", Kasumi, key_size=16, block=True)

register_algorithm("hash", "sha1", sha1)
register_algorithm("hash", "md5", md5)

register_algorithm(
    "keypair", "rsa",
    lambda api, bits: generate_rsa_keypair(bits, api.prng))
register_algorithm(
    "keypair", "elgamal",
    lambda api, bits: generate_elgamal_keypair(bits, api.prng,
                                               api.modexp_config))


class SecurityApi:
    """The platform's top-level security-primitive interface."""

    def __init__(self, modexp_config: ModExpConfig = ModExpConfig(),
                 prng: Optional[DeterministicPrng] = None):
        self.modexp_config = modexp_config
        self.prng = prng if prng is not None else DeterministicPrng()
        self._rsa = Rsa(modexp_config)
        self._elgamal = ElGamal(modexp_config)

    # -- key generation ---------------------------------------------------

    def generate_symmetric_key(self, algorithm: str) -> bytes:
        """Random key of the right size for the named symmetric algorithm."""
        entry = resolve_algorithm("cipher", algorithm)
        if entry["key_size"] is None:
            raise UnknownAlgorithmError("cipher", algorithm,
                                        registered_algorithms("cipher"))
        return self.prng.next_bytes(entry["key_size"])

    def generate_keypair(self, algorithm: str,
                         bits: int) -> Union[RsaKeyPair, ElGamalKeyPair]:
        """Generate a public-key pair ('rsa' or 'elgamal')."""
        return resolve_algorithm("keypair", algorithm)["factory"](self,
                                                                  bits)

    # -- symmetric encryption ------------------------------------------------

    def new_block_cipher(self, algorithm: str, key: bytes):
        """Instantiate a block cipher by name ('des', '3des', 'aes', ...)."""
        entry = resolve_algorithm("cipher", algorithm)
        if not entry["block"]:
            raise UnknownAlgorithmError(
                "cipher", algorithm,
                (name for name in registered_algorithms("cipher")
                 if _REGISTRY[("cipher", name)]["block"]))
        return entry["factory"](key)

    def encrypt(self, algorithm: str, key: bytes, data: bytes, *,
                iv: Optional[bytes] = None, mode: str = "cbc") -> bytes:
        """Pad and encrypt ``data`` with a block cipher, or stream it."""
        entry = resolve_algorithm("cipher", algorithm)
        if not entry["block"]:
            return entry["factory"](key).process(data)
        cipher = entry["factory"](key)
        padded = modes.pkcs7_pad(data, cipher.block_size)
        if mode == "ecb":
            return modes.ecb_encrypt(cipher, padded)
        if mode == "cbc":
            if iv is None:
                raise ValueError("CBC mode requires an IV")
            return modes.cbc_encrypt(cipher, iv, padded)
        raise ValueError(f"unknown mode {mode!r}")

    def decrypt(self, algorithm: str, key: bytes, data: bytes, *,
                iv: Optional[bytes] = None, mode: str = "cbc") -> bytes:
        entry = resolve_algorithm("cipher", algorithm)
        if not entry["block"]:
            return entry["factory"](key).process(data)
        cipher = entry["factory"](key)
        if mode == "ecb":
            padded = modes.ecb_decrypt(cipher, data)
        elif mode == "cbc":
            if iv is None:
                raise ValueError("CBC mode requires an IV")
            padded = modes.cbc_decrypt(cipher, iv, data)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return modes.pkcs7_unpad(padded, cipher.block_size)

    # -- hashing / MAC -----------------------------------------------------

    def hash(self, algorithm: str, data: bytes) -> bytes:
        return resolve_algorithm("hash", algorithm)["factory"](data)

    def hmac(self, algorithm: str, key: bytes, data: bytes) -> bytes:
        resolve_algorithm("hash", algorithm)   # uniform unknown-name path
        return _hmac(key, data, algorithm.lower())

    # -- public key -------------------------------------------------------

    def rsa_encrypt(self, message: bytes, key: RsaPublicKey) -> bytes:
        return self._rsa.encrypt(message, key, self.prng)

    def rsa_decrypt(self, ciphertext: bytes, key: RsaPrivateKey) -> bytes:
        return self._rsa.decrypt(ciphertext, key)

    def rsa_sign(self, message: bytes, key: RsaPrivateKey) -> bytes:
        return self._rsa.sign(message, key)

    def rsa_verify(self, message: bytes, signature: bytes,
                   key: RsaPublicKey) -> bool:
        return self._rsa.verify(message, signature, key)

    def elgamal_encrypt(self, m: int, key: ElGamalPublicKey) -> Tuple[int, int]:
        return self._elgamal.encrypt_int(m, key, self.prng)

    def elgamal_decrypt(self, ciphertext: Tuple[int, int],
                        key: ElGamalPrivateKey) -> int:
        return self._elgamal.decrypt_int(ciphertext, key)

    # -- elliptic curves -----------------------------------------------------

    def generate_ec_keypair(self, curve_name: str = "secp160r1"):
        from repro.crypto import ec
        try:
            curve = ec.CURVES[curve_name]
        except KeyError:
            raise UnknownAlgorithmError("curve", curve_name,
                                        sorted(ec.CURVES)) from None
        return ec.generate_ec_keypair(curve, self.prng)

    def ecdh(self, private: int, peer_public) -> int:
        from repro.crypto import ec
        return ec.ecdh_shared_secret(private, peer_public)

    def ecdsa_sign(self, message: bytes, keypair) -> Tuple[int, int]:
        from repro.crypto import ec
        return ec.ecdsa_sign(message, keypair, self.prng)

    def ecdsa_verify(self, message: bytes, signature: Tuple[int, int],
                     keypair) -> bool:
        from repro.crypto import ec
        return ec.ecdsa_verify(message, signature, keypair.curve,
                               keypair.public)
