"""Layer 3: the generic security-primitive API.

Paper Section 2.2: "At the top level, the SW architecture provides a
generic interface (API) using which security protocols and applications
can be ported to our platform.  This API consists of security
primitives such as key generation, encryption, or decryption of a block
of data using a specific public- or private-key cryptographic
algorithm."

:class:`SecurityApi` is that interface.  The SSL model
(:mod:`repro.ssl`), the examples and the benchmark harness all go
through it, so the underlying algorithm configuration (the exploration
result) can be swapped without touching any caller.
"""

from typing import Optional, Tuple, Union

from repro.mp import DeterministicPrng
from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto.elgamal import (ElGamal, ElGamalKeyPair,
                                  ElGamalPrivateKey, ElGamalPublicKey,
                                  generate_elgamal_keypair)
from repro.crypto.hmac import hmac as _hmac
from repro.crypto.md5 import md5
from repro.crypto.modexp import ModExpConfig
from repro.crypto.rc4 import Rc4
from repro.crypto.rsa import (Rsa, RsaKeyPair, RsaPrivateKey, RsaPublicKey,
                              generate_rsa_keypair)
from repro.crypto.sha1 import sha1

_BLOCK_CIPHERS = {"des": Des, "3des": TripleDes, "aes": Aes}
_KEY_SIZES = {"des": 8, "3des": 24, "aes": 16, "aes-192": 24, "aes-256": 32,
              "rc4": 16}
_HASHES = {"sha1": sha1, "md5": md5}


class SecurityApi:
    """The platform's top-level security-primitive interface."""

    def __init__(self, modexp_config: ModExpConfig = ModExpConfig(),
                 prng: Optional[DeterministicPrng] = None):
        self.modexp_config = modexp_config
        self.prng = prng if prng is not None else DeterministicPrng()
        self._rsa = Rsa(modexp_config)
        self._elgamal = ElGamal(modexp_config)

    # -- key generation ---------------------------------------------------

    def generate_symmetric_key(self, algorithm: str) -> bytes:
        """Random key of the right size for the named symmetric algorithm."""
        try:
            size = _KEY_SIZES[algorithm.lower()]
        except KeyError:
            raise ValueError(f"unknown symmetric algorithm {algorithm!r}")
        return self.prng.next_bytes(size)

    def generate_keypair(self, algorithm: str,
                         bits: int) -> Union[RsaKeyPair, ElGamalKeyPair]:
        """Generate a public-key pair ('rsa' or 'elgamal')."""
        algorithm = algorithm.lower()
        if algorithm == "rsa":
            return generate_rsa_keypair(bits, self.prng)
        if algorithm == "elgamal":
            return generate_elgamal_keypair(bits, self.prng,
                                            self.modexp_config)
        raise ValueError(f"unknown public-key algorithm {algorithm!r}")

    # -- symmetric encryption ------------------------------------------------

    def new_block_cipher(self, algorithm: str, key: bytes):
        """Instantiate a block cipher by name ('des', '3des', 'aes')."""
        try:
            cls = _BLOCK_CIPHERS[algorithm.lower()]
        except KeyError:
            raise ValueError(f"unknown block cipher {algorithm!r}")
        return cls(key)

    def encrypt(self, algorithm: str, key: bytes, data: bytes,
                iv: Optional[bytes] = None, mode: str = "cbc") -> bytes:
        """Pad and encrypt ``data`` with a block cipher, or RC4-stream it."""
        if algorithm.lower() == "rc4":
            return Rc4(key).process(data)
        cipher = self.new_block_cipher(algorithm, key)
        padded = modes.pkcs7_pad(data, cipher.block_size)
        if mode == "ecb":
            return modes.ecb_encrypt(cipher, padded)
        if mode == "cbc":
            if iv is None:
                raise ValueError("CBC mode requires an IV")
            return modes.cbc_encrypt(cipher, iv, padded)
        raise ValueError(f"unknown mode {mode!r}")

    def decrypt(self, algorithm: str, key: bytes, data: bytes,
                iv: Optional[bytes] = None, mode: str = "cbc") -> bytes:
        if algorithm.lower() == "rc4":
            return Rc4(key).process(data)
        cipher = self.new_block_cipher(algorithm, key)
        if mode == "ecb":
            padded = modes.ecb_decrypt(cipher, data)
        elif mode == "cbc":
            if iv is None:
                raise ValueError("CBC mode requires an IV")
            padded = modes.cbc_decrypt(cipher, iv, data)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return modes.pkcs7_unpad(padded, cipher.block_size)

    # -- hashing / MAC -----------------------------------------------------

    def hash(self, algorithm: str, data: bytes) -> bytes:
        try:
            fn = _HASHES[algorithm.lower()]
        except KeyError:
            raise ValueError(f"unknown hash {algorithm!r}")
        return fn(data)

    def hmac(self, algorithm: str, key: bytes, data: bytes) -> bytes:
        return _hmac(key, data, algorithm.lower())

    # -- public key -------------------------------------------------------

    def rsa_encrypt(self, message: bytes, key: RsaPublicKey) -> bytes:
        return self._rsa.encrypt(message, key, self.prng)

    def rsa_decrypt(self, ciphertext: bytes, key: RsaPrivateKey) -> bytes:
        return self._rsa.decrypt(ciphertext, key)

    def rsa_sign(self, message: bytes, key: RsaPrivateKey) -> bytes:
        return self._rsa.sign(message, key)

    def rsa_verify(self, message: bytes, signature: bytes,
                   key: RsaPublicKey) -> bool:
        return self._rsa.verify(message, signature, key)

    def elgamal_encrypt(self, m: int, key: ElGamalPublicKey) -> Tuple[int, int]:
        return self._elgamal.encrypt_int(m, key, self.prng)

    def elgamal_decrypt(self, ciphertext: Tuple[int, int],
                        key: ElGamalPrivateKey) -> int:
        return self._elgamal.decrypt_int(ciphertext, key)

    # -- elliptic curves -----------------------------------------------------

    def generate_ec_keypair(self, curve_name: str = "secp160r1"):
        from repro.crypto import ec
        try:
            curve = ec.CURVES[curve_name]
        except KeyError:
            raise ValueError(f"unknown curve {curve_name!r}; "
                             f"choose from {sorted(ec.CURVES)}")
        return ec.generate_ec_keypair(curve, self.prng)

    def ecdh(self, private: int, peer_public) -> int:
        from repro.crypto import ec
        return ec.ecdh_shared_secret(private, peer_public)

    def ecdsa_sign(self, message: bytes, keypair) -> Tuple[int, int]:
        from repro.crypto import ec
        return ec.ecdsa_sign(message, keypair, self.prng)

    def ecdsa_verify(self, message: bytes, signature: Tuple[int, int],
                     keypair) -> bool:
        from repro.crypto import ec
        return ec.ecdsa_verify(message, signature, keypair.curve,
                               keypair.public)
