"""Elliptic-curve cryptography over prime fields (Layer 2/3).

The platform's API list includes ECC alongside RSA (paper Section 2.2),
and the related-work section points at elliptic curves as the
reduced-complexity alternative public-key family [28].  This module
implements short-Weierstrass curves y^2 = x^3 + ax + b over GF(p) on
the :class:`repro.mp.Mpz` layer, with:

- affine point arithmetic (add, double, negate) and windowed scalar
  multiplication,
- ECDH key agreement and ECDSA signatures (SHA-1 digests, matching the
  paper's era),
- the period-appropriate SECG curves secp160r1 and secp192r1
  (= NIST P-192).

All field operations run through Mpz, so the mpn leaf routines see the
real ECC workload during characterization and the macro-model estimator
prices ECC operations exactly like RSA ones.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mp import DeterministicPrng, Mpz
from repro.crypto.modmul import BarrettModMul
from repro.crypto.sha1 import sha1


class EcError(ValueError):
    """Invalid point, parameters, or signature input."""


class _Field:
    """GF(p) arithmetic without per-operation division.

    Multiplication uses Barrett reduction (a precomputed reciprocal);
    addition/subtraction use conditional correction.  This is what a
    tuned ECC library does -- with generic divide-per-reduction, field
    operations are dominated by the division-free core's quotient
    estimation and ECC loses its complexity advantage over RSA.
    """

    def __init__(self, p: Mpz):
        self.p = p
        self._barrett = BarrettModMul(p)

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        return self._barrett.mul(a, b)

    def sqr(self, a: Mpz) -> Mpz:
        return self._barrett.mul(a, a)

    def add(self, a: Mpz, b: Mpz) -> Mpz:
        c = a + b
        return c - self.p if c >= self.p else c

    def sub(self, a: Mpz, b: Mpz) -> Mpz:
        c = a - b
        return c + self.p if c.sign < 0 else c

    def dbl(self, a: Mpz) -> Mpz:
        return self.add(a, a)


def batch_invert(values, p: Mpz):
    """Montgomery's simultaneous inversion: n inverses for one invert.

    Standard prefix-product trick; all values must be nonzero mod p.
    """
    if not values:
        return []
    prefix = [values[0] % p]
    for v in values[1:]:
        prefix.append((prefix[-1] * v) % p)
    inv_all = prefix[-1].invert(p)
    inverses = [None] * len(values)
    for i in range(len(values) - 1, 0, -1):
        inverses[i] = (inv_all * prefix[i - 1]) % p
        inv_all = (inv_all * values[i]) % p
    inverses[0] = inv_all % p
    return inverses


@dataclass(frozen=True)
class Curve:
    """A short-Weierstrass curve over GF(p) with a base point of order n."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int
    h: int = 1

    @property
    def bits(self) -> int:
        return self.p.bit_length()

    def generator(self) -> "Point":
        return Point(self, Mpz(self.gx), Mpz(self.gy))

    def infinity(self) -> "Point":
        return Point(self, None, None)

    def contains(self, x: int, y: int) -> bool:
        lhs = (y * y) % self.p
        rhs = (x * x * x + self.a * x + self.b) % self.p
        return lhs == rhs


class Point:
    """A point on a curve (affine coordinates; None/None = infinity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: Curve, x: Optional[Mpz], y: Optional[Mpz]):
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity() and not curve.contains(int(x), int(y)):
            raise EcError(f"point not on curve {curve.name}")

    def is_infinity(self) -> bool:
        return self.x is None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point) or self.curve is not other.curve:
            return NotImplemented
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        return int(self.x) == int(other.x) and int(self.y) == int(other.y)

    def __hash__(self):
        if self.is_infinity():
            return hash((self.curve.name, None))
        return hash((self.curve.name, int(self.x), int(self.y)))

    def __neg__(self) -> "Point":
        if self.is_infinity():
            return self
        p = Mpz(self.curve.p)
        return Point(self.curve, self.x, (p - self.y) % p)

    def __add__(self, other: "Point") -> "Point":
        if self.curve is not other.curve:
            raise EcError("points on different curves")
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        p = Mpz(self.curve.p)
        if int(self.x) == int(other.x):
            if (int(self.y) + int(other.y)) % int(p) == 0:
                return self.curve.infinity()
            # doubling: lambda = (3x^2 + a) / 2y
            num = (Mpz(3) * self.x * self.x + Mpz(self.curve.a)) % p
            den = (Mpz(2) * self.y) % p
        else:
            num = (other.y - self.y) % p
            den = (other.x - self.x) % p
        slope = (num * den.invert(p)) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __rmul__(self, scalar: int) -> "Point":
        return self.scalar_mul(scalar)

    def scalar_mul_affine(self, scalar: int, window: int = 4) -> "Point":
        """Windowed scalar multiplication in affine coordinates.

        One modular inversion per group operation -- kept as the
        readable reference; :meth:`scalar_mul` (Jacobian) is what the
        protocols use.
        """
        scalar = int(scalar) % self.curve.n
        if scalar == 0 or self.is_infinity():
            return self.curve.infinity()
        if window < 1 or window > 8:
            raise EcError("window must be in 1..8")
        table = [self.curve.infinity(), self]
        for _ in range(2, 1 << window):
            table.append(table[-1] + self)
        result = self.curve.infinity()
        nbits = scalar.bit_length()
        nwindows = (nbits + window - 1) // window
        for widx in range(nwindows - 1, -1, -1):
            for _ in range(window):
                result = result + result
            digit = (scalar >> (widx * window)) & ((1 << window) - 1)
            if digit:
                result = result + table[digit]
        return result

    def scalar_mul(self, scalar: int, window: int = 4) -> "Point":
        """Windowed scalar multiplication in Jacobian coordinates.

        Projective arithmetic defers the modular inversion to a single
        final conversion, which is what makes ECC competitive with the
        paper's RSA workloads (cf. the reduced-complexity public-key
        citation [28]).
        """
        scalar = int(scalar) % self.curve.n
        if scalar == 0 or self.is_infinity():
            return self.curve.infinity()
        if window < 1 or window > 8:
            raise EcError("window must be in 1..8")
        # All field arithmetic runs on Mpz (so the mpn leaf routines are
        # traced) through a division-free GF(p) helper.
        p = Mpz(self.curve.p)
        field = _Field(p)
        a = Mpz(self.curve.a) % p
        zero, one = Mpz(0), Mpz(1)

        a_is_minus3 = int(a) == int(p) - 3

        def jac_double(X1, Y1, Z1):
            if Z1 == zero or Y1 == zero:
                return (zero, one, zero)
            y_sq = field.sqr(Y1)
            s = field.dbl(field.dbl(field.mul(X1, y_sq)))     # 4*X*Y^2
            z_sq = field.sqr(Z1)
            if a_is_minus3:
                # 3*X^2 + a*Z^4 = 3*(X - Z^2)*(X + Z^2): one mul instead
                # of two squarings + one mul (both SECG curves qualify).
                t = field.mul(field.sub(X1, z_sq), field.add(X1, z_sq))
                m = field.add(t, field.dbl(t))
            else:
                x_sq = field.sqr(X1)
                m = field.add(field.add(x_sq, field.dbl(x_sq)),
                              field.mul(a, field.sqr(z_sq)))
            X3 = field.sub(field.sqr(m), field.dbl(s))
            y_quad8 = field.dbl(field.dbl(field.dbl(field.sqr(y_sq))))
            Y3 = field.sub(field.mul(m, field.sub(s, X3)), y_quad8)
            Z3 = field.dbl(field.mul(Y1, Z1))
            return (X3, Y3, Z3)

        def jac_add_mixed(X1, Y1, Z1, x2, y2):
            if Z1 == zero:
                return (x2, y2, one)
            z_sq = field.sqr(Z1)
            u2 = field.mul(x2, z_sq)
            s2 = field.mul(y2, field.mul(z_sq, Z1))
            h = field.sub(u2, X1)
            r = field.sub(s2, Y1)
            if h == zero:
                if r == zero:
                    return jac_double(X1, Y1, Z1)
                return (zero, one, zero)
            h_sq = field.sqr(h)
            h_cu = field.mul(h_sq, h)
            v = field.mul(X1, h_sq)
            X3 = field.sub(field.sub(field.sqr(r), h_cu), field.dbl(v))
            Y3 = field.sub(field.mul(r, field.sub(v, X3)),
                           field.mul(Y1, h_cu))
            Z3 = field.mul(Z1, h)
            return (X3, Y3, Z3)

        # Precompute 1P .. (2^w - 1)P in Jacobian form, then convert the
        # whole table to affine with one batched inversion (Montgomery's
        # trick) so mixed addition stays cheap in the main loop.
        jac_table = [None, (self.x, self.y, one)]
        for _ in range(2, 1 << window):
            jac_table.append(jac_add_mixed(*jac_table[-1], self.x, self.y))
        # Entries with Z == 0 are the point at infinity (possible when
        # the base point's order is smaller than the table span).
        finite = [entry for entry in jac_table[1:] if entry[2] != zero]
        z_invs = iter(batch_invert([entry[2] for entry in finite], p))
        affine_table = [None]
        for (Xj, Yj, Zj) in jac_table[1:]:
            if Zj == zero:
                affine_table.append(self.curve.infinity())
                continue
            z_inv = next(z_invs)
            z_inv_sq = (z_inv * z_inv) % p
            affine_table.append(Point(
                self.curve, (Xj * z_inv_sq) % p,
                (Yj * z_inv_sq * z_inv) % p))

        X, Y, Z = zero, one, zero  # Jacobian infinity
        nbits = scalar.bit_length()
        nwindows = (nbits + window - 1) // window
        for widx in range(nwindows - 1, -1, -1):
            for _ in range(window):
                X, Y, Z = jac_double(X, Y, Z)
            digit = (scalar >> (widx * window)) & ((1 << window) - 1)
            if digit:
                q = affine_table[digit]
                if not q.is_infinity():
                    X, Y, Z = jac_add_mixed(X, Y, Z, q.x, q.y)
        if Z == zero:
            return self.curve.infinity()
        # One final inversion back to affine.
        z_inv = Z.invert(p)
        z_inv_sq = (z_inv * z_inv) % p
        x = (X * z_inv_sq) % p
        y = (Y * z_inv_sq * z_inv) % p
        return Point(self.curve, x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_infinity():
            return f"Point({self.curve.name}, O)"
        return f"Point({self.curve.name}, {int(self.x):#x}, {int(self.y):#x})"


# ---------------------------------------------------------------------------
# Standard curves of the paper's era
# ---------------------------------------------------------------------------

SECP160R1 = Curve(
    name="secp160r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
)

SECP192R1 = Curve(
    name="secp192r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFC,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
)

#: A tiny curve for fast unit tests (order 19 subgroup over GF(97)... no:
#: this one is y^2 = x^3 + 2x + 3 over GF(97), |E| = 100, G order 5).
TINY_CURVE = Curve(name="tiny97", p=97, a=2, b=3, gx=3, gy=6, n=5, h=20)

CURVES = {c.name: c for c in (SECP160R1, SECP192R1, TINY_CURVE)}


# ---------------------------------------------------------------------------
# ECDH
# ---------------------------------------------------------------------------

@dataclass
class EcKeyPair:
    curve: Curve
    private: int
    public: Point


def generate_ec_keypair(curve: Curve,
                        prng: Optional[DeterministicPrng] = None
                        ) -> EcKeyPair:
    prng = prng or DeterministicPrng(0xECC)
    d = prng.next_range(1, curve.n - 1)
    return EcKeyPair(curve=curve, private=d,
                     public=curve.generator().scalar_mul(d))


def ecdh_shared_secret(private: int, peer_public: Point) -> int:
    """ECDH: the x-coordinate of d * Q_peer."""
    if peer_public.is_infinity():
        raise EcError("peer public key is the point at infinity")
    shared = peer_public.scalar_mul(private)
    if shared.is_infinity():
        raise EcError("degenerate shared secret")
    return int(shared.x)


# ---------------------------------------------------------------------------
# ECDSA (SHA-1, ANSI X9.62 style)
# ---------------------------------------------------------------------------

def _digest_to_int(message: bytes, n: int) -> int:
    digest = int.from_bytes(sha1(message), "big")
    excess = digest.bit_length() - n.bit_length()
    if excess > 0:
        digest >>= excess
    return digest


def ecdsa_sign(message: bytes, key: EcKeyPair,
               prng: Optional[DeterministicPrng] = None
               ) -> Tuple[int, int]:
    prng = prng or DeterministicPrng(0x51)
    curve = key.curve
    e = _digest_to_int(message, curve.n)
    g = curve.generator()
    while True:
        k = prng.next_range(1, curve.n - 1)
        point = g.scalar_mul(k)
        r = int(point.x) % curve.n
        if r == 0:
            continue
        k_inv = int(Mpz(k).invert(curve.n))
        s = (k_inv * (e + r * key.private)) % curve.n
        if s == 0:
            continue
        return r, s


def ecdsa_verify(message: bytes, signature: Tuple[int, int],
                 curve: Curve, public: Point) -> bool:
    r, s = signature
    if not (0 < r < curve.n and 0 < s < curve.n):
        return False
    if public.is_infinity():
        return False
    e = _digest_to_int(message, curve.n)
    w = int(Mpz(s).invert(curve.n))
    u1 = (e * w) % curve.n
    u2 = (r * w) % curve.n
    point = curve.generator().scalar_mul(u1) + public.scalar_mul(u2)
    if point.is_infinity():
        return False
    return int(point.x) % curve.n == r
