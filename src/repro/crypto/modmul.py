"""Five modular multiplication algorithms (Layer 2, public-key path).

The paper's modular-exponentiation design space (Section 4.3) is built
from "five modular multiplication algorithms" among other dimensions.
We implement the five classical candidates:

- :class:`SchoolbookModMul` -- multiply (basecase) then divide.
- :class:`KaratsubaModMul`  -- Karatsuba multiply then divide.
- :class:`BarrettModMul`    -- multiply then Barrett reduction with a
  precomputed reciprocal approximation ``mu``.
- :class:`MontgomeryModMul` -- limb-serial Montgomery REDC in the
  Montgomery residue domain.
- :class:`InterleavedModMul` -- limb-interleaved multiply-and-reduce
  (the division never sees an operand longer than k+1 limbs).

All five share a residue-domain interface so the exponentiation layer
can swap them freely: ``to_residue`` / ``from_residue`` are identity
maps everywhere except Montgomery.  Precomputation (``mu``, Montgomery
constants) happens in the constructor; the *caching* dimension of the
design space controls whether the exponentiation layer reuses one
instance across calls or rebuilds it every time.
"""

from typing import List

from repro.mp import Mpz, mpn
from repro.mp.hooks import trace
from repro.mp.limb import Radix


class ModMul:
    """Base class: modular multiplication in some residue domain."""

    name = "abstract"

    def __init__(self, modulus: Mpz):
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        self.modulus = modulus
        self.radix: Radix = modulus.radix

    def to_residue(self, x: Mpz) -> Mpz:
        return x % self.modulus

    def from_residue(self, r: Mpz) -> Mpz:
        return r

    def one(self) -> Mpz:
        """Residue representation of 1."""
        return self.to_residue(Mpz(1, self.radix))

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        raise NotImplementedError

    def sqr(self, a: Mpz) -> Mpz:
        return self.mul(a, a)


class SchoolbookModMul(ModMul):
    """Schoolbook product followed by Knuth division."""

    name = "schoolbook"

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        prod = Mpz._raw(mpn.mul_basecase(a.limbs, b.limbs, self.radix), 1,
                        self.radix)
        return prod % self.modulus


class KaratsubaModMul(ModMul):
    """Karatsuba product followed by Knuth division."""

    name = "karatsuba"

    #: Recursion cutoff in limbs; small so 1024-bit/32 = 32 limbs recurses.
    threshold = 8

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        prod = Mpz._raw(
            mpn.mul_karatsuba(a.limbs, b.limbs, self.radix, self.threshold),
            1, self.radix)
        return prod % self.modulus


class BarrettModMul(ModMul):
    """Multiplication with Barrett reduction.

    Precomputes ``mu = floor(base^(2k) / m)`` once; each reduction then
    costs two multiplications and a few subtractions instead of a
    division.
    """

    name = "barrett"

    def __init__(self, modulus: Mpz):
        super().__init__(modulus)
        self.k = len(mpn.normalize(modulus.limbs))
        big = Mpz(1, self.radix) << (2 * self.k * self.radix.bits)
        self.mu = big // modulus

    def reduce(self, x: Mpz) -> Mpz:
        """Barrett reduction of x (< m * base^k) modulo m."""
        trace("barrett_reduce", n=self.k)
        bits = self.radix.bits
        q1 = x >> ((self.k - 1) * bits)
        q2 = q1 * self.mu
        q3 = q2 >> ((self.k + 1) * bits)
        r = x - q3 * self.modulus
        while r >= self.modulus:
            r = r - self.modulus
        return r

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        prod = Mpz._raw(mpn.mul_basecase(a.limbs, b.limbs, self.radix), 1,
                        self.radix)
        return self.reduce(prod)


class MontgomeryModMul(ModMul):
    """Limb-serial Montgomery multiplication (REDC).

    Residues live in the Montgomery domain: ``to_residue(x) = x*R mod m``
    with ``R = base^k``.  The constructor precomputes ``m' = -m^-1 mod
    base`` and ``R^2 mod m`` -- the "Montgomery constants" that one of
    the paper's software-caching options retains across calls.
    """

    name = "montgomery"

    def __init__(self, modulus: Mpz):
        super().__init__(modulus)
        if modulus.is_even():
            raise ValueError("Montgomery multiplication requires an odd modulus")
        self.k = len(mpn.normalize(modulus.limbs))
        base = self.radix.base
        m0 = modulus.limbs[0]
        self.m_prime = (-pow(m0, -1, base)) % base
        r = Mpz(1, self.radix) << (self.k * self.radix.bits)
        self.r2 = (r * r) % modulus

    def _redc(self, t_limbs: List[int]) -> Mpz:
        """Montgomery reduction of a (<= 2k limb) product."""
        trace("mont_redc", n=self.k)
        radix = self.radix
        t = list(t_limbs) + [0] * (2 * self.k + 1 - len(t_limbs))
        m_limbs = self.modulus.limbs + [0] * (self.k - len(self.modulus.limbs))
        for i in range(self.k):
            u = (t[i] * self.m_prime) & radix.mask
            window = t[i: i + self.k]
            window, carry = mpn.addmul_1(window, m_limbs, u, radix)
            t[i: i + self.k] = window
            # Propagate the carry above the window.
            j = i + self.k
            while carry:
                s = t[j] + carry
                t[j] = s & radix.mask
                carry = s >> radix.bits
                j += 1
        result = Mpz._raw(t[self.k:], 1, radix)
        if result >= self.modulus:
            result = result - self.modulus
        return result

    def to_residue(self, x: Mpz) -> Mpz:
        x = x % self.modulus
        prod = mpn.mul_basecase(x.limbs, self.r2.limbs, self.radix)
        return self._redc(prod)

    def from_residue(self, r: Mpz) -> Mpz:
        return self._redc(list(r.limbs))

    def one(self) -> Mpz:
        return self.to_residue(Mpz(1, self.radix))

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        prod = mpn.mul_basecase(a.limbs, b.limbs, self.radix)
        return self._redc(prod)


class InterleavedModMul(ModMul):
    """Limb-interleaved multiply-and-reduce.

    Scans the multiplier from its most significant limb; the running
    sum is shifted one limb, a partial product is accumulated, and the
    sum is reduced immediately, so intermediate values never exceed
    k+1 limbs.
    """

    name = "interleaved"

    def __init__(self, modulus: Mpz):
        super().__init__(modulus)
        self.k = len(mpn.normalize(modulus.limbs))

    def mul(self, a: Mpz, b: Mpz) -> Mpz:
        trace("interleaved_step", n=self.k)
        radix = self.radix
        acc = Mpz(0, radix)
        for limb in reversed(mpn.normalize(a.limbs)):
            acc = (acc << radix.bits) + b * Mpz(limb, radix)
            acc = acc % self.modulus
        return acc


#: Registry used by the design-space enumeration.
MODMUL_ALGORITHMS = {
    cls.name: cls
    for cls in (SchoolbookModMul, KaratsubaModMul, BarrettModMul,
                MontgomeryModMul, InterleavedModMul)
}


def make_modmul(name: str, modulus: Mpz) -> ModMul:
    """Instantiate a modular-multiplication algorithm by name."""
    try:
        cls = MODMUL_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown modmul algorithm {name!r}; choose from {sorted(MODMUL_ALGORITHMS)}")
    return cls(modulus)
