"""The XT32 base instruction set and its cycle cost model.

A small RISC ISA in the spirit of the Xtensa's 32-bit core: sixteen
registers (``r0`` hardwired to zero, ``r13`` stack pointer by
convention, ``r14`` link register), three-operand ALU instructions,
32x32 multiply with separate low/high results, byte and word memory
access, and compare-and-branch.

Cycle costs model a simple in-order pipeline: single-cycle ALU,
two-cycle multiply and loads, taken branches flush (3 cycles).  The
numbers are representative of late-1990s embedded cores; what matters
for the reproduction is that they are *consistent*, so base-vs-extended
ratios are meaningful.
"""

NUM_REGS = 16
ZERO_REG = 0
SP_REG = 13
LINK_REG = 14
WORD_MASK = 0xFFFFFFFF

#: opcode -> (operand signature, base cycle cost)
#: signatures: r = register, i = immediate, m = offset(reg) memory operand,
#:             l = label (branch/jump target)
BASE_ISA = {
    # moves / immediates
    "li":    ("ri", 1),
    "mov":   ("rr", 1),
    # ALU register-register
    "add":   ("rrr", 1),
    "sub":   ("rrr", 1),
    "and":   ("rrr", 1),
    "or":    ("rrr", 1),
    "xor":   ("rrr", 1),
    "sll":   ("rrr", 1),
    "srl":   ("rrr", 1),
    "sra":   ("rrr", 1),
    "sltu":  ("rrr", 1),
    "slt":   ("rrr", 1),
    # ALU register-immediate
    "addi":  ("rri", 1),
    "subi":  ("rri", 1),
    "andi":  ("rri", 1),
    "ori":   ("rri", 1),
    "xori":  ("rri", 1),
    "slli":  ("rri", 1),
    "srli":  ("rri", 1),
    "srai":  ("rri", 1),
    "sltui": ("rri", 1),
    # multiply (2-cycle, as on cores with a hardware multiplier option)
    "mul":   ("rrr", 2),
    "mulhu": ("rrr", 2),
    # memory
    "lw":    ("rm", 2),
    "lb":    ("rm", 2),
    "sw":    ("rm", 1),
    "sb":    ("rm", 1),
    # control flow
    "beq":   ("rrl", 1),   # +BRANCH_TAKEN_PENALTY when taken
    "bne":   ("rrl", 1),
    "blt":   ("rrl", 1),
    "bge":   ("rrl", 1),
    "bltu":  ("rrl", 1),
    "bgeu":  ("rrl", 1),
    "j":     ("l", 3),
    "jal":   ("l", 3),
    "jr":    ("r", 3),
    "halt":  ("", 1),
}

#: Extra cycles charged when a conditional branch is taken.
BRANCH_TAKEN_PENALTY = 2

BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Truncate to a 32-bit unsigned pattern."""
    return value & WORD_MASK
