"""Configurable data-cache model for the XT32.

The Xtensa's configurability includes "cache and memory interface
configuration" (paper Section 2.1).  This is a direct-mapped,
write-through data cache: hits cost the base load latency, misses add a
configurable penalty.  It is *off by default* -- the calibrated Table 1
numbers assume the paper's single-cycle local-memory interface -- and
is exercised by the cache-sensitivity ablation bench, where the
table-driven cipher kernels (16 KB of DES SP/IP/FP tables, 4 KB of AES
T-tables) visibly thrash small caches.
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class CacheConfig:
    """Geometry + timing of the data cache."""

    size_bytes: int = 8192
    line_bytes: int = 16
    miss_penalty: int = 10   # cycles to fill a line from main memory

    def __post_init__(self):
        for value, name in ((self.size_bytes, "size"),
                            (self.line_bytes, "line size")):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"cache {name} must be a power of two")
        if self.line_bytes > self.size_bytes:
            raise ValueError("line size exceeds cache size")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DataCache:
    """Direct-mapped, write-through, write-allocate data cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._tags: List[Optional[int]] = [None] * config.num_lines
        self.stats = CacheStats()

    def access(self, addr: int) -> int:
        """Record an access; returns the extra cycles (0 on hit)."""
        line = addr // self.config.line_bytes
        index = line % self.config.num_lines
        self.stats.accesses += 1
        if self._tags[index] == line:
            return 0
        self._tags[index] = line
        self.stats.misses += 1
        return self.config.miss_penalty

    def flush(self) -> None:
        self._tags = [None] * self.config.num_lines
