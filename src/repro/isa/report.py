"""Human-readable run reports for the XT32 simulator.

Collects everything a machine knows after a run -- cycles, instruction
mix, CPI, call profile, cache statistics, energy estimate -- into one
text report, the kind of artifact an ISS ships alongside its traces.
"""

from typing import List

from repro.isa.energy import estimate_energy
from repro.isa.machine import Machine


def machine_report(machine: Machine, top_functions: int = 8,
                   top_opcodes: int = 10) -> str:
    """Summarize a machine's execution so far."""
    lines: List[str] = []
    prof = machine.profile
    instructions = sum(machine.opcode_counts.values())
    lines.append(f"cycles:        {machine.cycles}")
    lines.append(f"instructions:  {instructions}")
    if instructions:
        lines.append(f"CPI:           {machine.cycles / instructions:.2f}")

    if machine.opcode_counts:
        lines.append("\nopcode mix:")
        ranked = sorted(machine.opcode_counts.items(),
                        key=lambda kv: -kv[1])[:top_opcodes]
        for op, count in ranked:
            share = count / instructions * 100
            lines.append(f"  {op:12s} {count:10d}  ({share:5.1f}%)")

    if prof.local_cycles:
        lines.append("\nhot functions (local cycles):")
        ranked = sorted(prof.local_cycles.items(),
                        key=lambda kv: -kv[1])[:top_functions]
        for func, cycles in ranked:
            share = cycles / max(1, machine.cycles) * 100
            calls = prof.call_counts.get(func, 0)
            lines.append(f"  {func:20s} {cycles:10d}  ({share:5.1f}%) "
                         f"over {calls} call(s)")

    if machine.dcache is not None:
        stats = machine.dcache.stats
        lines.append(f"\ndcache: {stats.accesses} accesses, "
                     f"{stats.misses} misses "
                     f"({stats.miss_rate * 100:.1f}% miss rate)")

    energy = estimate_energy(machine)
    lines.append(f"\nestimated energy: {energy.total_nj:.2f} nJ")
    ranked = sorted(energy.by_class.items(), key=lambda kv: -kv[1])[:5]
    for cls, pj in ranked:
        lines.append(f"  {cls:20s} {pj / 1000:.2f} nJ")
    return "\n".join(lines)
