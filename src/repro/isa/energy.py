"""Activity-based energy model for the XT32.

The paper states its methodology yields "large improvements in
performance *as well as energy efficiency*" but defers the energy
discussion for space.  This module supplies the standard estimate the
claim rests on: per-instruction energy = fetch/decode overhead + a
datapath-class cost, with custom instructions paying for the activity
of the hardware resources they instantiate.

The mechanism behind the energy win is architectural, not magic: one
``desround`` replaces dozens of fetched/decoded RISC instructions, so
even though its datapath toggles more logic per cycle, the fetch/decode
energy (a large fraction of a simple core's power) collapses.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import BASE_ISA
from repro.isa.machine import Machine

#: Energy in picojoules for one instruction's datapath activity
#: (representative 0.18um-class numbers; relative values matter).
CLASS_ENERGY_PJ: Dict[str, float] = {
    "alu": 8.0,
    "mul": 30.0,
    "load": 26.0,
    "store": 20.0,
    "branch": 10.0,
    "jump": 12.0,
    "halt": 2.0,
}

#: Fetch + decode + register-file access per *instruction* (not per
#: cycle) -- the overhead custom instructions amortize away.
FETCH_DECODE_PJ = 18.0

#: Activity energy per custom-instruction resource use.
RESOURCE_ENERGY_PJ: Dict[str, float] = {
    "adder32": 6.0,
    "adder16": 3.5,
    "mul32": 35.0,
    "mul16": 12.0,
    "xor32": 2.0,
    "mux32": 1.5,
    "perm64": 4.0,
    "perm32": 2.5,
    "lut_bit": 0.002,    # per bit of ROM read
    "reg_bit": 0.01,
    "gf_mult8": 3.0,
    "control": 4.0,
}


def _classify(op: str) -> str:
    if op in ("lw", "lb"):
        return "load"
    if op in ("sw", "sb"):
        return "store"
    if op in ("mul", "mulhu"):
        return "mul"
    if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return "branch"
    if op in ("j", "jal", "jr"):
        return "jump"
    if op == "halt":
        return "halt"
    return "alu"


def custom_instruction_energy(instruction) -> float:
    """Per-execution energy of a custom instruction (pJ)."""
    activity = sum(RESOURCE_ENERGY_PJ.get(name, 2.0) * count
                   for name, count in instruction.resources.items())
    return FETCH_DECODE_PJ + activity


@dataclass
class EnergyEstimate:
    total_pj: float = 0.0
    by_class: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0


def estimate_energy(machine: Machine) -> EnergyEstimate:
    """Energy estimate for everything the machine has executed so far,
    from its opcode histogram."""
    estimate = EnergyEstimate()
    for op, count in machine.opcode_counts.items():
        if op in BASE_ISA:
            cls = _classify(op)
            per_instr = FETCH_DECODE_PJ + CLASS_ENERGY_PJ[cls]
        else:
            custom = machine.extensions.get(op)
            if custom is None:  # pragma: no cover - defensive
                continue
            cls = f"custom:{op}"
            per_instr = custom_instruction_energy(custom)
        energy = per_instr * count
        estimate.total_pj += energy
        estimate.by_class[cls] = estimate.by_class.get(cls, 0.0) + energy
    return estimate
