"""Gate-equivalent area model (stand-in for Synopsys DC + NEC CB-11).

The paper derived A-D curve area numbers by synthesizing TIE RTL with
Design Compiler against the NEC CB-11 0.18 micron library.  We replace
that flow with a small technology table: each hardware resource class a
custom instruction can instantiate has a cost in gate equivalents (GE,
2-input NAND units).  The values are representative textbook figures --
what matters for the methodology is that the *relative* costs are sane
(a 32-bit multiplier is ~20x a ripple adder, LUT bits are cheap per
bit, register bits cost a flop each).
"""

from typing import Dict

#: Gate-equivalent cost per instance (or per bit where noted).
TECHNOLOGY_LIBRARY: Dict[str, float] = {
    "adder32": 320.0,       # 32-bit carry-select adder
    "adder16": 170.0,
    "mul32": 6400.0,        # 32x32 -> 64 array multiplier
    "mul16": 1700.0,        # 16x16 -> 32
    "xor32": 96.0,          # 32 2-input XORs (3 GE each)
    "mux32": 64.0,          # 32-bit 2:1 mux
    "perm64": 1400.0,       # 64-bit static permutation network (wiring + bufs)
    "perm32": 700.0,
    "lut_bit": 0.30,        # ROM bit
    "reg_bit": 6.0,         # flop + mux
    "gf_mult8": 90.0,       # GF(2^8) constant multiplier slice
    "control": 150.0,       # decode + sequencing overhead per instruction
}


class AreaModelError(KeyError):
    """Raised when a custom instruction names an unknown resource."""


def area_of(resources: Dict[str, float]) -> float:
    """Total gate-equivalent area of a resource bag.

    ``resources`` maps resource class -> instance count (or bit count
    for ``lut_bit`` / ``reg_bit``).
    """
    total = 0.0
    for name, count in resources.items():
        try:
            unit = TECHNOLOGY_LIBRARY[name]
        except KeyError:
            raise AreaModelError(
                f"unknown resource {name!r}; known: {sorted(TECHNOLOGY_LIBRARY)}")
        if count < 0:
            raise ValueError(f"negative count for resource {name!r}")
        total += unit * count
    return total
