"""Two-pass assembler for XT32 assembly text.

Syntax::

    # comment
    label:
        li   r1, 0x10          ; immediates: decimal, hex, negative
        lw   r2, 4(r1)         ; memory operands: offset(reg)
        beq  r2, r0, done
        jal  helper
    done:
        halt

Custom (TIE) instructions assemble exactly like base instructions; the
assembler takes an optional :class:`repro.isa.extensions.ExtensionSet`
that contributes extra opcodes and operand signatures.

The assembled :class:`Program` stores decoded instructions (no binary
encoding -- the simulator executes the decoded form directly, like an
ISS operating on a decoded trace).
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import BASE_ISA, NUM_REGS


class AssemblyError(ValueError):
    """Raised for malformed assembly input."""


@dataclass
class Instruction:
    """One decoded instruction."""

    op: str
    args: Tuple          # decoded operands per signature
    source_line: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.op} {self.args}>"


# eq=False: identity semantics, so programs are hashable and can key the
# weak per-program cache of threaded code in repro.isa.compile.
@dataclass(eq=False)
class Program:
    """An assembled program: decoded instructions plus the symbol table."""

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)

    def entry(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"unknown label {label!r}")

    def __len__(self) -> int:
        return len(self.instructions)


_REGISTER_RE = re.compile(r"^r(\d+)$")
_MEMORY_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+)\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _parse_register(token: str, line_no: int) -> int:
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    reg = int(match.group(1))
    if reg >= NUM_REGS:
        raise AssemblyError(f"line {line_no}: register {token} out of range")
    return reg


def _parse_immediate(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: expected immediate, got {token!r}")


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [tok.strip() for tok in rest.split(",")]


def assemble(source: str, extensions: Optional[object] = None) -> Program:
    """Assemble XT32 source text into a :class:`Program`.

    ``extensions`` is an :class:`~repro.isa.extensions.ExtensionSet`
    (or anything with a ``signatures()`` -> {opcode: signature} method)
    contributing custom opcodes.
    """
    opcode_table: Dict[str, str] = {op: sig for op, (sig, _) in BASE_ISA.items()}
    if extensions is not None:
        for op, sig in extensions.signatures().items():
            if op in opcode_table:
                raise AssemblyError(f"custom instruction {op!r} shadows a base opcode")
            opcode_table[op] = sig

    # Pass 1: collect labels and raw statements.
    statements: List[Tuple[int, str, str]] = []  # (line_no, opcode, operands)
    labels: Dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(statements)
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        operands = parts[1] if len(parts) > 1 else ""
        statements.append((line_no, opcode, operands))

    # Pass 2: decode operands, resolving labels.
    instructions: List[Instruction] = []
    for line_no, opcode, operands in statements:
        if opcode not in opcode_table:
            raise AssemblyError(f"line {line_no}: unknown opcode {opcode!r}")
        signature = opcode_table[opcode]
        tokens = _split_operands(operands)
        if len(tokens) != len(signature):
            raise AssemblyError(
                f"line {line_no}: {opcode} expects {len(signature)} operands, "
                f"got {len(tokens)}")
        args = []
        for kind, token in zip(signature, tokens):
            if kind == "r":
                args.append(_parse_register(token, line_no))
            elif kind == "i":
                args.append(_parse_immediate(token, line_no))
            elif kind == "m":
                match = _MEMORY_RE.match(token)
                if not match:
                    raise AssemblyError(
                        f"line {line_no}: expected offset(reg), got {token!r}")
                offset = int(match.group(1), 0)
                args.append((offset, _parse_register(match.group(2), line_no)))
            elif kind == "l":
                if not _LABEL_RE.match(token):
                    raise AssemblyError(
                        f"line {line_no}: expected label, got {token!r}")
                if token not in labels:
                    raise AssemblyError(
                        f"line {line_no}: undefined label {token!r}")
                args.append(labels[token])
            else:  # pragma: no cover - signature typo guard
                raise AssemblyError(
                    f"line {line_no}: bad signature element {kind!r}")
        instructions.append(Instruction(opcode, tuple(args), line_no))

    return Program(instructions=instructions, labels=labels)


def concat_sources(*sources: Sequence[str]) -> str:
    """Join assembly fragments with separating newlines."""
    return "\n".join(sources)


def disassemble(program: Program, extensions: Optional[object] = None) -> str:
    """Render an assembled program back to canonical source text.

    Labels are re-attached at their instruction indices and jump/branch
    targets resolved back to label names, so
    ``assemble(disassemble(p))`` reproduces ``p`` exactly (the tests
    assert the round trip).  Pass the same ``extensions`` used to
    assemble so custom operand signatures render correctly.
    """
    labels_at: Dict[int, List[str]] = {}
    for label, index in sorted(program.labels.items()):
        labels_at.setdefault(index, []).append(label)
    # Synthesize names for branch targets that carry no label.
    opcode_table: Dict[str, Tuple[str, int]] = dict(BASE_ISA)
    if extensions is not None:
        for op, sig in extensions.signatures().items():
            opcode_table[op] = (sig, 1)
    lines: List[str] = []
    for index, instr in enumerate(program.instructions):
        for label in labels_at.get(index, ()):
            lines.append(f"{label}:")
        signature = (opcode_table[instr.op][0] if instr.op in opcode_table
                     else None)
        rendered = []
        for pos, arg in enumerate(instr.args):
            kind = signature[pos] if signature else (
                "m" if isinstance(arg, tuple) else "r")
            if kind == "r":
                rendered.append(f"r{arg}")
            elif kind == "i":
                rendered.append(str(arg))
            elif kind == "m":
                offset, reg = arg
                rendered.append(f"{offset}(r{reg})")
            elif kind == "l":
                target_labels = labels_at.get(arg)
                if not target_labels:
                    # Target has no label: synthesize one (kept stable
                    # by index) and attach it lazily.
                    name = f"loc_{arg}"
                    labels_at.setdefault(arg, []).append(name)
                    if arg < index:  # already emitted: patch in place
                        patched: List[str] = []
                        count = 0
                        for line in lines:
                            if not line.endswith(":"):
                                if count == arg:
                                    patched.append(f"{name}:")
                                count += 1
                            patched.append(line)
                        lines = patched
                    target_labels = [name]
                rendered.append(target_labels[0])
        operands = ", ".join(rendered)
        lines.append(f"    {instr.op} {operands}".rstrip())
    # Trailing labels (pointing one past the end) are not representable;
    # Program.labels never contains them by construction.
    return "\n".join(lines) + "\n"
