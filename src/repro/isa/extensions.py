"""TIE-like custom instruction extensions.

The Xtensa lets a designer add instructions described in TIE: each has
designer-specified semantics executing on dedicated hardware tightly
coupled to the pipeline.  :class:`CustomInstruction` models one such
instruction: an opcode with an operand signature, a Python callable for
its architectural semantics (it may touch registers, wide user
registers, and memory), a latency in cycles, and the hardware resources
it instantiates (from which its area is derived).

:class:`ExtensionSet` is the "processor configuration": the set of
custom instructions compiled into a particular build of the core.  Its
total area is the hardware overhead that the global selection phase
trades against cycle count.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Optional, Union

from repro.isa.area import area_of

#: Latency may depend on the executed operands (e.g. a variable-length op).
Latency = Union[int, Callable[["object", tuple], int]]


@dataclass(frozen=True)
class CustomInstruction:
    """One TIE instruction: semantics + latency + hardware resources."""

    name: str
    signature: str                       # operand signature, e.g. "rrr"
    semantics: Callable                  # fn(machine, args) -> None
    latency: Latency = 1
    resources: Dict[str, float] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"bad custom instruction name {self.name!r}")
        if any(c not in "rim" for c in self.signature):
            raise ValueError(
                f"{self.name}: signature may only contain r/i/m, got "
                f"{self.signature!r}")

    @property
    def area(self) -> float:
        """Gate-equivalent area of this instruction's dedicated hardware."""
        return area_of(self.resources)

    def cycle_cost(self, machine, args) -> int:
        if callable(self.latency):
            return self.latency(machine, args)
        return self.latency

    def __hash__(self):
        return hash(self.name)


class ExtensionSet:
    """A set of custom instructions configured into the processor."""

    def __init__(self, instructions: Iterable[CustomInstruction] = ()):
        self._instructions: Dict[str, CustomInstruction] = {}
        for instr in instructions:
            self.add(instr)

    def add(self, instruction: CustomInstruction) -> None:
        if instruction.name in self._instructions:
            raise ValueError(f"duplicate custom instruction {instruction.name!r}")
        self._instructions[instruction.name] = instruction

    def get(self, name: str) -> Optional[CustomInstruction]:
        return self._instructions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instructions

    def __iter__(self) -> Iterator[CustomInstruction]:
        return iter(self._instructions.values())

    def __len__(self) -> int:
        return len(self._instructions)

    def signatures(self) -> Dict[str, str]:
        """opcode -> operand signature map, for the assembler."""
        return {name: ci.signature for name, ci in self._instructions.items()}

    @property
    def area(self) -> float:
        """Total hardware overhead of the configuration.

        Resources are *not* shared across instructions here; sharing is
        modeled at selection time by dominance reduction (an ``add_4``
        subsumes an ``add_2``), mirroring the paper's treatment.
        """
        return sum(ci.area for ci in self._instructions.values())

    def union(self, other: "ExtensionSet") -> "ExtensionSet":
        merged = ExtensionSet()
        for ci in self:
            merged.add(ci)
        for ci in other:
            if ci.name not in merged:
                merged.add(ci)
        return merged
