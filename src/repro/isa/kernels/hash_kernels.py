"""XT32 SHA-1 compression kernel (base ISA only).

Hashing belongs to the *miscellaneous* SSL workload component: the
platform's selected custom instructions do not accelerate it, which is
what caps the large-transaction SSL speedup in the paper's Figure 8.
Only a base-ISA kernel exists, and both platform configurations charge
the same cycles for it.
"""

from typing import List, Tuple

from repro.isa.kernels import KernelRunner

_ROUND_BLOCKS = [
    # (k constant, f-function assembly computing f(b,c,d) into r12)
    (0x5A827999,
     "    and  r12, r6, r7\n"
     "    xori r15, r6, -1\n"
     "    and  r15, r15, r8\n"
     "    or   r12, r12, r15\n"),
    (0x6ED9EBA1,
     "    xor  r12, r6, r7\n"
     "    xor  r12, r12, r8\n"),
    (0x8F1BBCDC,
     "    and  r12, r6, r7\n"
     "    and  r15, r6, r8\n"
     "    or   r12, r12, r15\n"
     "    and  r15, r7, r8\n"
     "    or   r12, r12, r15\n"),
    (0xCA62C1D6,
     "    xor  r12, r6, r7\n"
     "    xor  r12, r12, r8\n"),
]


def _round_loop(idx: int, k: int, f_code: str) -> str:
    return f"""
    li   r4, {k:#x}
    li   r10, 20
sha1_rounds_{idx}:
    slli r11, r5, 5
    srli r12, r5, 27
    or   r11, r11, r12
    add  r11, r11, r9
    add  r11, r11, r4
    lw   r12, 0(r2)
    add  r11, r11, r12
{f_code}    add  r11, r11, r12
    mov  r9, r8
    mov  r8, r7
    slli r7, r6, 30
    srli r12, r6, 2
    or   r7, r7, r12
    mov  r6, r5
    mov  r5, r11
    addi r2, r2, 4
    subi r10, r10, 1
    bne  r10, r0, sha1_rounds_{idx}
"""


def source() -> str:
    """sha1_compress: r1=state ptr (5 words), r2=W ptr (80 words, first
    16 filled with the big-endian message words)."""
    rounds = "".join(_round_loop(i, k, f)
                     for i, (k, f) in enumerate(_ROUND_BLOCKS))
    return f"""
sha1_compress:
    # ---- message schedule expansion: W[16..79] ----
    addi r2, r2, 64       # point at W[16]
    li   r10, 64
sha1_sched:
    lw   r11, -12(r2)     # W[t-3]
    lw   r12, -32(r2)     # W[t-8]
    xor  r11, r11, r12
    lw   r12, -56(r2)     # W[t-14]
    xor  r11, r11, r12
    lw   r12, -64(r2)     # W[t-16]
    xor  r11, r11, r12
    slli r12, r11, 1
    srli r11, r11, 31
    or   r11, r11, r12
    sw   r11, 0(r2)
    addi r2, r2, 4
    subi r10, r10, 1
    bne  r10, r0, sha1_sched
    subi r2, r2, 320      # rewind to W[0]
    # ---- load working variables a..e = r5..r9 ----
    lw   r5, 0(r1)
    lw   r6, 4(r1)
    lw   r7, 8(r1)
    lw   r8, 12(r1)
    lw   r9, 16(r1)
{rounds}
    # ---- add back into the state ----
    lw   r11, 0(r1)
    add  r11, r11, r5
    sw   r11, 0(r1)
    lw   r11, 4(r1)
    add  r11, r11, r6
    sw   r11, 4(r1)
    lw   r11, 8(r1)
    add  r11, r11, r7
    sw   r11, 8(r1)
    lw   r11, 12(r1)
    add  r11, r11, r8
    sw   r11, 12(r1)
    lw   r11, 16(r1)
    add  r11, r11, r9
    sw   r11, 16(r1)
    jr   r14
"""


class Sha1Kernel:
    """Host runner for the SHA-1 compression kernel."""

    def __init__(self):
        self.runner = KernelRunner(source())

    def compress(self, state: List[int], block: bytes) -> Tuple[List[int], int]:
        """One compression round: returns (new 5-word state, cycles)."""
        if len(block) != 64:
            raise ValueError("SHA-1 block must be 64 bytes")
        machine = self.runner.machine()
        state_addr = machine.alloc(20)
        machine.write_words(state_addr, state)
        w_addr = machine.alloc(4 * 80)
        words = [int.from_bytes(block[4 * i: 4 * i + 4], "big")
                 for i in range(16)]
        machine.write_words(w_addr, words)
        machine.run("sha1_compress", [state_addr, w_addr])
        return machine.read_words(state_addr, 5), machine.cycles

    def cycles_per_byte(self) -> float:
        """Steady-state hashing cost (one block / 64 bytes)."""
        _, cycles = self.compress([0x67452301, 0xEFCDAB89, 0x98BADCFE,
                                   0x10325476, 0xC3D2E1F0], bytes(64))
        return cycles / 64.0
