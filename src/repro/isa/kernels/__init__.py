"""XT32 assembly kernels for the library leaf routines.

Each kernel exists in a base-ISA variant and (where the formulation
phase produced custom instructions) an extended-ISA variant.  Host-side
runner helpers marshal Python values into simulator memory, execute the
kernel, and return results plus cycle counts; the test suite checks the
kernels bit-exact against the reference Python implementations, and the
characterization phase fits macro-models to their cycle counts.
"""

from repro.isa.assembler import assemble
from repro.isa.machine import Machine


class KernelRunner:
    """Assembles a kernel source once and spawns fresh machines per run."""

    def __init__(self, source: str, extensions=None, mem_size: int = 1 << 20):
        self.source = source
        self.extensions = extensions
        self.mem_size = mem_size
        self.program = assemble(source, extensions)

    def machine(self) -> Machine:
        return Machine(self.program, self.extensions, self.mem_size)
