"""XT32 assembly kernels for the library leaf routines.

Each kernel exists in a base-ISA variant and (where the formulation
phase produced custom instructions) an extended-ISA variant.  Host-side
runner helpers marshal Python values into simulator memory, execute the
kernel, and return results plus cycle counts; the test suite checks the
kernels bit-exact against the reference Python implementations, and the
characterization phase fits macro-models to their cycle counts.
"""

from repro.isa.assembler import assemble
from repro.isa.machine import Machine, MachineFleet

# Base-ISA sources assemble to the same Program every time, so memoize
# them: reconstructing a kernel object (as the characterization jobs
# do per stimulus family) then shares one Program object, which is what
# lets the compiled backend's weak per-Program cache hit instead of
# re-predecoding.  Extended kernels pass an ExtensionSet whose contents
# callers may still grow, so those assemble fresh.
_BASE_PROGRAMS = {}


def _assemble_memo(source: str, extensions):
    if extensions is not None and len(extensions):
        return assemble(source, extensions)
    program = _BASE_PROGRAMS.get(source)
    if program is None:
        program = _BASE_PROGRAMS[source] = assemble(source, None)
    return program


class KernelRunner:
    """Assembles a kernel source once and spawns fresh machines per run."""

    def __init__(self, source: str, extensions=None, mem_size: int = 1 << 20):
        self.source = source
        self.extensions = extensions
        self.mem_size = mem_size
        self.program = _assemble_memo(source, extensions)
        self._fleet = None

    def machine(self) -> Machine:
        return Machine(self.program, self.extensions, self.mem_size)

    def fleet(self) -> MachineFleet:
        """A cached :class:`MachineFleet` for batched runs: machines are
        reused (reset, not reconstructed) across stimulus repetitions."""
        if self._fleet is None:
            self._fleet = MachineFleet(self.program, self.extensions,
                                       self.mem_size)
        return self._fleet
