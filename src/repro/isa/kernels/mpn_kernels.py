"""XT32 assembly kernels for the mpn leaf routines.

Base-ISA variants implement the classic carry-chain loops; extended
variants use the ``vaddc_m`` / ``vmac_m`` ... custom instructions from
:mod:`repro.isa.custom`, processing ``m`` limbs per instruction with a
scalar (1-limb) tail loop.

Calling convention (see :class:`repro.isa.machine.Machine`):
``mpn_add_n(rp, up, vp, n)`` takes the destination pointer in r1,
source pointers in r2/r3 and the limb count in r4; the carry/borrow
comes back in r1.
"""

from typing import List, Tuple

from repro.isa.custom import (make_vaddc, make_vmac, make_vmsub, make_vmul1,
                              make_vsubb)
from repro.isa.extensions import CustomInstruction, ExtensionSet
from repro.isa.kernels import KernelRunner
from repro.isa.machine import Machine

BASE_SOURCE = """
# ---- mpn_add_n: r1=rp r2=up r3=vp r4=n -> r1=carry -----------------
mpn_add_n:
    li   r7, 0
    beq  r4, r0, addn_done
addn_loop:
    lw   r8, 0(r2)
    lw   r9, 0(r3)
    add  r10, r8, r9
    sltu r11, r10, r8
    add  r10, r10, r7
    sltu r12, r10, r7
    or   r7, r11, r12
    sw   r10, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 4
    subi r4, r4, 1
    bne  r4, r0, addn_loop
addn_done:
    mov  r1, r7
    jr   r14

# ---- mpn_sub_n: r1=rp r2=up r3=vp r4=n -> r1=borrow ----------------
mpn_sub_n:
    li   r7, 0
    beq  r4, r0, subn_done
subn_loop:
    lw   r8, 0(r2)
    lw   r9, 0(r3)
    sltu r11, r8, r9
    sub  r10, r8, r9
    sltu r12, r10, r7
    sub  r10, r10, r7
    or   r7, r11, r12
    sw   r10, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 4
    subi r4, r4, 1
    bne  r4, r0, subn_loop
subn_done:
    mov  r1, r7
    jr   r14

# ---- mpn_mul_1: r1=rp r2=up r3=v r4=n -> r1=carry limb -------------
mpn_mul_1:
    li   r7, 0
    beq  r4, r0, mul1_done
mul1_loop:
    lw   r8, 0(r2)
    mul  r9, r8, r3
    mulhu r10, r8, r3
    add  r9, r9, r7
    sltu r11, r9, r7
    add  r7, r10, r11
    sw   r9, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, mul1_loop
mul1_done:
    mov  r1, r7
    jr   r14

# ---- mpn_addmul_1: r1=rp r2=up r3=v r4=n -> r1=carry limb ----------
mpn_addmul_1:
    li   r7, 0
    beq  r4, r0, am1_done
am1_loop:
    lw   r8, 0(r2)
    lw   r9, 0(r1)
    mul  r10, r8, r3
    mulhu r11, r8, r3
    add  r9, r9, r10
    sltu r12, r9, r10
    add  r11, r11, r12
    add  r9, r9, r7
    sltu r12, r9, r7
    add  r7, r11, r12
    sw   r9, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, am1_loop
am1_done:
    mov  r1, r7
    jr   r14

# ---- mpn_submul_1: r1=rp r2=up r3=v r4=n -> r1=borrow limb ---------
mpn_submul_1:
    li   r7, 0
    beq  r4, r0, sm1_done
sm1_loop:
    lw   r8, 0(r2)
    lw   r9, 0(r1)
    mul  r10, r8, r3
    mulhu r11, r8, r3
    add  r10, r10, r7
    sltu r12, r10, r7
    add  r11, r11, r12
    sltu r12, r9, r10
    sub  r9, r9, r10
    add  r7, r11, r12
    sw   r9, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, sm1_loop
sm1_done:
    mov  r1, r7
    jr   r14

# ---- mpn_lshift: r1=rp r2=up r3=count r4=n -> r1=shifted-out bits --
mpn_lshift:
    li   r7, 0
    li   r6, 32
    sub  r6, r6, r3
    beq  r4, r0, lsh_done
lsh_loop:
    lw   r8, 0(r2)
    sll  r9, r8, r3
    or   r9, r9, r7
    srl  r7, r8, r6
    sw   r9, 0(r1)
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, lsh_loop
lsh_done:
    mov  r1, r7
    jr   r14

# ---- divrem_qest: r1=u2 r2=u1 r3=vtop -> r1=qhat -------------------
# Quotient-digit estimate for Knuth D3 via shift-subtract (the XT32,
# like the Xtensa T1040, has no hardware divider).  32 iterations of
# restoring division on the 64-bit value u2:u1.  Precondition (as in
# Knuth's normalized division): u2 < vtop, so the quotient fits a limb.
divrem_qest:
    li   r7, 0          # quotient
    li   r8, 32         # iterations
qest_loop:
    srli r11, r1, 31    # carry-out of the remainder shift
    # shift u2:u1 left by one
    slli r9, r1, 1
    srli r10, r2, 31
    or   r1, r9, r10
    slli r2, r2, 1
    slli r7, r7, 1
    # subtract when the shifted remainder (incl. carry-out) >= vtop
    bne  r11, r0, qest_force
    bltu r1, r3, qest_skip
qest_force:
    sub  r1, r1, r3
    ori  r7, r7, 1
qest_skip:
    subi r8, r8, 1
    bne  r8, r0, qest_loop
    mov  r1, r7
    jr   r14
"""


def ext_source(add_width: int, mac_width: int) -> str:
    """Extended-ISA kernel source at the given instruction widths."""
    return f"""
# ---- extended mpn_add_n (vaddc_{add_width} + scalar tail) ----------
mpn_add_n:
    clrcb
    li   r7, {add_width}
addn_chunk:
    bltu r4, r7, addn_tail
    vaddc_{add_width} r1, r2, r3
    addi r1, r1, {4 * add_width}
    addi r2, r2, {4 * add_width}
    addi r3, r3, {4 * add_width}
    subi r4, r4, {add_width}
    j    addn_chunk
addn_tail:
    beq  r4, r0, addn_done
addn_tail_loop:
    vaddc_1 r1, r2, r3
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 4
    subi r4, r4, 1
    bne  r4, r0, addn_tail_loop
addn_done:
    rdc  r1
    jr   r14

# ---- extended mpn_sub_n --------------------------------------------
mpn_sub_n:
    clrcb
    li   r7, {add_width}
subn_chunk:
    bltu r4, r7, subn_tail
    vsubb_{add_width} r1, r2, r3
    addi r1, r1, {4 * add_width}
    addi r2, r2, {4 * add_width}
    addi r3, r3, {4 * add_width}
    subi r4, r4, {add_width}
    j    subn_chunk
subn_tail:
    beq  r4, r0, subn_done
subn_tail_loop:
    vsubb_1 r1, r2, r3
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, 4
    subi r4, r4, 1
    bne  r4, r0, subn_tail_loop
subn_done:
    rdb  r1
    jr   r14

# ---- extended mpn_mul_1 --------------------------------------------
mpn_mul_1:
    clrcb
    li   r7, {mac_width}
mul1_chunk:
    bltu r4, r7, mul1_tail
    vmul1_{mac_width} r1, r2, r3
    addi r1, r1, {4 * mac_width}
    addi r2, r2, {4 * mac_width}
    subi r4, r4, {mac_width}
    j    mul1_chunk
mul1_tail:
    beq  r4, r0, mul1_done
mul1_tail_loop:
    vmul1_1 r1, r2, r3
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, mul1_tail_loop
mul1_done:
    rdc  r1
    jr   r14

# ---- extended mpn_addmul_1 ----------------------------------------
mpn_addmul_1:
    clrcb
    li   r7, {mac_width}
am1_chunk:
    bltu r4, r7, am1_tail
    vmac_{mac_width} r1, r2, r3
    addi r1, r1, {4 * mac_width}
    addi r2, r2, {4 * mac_width}
    subi r4, r4, {mac_width}
    j    am1_chunk
am1_tail:
    beq  r4, r0, am1_done
am1_tail_loop:
    vmac_1 r1, r2, r3
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, am1_tail_loop
am1_done:
    rdc  r1
    jr   r14

# ---- extended mpn_submul_1 ----------------------------------------
mpn_submul_1:
    clrcb
    li   r7, {mac_width}
sm1_chunk:
    bltu r4, r7, sm1_tail
    vmsub_{mac_width} r1, r2, r3
    addi r1, r1, {4 * mac_width}
    addi r2, r2, {4 * mac_width}
    subi r4, r4, {mac_width}
    j    sm1_chunk
sm1_tail:
    beq  r4, r0, sm1_done
sm1_tail_loop:
    vmsub_1 r1, r2, r3
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    bne  r4, r0, sm1_tail_loop
sm1_done:
    rdb  r1
    jr   r14
"""


def make_clrcb() -> CustomInstruction:
    """Clear the carry and borrow user registers."""

    def semantics(machine, args):
        machine.user_regs["carry"] = 0
        machine.user_regs["borrow"] = 0

    return CustomInstruction(name="clrcb", signature="", semantics=semantics,
                             latency=1, resources={"control": 1},
                             description="clear carry/borrow user registers")


def make_rdc() -> CustomInstruction:
    """rd = carry user register."""

    def semantics(machine, args):
        machine.regs[args[0]] = machine.user_regs.get("carry", 0)

    return CustomInstruction(name="rdc", signature="r", semantics=semantics,
                             latency=1, resources={"control": 1},
                             description="read carry user register")


def make_rdb() -> CustomInstruction:
    """rd = borrow user register."""

    def semantics(machine, args):
        machine.regs[args[0]] = machine.user_regs.get("borrow", 0)

    return CustomInstruction(name="rdb", signature="r", semantics=semantics,
                             latency=1, resources={"control": 1},
                             description="read borrow user register")


def mp_kernel_extensions(add_width: int, mac_width: int) -> ExtensionSet:
    """Extension set required by :func:`ext_source` at the given widths.

    Includes the 1-limb tail variants (hardware-wise these reuse the
    wide units, so their marginal area is control only; the selection
    phase accounts area at the family level).
    """
    ext = ExtensionSet([
        make_clrcb(), make_rdc(), make_rdb(),
        make_vaddc(add_width), make_vsubb(add_width),
        make_vmac(mac_width), make_vmsub(mac_width), make_vmul1(mac_width),
    ])
    if add_width != 1:
        ext.add(make_vaddc(1))
        ext.add(make_vsubb(1))
    if mac_width != 1:
        ext.add(make_vmac(1))
        ext.add(make_vmsub(1))
        ext.add(make_vmul1(1))
    return ext


class MpnKernels:
    """Host-side runners for the mpn kernels (base or extended ISA)."""

    def __init__(self, add_width: int = 0, mac_width: int = 0):
        """Widths of 0 select the base-ISA kernels."""
        self.extended = bool(add_width and mac_width)
        if self.extended:
            extensions = mp_kernel_extensions(add_width, mac_width)
            self.runner = KernelRunner(ext_source(add_width, mac_width),
                                       extensions)
        elif add_width or mac_width:
            raise ValueError("set both widths (extended) or neither (base)")
        else:
            self.runner = KernelRunner(BASE_SOURCE)

    # -- generic vector-op runner -------------------------------------------

    def _run_binary(self, entry: str, up: List[int], vp: List[int],
                    machine=None) -> Tuple[List[int], int, int]:
        if len(up) != len(vp):
            raise ValueError("equal-length operands required")
        if machine is None:
            machine = self.runner.machine()
        n = len(up)
        rp = machine.alloc(4 * n)
        ua = machine.alloc(4 * n)
        va = machine.alloc(4 * n)
        machine.write_words(ua, up)
        machine.write_words(va, vp)
        flag = machine.run(entry, [rp, ua, va, n])
        return machine.read_words(rp, n), flag, machine.cycles

    def _run_scalar(self, entry: str, rp_init: List[int], up: List[int],
                    v: int, machine=None) -> Tuple[List[int], int, int]:
        if machine is None:
            machine = self.runner.machine()
        n = len(up)
        rp = machine.alloc(4 * n)
        ua = machine.alloc(4 * n)
        machine.write_words(rp, rp_init)
        machine.write_words(ua, up)
        flag = machine.run(entry, [rp, ua, v, n])
        return machine.read_words(rp, n), flag, machine.cycles

    # -- public runners (mirror the repro.mp.mpn API) -------------------------
    #
    # ``machine=None`` spawns a fresh machine (the historical behavior);
    # batched callers pass a reset fleet machine, which is bit-identical
    # in results and cycles but skips per-run construction/decoding.

    def add_n(self, up, vp, machine=None):
        return self._run_binary("mpn_add_n", up, vp, machine=machine)

    def sub_n(self, up, vp, machine=None):
        return self._run_binary("mpn_sub_n", up, vp, machine=machine)

    def mul_1(self, up, v, machine=None):
        return self._run_scalar("mpn_mul_1", [0] * len(up), up, v,
                                machine=machine)

    def addmul_1(self, rp, up, v, machine=None):
        return self._run_scalar("mpn_addmul_1", rp, up, v, machine=machine)

    def submul_1(self, rp, up, v, machine=None):
        return self._run_scalar("mpn_submul_1", rp, up, v, machine=machine)

    def lshift(self, up, count, machine=None):
        if self.extended:
            raise NotImplementedError("lshift has no extended variant")
        if machine is None:
            machine = self.runner.machine()
        n = len(up)
        rp = machine.alloc(4 * n)
        ua = machine.alloc(4 * n)
        machine.write_words(ua, up)
        out = machine.run("mpn_lshift", [rp, ua, count, n])
        return machine.read_words(rp, n), out, machine.cycles

    def divrem_qest(self, u2, u1, vtop, machine=None):
        if self.extended:
            raise NotImplementedError("divrem_qest has no extended variant")
        if machine is None:
            machine = self.runner.machine()
        qhat = machine.run("divrem_qest", [u2, u1, vtop])
        return qhat, machine.cycles

    # -- batched execution ----------------------------------------------------

    def batch(self, requests, executor=None):
        """Run many kernel calls against reused (reset) machines.

        ``requests`` is a sequence of ``(method_name, *args)`` tuples,
        e.g. ``("addmul_1", rp, up, v)``; the return value is the list
        of each method's normal return value, in request order.  With
        ``executor`` (serial or thread executors from
        :mod:`repro.parallel`) the batch fans out while each worker
        thread keeps its own machine; process executors are not
        supported here -- characterization parallelizes at the
        stimulus-job level instead.
        """
        fleet = self.runner.fleet()

        def run_one(request):
            return getattr(self, request[0])(*request[1:],
                                             machine=fleet.machine())

        if executor is None:
            return [run_one(request) for request in requests]
        return executor.map(run_one, list(requests), label="mpn.batch")
