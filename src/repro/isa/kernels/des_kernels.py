"""XT32 DES block kernels: optimized base-ISA software and extended ISA.

The base variant is a *well-optimized* software DES in the style the
paper benchmarks against: combined S-box+P lookup tables ("SP boxes"),
the E expansion folded into rotate-and-mask group extraction, and
byte-indexed tables for the initial/final permutations.  The host
precomputes the tables (as a compiler's static data section would);
the identity of the decomposition against the reference bit-level
implementation is asserted in the test suite.

The extended variant uses the ``desld`` / ``desround_s`` / ``desst``
custom instructions with the 16 rounds unrolled.
"""

from typing import List, Tuple

from repro.crypto import bitops
from repro.crypto import des as des_ref
from repro.isa.custom import des_extension_set
from repro.isa.kernels import KernelRunner

# ---------------------------------------------------------------------------
# Host-side table construction (static data for the base kernel)
# ---------------------------------------------------------------------------


def build_sp_tables() -> List[List[int]]:
    """SP[i][g]: P(S_i applied to raw E-group g) placed at nibble i."""
    return [[bitops.bit_permute(
        des_ref._SBOXES[i][des_ref._sbox_index(g)] << (28 - 4 * i),
        des_ref._P, 32) for g in range(64)] for i in range(8)]


def build_perm_byte_table(table: List[int]) -> List[List[int]]:
    """perm_tab[b][v]: 64-bit permutation output contribution of input
    byte ``b`` (0 = most significant) holding value ``v``."""
    return [[bitops.bit_permute(v << (8 * (7 - b)), table, 64)
             for v in range(256)] for b in range(8)]


def schedule_group_bytes(key: bytes) -> List[bytes]:
    """Round subkeys as 8 raw 6-bit group bytes each (base kernel form)."""
    subkeys = des_ref.Des(key).subkeys
    return [bytes((k >> (42 - 6 * i)) & 0x3F for i in range(8))
            for k in subkeys]


def schedule_words(key: bytes) -> List[Tuple[int, int]]:
    """Round subkeys as (upper 16 bits, lower 32 bits) word pairs
    (the form the ``desround`` custom instruction reads)."""
    subkeys = des_ref.Des(key).subkeys
    return [((k >> 32) & 0xFFFF, k & 0xFFFFFFFF) for k in subkeys]


# ---------------------------------------------------------------------------
# Base-ISA kernel
# ---------------------------------------------------------------------------

def _group_block(i: int) -> str:
    """Assembly for Feistel group ``i``: extract, key-mix, SP lookup."""
    s = (4 * i - 1) % 32
    return f"""
    slli r11, r8, {s}
    srli r12, r8, {32 - s}
    or   r11, r11, r12
    srli r11, r11, 26
    lb   r12, {i}(r3)
    xor  r11, r11, r12
    slli r11, r11, 2
    add  r11, r11, r4
    lw   r12, {i * 256}(r11)
    xor  r9, r9, r12
"""


def _perm_byte_block(b: int, table_reg: str, hi_src: str, lo_src: str) -> str:
    """Assembly for one byte of a table-driven 64-bit permutation.

    Accumulates into r9 (hi) / r11 (lo); r12/r15 are scratch.
    """
    if b < 4:
        extract = f"    srli r12, {hi_src}, {24 - 8 * b}\n"
    elif b < 7:
        extract = f"    srli r12, {lo_src}, {24 - 8 * (b - 4)}\n"
    else:
        extract = f"    mov  r12, {lo_src}\n"
    return (extract
            + "    andi r12, r12, 255\n"
            + "    slli r12, r12, 3\n"
            + f"    addi r12, r12, {b * 2048}\n"
            + f"    add  r12, r12, {table_reg}\n"
            + "    lw   r15, 0(r12)\n"
            + "    or   r9, r9, r15\n"
            + "    lw   r15, 4(r12)\n"
            + "    or   r11, r11, r15\n")


def base_source() -> str:
    """des_encrypt: r1=in r2=out r3=subkeys(16x8B) r4=SP r5=IPtab r6=FPtab."""
    rounds = "".join(_group_block(i) for i in range(8))
    ip_bytes = "".join(
        "    lb   r12, {b}(r1)\n".format(b=b)
        + "    slli r12, r12, 3\n"
        + f"    addi r12, r12, {b * 2048}\n"
        + "    add  r12, r12, r5\n"
        + "    lw   r15, 0(r12)\n"
        + "    or   r7, r7, r15\n"
        + "    lw   r15, 4(r12)\n"
        + "    or   r8, r8, r15\n"
        for b in range(8))
    fp_bytes = "".join(_perm_byte_block(b, "r6", "r8", "r7") for b in range(8))
    return f"""
des_encrypt:
    # ---- initial permutation via byte tables; L -> r7, R -> r8 ----
    li   r7, 0
    li   r8, 0
{ip_bytes}
    # ---- 16 Feistel rounds with SP-box lookups ----
    li   r10, 16
round_loop:
    li   r9, 0
{rounds}
    xor  r11, r7, r9      # newR = L xor f(R, K)
    mov  r7, r8           # L = R
    mov  r8, r11
    addi r3, r3, 8
    subi r10, r10, 1
    bne  r10, r0, round_loop
    # ---- final permutation (preoutput = R:L) into r9:r11 ----
    li   r9, 0
    li   r11, 0
{fp_bytes}
    # ---- store big-endian ----
    srli r12, r9, 24
    sb   r12, 0(r2)
    srli r12, r9, 16
    sb   r12, 1(r2)
    srli r12, r9, 8
    sb   r12, 2(r2)
    sb   r9, 3(r2)
    srli r12, r11, 24
    sb   r12, 4(r2)
    srli r12, r11, 16
    sb   r12, 5(r2)
    srli r12, r11, 8
    sb   r12, 6(r2)
    sb   r11, 7(r2)
    jr   r14
"""


def ext_source(sbox_units: int = 8) -> str:
    """des_encrypt: r1=in r2=out r3=subkeys(16 x 2 words), fully unrolled."""
    rounds = "".join(
        f"    desround_{sbox_units} r3, {8 * r}\n"
        for r in range(16))
    return f"""
des_encrypt:
    desld r1
{rounds}
    desst r2
    jr   r14
"""


# ---------------------------------------------------------------------------
# Host runners
# ---------------------------------------------------------------------------

class DesKernel:
    """DES / 3DES block encryption on the simulator (base or extended)."""

    def __init__(self, extended: bool = False, sbox_units: int = 8):
        self.extended = extended
        if extended:
            self.runner = KernelRunner(ext_source(sbox_units),
                                       des_extension_set(sbox_units))
        else:
            self.runner = KernelRunner(base_source())
            self._sp = [w for tab in build_sp_tables() for w in tab]
            self._ip_tab = build_perm_byte_table(des_ref._IP)
            self._fp_tab = build_perm_byte_table(des_ref._FP)

    # -- memory staging -------------------------------------------------------

    def _stage_tables(self, machine):
        sp = machine.alloc(4 * len(self._sp))
        machine.write_words(sp, self._sp)
        ip = machine.alloc(8 * 256 * 8)
        fp = machine.alloc(8 * 256 * 8)
        for base_addr, tab in ((ip, self._ip_tab), (fp, self._fp_tab)):
            for b in range(8):
                for v in range(256):
                    entry = tab[b][v]
                    addr = base_addr + (b * 256 + v) * 8
                    machine.write_word(addr, (entry >> 32) & 0xFFFFFFFF)
                    machine.write_word(addr + 4, entry & 0xFFFFFFFF)
        return sp, ip, fp

    def _stage_schedule(self, machine, key: bytes, decrypt: bool) -> int:
        if self.extended:
            words = schedule_words(key)
            if decrypt:
                words = words[::-1]
            addr = machine.alloc(8 * 16)
            for i, (hi, lo) in enumerate(words):
                machine.write_word(addr + 8 * i, hi)
                machine.write_word(addr + 8 * i + 4, lo)
        else:
            groups = schedule_group_bytes(key)
            if decrypt:
                groups = groups[::-1]
            addr = machine.alloc(8 * 16)
            machine.write_bytes(addr, b"".join(groups))
        return addr

    # -- block operations ------------------------------------------------------

    def crypt_block(self, block: bytes, key: bytes,
                    decrypt: bool = False) -> Tuple[bytes, int]:
        """Encrypt/decrypt one 8-byte block; returns (output, cycles)."""
        machine = self.runner.machine()
        ks = self._stage_schedule(machine, key, decrypt)
        in_addr = machine.alloc(8)
        out_addr = machine.alloc(8)
        machine.write_bytes(in_addr, block)
        args = [in_addr, out_addr, ks]
        if not self.extended:
            sp, ip, fp = self._stage_tables(machine)
            args += [sp, ip, fp]
        machine.run("des_encrypt", args)
        return machine.read_bytes(out_addr, 8), machine.cycles

    def crypt_3des_block(self, block: bytes, key: bytes,
                         decrypt: bool = False) -> Tuple[bytes, int]:
        """EDE Triple-DES on one block (three passes, cycles accumulated)."""
        if len(key) == 16:
            key = key + key[:8]
        k1, k2, k3 = key[0:8], key[8:16], key[16:24]
        machine = self.runner.machine()
        if not self.extended:
            tables = self._stage_tables(machine)
        buf_a = machine.alloc(8)
        buf_b = machine.alloc(8)
        machine.write_bytes(buf_a, block)
        passes = ([(k1, False), (k2, True), (k3, False)] if not decrypt
                  else [(k3, True), (k2, False), (k1, True)])
        src, dst = buf_a, buf_b
        for pass_key, pass_dec in passes:
            ks = self._stage_schedule(machine, pass_key, pass_dec)
            args = [src, dst, ks]
            if not self.extended:
                args += list(tables)
            machine.run("des_encrypt", args)
            src, dst = dst, src
        return machine.read_bytes(src, 8), machine.cycles

    def cycles_per_byte(self, blocks: int = 4, triple: bool = False) -> float:
        """Steady-state cycles/byte over a few blocks (key staged once)."""
        key = bytes.fromhex("133457799BBCDFF1") * (3 if triple else 1)
        total = 0
        prev = 0
        data = bytes(range(8))
        for i in range(blocks):
            block = bytes((b + i) & 0xFF for b in data)
            if triple:
                _, cycles = self.crypt_3des_block(block, key)
            else:
                _, cycles = self.crypt_block(block, key)
            total += cycles - prev
            prev = 0  # fresh machine per call; cycles are per-call already
        return total / (8 * blocks)
