"""XT32 MD5 compression kernel (base ISA only).

Like SHA-1, MD5 belongs to the unaccelerated miscellaneous SSL
workload; the kernel exists so the ``md5_compress`` macro-model is a
measurement rather than an alias.  The four round groups share a
common tail subroutine (constant add, message fetch, rotate, chain);
each group contributes its own boolean function and message-index
pattern, with the K and S tables staged in memory by the host.
"""

import math
from typing import List, Tuple

from repro.isa.kernels import KernelRunner

#: RFC 1321 shift amounts.
_S = ([7, 12, 17, 22] * 4) + ([5, 9, 14, 20] * 4) \
    + ([4, 11, 16, 23] * 4) + ([6, 10, 15, 21] * 4)
#: K[i] = floor(2^32 * |sin(i+1)|).
_K = [int(abs(math.sin(i + 1)) * (1 << 32)) & 0xFFFFFFFF for i in range(64)]

_GROUPS = [
    # (f(b,c,d) into r10, g-index computation from i (r9) into r11)
    ("""    and  r10, r6, r7
    xori r11, r6, -1
    and  r11, r11, r8
    or   r10, r10, r11
    mov  r11, r9
""", 0),
    ("""    and  r10, r8, r6
    xori r11, r8, -1
    and  r11, r11, r7
    or   r10, r10, r11
    slli r11, r9, 2
    add  r11, r11, r9
    addi r11, r11, 1
    andi r11, r11, 15
""", 1),
    ("""    xor  r10, r6, r7
    xor  r10, r10, r8
    slli r11, r9, 1
    add  r11, r11, r9
    addi r11, r11, 5
    andi r11, r11, 15
""", 2),
    ("""    xori r10, r8, -1
    or   r10, r6, r10
    xor  r10, r7, r10
    slli r11, r9, 3
    sub  r11, r11, r9
    andi r11, r11, 15
""", 3),
]


def source() -> str:
    """md5_compress: r1=state(4 words) r2=M(16 words, LE)
    r3=K table(64 words) r4=S table(64 bytes)."""
    groups = ""
    for idx, (f_code, _) in enumerate(_GROUPS):
        groups += f"""
md5_group{idx}:
{f_code}    jal  md5_tail
    andi r12, r9, 15
    bne  r12, r0, md5_group{idx}
"""
    return f"""
md5_compress:
    subi r13, r13, 4      # preserve the caller's return address
    sw   r14, 0(r13)
    lw   r5, 0(r1)        # a
    lw   r6, 4(r1)        # b
    lw   r7, 8(r1)        # c
    lw   r8, 12(r1)       # d
    li   r9, 0            # round counter
{groups}
    # ---- add back into the state ----
    lw   r10, 0(r1)
    add  r10, r10, r5
    sw   r10, 0(r1)
    lw   r10, 4(r1)
    add  r10, r10, r6
    sw   r10, 4(r1)
    lw   r10, 8(r1)
    add  r10, r10, r7
    sw   r10, 8(r1)
    lw   r10, 12(r1)
    add  r10, r10, r8
    sw   r10, 12(r1)
    lw   r14, 0(r13)
    addi r13, r13, 4
    jr   r14

# ---- shared round tail: f in r10, message index g in r11 ------------
md5_tail:
    add  r10, r10, r5     # + a
    slli r12, r9, 2
    add  r12, r12, r3
    lw   r12, 0(r12)      # K[i]
    add  r10, r10, r12
    slli r11, r11, 2
    add  r11, r11, r2
    lw   r11, 0(r11)      # M[g]
    add  r10, r10, r11
    mov  r5, r8           # a = d
    mov  r8, r7           # d = c
    mov  r7, r6           # c = b
    add  r11, r9, r4
    lb   r11, 0(r11)      # S[i]
    sll  r12, r10, r11
    li   r10, 32
    sub  r10, r10, r11
    srl  r10, r12, r0     # placeholder overwritten below
    jr   r14
"""


class Md5Kernel:
    """Host runner for the MD5 compression kernel."""

    def __init__(self):
        self.runner = KernelRunner(self._fixed_source())

    @staticmethod
    def _fixed_source() -> str:
        # The rotate in md5_tail needs the pre-shift value; express it
        # fully here rather than patching the template above.
        src = source()
        broken = ("    sll  r12, r10, r11\n"
                  "    li   r10, 32\n"
                  "    sub  r10, r10, r11\n"
                  "    srl  r10, r12, r0     # placeholder overwritten below\n"
                  "    jr   r14\n")
        fixed = ("    sll  r12, r10, r11\n"
                 "    li   r15, 32\n"
                 "    sub  r15, r15, r11\n"
                 "    srl  r10, r10, r15\n"
                 "    or   r10, r10, r12\n"
                 "    add  r6, r6, r10      # b += rotl(f, S[i])\n"
                 "    addi r9, r9, 1\n"
                 "    jr   r14\n")
        if broken not in src:  # pragma: no cover - template guard
            raise RuntimeError("md5 kernel template out of sync")
        return src.replace(broken, fixed)

    def compress(self, state: List[int], block: bytes) -> Tuple[List[int], int]:
        """One compression round; returns (new 4-word state, cycles)."""
        if len(block) != 64:
            raise ValueError("MD5 block must be 64 bytes")
        machine = self.runner.machine()
        state_addr = machine.alloc(16)
        machine.write_words(state_addr, state)
        m_addr = machine.alloc(64)
        machine.write_words(m_addr, [
            int.from_bytes(block[4 * i: 4 * i + 4], "little")
            for i in range(16)])
        k_addr = machine.alloc(4 * 64)
        machine.write_words(k_addr, _K)
        s_addr = machine.alloc(64)
        machine.write_bytes(s_addr, bytes(_S))
        machine.run("md5_compress", [state_addr, m_addr, k_addr, s_addr])
        return machine.read_words(state_addr, 4), machine.cycles

    def cycles_per_byte(self) -> float:
        _, cycles = self.compress([0x67452301, 0xEFCDAB89, 0x98BADCFE,
                                   0x10325476], bytes(64))
        return cycles / 64.0
