"""XT32 KASUMI block kernel (base ISA).

A well-optimized software KASUMI in the style the paper benchmarks
against: the S7/S9 S-boxes as word lookup tables, the FI/FL/FO round
functions emitted inline with the 8 rounds fully unrolled, and the key
schedule precomputed on the host (as a compiler's static data section
would).  Like RC4, KASUMI has no TIE-accelerated variant -- the
kernel's measured cycles/byte is what the registered ``kasumi``
link-layer protocol model charges on *both* platforms.

Block-for-block identity against the pure-Python reference
(:class:`repro.crypto.kasumi.Kasumi`) is asserted in the test suite.
"""

from typing import List, Tuple

from repro.crypto.kasumi import S7, S9, Kasumi
from repro.isa.kernels import KernelRunner

# Per-round subkey words, 8 per round, at these offsets from the
# round's base (= 32 * round_index) in the staged schedule.
_KL1, _KL2, _KO1, _KO2, _KO3, _KI1, _KI2, _KI3 = (
    0, 4, 8, 12, 16, 20, 24, 28)


def schedule_words(key: bytes) -> List[int]:
    """The 64-word staged key schedule (8 rounds x 8 subkey words)."""
    words = []
    for rk in Kasumi.key_schedule(key):
        words.extend([rk["KL1"], rk["KL2"], rk["KO1"], rk["KO2"],
                      rk["KO3"], rk["KI1"], rk["KI2"], rk["KI3"]])
    return words


# ---------------------------------------------------------------------------
# Assembly emitters.  Register plan: r1=in r2=out r3=schedule r4=S7
# r5=S9 r6=left r7=right r9/r10=working halves r11-r13,r15=scratch.
# ---------------------------------------------------------------------------

def _fi_block(ki_off: int) -> str:
    """FI over the 16-bit value in r11 with KI at ``ki_off``(r3).

    Two S9/S7 stages with the key mix between; clobbers r12/r13/r15
    only, leaving the FO halves in r9/r10 untouched.
    """
    return f"""
    lw   r12, {ki_off}(r3)
    srli r13, r11, 7
    andi r11, r11, 127
    slli r13, r13, 2
    add  r13, r13, r5
    lw   r13, 0(r13)
    xor  r13, r13, r11      # nine = S9[nine] ^ seven
    slli r15, r11, 2
    add  r15, r15, r4
    lw   r11, 0(r15)
    andi r15, r13, 127
    xor  r11, r11, r15      # seven = S7[seven] ^ (nine & 127)
    srli r15, r12, 9
    xor  r11, r11, r15      # seven ^= KI >> 9
    andi r15, r12, 511
    xor  r13, r13, r15      # nine ^= KI & 511
    slli r15, r13, 2
    add  r15, r15, r5
    lw   r13, 0(r15)
    xor  r13, r13, r11      # nine = S9[nine] ^ seven
    slli r15, r11, 2
    add  r15, r15, r4
    lw   r11, 0(r15)
    andi r15, r13, 127
    xor  r11, r11, r15      # seven = S7[seven] ^ (nine & 127)
    slli r11, r11, 9
    or   r11, r11, r13      # (seven << 9) | nine
"""


def _fo_block(base: int) -> str:
    """FO over the halves (r9 hi, r10 lo) for the round at ``base``.

    Leaves the result halves as r10 (hi) / r9 (lo) -- FO swaps them.
    """
    return f"""
    lw   r12, {base + _KO1}(r3)
    xor  r11, r9, r12
{_fi_block(base + _KI1)}
    xor  r9, r11, r10       # left = FI(left ^ KO1, KI1) ^ right
    lw   r12, {base + _KO2}(r3)
    xor  r11, r10, r12
{_fi_block(base + _KI2)}
    xor  r10, r11, r9       # right = FI(right ^ KO2, KI2) ^ left
    lw   r12, {base + _KO3}(r3)
    xor  r11, r9, r12
{_fi_block(base + _KI3)}
    xor  r9, r11, r10       # left = FI(left ^ KO3, KI3) ^ right
"""


def _fl_block(l_reg: str, r_reg: str, base: int) -> str:
    """FL in place on (``l_reg`` hi, ``r_reg`` lo) for the round at
    ``base`` (one-bit rotates of AND/OR key mixes)."""
    return f"""
    lw   r12, {base + _KL1}(r3)
    and  r11, {l_reg}, r12
    slli r13, r11, 1
    srli r11, r11, 15
    or   r11, r11, r13
    andi r11, r11, 65535
    xor  {r_reg}, {r_reg}, r11     # right ^= ROL1(left & KL1)
    lw   r12, {base + _KL2}(r3)
    or   r11, {r_reg}, r12
    slli r13, r11, 1
    srli r11, r11, 15
    or   r11, r11, r13
    andi r11, r11, 65535
    xor  {l_reg}, {l_reg}, r11     # left ^= ROL1(right | KL2)
"""


def _round_pair(n: int) -> str:
    """Rounds ``n`` (odd, FL then FO) and ``n+1`` (even, FO then FL)."""
    odd, even = 32 * n, 32 * (n + 1)
    return f"""
    # ---- round {n + 1}: right ^= FO(FL(left)) ----
    srli r9, r6, 16
    andi r10, r6, 65535
{_fl_block("r9", "r10", odd)}
{_fo_block(odd)}
    slli r11, r10, 16
    or   r11, r11, r9
    xor  r7, r7, r11
    # ---- round {n + 2}: left ^= FL(FO(right)) ----
    srli r9, r7, 16
    andi r10, r7, 65535
{_fo_block(even)}
{_fl_block("r10", "r9", even)}
    slli r11, r10, 16
    or   r11, r11, r9
    xor  r6, r6, r11
"""


def base_source() -> str:
    """kasumi_encrypt: r1=in r2=out r3=schedule(64 words) r4=S7 r5=S9."""
    load = "".join(
        f"    lb   r11, {b}(r1)\n"
        f"    slli {reg}, {reg}, 8\n"
        f"    or   {reg}, {reg}, r11\n"
        for reg, byte_range in (("r6", range(4)), ("r7", range(4, 8)))
        for b in byte_range)
    rounds = "".join(_round_pair(n) for n in (0, 2, 4, 6))
    store = "".join(
        f"    srli r11, {reg}, {shift}\n"
        f"    sb   r11, {b}(r2)\n" if shift else
        f"    sb   {reg}, {b}(r2)\n"
        for reg, base_b in (("r6", 0), ("r7", 4))
        for b, shift in ((base_b, 24), (base_b + 1, 16),
                         (base_b + 2, 8), (base_b + 3, 0)))
    return f"""
kasumi_encrypt:
    li   r6, 0
    li   r7, 0
{load}
{rounds}
{store}
    jr   r14
"""


# ---------------------------------------------------------------------------
# Host runner
# ---------------------------------------------------------------------------

class KasumiKernel:
    """KASUMI block encryption on the simulator (base ISA only)."""

    def __init__(self):
        self.runner = KernelRunner(base_source())

    def _stage_tables(self, machine) -> Tuple[int, int]:
        s7 = machine.alloc(4 * len(S7))
        machine.write_words(s7, list(S7))
        s9 = machine.alloc(4 * len(S9))
        machine.write_words(s9, list(S9))
        return s7, s9

    def crypt_block(self, block: bytes, key: bytes) -> Tuple[bytes, int]:
        """Encrypt one 8-byte block; returns (ciphertext, cycles)."""
        machine = self.runner.machine()
        ks = machine.alloc(4 * 64)
        machine.write_words(ks, schedule_words(key))
        s7, s9 = self._stage_tables(machine)
        in_addr = machine.alloc(8)
        out_addr = machine.alloc(8)
        machine.write_bytes(in_addr, block)
        machine.run("kasumi_encrypt", [in_addr, out_addr, ks, s7, s9])
        return machine.read_bytes(out_addr, 8), machine.cycles

    def cycles_per_byte(self, blocks: int = 4) -> float:
        """Steady-state cycles/byte over a few blocks."""
        key = bytes.fromhex("2BD6459F82C5B300952C49104881FF48")
        data = bytes(range(8))
        total = 0
        for i in range(blocks):
            block = bytes((b + i) & 0xFF for b in data)
            _, cycles = self.crypt_block(block, key)
            total += cycles
        return total / (8 * blocks)
