"""A complete Montgomery modular exponentiation on the XT32 simulator.

This is the reproduction's end-to-end public-key ISS workload: a
left-to-right binary square-and-multiply in the Montgomery domain,
composed from the mpn kernels (``mpn_mul_1`` / ``mpn_addmul_1`` /
``mpn_sub_n``) via subroutine calls.  It serves three purposes:

1. **Figure 4** -- running it under the profiler yields the annotated
   call graph (modexp -> mont_mul -> mul_basecase -> mpn_addmul_1 ...)
   with call counts and local cycles.
2. **Section 4.3** -- its ISS cycle count is the ground truth that the
   macro-model estimate (native run of the same algorithm with fitted
   per-routine models) is validated against, and its ISS wall-clock
   time is the cost that macro-modeling is shown to avoid.
3. **Table 1 (RSA rows)** -- base-vs-extended ISS runs give the
   hardware component of the RSA speedup.

The driver works for any limb count k; the host supplies a context
block and pre-computed Montgomery constants (m', R^2 mod m).

Context block layout (word offsets):
    0: k (limbs)        4: m'              8: &m        12: &exp
   16: exponent bits   20: &x (accum)     24: &base    28: &t (2k+2)
   32: &r2             36: &scratch (k+1)
"""

from typing import Tuple

from repro.isa.kernels import KernelRunner
from repro.isa.kernels import mpn_kernels
from repro.mp import Mpz, mpn
from repro.mp.limb import RADIX32

MONT_MUL_BASE = """
# ===== mont_mul: r1=&dst r2=&a r3=&b (k limbs each); ctx in memory =====
# Computes dst = REDC(a*b).  Uses the t scratch buffer from the context.
# Context pointer lives at a fixed stack slot set up by modexp.
mont_mul:
    subi r13, r13, 32
    sw   r14, 0(r13)
    sw   r1, 4(r13)          # &dst
    sw   r2, 8(r13)          # &a
    sw   r3, 12(r13)         # &b
    sw   r4, 24(r13)         # &ctx (callees clobber r4)
    # ---- zero t[0 .. 2k+1] ----
    lw   r5, 28(r4)          # &t
    lw   r6, 0(r4)           # k
    slli r7, r6, 1
    addi r7, r7, 2           # 2k+2 words
zero_loop:
    sw   r0, 0(r5)
    addi r5, r5, 4
    subi r7, r7, 1
    bne  r7, r0, zero_loop
    # ---- t = a * b (schoolbook: k calls to mpn_addmul_1) ----
    li   r8, 0               # j
mul_col_loop:
    lw   r6, 0(r4)           # k
    bgeu r8, r6, mul_done
    sw   r8, 16(r13)         # save j
    lw   r1, 28(r4)          # t
    slli r9, r8, 2
    add  r1, r1, r9          # rp = t + 4j
    lw   r2, 8(r13)          # up = a
    lw   r3, 12(r13)         # &b
    add  r3, r3, r9
    lw   r3, 0(r3)           # v = b[j]
    mov  r4, r6              # n = k  (r4 repurposed as arg!)
    jal  mpn_addmul_1
    # store carry at t[j+k]
    lw   r4, 24(r13)         # restore &ctx (see modexp prologue)
    lw   r8, 16(r13)         # j
    lw   r6, 0(r4)           # k
    add  r9, r8, r6
    slli r9, r9, 2
    lw   r10, 28(r4)         # t
    add  r9, r9, r10
    lw   r10, 0(r9)
    add  r10, r10, r1        # += carry (cannot overflow: t[j+k] was 0..)
    sw   r10, 0(r9)
    addi r8, r8, 1
    j    mul_col_loop
mul_done:
    # ---- REDC: for i in 0..k-1: u = t[i]*m'; t += u*m << i ----
    li   r8, 0               # i
redc_loop:
    lw   r6, 0(r4)           # k
    bgeu r8, r6, redc_final
    sw   r8, 16(r13)
    lw   r10, 28(r4)         # t
    slli r9, r8, 2
    add  r10, r10, r9
    lw   r11, 0(r10)         # t[i]
    lw   r12, 4(r4)          # m'
    mul  r3, r11, r12        # u
    mov  r1, r10             # rp = t + 4i
    lw   r2, 8(r4)           # up = m
    mov  r4, r6              # n = k
    jal  mpn_addmul_1
    lw   r4, 24(r13)         # &ctx
    lw   r8, 16(r13)         # i
    # propagate carry (r1) into t[i+k], t[i+k+1], ...
    lw   r6, 0(r4)
    add  r9, r8, r6
    slli r9, r9, 2
    lw   r10, 28(r4)
    add  r9, r9, r10         # &t[i+k]
carry_loop:
    beq  r1, r0, carry_done
    lw   r10, 0(r9)
    add  r10, r10, r1
    sltu r1, r10, r1         # carry out
    sw   r10, 0(r9)
    addi r9, r9, 4
    j    carry_loop
carry_done:
    addi r8, r8, 1
    j    redc_loop
redc_final:
    # ---- result = t[k .. 2k); subtract m if (t[2k] or result >= m) ----
    lw   r6, 0(r4)           # k
    lw   r7, 28(r4)          # t
    slli r9, r6, 2
    add  r7, r7, r9          # &t[k]
    slli r9, r6, 3
    lw   r10, 28(r4)
    add  r10, r10, r9        # &t[2k]
    lw   r10, 0(r10)
    bne  r10, r0, do_subtract
    # compare t[k..2k) with m from the top limb down
    lw   r11, 8(r4)          # &m
    mov  r12, r6             # idx = k
cmp_loop:
    beq  r12, r0, do_subtract    # equal -> subtract
    subi r12, r12, 1
    slli r9, r12, 2
    add  r10, r7, r9
    lw   r10, 0(r10)         # t[k+idx]
    add  r15, r11, r9
    lw   r15, 0(r15)         # m[idx]
    bltu r10, r15, no_subtract
    bltu r15, r10, do_subtract
    j    cmp_loop
do_subtract:
    lw   r1, 4(r13)          # dst
    mov  r2, r7              # t[k..]
    lw   r3, 8(r4)           # m
    mov  r4, r6              # n = k
    jal  mpn_sub_n
    lw   r4, 24(r13)
    j    mont_done
no_subtract:
    # copy t[k..2k) to dst
    lw   r1, 4(r13)
    mov  r12, r6
copy_loop:
    beq  r12, r0, mont_done
    lw   r10, 0(r7)
    sw   r10, 0(r1)
    addi r7, r7, 4
    addi r1, r1, 4
    subi r12, r12, 1
    j    copy_loop
mont_done:
    lw   r14, 0(r13)
    addi r13, r13, 32
    jr   r14
"""

MODEXP_SECTION = """
# ===== modexp: r1 = &ctx ==============================================
# x (accumulator, pre-seeded by the host with R mod m via REDC(R^2))
# is raised in the Montgomery domain; the final REDC back to the
# normal domain is performed by mont_mul against the host-provided
# one vector (scratch holds 1, 0, 0, ...).
modexp:
    subi r13, r13, 32
    sw   r14, 0(r13)
    mov  r4, r1              # &ctx in r4
    sw   r4, 28(r13)         # own slot (24 is mont_mul's convention)
    # convert base to the Montgomery domain: base = REDC(base * R^2)
    lw   r1, 24(r4)          # &base
    lw   r2, 24(r4)
    lw   r3, 32(r4)          # &r2
    jal  mont_mul
    lw   r4, 28(r13)
    # main left-to-right binary loop over exponent bits
    lw   r8, 16(r4)          # bit index = ebits
exp_loop:
    beq  r8, r0, exp_done
    subi r8, r8, 1
    sw   r8, 8(r13)
    # x = mont_mul(x, x)
    lw   r1, 20(r4)
    lw   r2, 20(r4)
    lw   r3, 20(r4)
    jal  mont_mul
    lw   r4, 28(r13)
    lw   r8, 8(r13)
    # test exponent bit r8
    srli r9, r8, 5           # word index
    slli r9, r9, 2
    lw   r10, 12(r4)         # &exp
    add  r10, r10, r9
    lw   r10, 0(r10)
    andi r11, r8, 31
    srl  r10, r10, r11
    andi r10, r10, 1
    beq  r10, r0, exp_loop
    # x = mont_mul(x, base)
    lw   r1, 20(r4)
    lw   r2, 20(r4)
    lw   r3, 24(r4)
    jal  mont_mul
    lw   r4, 28(r13)
    lw   r8, 8(r13)
    j    exp_loop
exp_done:
    # convert out of the Montgomery domain: x = REDC(x * 1)
    lw   r1, 20(r4)
    lw   r2, 20(r4)
    lw   r3, 36(r4)          # &one
    jal  mont_mul
    lw   r14, 0(r13)
    addi r13, r13, 32
    jr   r14
"""


def mont_mul_ext(mac_width: int) -> str:
    """Extended-ISA mont_mul using the fused row instructions.

    Each schoolbook row is one ``macrow`` instruction and each REDC
    iteration one ``montrow``; only the final conditional subtract
    still calls the (extended) ``mpn_sub_n`` kernel.
    """
    return f"""
mont_mul:
    subi r13, r13, 32
    sw   r14, 0(r13)
    sw   r1, 4(r13)          # &dst
    sw   r2, 8(r13)          # &a
    sw   r3, 12(r13)         # &b
    sw   r4, 24(r13)         # &ctx
    # configure the Montgomery datapath user registers
    lw   r5, 4(r4)           # m'
    lw   r6, 0(r4)           # k
    montcfg r5, r6
    lw   r5, 28(r4)          # &t
    vzero r5
    # ---- t = a * b: one macrow per multiplier limb ----
    li   r8, 0
emul_loop:
    bgeu r8, r6, emul_done
    slli r9, r8, 2
    lw   r10, 28(r4)
    add  r10, r10, r9        # &t[j]
    lw   r11, 12(r13)        # &b
    add  r11, r11, r9
    lw   r11, 0(r11)         # b[j]
    lw   r12, 8(r13)         # &a
    macrow_{mac_width} r10, r12, r11
    addi r8, r8, 1
    j    emul_loop
emul_done:
    # ---- REDC: one montrow per iteration ----
    li   r8, 0
eredc_loop:
    bgeu r8, r6, eredc_done
    slli r9, r8, 2
    lw   r10, 28(r4)
    add  r10, r10, r9        # &t[i]
    lw   r12, 8(r4)          # &m
    montrow_{mac_width} r10, r12
    addi r8, r8, 1
    j    eredc_loop
eredc_done:
    # ---- result = t[k .. 2k); subtract m if needed (as base) ----
    lw   r6, 0(r4)           # k
    lw   r7, 28(r4)          # t
    slli r9, r6, 2
    add  r7, r7, r9          # &t[k]
    slli r9, r6, 3
    lw   r10, 28(r4)
    add  r10, r10, r9
    lw   r10, 0(r10)         # t[2k]
    bne  r10, r0, edo_subtract
    lw   r11, 8(r4)          # &m
    mov  r12, r6
ecmp_loop:
    beq  r12, r0, edo_subtract
    subi r12, r12, 1
    slli r9, r12, 2
    add  r10, r7, r9
    lw   r10, 0(r10)
    add  r15, r11, r9
    lw   r15, 0(r15)
    bltu r10, r15, eno_subtract
    bltu r15, r10, edo_subtract
    j    ecmp_loop
edo_subtract:
    lw   r1, 4(r13)
    mov  r2, r7
    lw   r3, 8(r4)
    mov  r4, r6
    jal  mpn_sub_n
    lw   r4, 24(r13)
    j    emont_done
eno_subtract:
    lw   r1, 4(r13)
    mov  r12, r6
ecopy_loop:
    beq  r12, r0, emont_done
    lw   r10, 0(r7)
    sw   r10, 0(r1)
    addi r7, r7, 4
    addi r1, r1, 4
    subi r12, r12, 1
    j    ecopy_loop
emont_done:
    lw   r14, 0(r13)
    addi r13, r13, 32
    jr   r14
"""


class ModExpKernel:
    """Host runner for the full ISS modular exponentiation."""

    def __init__(self, add_width: int = 0, mac_width: int = 0):
        """Widths of 0 run on the base ISA; otherwise the extended ISA."""
        self.extended = bool(add_width and mac_width)
        if self.extended:
            from repro.isa.custom import (make_macrow, make_montcfg,
                                          make_montrow, make_vzero)
            extensions = mpn_kernels.mp_kernel_extensions(add_width, mac_width)
            for instr in (make_montcfg(), make_macrow(mac_width),
                          make_montrow(mac_width), make_vzero()):
                extensions.add(instr)
            source = (mont_mul_ext(mac_width) + MODEXP_SECTION
                      + mpn_kernels.ext_source(add_width, mac_width))
        else:
            extensions = None
            source = (MONT_MUL_BASE + MODEXP_SECTION
                      + mpn_kernels.BASE_SOURCE)
        self.runner = KernelRunner(source, extensions, mem_size=1 << 20)

    def powm(self, base: int, exponent: int, modulus: int
             ) -> Tuple[int, int, object]:
        """Compute base^exponent mod modulus on the simulator.

        Returns (result, cycles, profile).  The modulus must be odd
        (Montgomery) and the exponent positive.
        """
        if modulus <= 0 or modulus % 2 == 0:
            raise ValueError("modulus must be positive and odd")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        m = Mpz(modulus, RADIX32)
        k = len(mpn.normalize(m.limbs))
        base_limbs = mpn.from_int(base % modulus, RADIX32)
        base_limbs += [0] * (k - len(base_limbs))
        r = 1 << (32 * k)
        r2 = (r * r) % modulus
        r2_limbs = mpn.from_int(r2, RADIX32) + [0] * k
        mprime = (-pow(modulus & 0xFFFFFFFF, -1, 1 << 32)) % (1 << 32)
        exp_limbs = mpn.from_int(exponent, RADIX32)
        ebits = exponent.bit_length()

        machine = self.runner.machine()
        m_addr = machine.alloc(4 * k)
        machine.write_words(m_addr, m.limbs + [0] * (k - len(m.limbs)))
        exp_addr = machine.alloc(4 * len(exp_limbs))
        machine.write_words(exp_addr, exp_limbs)
        x_addr = machine.alloc(4 * k)
        machine.write_words(x_addr, mpn.from_int(r % modulus, RADIX32)
                            + [0] * (k - len(mpn.from_int(r % modulus, RADIX32))))
        base_addr = machine.alloc(4 * k)
        machine.write_words(base_addr, base_limbs)
        t_addr = machine.alloc(4 * (2 * k + 2))
        r2_addr = machine.alloc(4 * k)
        machine.write_words(r2_addr, r2_limbs[:k])
        one_addr = machine.alloc(4 * k)
        machine.write_words(one_addr, [1] + [0] * (k - 1))

        ctx = machine.alloc(40)
        machine.write_words(ctx, [k, mprime, m_addr, exp_addr, ebits,
                                  x_addr, base_addr, t_addr, r2_addr,
                                  one_addr])
        machine.run("modexp", [ctx])
        result_limbs = machine.read_words(x_addr, k)
        return mpn.to_int(result_limbs), machine.cycles, machine.profile
