"""XT32 AES block kernels: T-table base-ISA software and extended ISA.

The base variant is the classic 32-bit software AES: four 1 KB
"T-tables" combine SubBytes, ShiftRows and MixColumns into four word
lookups plus XORs per output column (this is how well-optimized
software AES of the paper's era worked -- AES was *designed* to allow
it, which is also why the paper's AES speedup, 17.4x, is the smallest
of the block ciphers).  The last round uses plain S-box lookups.

The extended variant uses the ``aesld`` / ``aesark`` / ``aesrnd_s_m`` /
``aesrndl`` / ``aesst`` custom instructions.
"""

from typing import List, Tuple

from repro.crypto import bitops
from repro.crypto.aes import Aes, SBOX
from repro.isa.custom import aes_extension_set
from repro.isa.kernels import KernelRunner

_ROUNDS = {16: 10, 24: 12, 32: 14}


# ---------------------------------------------------------------------------
# Host-side table construction
# ---------------------------------------------------------------------------

def build_t_tables() -> List[List[int]]:
    """The four combined SubBytes+MixColumns tables T0..T3."""
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = SBOX[x]
        s2 = bitops.gf256_mul(s, 2)
        s3 = bitops.gf256_mul(s, 3)
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
    return [t0, t1, t2, t3]


def key_schedule_words(key: bytes) -> List[List[int]]:
    """Round keys as 4 column words each (byte r at bit 24-8r of col c)."""
    schedule = []
    for rk in Aes(key).round_keys:
        schedule.append([
            (rk[4 * c] << 24) | (rk[4 * c + 1] << 16)
            | (rk[4 * c + 2] << 8) | rk[4 * c + 3]
            for c in range(4)])
    return schedule


def reference_round_cols(cols: List[int], rk_cols: List[int]) -> List[int]:
    """T-table round on column words; used to assert the identity."""
    tables = build_t_tables()
    out = []
    for c in range(4):
        word = rk_cols[c]
        word ^= tables[0][(cols[c] >> 24) & 255]
        word ^= tables[1][(cols[(c + 1) % 4] >> 16) & 255]
        word ^= tables[2][(cols[(c + 2) % 4] >> 8) & 255]
        word ^= tables[3][cols[(c + 3) % 4] & 255]
        out.append(word)
    return out


# ---------------------------------------------------------------------------
# Base-ISA kernel
# ---------------------------------------------------------------------------

_STATE_REGS = ["r7", "r8", "r9", "r10"]


def _ttable_col(c: int) -> str:
    """Assembly producing output column c into r15, stored to scratch."""
    lines = [f"    lw   r15, {4 * c}(r3)\n"]
    for t in range(4):
        src = _STATE_REGS[(c + t) % 4]
        shift = 24 - 8 * t
        if shift:
            lines.append(f"    srli r11, {src}, {shift}\n")
            if t:
                lines.append("    andi r11, r11, 255\n")
        else:
            lines.append(f"    andi r11, {src}, 255\n")
        lines.append("    slli r11, r11, 2\n")
        lines.append("    add  r11, r11, r4\n")
        lines.append(f"    lw   r12, {1024 * t}(r11)\n")
        lines.append("    xor  r15, r15, r12\n")
    lines.append(f"    sw   r15, {4 * c}(r2)\n")
    return "".join(lines)


def _last_round_col(c: int) -> str:
    """Assembly for one final-round column (S-box only), result in r15."""
    lines = [f"    lw   r15, {4 * c}(r3)\n"]
    for t in range(4):
        src = _STATE_REGS[(c + t) % 4]
        shift = 24 - 8 * t
        if shift:
            lines.append(f"    srli r11, {src}, {shift}\n")
            if t:
                lines.append("    andi r11, r11, 255\n")
        else:
            lines.append(f"    andi r11, {src}, 255\n")
        lines.append("    add  r11, r11, r5\n")
        lines.append("    lb   r12, 0(r11)\n")
        if shift:
            lines.append(f"    slli r12, r12, {shift}\n")
        lines.append("    xor  r15, r15, r12\n")
    # store the 4 bytes of the column big-endian
    lines.append("    srli r12, r15, 24\n")
    lines.append(f"    sb   r12, {4 * c}(r2)\n")
    lines.append("    srli r12, r15, 16\n")
    lines.append(f"    sb   r12, {4 * c + 1}(r2)\n")
    lines.append("    srli r12, r15, 8\n")
    lines.append(f"    sb   r12, {4 * c + 2}(r2)\n")
    lines.append(f"    sb   r15, {4 * c + 3}(r2)\n")
    return "".join(lines)


def base_source() -> str:
    """aes_encrypt: r1=in r2=out/scratch r3=roundkeys r4=Ttabs r5=sbox r6=Nr."""
    load_state = "".join(
        f"    lb   r12, {4 * c}(r1)\n"
        f"    slli {_STATE_REGS[c]}, r12, 24\n"
        f"    lb   r12, {4 * c + 1}(r1)\n"
        "    slli r12, r12, 16\n"
        f"    or   {_STATE_REGS[c]}, {_STATE_REGS[c]}, r12\n"
        f"    lb   r12, {4 * c + 2}(r1)\n"
        "    slli r12, r12, 8\n"
        f"    or   {_STATE_REGS[c]}, {_STATE_REGS[c]}, r12\n"
        f"    lb   r12, {4 * c + 3}(r1)\n"
        f"    or   {_STATE_REGS[c]}, {_STATE_REGS[c]}, r12\n"
        f"    lw   r12, {4 * c}(r3)\n"
        f"    xor  {_STATE_REGS[c]}, {_STATE_REGS[c]}, r12\n"
        for c in range(4))
    main_round = "".join(_ttable_col(c) for c in range(4))
    reload_state = "".join(
        f"    lw   {_STATE_REGS[c]}, {4 * c}(r2)\n" for c in range(4))
    last_round = "".join(_last_round_col(c) for c in range(4))
    return f"""
aes_encrypt:
    # ---- load state into column words, initial AddRoundKey ----
{load_state}
    addi r3, r3, 16
    subi r1, r6, 1        # r1 now the main-round counter
aes_round_loop:
    # ---- one T-table round; new columns staged through [r2] ----
{main_round}
{reload_state}
    addi r3, r3, 16
    subi r1, r1, 1
    bne  r1, r0, aes_round_loop
    # ---- final round: S-box lookups, bytes stored to [r2] ----
{last_round}
    jr   r14
"""


def ext_source(rounds: int, sbox_units: int = 8, mixcol_units: int = 2) -> str:
    """aes_encrypt: r1=in r2=out r3=roundkeys (byte layout), unrolled."""
    body = "".join(
        f"    aesrnd_{sbox_units}_{mixcol_units} r3\n    addi r3, r3, 16\n"
        for _ in range(rounds - 1))
    return f"""
aes_encrypt:
    aesld r1
    aesark r3
    addi r3, r3, 16
{body}
    aesrndl r3
    aesst r2
    jr   r14
"""


# ---------------------------------------------------------------------------
# Host runners
# ---------------------------------------------------------------------------

class AesKernel:
    """AES block encryption on the simulator (base or extended ISA)."""

    def __init__(self, extended: bool = False, key_bytes: int = 16,
                 sbox_units: int = 8, mixcol_units: int = 2):
        self.extended = extended
        self.rounds = _ROUNDS[key_bytes]
        if extended:
            self.runner = KernelRunner(
                ext_source(self.rounds, sbox_units, mixcol_units),
                aes_extension_set(sbox_units, mixcol_units))
        else:
            self.runner = KernelRunner(base_source())
            self._t_flat = [w for tab in build_t_tables() for w in tab]

    def encrypt_block(self, block: bytes, key: bytes) -> Tuple[bytes, int]:
        """Encrypt one 16-byte block; returns (ciphertext, cycles)."""
        if _ROUNDS[len(key)] != self.rounds:
            raise ValueError("key length does not match the kernel's rounds")
        machine = self.runner.machine()
        in_addr = machine.alloc(16)
        machine.write_bytes(in_addr, block)
        out_addr = machine.alloc(16)
        if self.extended:
            rk_addr = machine.alloc(16 * (self.rounds + 1))
            flat = b"".join(bytes(rk) for rk in Aes(key).round_keys)
            machine.write_bytes(rk_addr, flat)
            machine.run("aes_encrypt", [in_addr, out_addr, rk_addr])
        else:
            rk_addr = machine.alloc(16 * (self.rounds + 1))
            words = [w for rk in key_schedule_words(key) for w in rk]
            machine.write_words(rk_addr, words)
            t_addr = machine.alloc(4 * len(self._t_flat))
            machine.write_words(t_addr, self._t_flat)
            sbox_addr = machine.alloc(256)
            machine.write_bytes(sbox_addr, bytes(SBOX))
            machine.run("aes_encrypt", [in_addr, out_addr, rk_addr,
                                        t_addr, sbox_addr, self.rounds])
        return machine.read_bytes(out_addr, 16), machine.cycles

    def cycles_per_byte(self, blocks: int = 4) -> float:
        """Steady-state cycles/byte over a few blocks."""
        key = bytes(range(16 if self.rounds == 10 else
                          24 if self.rounds == 12 else 32))
        total = 0
        for i in range(blocks):
            block = bytes((b * 17 + i) & 0xFF for b in range(16))
            _, cycles = self.encrypt_block(block, key)
            total += cycles
        return total / (16 * blocks)
