"""XT32: a configurable, extensible 32-bit embedded processor model.

This package substitutes for the Tensilica Xtensa T1040 toolchain the
paper used (processor + cycle-accurate instruction-set simulator + TIE
custom-instruction compiler):

- :mod:`repro.isa.instructions` -- the base RISC ISA and its
  per-instruction cycle costs.
- :mod:`repro.isa.assembler`    -- a two-pass textual assembler.
- :mod:`repro.isa.machine`      -- the instruction-set simulator with
  cycle accounting and a function-level profiler (call graph + local
  cycles, feeding the paper's Figure 4 style profiles).
- :mod:`repro.isa.extensions`   -- TIE-like custom instruction
  definitions: designer-specified semantics, latency, and hardware
  resource usage (adders, multipliers, LUT bits) from which area is
  derived.
- :mod:`repro.isa.area`         -- a gate-equivalent area model
  standing in for Synopsys DC + the NEC CB-11 0.18um cell library.
- :mod:`repro.isa.kernels`      -- XT32 assembly implementations of the
  library leaf routines, in base-ISA and extended-ISA variants.

The simulator is cycle-approximate, not Xtensa-faithful; the
reproduction targets the *shape* of the paper's speedups, which the
co-design methodology produces on any extensible core.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.extensions import CustomInstruction, ExtensionSet
from repro.isa.machine import Machine, MachineError, Profile

__all__ = ["assemble", "AssemblyError", "CustomInstruction", "ExtensionSet",
           "Machine", "MachineError", "Profile"]
