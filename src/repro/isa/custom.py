"""The candidate custom instruction library (formulation phase output).

Paper Section 3.3: for each performance-critical library routine the
designer formulates one or more candidate custom instructions, varying
the hardware resources (adders, multipliers, lookup tables) to create a
local area-delay tradeoff.  This module is that catalogue:

- ``vaddc_m`` / ``vsubb_m`` -- m-limb memory-to-memory add/sub with a
  carry/borrow user register (the paper's ``add_2``/``add_4``/``add_8``
  /``add_16`` family for ``mpn_add_n``).
- ``vmac_m`` / ``vmsub_m`` / ``vmul1_m`` -- m-limb multiply-accumulate
  (the ``mul_1`` family for ``mpn_addmul_1`` etc.).
- ``desld`` / ``desround_s`` / ``desst`` -- DES initial permutation +
  load, full Feistel round with ``s`` S-box units, final permutation +
  store.
- ``aesld`` / ``aesrnd_v`` / ``aesrndl`` / ``aesst`` -- AES state load,
  full round (``v`` selects S-box/MixColumns parallelism), last round,
  store.

Semantics execute on the simulator's memory and wide user registers
and are bit-exact with the reference software implementations (the
test suite cross-checks them), mirroring how TIE semantics must match
the C reference.

Latency models assume a dual-word memory port (2 words transferred per
cycle) and fully pipelined functional units; fewer units time-multiplex
and cost proportionally more cycles.  This produces the diminishing-
returns knee the paper's A-D curves show.
"""

import math
from typing import List

from repro.isa.extensions import CustomInstruction, ExtensionSet

WORD_MASK = 0xFFFFFFFF

#: Resource sweep points for the multi-limb adder family (paper Fig. 5a).
ADD_WIDTHS = (2, 4, 8, 16)
#: Resource sweep points for the multiply-accumulate family (Fig. 5b).
MAC_WIDTHS = (1, 2, 4, 8)
#: S-box parallelism sweep for the DES round instruction.
DES_SBOX_UNITS = (1, 2, 4, 8)
#: (sbox units, mixcol units) sweep for the AES round instruction.
AES_VARIANTS = ((4, 1), (8, 2), (16, 4))


def _mem_beats(words: int) -> int:
    """Cycles to move ``words`` over the dual-word memory port."""
    return max(1, math.ceil(words / 2))


# ---------------------------------------------------------------------------
# Multi-precision vector instructions
# ---------------------------------------------------------------------------

def make_vaddc(m: int) -> CustomInstruction:
    """mem[rd..+m] = mem[ra..+m] + mem[rb..+m] + carry; updates carry UR."""

    def semantics(machine, args):
        rd, ra, rb = args
        dst = machine.regs[rd]
        src_a = machine.regs[ra]
        src_b = machine.regs[rb]
        carry = machine.user_regs.get("carry", 0)
        for i in range(m):
            s = (machine.read_word(src_a + 4 * i)
                 + machine.read_word(src_b + 4 * i) + carry)
            machine.write_word(dst + 4 * i, s & WORD_MASK)
            carry = s >> 32
        machine.user_regs["carry"] = carry

    # 2 loads + 1 store of m words each, plus 1 cycle in the adder array
    # and 1 cycle of issue overhead.
    latency = 2 + 3 * _mem_beats(m)
    return CustomInstruction(
        name=f"vaddc_{m}", signature="rrr", semantics=semantics,
        latency=latency,
        resources={"adder32": m, "reg_bit": 1 + 32 * m, "control": 1},
        description=f"{m}-limb add with carry chaining (paper add_{m})")


def make_vsubb(m: int) -> CustomInstruction:
    """mem[rd..+m] = mem[ra..+m] - mem[rb..+m] - borrow; updates borrow UR."""

    def semantics(machine, args):
        rd, ra, rb = args
        dst = machine.regs[rd]
        src_a = machine.regs[ra]
        src_b = machine.regs[rb]
        borrow = machine.user_regs.get("borrow", 0)
        for i in range(m):
            d = (machine.read_word(src_a + 4 * i)
                 - machine.read_word(src_b + 4 * i) - borrow)
            borrow = 1 if d < 0 else 0
            machine.write_word(dst + 4 * i, d & WORD_MASK)
        machine.user_regs["borrow"] = borrow

    latency = 2 + 3 * _mem_beats(m)
    return CustomInstruction(
        name=f"vsubb_{m}", signature="rrr", semantics=semantics,
        latency=latency,
        resources={"adder32": m, "reg_bit": 1 + 32 * m, "control": 1},
        description=f"{m}-limb subtract with borrow chaining")


def make_vmac(m: int) -> CustomInstruction:
    """mem[rd..+m] += mem[ra..+m] * rb + carry; updates carry UR.

    The inner step of ``mpn_addmul_1``: the hottest operation in
    public-key processing.
    """

    def semantics(machine, args):
        rd, ra, rb = args
        dst = machine.regs[rd]
        src = machine.regs[ra]
        v = machine.regs[rb]
        carry = machine.user_regs.get("carry", 0)
        for i in range(m):
            t = (machine.read_word(dst + 4 * i)
                 + machine.read_word(src + 4 * i) * v + carry)
            machine.write_word(dst + 4 * i, t & WORD_MASK)
            carry = t >> 32
        machine.user_regs["carry"] = carry

    # read-modify-write of m words (3 transfers) + pipelined multiply array.
    latency = 3 + 3 * _mem_beats(m)
    return CustomInstruction(
        name=f"vmac_{m}", signature="rrr", semantics=semantics,
        latency=latency,
        resources={"mul32": m, "adder32": m, "reg_bit": 32 + 32 * m,
                   "control": 1},
        description=f"{m}-limb multiply-accumulate (mpn_addmul_1 step)")


def make_vmsub(m: int) -> CustomInstruction:
    """mem[rd..+m] -= mem[ra..+m] * rb - borrow; updates borrow UR."""

    def semantics(machine, args):
        rd, ra, rb = args
        dst = machine.regs[rd]
        src = machine.regs[ra]
        v = machine.regs[rb]
        borrow = machine.user_regs.get("borrow", 0)
        for i in range(m):
            prod = machine.read_word(src + 4 * i) * v + borrow
            t = machine.read_word(dst + 4 * i) - (prod & WORD_MASK)
            borrow = prod >> 32
            if t < 0:
                t += 1 << 32
                borrow += 1
            machine.write_word(dst + 4 * i, t)
        machine.user_regs["borrow"] = borrow

    latency = 3 + 3 * _mem_beats(m)
    return CustomInstruction(
        name=f"vmsub_{m}", signature="rrr", semantics=semantics,
        latency=latency,
        resources={"mul32": m, "adder32": m, "reg_bit": 32 + 32 * m,
                   "control": 1},
        description=f"{m}-limb multiply-subtract (mpn_submul_1 step)")


def make_vmul1(m: int) -> CustomInstruction:
    """mem[rd..+m] = mem[ra..+m] * rb + carry; updates carry UR."""

    def semantics(machine, args):
        rd, ra, rb = args
        dst = machine.regs[rd]
        src = machine.regs[ra]
        v = machine.regs[rb]
        carry = machine.user_regs.get("carry", 0)
        for i in range(m):
            t = machine.read_word(src + 4 * i) * v + carry
            machine.write_word(dst + 4 * i, t & WORD_MASK)
            carry = t >> 32
        machine.user_regs["carry"] = carry

    latency = 3 + 2 * _mem_beats(m)
    return CustomInstruction(
        name=f"vmul1_{m}", signature="rrr", semantics=semantics,
        latency=latency,
        resources={"mul32": m, "adder32": m, "reg_bit": 32 + 32 * m,
                   "control": 1},
        description=f"{m}-limb multiply by a limb (mpn_mul_1 step)")


def make_montcfg() -> CustomInstruction:
    """Configure the Montgomery datapath: m' from ra, limb count from rb."""

    def semantics(machine, args):
        ra, rb = args
        machine.user_regs["mprime"] = machine.regs[ra]
        machine.user_regs["klen"] = machine.regs[rb]

    return CustomInstruction(
        name="montcfg", signature="rr", semantics=semantics, latency=1,
        resources={"reg_bit": 64, "control": 1},
        description="set Montgomery constants (m', k) user registers")


def _row_latency(width: int):
    """Latency of a full k-limb row on a width-limb MAC array."""

    def latency(machine, args):
        k = machine.user_regs.get("klen", 1)
        return 4 + math.ceil(k / width) * 3 * _mem_beats(width) + 2

    return latency


def make_macrow(width: int) -> CustomInstruction:
    """One schoolbook row: mem[rd..+k] += mem[ra..+k] * rb, carry into
    mem[rd+k..] (k from the montcfg user register).

    The fused row instruction removes the per-chunk subroutine overhead
    of ``vmac``; it is the aggressive TIE candidate that makes the
    large RSA speedups possible.
    """

    def semantics(machine, args):
        rd, ra, rb = args
        k = machine.user_regs.get("klen", 1)
        dst = machine.regs[rd]
        src = machine.regs[ra]
        v = machine.regs[rb]
        carry = 0
        for i in range(k):
            t = (machine.read_word(dst + 4 * i)
                 + machine.read_word(src + 4 * i) * v + carry)
            machine.write_word(dst + 4 * i, t & WORD_MASK)
            carry = t >> 32
        j = k
        while carry:
            t = machine.read_word(dst + 4 * j) + carry
            machine.write_word(dst + 4 * j, t & WORD_MASK)
            carry = t >> 32
            j += 1

    return CustomInstruction(
        name=f"macrow_{width}", signature="rrr", semantics=semantics,
        latency=_row_latency(width),
        resources={"mul32": width, "adder32": width,
                   "reg_bit": 96 + 32 * width, "control": 2},
        description=f"fused k-limb MAC row on a {width}-wide array")


def make_montrow(width: int) -> CustomInstruction:
    """One Montgomery REDC row: u = mem[rd]*m' mod 2^32;
    mem[rd..+k] += mem[ra..+k] * u with carry propagation above."""

    def semantics(machine, args):
        rd, ra = args
        k = machine.user_regs.get("klen", 1)
        mprime = machine.user_regs.get("mprime", 0)
        dst = machine.regs[rd]
        src = machine.regs[ra]
        u = (machine.read_word(dst) * mprime) & WORD_MASK
        carry = 0
        for i in range(k):
            t = (machine.read_word(dst + 4 * i)
                 + machine.read_word(src + 4 * i) * u + carry)
            machine.write_word(dst + 4 * i, t & WORD_MASK)
            carry = t >> 32
        j = k
        while carry:
            t = machine.read_word(dst + 4 * j) + carry
            machine.write_word(dst + 4 * j, t & WORD_MASK)
            carry = t >> 32
            j += 1

    return CustomInstruction(
        name=f"montrow_{width}", signature="rr", semantics=semantics,
        latency=_row_latency(width),
        resources={"mul32": width, "adder32": width,
                   "reg_bit": 96 + 32 * width, "control": 2},
        description=f"fused Montgomery REDC row on a {width}-wide array")


def make_vzero() -> CustomInstruction:
    """Zero 2k+2 words at [rd] (the REDC scratch buffer)."""

    def semantics(machine, args):
        (rd,) = args
        k = machine.user_regs.get("klen", 1)
        dst = machine.regs[rd]
        for i in range(2 * k + 2):
            machine.write_word(dst + 4 * i, 0)

    def latency(machine, args):
        k = machine.user_regs.get("klen", 1)
        return 1 + _mem_beats(2 * k + 2)

    return CustomInstruction(
        name="vzero", signature="r", semantics=semantics, latency=latency,
        resources={"control": 1},
        description="zero the 2k+2-word Montgomery scratch buffer")


def mp_extension_set(add_width: int = 8, mac_width: int = 4) -> ExtensionSet:
    """A multi-precision extension configuration at the given widths."""
    return ExtensionSet([
        make_vaddc(add_width), make_vsubb(add_width),
        make_vmac(mac_width), make_vmsub(mac_width), make_vmul1(mac_width),
    ])


# ---------------------------------------------------------------------------
# DES instructions
# ---------------------------------------------------------------------------

def _des_refs():
    """Late import to avoid a package cycle at module load."""
    from repro.crypto import des as _des
    from repro.crypto import bitops as _bitops
    return _des, _bitops


def make_desld() -> CustomInstruction:
    """Load an 8-byte block from [ra] and apply IP into the L/R user regs."""

    def semantics(machine, args):
        (ra,) = args
        _des, _bitops = _des_refs()
        block = int.from_bytes(machine.read_bytes(machine.regs[ra], 8), "big")
        state = _bitops.bit_permute(block, _des._IP, 64)
        machine.user_regs["des_l"] = (state >> 32) & WORD_MASK
        machine.user_regs["des_r"] = state & WORD_MASK

    return CustomInstruction(
        name="desld", signature="r", semantics=semantics, latency=3,
        resources={"perm64": 1, "reg_bit": 64, "control": 1},
        description="DES block load + initial permutation")


def make_desst() -> CustomInstruction:
    """Apply the final permutation (with L/R swap) and store at [ra]."""

    def semantics(machine, args):
        (ra,) = args
        _des, _bitops = _des_refs()
        left = machine.user_regs.get("des_l", 0)
        right = machine.user_regs.get("des_r", 0)
        preoutput = (right << 32) | left
        out = _bitops.bit_permute(preoutput, _des._FP, 64)
        machine.write_bytes(machine.regs[ra], out.to_bytes(8, "big"))

    return CustomInstruction(
        name="desst", signature="r", semantics=semantics, latency=3,
        resources={"perm64": 1, "control": 1},
        description="DES final permutation + block store")


def make_desround(sbox_units: int) -> CustomInstruction:
    """One full Feistel round; subkey (48 bits, two words) read from [ra].

    With ``s`` S-box units the eight S-boxes take ``ceil(8/s)`` cycles;
    the E and P permutations are wiring.
    """

    def semantics(machine, args):
        ra, offset = args
        _des, _ = _des_refs()
        addr = machine.regs[ra] + offset
        subkey = (machine.read_word(addr) << 32) | machine.read_word(addr + 4)
        left = machine.user_regs.get("des_l", 0)
        right = machine.user_regs.get("des_r", 0)
        f_out = _des._feistel(right, subkey & ((1 << 48) - 1))
        machine.user_regs["des_l"] = right
        machine.user_regs["des_r"] = left ^ f_out

    latency = 2 + math.ceil(8 / sbox_units)
    return CustomInstruction(
        name=f"desround_{sbox_units}", signature="ri", semantics=semantics,
        latency=latency,
        resources={"perm64": 1, "perm32": 1, "xor32": 3,
                   "lut_bit": sbox_units * 64 * 4, "reg_bit": 64,
                   "control": 1},
        description=f"DES Feistel round with {sbox_units} S-box unit(s)")


def des_extension_set(sbox_units: int = 8) -> ExtensionSet:
    return ExtensionSet([make_desld(), make_desround(sbox_units), make_desst()])


# ---------------------------------------------------------------------------
# AES instructions
# ---------------------------------------------------------------------------

def _aes_refs():
    from repro.crypto import aes as _aes
    return _aes


def make_aesld() -> CustomInstruction:
    """Load a 16-byte state from [ra] into the AES state user register."""

    def semantics(machine, args):
        (ra,) = args
        machine.user_regs["aes_state"] = machine.read_bytes(machine.regs[ra], 16)

    return CustomInstruction(
        name="aesld", signature="r", semantics=semantics, latency=3,
        resources={"reg_bit": 128, "control": 1},
        description="AES state load")


def make_aesst() -> CustomInstruction:
    """Store the AES state user register to [ra]."""

    def semantics(machine, args):
        (ra,) = args
        machine.write_bytes(machine.regs[ra], machine.user_regs["aes_state"])

    return CustomInstruction(
        name="aesst", signature="r", semantics=semantics, latency=3,
        resources={"control": 1},
        description="AES state store")


def make_aesark() -> CustomInstruction:
    """state ^= round key at [ra] (the cipher's initial AddRoundKey)."""

    def semantics(machine, args):
        (ra,) = args
        key = machine.read_bytes(machine.regs[ra], 16)
        state = machine.user_regs["aes_state"]
        machine.user_regs["aes_state"] = bytes(s ^ k for s, k in zip(state, key))

    return CustomInstruction(
        name="aesark", signature="r", semantics=semantics, latency=3,
        resources={"xor32": 4, "control": 1},
        description="AES AddRoundKey on the state user register")


def _aes_round_semantics(machine, args, last: bool):
    (ra,) = args
    _aes = _aes_refs()
    round_key = list(machine.read_bytes(machine.regs[ra], 16))
    state = _aes.Aes._to_state(machine.user_regs["aes_state"])
    _aes.Aes._sub_bytes(state, _aes.SBOX)
    _aes.Aes._shift_rows(state)
    if not last:
        _aes.Aes._mix_columns(state)
    _aes.Aes._add_round_key(state, round_key)
    machine.user_regs["aes_state"] = _aes.Aes._from_state(state)


def make_aesrnd(sbox_units: int, mixcol_units: int) -> CustomInstruction:
    """One full AES round; round key (16 bytes) read from [ra]."""

    def semantics(machine, args):
        _aes_round_semantics(machine, args, last=False)

    latency = (1 + math.ceil(16 / sbox_units) + math.ceil(4 / mixcol_units)
               + 1)  # issue + SubBytes + MixColumns + key xor (2 words/cycle
                     # key fetch overlaps the S-box phase)
    return CustomInstruction(
        name=f"aesrnd_{sbox_units}_{mixcol_units}", signature="r",
        semantics=semantics, latency=latency,
        resources={"lut_bit": sbox_units * 256 * 8,
                   "gf_mult8": mixcol_units * 8,
                   "xor32": 4, "reg_bit": 128, "control": 1},
        description=(f"AES round with {sbox_units} S-box and "
                     f"{mixcol_units} MixColumns unit(s)"))


def make_aesrndl(sbox_units: int) -> CustomInstruction:
    """The final AES round (no MixColumns); round key at [ra]."""

    def semantics(machine, args):
        _aes_round_semantics(machine, args, last=True)

    latency = 1 + math.ceil(16 / sbox_units) + 1
    return CustomInstruction(
        name="aesrndl", signature="r", semantics=semantics, latency=latency,
        resources={"lut_bit": sbox_units * 256 * 8, "xor32": 4,
                   "control": 1},
        description=f"AES last round with {sbox_units} S-box unit(s)")


def aes_extension_set(sbox_units: int = 8, mixcol_units: int = 2) -> ExtensionSet:
    return ExtensionSet([
        make_aesld(), make_aesark(), make_aesrnd(sbox_units, mixcol_units),
        make_aesrndl(sbox_units), make_aesst(),
    ])


# ---------------------------------------------------------------------------
# Full platform configurations
# ---------------------------------------------------------------------------

def full_extension_set(add_width: int = 8, mac_width: int = 4,
                       des_sbox_units: int = 8, aes_sbox_units: int = 16,
                       aes_mixcol_units: int = 4) -> ExtensionSet:
    """The complete optimized security-platform configuration."""
    full = mp_extension_set(add_width, mac_width)
    for ci in des_extension_set(des_sbox_units):
        full.add(ci)
    for ci in aes_extension_set(aes_sbox_units, aes_mixcol_units):
        full.add(ci)
    return full


def candidate_catalogue() -> List[CustomInstruction]:
    """Every candidate instruction the formulation phase produced."""
    catalogue: List[CustomInstruction] = []
    catalogue += [make_vaddc(m) for m in ADD_WIDTHS]
    catalogue += [make_vsubb(m) for m in ADD_WIDTHS]
    catalogue += [make_vmac(m) for m in MAC_WIDTHS]
    catalogue += [make_vmsub(m) for m in MAC_WIDTHS]
    catalogue += [make_vmul1(m) for m in MAC_WIDTHS]
    catalogue += [make_desround(s) for s in DES_SBOX_UNITS]
    catalogue += [make_desld(), make_desst()]
    catalogue += [make_aesrnd(s, m) for s, m in AES_VARIANTS]
    catalogue += [make_aesrndl(16), make_aesld(), make_aesst()]
    return catalogue
