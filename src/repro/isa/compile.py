"""Threaded-code compiler for the XT32 instruction-set simulator.

The interpreter in :mod:`repro.isa.machine` re-decodes every
instruction on every execution: one trip through a ~35-way if/elif
chain, tuple indexing for operands, an immediate re-mask, a dcache
presence test, and dict updates per step.  This module removes all of
that by *predecoding*.  :func:`compile_program` translates an
assembled :class:`~repro.isa.assembler.Program` once into two layers:

1. **Threaded code** -- a parallel table of per-instruction Python
   closures, each with its operand indices, masked immediates, cycle
   cost, branch targets, extension semantics, and zero-register
   handling baked into captured variables, so executing one
   instruction is a single indirect call returning the next pc.
2. **Fused basic blocks (superinstructions)** -- straight-line runs
   between branch targets and control transfers are additionally
   emitted as one generated Python function per block, amortizing the
   dispatch loop, the instruction-budget check, and per-instruction
   counting over the whole block.  Executed-instruction histograms are
   recovered from one counter per block via a precomputed per-block
   opcode histogram; a jump into the middle of a block (a computed
   ``jr``) simply falls back to the per-instruction closures until the
   next block leader.

The compiled backend is **bit-identical** to the interpreter --
``cycles``, ``instret``, ``opcode_counts``, the :class:`Profile`
(local/inclusive cycles, call edges/counts) and final memory/registers
all match exactly, on success *and* on fault paths; the differential
tests and the ``iss_compiled`` bench scenario gate that equivalence at
a hard zero.  Three mechanisms preserve exactness while batching work:

- Profile attribution is deferred: code only bumps ``machine.cycles``
  and the frame-local totals are flushed at call/return/exit
  boundaries (integer addition is associative, so the flushed totals
  equal the interpreter's per-step accumulation).
- Static cycle costs inside a block are summed at compile time and
  charged in batches, but always flushed *before* any instruction
  that can fault (memory ops, custom instructions), so a trapped run
  has charged exactly the cycles of the instructions that completed.
- A block that faults reports ``(start, length, sub-index)`` through
  ``machine._block_fault`` so the driver can repair the pre-charged
  instruction count and attribute per-pc counts for the partial run,
  matching the interpreter's state at the raise point.

Compilation is cached per ``(Program, ExtensionSet)`` identity in a
weak registry, so fleets and kernel runners that spawn a fresh
:class:`~repro.isa.machine.Machine` per run pay for predecoding once.
"""

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.isa.assembler import Instruction, Program
from repro.isa.extensions import ExtensionSet
from repro.isa.instructions import (BRANCH_TAKEN_PENALTY, LINK_REG,
                                    WORD_MASK, ZERO_REG)

#: One compiled instruction (or fused block): machine -> next pc.
Step = Callable[[object], int]

_SIGN_BIT = 0x80000000
_TAKEN_COST = 1 + BRANCH_TAKEN_PENALTY

_TERMINATORS = frozenset(
    ("beq", "bne", "blt", "bge", "bltu", "bgeu", "j", "jal", "jr", "halt"))

_BASE_OPS = frozenset(
    ("add", "addi", "sub", "subi", "li", "mov", "and", "andi", "or", "ori",
     "xor", "xori", "sll", "slli", "srl", "srli", "sra", "srai",
     "sltu", "sltui", "slt", "mul", "mulhu",
     "lw", "lb", "sw", "sb")) | _TERMINATORS


class CompiledProgram:
    """The threaded-code form of one program + extension configuration."""

    __slots__ = ("steps", "op_names", "sentinel", "extensions",
                 "blocks", "block_hists")

    def __init__(self, steps: List[Step], op_names: List[str],
                 sentinel: int, extensions: Optional[ExtensionSet],
                 blocks: List[Optional[Tuple[Step, int, int]]],
                 block_hists: List[Tuple[Tuple[str, int], ...]]):
        self.steps = steps
        self.op_names = op_names
        self.sentinel = sentinel
        #: ``blocks[pc]`` is ``(fn, length, block_id)`` at block leaders.
        self.blocks = blocks
        #: per block id: ((opcode, multiplicity), ...) for count merging
        self.block_hists = block_hists
        # Held strongly so the id()-keyed cache slot cannot be reused
        # by a different ExtensionSet while this entry is alive.
        self.extensions = extensions


def _machine_error(message: str):
    from repro.isa.machine import MachineError
    return MachineError(message)


# -- per-instruction closure emitters ----------------------------------------
#
# Every emitter returns a Step closure.  Registers written by the base
# ISA are re-forced to zero by the interpreter after every instruction;
# here that is resolved at compile time: a pure ALU op targeting r0 is
# compiled to a cost-only step (the write is unobservable), and memory
# reads targeting r0 keep their side effects (bounds check, dcache
# access) but discard the loaded value.

def _cost_only(cost: int, nxt: int) -> Step:
    def step(m):
        m.cycles += cost
        return nxt
    return step


def _emit_binary(op: str, a, nxt: int) -> Optional[Step]:
    d, s1, s2 = a[0], a[1], a[2]
    if d == ZERO_REG:
        return _cost_only(2 if op in ("mul", "mulhu") else 1, nxt)
    if op == "add":
        def step(m):
            r = m.regs
            r[d] = (r[s1] + r[s2]) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "sub":
        def step(m):
            r = m.regs
            r[d] = (r[s1] - r[s2]) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "and":
        def step(m):
            r = m.regs
            r[d] = r[s1] & r[s2]
            m.cycles += 1
            return nxt
    elif op == "or":
        def step(m):
            r = m.regs
            r[d] = r[s1] | r[s2]
            m.cycles += 1
            return nxt
    elif op == "xor":
        def step(m):
            r = m.regs
            r[d] = r[s1] ^ r[s2]
            m.cycles += 1
            return nxt
    elif op == "sll":
        def step(m):
            r = m.regs
            r[d] = (r[s1] << (r[s2] & 31)) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "srl":
        def step(m):
            r = m.regs
            r[d] = r[s1] >> (r[s2] & 31)
            m.cycles += 1
            return nxt
    elif op == "sra":
        def step(m):
            r = m.regs
            r[d] = ((((r[s1] ^ _SIGN_BIT) - _SIGN_BIT) >> (r[s2] & 31))
                    & WORD_MASK)
            m.cycles += 1
            return nxt
    elif op == "sltu":
        def step(m):
            r = m.regs
            r[d] = 1 if r[s1] < r[s2] else 0
            m.cycles += 1
            return nxt
    elif op == "slt":
        def step(m):
            r = m.regs
            r[d] = 1 if (r[s1] ^ _SIGN_BIT) < (r[s2] ^ _SIGN_BIT) else 0
            m.cycles += 1
            return nxt
    elif op == "mul":
        def step(m):
            r = m.regs
            r[d] = (r[s1] * r[s2]) & WORD_MASK
            m.cycles += 2
            return nxt
    elif op == "mulhu":
        def step(m):
            r = m.regs
            r[d] = (r[s1] * r[s2]) >> 32
            m.cycles += 2
            return nxt
    else:
        return None
    return step


def _emit_immediate(op: str, a, nxt: int) -> Optional[Step]:
    d, s1 = a[0], a[1]
    if op == "li":
        value = a[1] & WORD_MASK
        if d == ZERO_REG:
            return _cost_only(1, nxt)

        def step(m):
            m.regs[d] = value
            m.cycles += 1
            return nxt
        return step
    if op == "mov":
        if d == ZERO_REG:
            return _cost_only(1, nxt)

        def step(m):
            r = m.regs
            r[d] = r[s1]
            m.cycles += 1
            return nxt
        return step
    imm = a[2]
    if d == ZERO_REG:
        return _cost_only(1, nxt)
    if op == "addi":
        def step(m):
            r = m.regs
            r[d] = (r[s1] + imm) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "subi":
        def step(m):
            r = m.regs
            r[d] = (r[s1] - imm) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "andi":
        masked = imm & WORD_MASK

        def step(m):
            r = m.regs
            r[d] = r[s1] & masked
            m.cycles += 1
            return nxt
    elif op == "ori":
        masked = imm & WORD_MASK

        def step(m):
            r = m.regs
            r[d] = r[s1] | masked
            m.cycles += 1
            return nxt
    elif op == "xori":
        masked = imm & WORD_MASK

        def step(m):
            r = m.regs
            r[d] = r[s1] ^ masked
            m.cycles += 1
            return nxt
    elif op == "slli":
        shift = imm & 31

        def step(m):
            r = m.regs
            r[d] = (r[s1] << shift) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "srli":
        shift = imm & 31

        def step(m):
            r = m.regs
            r[d] = r[s1] >> shift
            m.cycles += 1
            return nxt
    elif op == "srai":
        shift = imm & 31

        def step(m):
            r = m.regs
            r[d] = (((r[s1] ^ _SIGN_BIT) - _SIGN_BIT) >> shift) & WORD_MASK
            m.cycles += 1
            return nxt
    elif op == "sltui":
        masked = imm & WORD_MASK

        def step(m):
            r = m.regs
            r[d] = 1 if r[s1] < masked else 0
            m.cycles += 1
            return nxt
    else:
        return None
    return step


def _emit_load(op: str, a, nxt: int) -> Step:
    d = a[0]
    off, base = a[1]
    if op == "lw":
        if d == ZERO_REG:
            def step(m):
                addr = m.regs[base] + off
                mem = m.mem
                if addr < 0 or addr + 4 > len(mem):
                    raise _machine_error(
                        f"memory access out of range: {addr:#x}+4")
                dc = m.dcache
                m.cycles += 2 if dc is None else 2 + dc.access(addr)
                return nxt
        else:
            def step(m):
                addr = m.regs[base] + off
                mem = m.mem
                if addr < 0 or addr + 4 > len(mem):
                    raise _machine_error(
                        f"memory access out of range: {addr:#x}+4")
                m.regs[d] = int.from_bytes(mem[addr: addr + 4], "little")
                dc = m.dcache
                m.cycles += 2 if dc is None else 2 + dc.access(addr)
                return nxt
    else:  # lb
        if d == ZERO_REG:
            def step(m):
                addr = m.regs[base] + off
                mem = m.mem
                if addr < 0 or addr + 1 > len(mem):
                    raise _machine_error(
                        f"memory access out of range: {addr:#x}+1")
                dc = m.dcache
                m.cycles += 2 if dc is None else 2 + dc.access(addr)
                return nxt
        else:
            def step(m):
                addr = m.regs[base] + off
                mem = m.mem
                if addr < 0 or addr + 1 > len(mem):
                    raise _machine_error(
                        f"memory access out of range: {addr:#x}+1")
                m.regs[d] = mem[addr]
                dc = m.dcache
                m.cycles += 2 if dc is None else 2 + dc.access(addr)
                return nxt
    return step


def _emit_store(op: str, a, nxt: int) -> Step:
    s = a[0]
    off, base = a[1]
    if op == "sw":
        def step(m):
            addr = m.regs[base] + off
            mem = m.mem
            if addr < 0 or addr + 4 > len(mem):
                raise _machine_error(
                    f"memory access out of range: {addr:#x}+4")
            mem[addr: addr + 4] = (m.regs[s] & WORD_MASK).to_bytes(4, "little")
            dc = m.dcache
            m.cycles += 1 if dc is None else 1 + dc.access(addr)
            return nxt
    else:  # sb
        def step(m):
            addr = m.regs[base] + off
            mem = m.mem
            if addr < 0 or addr + 1 > len(mem):
                raise _machine_error(
                    f"memory access out of range: {addr:#x}+1")
            mem[addr] = m.regs[s] & 0xFF
            dc = m.dcache
            m.cycles += 1 if dc is None else 1 + dc.access(addr)
            return nxt
    return step


def _emit_branch(op: str, a, nxt: int) -> Step:
    s1, s2, target = a[0], a[1], a[2]
    if op == "beq":
        def step(m):
            r = m.regs
            if r[s1] == r[s2]:
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    elif op == "bne":
        def step(m):
            r = m.regs
            if r[s1] != r[s2]:
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    elif op == "bltu":
        def step(m):
            r = m.regs
            if r[s1] < r[s2]:
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    elif op == "bgeu":
        def step(m):
            r = m.regs
            if r[s1] >= r[s2]:
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    elif op == "blt":
        def step(m):
            r = m.regs
            if (r[s1] ^ _SIGN_BIT) < (r[s2] ^ _SIGN_BIT):
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    else:  # bge
        def step(m):
            r = m.regs
            if (r[s1] ^ _SIGN_BIT) >= (r[s2] ^ _SIGN_BIT):
                m.cycles += _TAKEN_COST
                return target
            m.cycles += 1
            return nxt
    return step


def _emit_j(a) -> Step:
    target = a[0]
    return _cost_only(3, target)


def _emit_jal(a, pc: int, func_at: Dict[int, str]) -> Step:
    target = a[0]
    link = pc + 1
    callee = func_at.get(target, f"func@{target}")

    def step(m):
        m.regs[LINK_REG] = link
        m.cycles += 3
        m._compiled_call(callee)
        return target
    return step


def _emit_jr(a) -> Step:
    src = a[0]

    def step(m):
        m.cycles += 3
        m._compiled_ret()
        return m.regs[src]
    return step


def _emit_halt(pc: int, sentinel: int) -> Step:
    def step(m):
        m.cycles += 1
        m._halted = True
        m._halt_pc = pc
        return sentinel
    return step


def _emit_custom(op: str, a, pc: int, nxt: int,
                 extensions: Optional[ExtensionSet]) -> Step:
    custom = extensions.get(op) if extensions is not None else None
    if custom is None:
        message = f"unknown opcode {op!r} at pc={pc}"

        def step(m):
            raise _machine_error(message)
        return step
    semantics = custom.semantics
    latency = custom.latency
    if callable(latency):
        def step(m):
            semantics(m, a)
            cost = latency(m, a)
            m.regs[ZERO_REG] = 0
            m.cycles += cost
            return nxt
    else:
        cost = latency

        def step(m):
            semantics(m, a)
            m.regs[ZERO_REG] = 0
            m.cycles += cost
            return nxt
    return step


def _compile_instruction(instr: Instruction, pc: int, sentinel: int,
                         func_at: Dict[int, str],
                         extensions: Optional[ExtensionSet]) -> Step:
    op = instr.op
    a = instr.args
    nxt = pc + 1
    if op in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
              "sltu", "slt", "mul", "mulhu"):
        return _emit_binary(op, a, nxt)
    if op in ("addi", "subi", "li", "mov", "andi", "ori", "xori",
              "slli", "srli", "srai", "sltui"):
        return _emit_immediate(op, a, nxt)
    if op in ("lw", "lb"):
        return _emit_load(op, a, nxt)
    if op in ("sw", "sb"):
        return _emit_store(op, a, nxt)
    if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return _emit_branch(op, a, nxt)
    if op == "j":
        return _emit_j(a)
    if op == "jal":
        return _emit_jal(a, pc, func_at)
    if op == "jr":
        return _emit_jr(a)
    if op == "halt":
        return _emit_halt(pc, sentinel)
    return _emit_custom(op, a, pc, nxt, extensions)


# -- basic-block fusion (superinstructions) ----------------------------------
#
# Straight-line runs are re-emitted as one generated Python function
# per block: registers hoisted to a local, immediates and addresses
# inlined as literals, static cycle costs pre-summed.  Only memory and
# custom instructions can fault; blocks containing them get a
# try/except wrapper and a sub-instruction progress marker so the
# driver can repair counts exactly (see the module docstring).

def _alu_source(op: str, a) -> Optional[str]:
    """The statement for one non-faulting ALU op, or None when the
    destination is r0 (the write is unobservable)."""
    d = a[0]
    if d == ZERO_REG:
        return None
    if op == "add":
        return f"r[{d}] = (r[{a[1]}] + r[{a[2]}]) & {WORD_MASK}"
    if op == "addi":
        return f"r[{d}] = (r[{a[1]}] + {a[2]!r}) & {WORD_MASK}"
    if op == "sub":
        return f"r[{d}] = (r[{a[1]}] - r[{a[2]}]) & {WORD_MASK}"
    if op == "subi":
        return f"r[{d}] = (r[{a[1]}] - {a[2]!r}) & {WORD_MASK}"
    if op == "li":
        return f"r[{d}] = {a[1] & WORD_MASK}"
    if op == "mov":
        return f"r[{d}] = r[{a[1]}]"
    if op == "and":
        return f"r[{d}] = r[{a[1]}] & r[{a[2]}]"
    if op == "andi":
        return f"r[{d}] = r[{a[1]}] & {a[2] & WORD_MASK}"
    if op == "or":
        return f"r[{d}] = r[{a[1]}] | r[{a[2]}]"
    if op == "ori":
        return f"r[{d}] = r[{a[1]}] | {a[2] & WORD_MASK}"
    if op == "xor":
        return f"r[{d}] = r[{a[1]}] ^ r[{a[2]}]"
    if op == "xori":
        return f"r[{d}] = r[{a[1]}] ^ {a[2] & WORD_MASK}"
    if op == "sll":
        return f"r[{d}] = (r[{a[1]}] << (r[{a[2]}] & 31)) & {WORD_MASK}"
    if op == "slli":
        return f"r[{d}] = (r[{a[1]}] << {a[2] & 31}) & {WORD_MASK}"
    if op == "srl":
        return f"r[{d}] = r[{a[1]}] >> (r[{a[2]}] & 31)"
    if op == "srli":
        return f"r[{d}] = r[{a[1]}] >> {a[2] & 31}"
    if op == "sra":
        return (f"r[{d}] = (((r[{a[1]}] ^ {_SIGN_BIT}) - {_SIGN_BIT})"
                f" >> (r[{a[2]}] & 31)) & {WORD_MASK}")
    if op == "srai":
        return (f"r[{d}] = (((r[{a[1]}] ^ {_SIGN_BIT}) - {_SIGN_BIT})"
                f" >> {a[2] & 31}) & {WORD_MASK}")
    if op == "sltu":
        return f"r[{d}] = 1 if r[{a[1]}] < r[{a[2]}] else 0"
    if op == "sltui":
        return f"r[{d}] = 1 if r[{a[1]}] < {a[2] & WORD_MASK} else 0"
    if op == "slt":
        return (f"r[{d}] = 1 if (r[{a[1]}] ^ {_SIGN_BIT})"
                f" < (r[{a[2]}] ^ {_SIGN_BIT}) else 0")
    if op == "mul":
        return f"r[{d}] = (r[{a[1]}] * r[{a[2]}]) & {WORD_MASK}"
    if op == "mulhu":
        return f"r[{d}] = (r[{a[1]}] * r[{a[2]}]) >> 32"
    return None


def _branch_cond(op: str, a) -> str:
    if op == "beq":
        return f"r[{a[0]}] == r[{a[1]}]"
    if op == "bne":
        return f"r[{a[0]}] != r[{a[1]}]"
    if op == "bltu":
        return f"r[{a[0]}] < r[{a[1]}]"
    if op == "bgeu":
        return f"r[{a[0]}] >= r[{a[1]}]"
    if op == "blt":
        return f"(r[{a[0]}] ^ {_SIGN_BIT}) < (r[{a[1]}] ^ {_SIGN_BIT})"
    # bge
    return f"(r[{a[0]}] ^ {_SIGN_BIT}) >= (r[{a[1]}] ^ {_SIGN_BIT})"


class _BlockGen:
    """Accumulates the generated source of one fused block."""

    def __init__(self, start: int, glob: Dict[str, object]):
        self.start = start
        self.glob = glob
        self.lines: List[str] = []
        self.pending = 0        # static cycles not yet charged
        self.faulting = False   # needs the try/except + progress marker
        self.uses_mem = False
        self.uses_load = False

    def flush(self) -> None:
        if self.pending:
            self.lines.append(f"m.cycles += {self.pending}")
            self.pending = 0

    def emit_alu(self, op: str, a) -> None:
        stmt = _alu_source(op, a)
        if stmt is not None:
            self.lines.append(stmt)
        self.pending += 2 if op in ("mul", "mulhu") else 1

    def emit_mem(self, op: str, a, sub: int) -> None:
        self.uses_mem = True
        size = 4 if op in ("lw", "sw") else 1
        off, base = a[1]
        # Charge everything up to here before the op can fault, so a
        # trapped run's cycle count matches the interpreter's exactly.
        self.flush()
        self.faulting = True
        self.lines.append(f"f_ = {sub}")
        self.lines.append(f"a_ = r[{base}] + {off!r}")
        self.lines.append(f"if a_ < 0 or a_ + {size} > len(mem):")
        self.lines.append(
            '    raise MachineError('
            f'"memory access out of range: %#x+{size}" % a_)')
        d = a[0]
        if op == "lw":
            self.uses_load = True
            if d != ZERO_REG:
                self.lines.append(f'r[{d}] = fb(mem[a_:a_ + 4], "little")')
            self.pending += 2
        elif op == "lb":
            if d != ZERO_REG:
                self.lines.append(f"r[{d}] = mem[a_]")
            self.pending += 2
        elif op == "sw":
            self.lines.append(
                f'mem[a_:a_ + 4] = (r[{d}] & {WORD_MASK}).to_bytes'
                f'(4, "little")')
            self.pending += 1
        else:  # sb
            self.lines.append(f"mem[a_] = r[{d}] & 0xFF")
            self.pending += 1
        # Dynamic dcache penalties go straight to m.cycles in program
        # order (the access sequence drives the cache model's state).
        self.lines.append("if dc is not None:")
        self.lines.append("    m.cycles += dc.access(a_)")

    def emit_custom(self, custom, a, pc: int, sub: int) -> None:
        self.flush()
        self.faulting = True
        self.lines.append(f"f_ = {sub}")
        self.glob[f"S{pc}"] = custom.semantics
        self.glob[f"A{pc}"] = a
        self.lines.append(f"S{pc}(m, A{pc})")
        self.lines.append("r[0] = 0")
        latency = custom.latency
        if callable(latency):
            self.glob[f"L{pc}"] = latency
            self.lines.append(f"m.cycles += L{pc}(m, A{pc})")
        else:
            self.pending += latency

    def emit_terminator(self, op: str, a, pc: int, sentinel: int,
                        func_at: Dict[int, str]) -> None:
        if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            self.lines.append(f"if {_branch_cond(op, a)}:")
            self.lines.append(f"    m.cycles += {self.pending + _TAKEN_COST}")
            self.lines.append(f"    return {a[2]}")
            self.lines.append(f"m.cycles += {self.pending + 1}")
            self.lines.append(f"return {pc + 1}")
        elif op == "j":
            self.lines.append(f"m.cycles += {self.pending + 3}")
            self.lines.append(f"return {a[0]}")
        elif op == "jal":
            target = a[0]
            self.lines.append(f"r[{LINK_REG}] = {pc + 1}")
            self.lines.append(f"m.cycles += {self.pending + 3}")
            self.glob[f"cn{pc}"] = func_at.get(target, f"func@{target}")
            self.lines.append(f"m._compiled_call(cn{pc})")
            self.lines.append(f"return {target}")
        elif op == "jr":
            self.lines.append(f"m.cycles += {self.pending + 3}")
            self.lines.append("m._compiled_ret()")
            self.lines.append(f"return r[{a[0]}]")
        else:  # halt
            self.lines.append(f"m.cycles += {self.pending + 1}")
            self.lines.append("m._halted = True")
            self.lines.append(f"m._halt_pc = {pc}")
            self.lines.append(f"return {sentinel}")
        self.pending = 0

    def emit_fallthrough(self, next_pc: int) -> None:
        self.flush()
        self.lines.append(f"return {next_pc}")

    def render(self, length: int) -> str:
        name = f"_b{self.start}"
        head = [f"def {name}(m):", "    r = m.regs"]
        if self.uses_mem:
            head.append("    mem = m.mem")
            head.append("    dc = m.dcache")
        if self.uses_load:
            head.append("    fb = _fb")
        if self.faulting:
            head.append("    f_ = 0")
            head.append("    try:")
            body = [f"        {line}" for line in self.lines]
            tail = ["    except BaseException:",
                    f"        m._block_fault = ({self.start}, {length}, f_)",
                    "        raise"]
            return "\n".join(head + body + tail)
        body = [f"    {line}" for line in self.lines]
        return "\n".join(head + body)


def _find_leaders(code: Sequence[Instruction], labels: Dict[str, int],
                  sentinel: int) -> List[int]:
    """Every pc a block may legally start at: labels (function entries,
    ``jal``/``j``/branch targets and return addresses), plus the
    instruction after each control transfer."""
    leaders = {index for index in labels.values() if index < sentinel}
    if code:
        leaders.add(0)
    for pc, instr in enumerate(code):
        op = instr.op
        if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            if instr.args[2] < sentinel:
                leaders.add(instr.args[2])
        elif op in ("j", "jal"):
            if instr.args[0] < sentinel:
                leaders.add(instr.args[0])
        if op in _TERMINATORS and pc + 1 < sentinel:
            leaders.add(pc + 1)
    return sorted(leaders)


def _build_blocks(program: Program, extensions: Optional[ExtensionSet],
                  sentinel: int, func_at: Dict[int, str]
                  ) -> Tuple[List[Optional[Tuple[Step, int, int]]],
                             List[Tuple[Tuple[str, int], ...]]]:
    from repro.isa.machine import MachineError
    code = program.instructions
    leaders = _find_leaders(code, program.labels, sentinel)
    leader_set = set(leaders)
    blocks: List[Optional[Tuple[Step, int, int]]] = [None] * sentinel
    hists: List[Tuple[Tuple[str, int], ...]] = []
    glob: Dict[str, object] = {"_fb": int.from_bytes,
                               "MachineError": MachineError}
    sources: List[str] = []
    placed: List[Tuple[int, int]] = []  # (start, length) awaiting exec

    for start in leaders:
        gen = _BlockGen(start, glob)
        hist: Dict[str, int] = {}
        pc = start
        terminated = False
        while True:
            instr = code[pc]
            op = instr.op
            if op not in _BASE_OPS and (extensions is None
                                        or extensions.get(op) is None):
                # Unknown opcode: end the block before it; the
                # per-instruction closure raises with exact state.
                break
            hist[op] = hist.get(op, 0) + 1
            if op in _TERMINATORS:
                gen.emit_terminator(op, instr.args, pc, sentinel, func_at)
                terminated = True
                pc += 1
                break
            if op in ("lw", "lb", "sw", "sb"):
                gen.emit_mem(op, instr.args, pc - start)
            elif op in _BASE_OPS:
                gen.emit_alu(op, instr.args)
            else:
                gen.emit_custom(extensions.get(op), instr.args, pc,
                                pc - start)
            pc += 1
            if pc == sentinel or pc in leader_set:
                break
        length = pc - start
        if length == 0:
            continue  # first instruction unknown; no fused block here
        if not terminated:
            gen.emit_fallthrough(pc)
        sources.append(gen.render(length))
        placed.append((start, length))
        hists.append(tuple(sorted(hist.items())))

    if sources:
        exec(compile("\n".join(sources), "<repro.isa.compile>", "exec"), glob)
        for bid, (start, length) in enumerate(placed):
            blocks[start] = (glob[f"_b{start}"], length, bid)
    return blocks, hists


def compile_program(program: Program,
                    extensions: Optional[ExtensionSet] = None
                    ) -> CompiledProgram:
    """Predecode ``program`` into its threaded-code form (uncached)."""
    code = program.instructions
    sentinel = len(code)
    # Same first-label-wins mapping the Machine builds for profiling.
    func_at: Dict[int, str] = {}
    for label, index in program.labels.items():
        func_at.setdefault(index, label)
    steps: List[Step] = []
    op_names: List[str] = []
    for pc, instr in enumerate(code):
        steps.append(_compile_instruction(instr, pc, sentinel, func_at,
                                          extensions))
        op_names.append(instr.op)
    blocks, hists = _build_blocks(program, extensions, sentinel, func_at)
    return CompiledProgram(steps, op_names, sentinel, extensions,
                           blocks, hists)


# -- compilation cache -------------------------------------------------------
#
# Keyed weakly on the Program (so a dropped program frees its closures)
# and, within a program, on the identity of the extension set.  All
# machines with no custom instructions share one entry: a fresh empty
# ExtensionSet is indistinguishable from another.

_cache: "weakref.WeakKeyDictionary[Program, Dict[object, CompiledProgram]]" \
    = weakref.WeakKeyDictionary()


def compiled_for(program: Program,
                 extensions: Optional[ExtensionSet] = None
                 ) -> CompiledProgram:
    """The (cached) threaded-code form of ``program`` + ``extensions``."""
    per_ext = _cache.get(program)
    if per_ext is None:
        per_ext = _cache[program] = {}
    key = None if (extensions is None or len(extensions) == 0) \
        else id(extensions)
    compiled = per_ext.get(key)
    if compiled is None or (key is not None
                            and compiled.extensions is not extensions):
        compiled = per_ext[key] = compile_program(program, extensions)
    return compiled
