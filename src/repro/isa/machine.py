"""The XT32 instruction-set simulator with cycle accounting and profiling.

The machine executes a decoded :class:`~repro.isa.assembler.Program`
and charges cycles per the base-ISA cost table (plus custom-instruction
latencies).  A lightweight profiler attributes cycles to functions
(``jal`` targets), producing the annotated call graphs of the paper's
Figure 4 and the per-routine cycle counts that characterization fits
macro-models to.

Two execution backends share one architectural contract:

- ``interp`` (default): the readable reference loop -- one if/elif
  dispatch chain, the semantic spec for the ISA.
- ``compiled``: threaded-code dispatch via :mod:`repro.isa.compile` --
  the program is predecoded once into per-instruction closures and
  each step is a single indirect call.

Both are bit-identical in ``cycles``, ``instret``, ``opcode_counts``,
the :class:`Profile`, and final memory/registers; select with the
``backend=`` constructor argument, :func:`backend_scope`, or the
``REPRO_ISS_BACKEND`` environment variable.

Calling convention (used by all kernels in :mod:`repro.isa.kernels`):

- arguments in ``r1``..``r6``, results in ``r1`` (and ``r2``),
- ``r13`` stack pointer (grows down), ``r14`` link register,
- ``jal`` is a call, ``jr r14`` (after restoring r14) a return,
- callee may clobber ``r1``..``r12``.
"""

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.assembler import Program
from repro.isa.extensions import ExtensionSet
from repro.isa.instructions import (BRANCH_TAKEN_PENALTY, LINK_REG,
                                    SP_REG, WORD_MASK, ZERO_REG, to_signed)


class MachineError(RuntimeError):
    """Raised on simulator faults (bad memory access, runaway programs)."""


#: Environment variable selecting the default execution backend.
ISS_BACKEND_ENV = "REPRO_ISS_BACKEND"

_BACKENDS = ("interp", "compiled")

_backend_override: Optional[str] = None


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name: explicit argument, then any active
    :func:`backend_scope`, then ``$REPRO_ISS_BACKEND``, then ``interp``."""
    if name is None:
        name = _backend_override
    if name is None:
        name = os.environ.get(ISS_BACKEND_ENV, "") or "interp"
    if name not in _BACKENDS:
        raise MachineError(
            f"unknown ISS backend {name!r} (expected one of "
            f"{', '.join(_BACKENDS)})")
    return name


@contextmanager
def backend_scope(name: Optional[str]) -> Iterator[str]:
    """Temporarily make ``name`` the default backend for new machines."""
    global _backend_override
    resolved = resolve_backend(name)
    previous = _backend_override
    _backend_override = resolved
    try:
        yield resolved
    finally:
        _backend_override = previous


@dataclass
class Profile:
    """Cycle-accurate execution profile."""

    total_cycles: int = 0
    instructions: int = 0
    #: cycles spent in computations local to each function (no callees)
    local_cycles: Dict[str, int] = field(default_factory=dict)
    #: cycles including callees, summed over all invocations
    inclusive_cycles: Dict[str, int] = field(default_factory=dict)
    #: (caller, callee) -> number of calls
    call_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: function -> number of invocations
    call_counts: Dict[str, int] = field(default_factory=dict)

    def callees(self, func: str) -> Dict[str, int]:
        """callee -> call count for one caller."""
        return {callee: n for (caller, callee), n in self.call_edges.items()
                if caller == func}


class Machine:
    """An XT32 core: base ISA plus an optional extension set."""

    ENTRY_FUNC = "<entry>"

    def __init__(self, program: Program,
                 extensions: Optional[ExtensionSet] = None,
                 mem_size: int = 1 << 20,
                 dcache=None,
                 backend: Optional[str] = None):
        """``dcache``: an optional :class:`repro.isa.cache.CacheConfig`;
        when set, scalar loads/stores pay miss penalties.  Custom
        instructions model dedicated wide memory ports and bypass it.

        ``backend``: ``"interp"`` or ``"compiled"``; ``None`` resolves
        through :func:`backend_scope` / ``$REPRO_ISS_BACKEND``.
        """
        self.program = program
        self.extensions = extensions or ExtensionSet()
        self.backend = resolve_backend(backend)
        self.mem = bytearray(mem_size)
        self._dcache_cfg = dcache
        if dcache is not None:
            from repro.isa.cache import DataCache
            self.dcache = DataCache(dcache)
        else:
            self.dcache = None
        #: opcode -> executed count (for the energy model / statistics)
        self.opcode_counts: Dict[str, int] = {}
        self.regs: List[int] = [0] * 16
        self.user_regs: Dict[str, int] = {}   # wide TIE state registers
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self._alloc_ptr = 0x1000              # bump allocator for harness data
        # Profiling state.
        self._func_at: Dict[int, str] = {}
        for label, index in program.labels.items():
            self._func_at.setdefault(index, label)
        self.profile = Profile()
        self._frames: List[Tuple[str, int]] = []  # (func, cycles at entry)
        self._cmark = 0      # cycles already attributed to the top frame
        self._halted = False
        self._halt_pc = 0
        self._block_fault = None

    def reset(self) -> None:
        """Return the machine to its just-constructed architectural state
        (same program, extensions, memory size, and backend) so it can be
        reused across independent runs without re-decoding the program."""
        self.mem = bytearray(len(self.mem))
        if self._dcache_cfg is not None:
            from repro.isa.cache import DataCache
            self.dcache = DataCache(self._dcache_cfg)
        self.opcode_counts = {}
        self.regs = [0] * 16
        self.user_regs = {}
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self._alloc_ptr = 0x1000
        self.profile = Profile()
        self._frames = []
        self._cmark = 0
        self._halted = False
        self._halt_pc = 0
        self._block_fault = None

    # -- memory helpers ---------------------------------------------------

    def alloc(self, nbytes: int, align: int = 4) -> int:
        """Bump-allocate scratch memory for harness inputs/outputs."""
        self._alloc_ptr = (self._alloc_ptr + align - 1) & ~(align - 1)
        addr = self._alloc_ptr
        self._alloc_ptr += nbytes
        if self._alloc_ptr > len(self.mem):
            raise MachineError("machine memory exhausted")
        return addr

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.mem):
            raise MachineError(f"memory access out of range: {addr:#x}+{size}")

    def read_word(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self.mem[addr: addr + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self.mem[addr: addr + 4] = (value & WORD_MASK).to_bytes(4, "little")

    def read_byte(self, addr: int) -> int:
        self._check(addr, 1)
        return self.mem[addr]

    def write_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.mem[addr] = value & 0xFF

    def write_words(self, addr: int, words: Sequence[int]) -> None:
        """Store a little-endian word vector with one bounds check and
        one bytes conversion (not one per word)."""
        count = len(words)
        if count <= 0:
            return
        self._check(addr, 4 * count)
        value = 0
        shift = 0
        for w in words:
            value |= (w & WORD_MASK) << shift
            shift += 32
        self.mem[addr: addr + 4 * count] = value.to_bytes(4 * count, "little")

    def read_words(self, addr: int, count: int) -> List[int]:
        """Load a word vector with one bounds check and one bytes
        conversion (not one per word)."""
        if count <= 0:
            return []
        self._check(addr, 4 * count)
        value = int.from_bytes(self.mem[addr: addr + 4 * count], "little")
        return [(value >> (32 * i)) & WORD_MASK for i in range(count)]

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.mem[addr: addr + len(data)] = data

    def read_bytes(self, addr: int, count: int) -> bytes:
        self._check(addr, count)
        return bytes(self.mem[addr: addr + count])

    # -- profiling helpers ---------------------------------------------------

    def _charge(self, cost: int) -> None:
        self.cycles += cost
        if self._frames:
            func, _ = self._frames[-1]
            prof = self.profile
            prof.local_cycles[func] = prof.local_cycles.get(func, 0) + cost

    def _flush_frame_cycles(self) -> None:
        """Attribute cycles accumulated since the last flush point to the
        current top frame.  Both backends batch per-instruction charges
        this way: the sums flushed at call/return/exit boundaries equal
        per-step attribution because the top frame is constant between
        boundaries."""
        cycles = self.cycles
        delta = cycles - self._cmark
        if delta and self._frames:
            func = self._frames[-1][0]
            prof = self.profile
            prof.local_cycles[func] = prof.local_cycles.get(func, 0) + delta
        self._cmark = cycles

    def _push_frame(self, callee: str) -> None:
        caller = self._frames[-1][0] if self._frames else self.ENTRY_FUNC
        prof = self.profile
        prof.call_edges[(caller, callee)] = \
            prof.call_edges.get((caller, callee), 0) + 1
        prof.call_counts[callee] = prof.call_counts.get(callee, 0) + 1
        self._frames.append((callee, self.cycles))

    def _enter(self, target_pc: int) -> None:
        self._push_frame(self._func_at.get(target_pc, f"func@{target_pc}"))

    def _leave(self) -> None:
        if len(self._frames) <= 1:
            return  # never pop the entry frame
        func, entry_cycles = self._frames.pop()
        prof = self.profile
        prof.inclusive_cycles[func] = \
            prof.inclusive_cycles.get(func, 0) + (self.cycles - entry_cycles)

    def _compiled_call(self, callee: str) -> None:
        """jal hook for the compiled backend (cycles already charged)."""
        self._flush_frame_cycles()
        self._push_frame(callee)

    def _compiled_ret(self) -> None:
        """jr hook for the compiled backend (cycles already charged)."""
        self._flush_frame_cycles()
        self._leave()

    # -- observability -----------------------------------------------------

    def instruction_mix(self) -> Dict[str, int]:
        """Executed-opcode histogram (sorted by opcode name)."""
        return dict(sorted(self.opcode_counts.items()))

    def custom_instruction_usage(self) -> Dict[str, int]:
        """Executed counts of the TIE custom instructions only --
        the direct measure of how much the selected extensions are
        actually exercised by a workload."""
        return {op: count for op, count in self.instruction_mix().items()
                if self.extensions.get(op) is not None}

    def publish_metrics(self, registry=None, run: str = "") -> None:
        """Opt-in: publish this machine's instruction-mix profile to a
        :class:`repro.obs.MetricsRegistry` (the global one by default).

        Deliberately not called from :meth:`run` -- the ISS inner loop
        stays observability-free; callers that want the profile ask
        for it after execution.
        """
        from repro.obs import get_registry
        registry = registry if registry is not None else get_registry()
        extra = {"run": run} if run else {}
        for op, count in self.instruction_mix().items():
            kind = ("custom" if self.extensions.get(op) is not None
                    else "base")
            registry.counter("iss.instruction_mix", opcode=op,
                             kind=kind, **extra).inc(count)
        registry.counter("iss.instructions", **extra).inc(self.instret)
        registry.counter("iss.cycles", **extra).inc(self.cycles)

    # -- execution ---------------------------------------------------------

    def _prepare_run(self, entry: str, args: Sequence[int]) -> Tuple[int, int]:
        """Shared run prologue: argument registers, stack/link setup,
        the entry profile frame.  Returns ``(entry_pc, sentinel)``."""
        program = self.program
        sentinel = len(program.instructions)  # "return to exit"
        self.pc = program.entry(entry)
        if len(args) > 6:
            raise MachineError("at most 6 register arguments supported")
        for i, value in enumerate(args):
            self.regs[1 + i] = value & WORD_MASK
        if self.regs[SP_REG] == 0:
            self.regs[SP_REG] = len(self.mem) - 16
        self.regs[LINK_REG] = sentinel
        self._frames = [(self.ENTRY_FUNC, self.cycles)]
        self._enter(self.pc)
        return self.pc, sentinel

    def _merge_counts(self, counts: List[int], op_names: Sequence[str]) -> None:
        oc = self.opcode_counts
        for i, c in enumerate(counts):
            if c:
                op = op_names[i]
                oc[op] = oc.get(op, 0) + c

    def _finish_run(self, executed: int) -> int:
        """Shared run epilogue on the success path (halt or return)."""
        while len(self._frames) > 1:
            self._leave()
        self.profile.total_cycles = self.cycles
        self.profile.instructions = executed
        return self.regs[1]

    def run(self, entry: str, args: Sequence[int] = (),
            max_instructions: int = 200_000_000) -> int:
        """Call ``entry`` with ``args`` in r1..; returns r1 at exit.

        Execution stops at ``halt`` or when the entry function returns
        (jr to the sentinel return address).  Dispatches to the
        interpreter or the threaded-code backend per ``self.backend``;
        both produce bit-identical architectural and profile state.
        """
        if self.backend == "compiled":
            return self._run_compiled(entry, args, max_instructions)
        return self._run_interp(entry, args, max_instructions)

    def _run_compiled(self, entry: str, args: Sequence[int],
                      max_instructions: int) -> int:
        from repro.isa.compile import compiled_for
        ext = self.extensions
        compiled = compiled_for(self.program,
                                ext if len(ext) else None)
        steps = compiled.steps
        blocks = compiled.blocks
        sentinel = compiled.sentinel
        pc, _ = self._prepare_run(entry, args)
        self._cmark = self.cycles
        self._halted = False
        self._block_fault = None
        counts = [0] * sentinel
        bcounts = [0] * len(compiled.block_hists)
        executed = 0
        completed = False
        top_fault = False
        try:
            while pc != sentinel:
                blk = blocks[pc]
                if blk is not None:
                    fn, length, bid = blk
                    after = executed + length
                    # Near the instruction budget, fall through to the
                    # per-instruction path so the budget trap fires at
                    # exactly the same instruction as the interpreter.
                    if after <= max_instructions:
                        executed = after
                        pc = fn(self)
                        bcounts[bid] += 1
                        continue
                counts[pc] += 1
                executed += 1
                if executed > max_instructions:
                    raise MachineError(
                        "instruction budget exceeded (runaway program?)")
                pc = steps[pc](self)
            completed = not self._halted
        except IndexError:
            if 0 <= pc < sentinel:
                raise  # raised from inside a step, not by the dispatch
            top_fault = True
            raise MachineError(f"pc out of range: {pc}") from None
        finally:
            fault = self._block_fault
            if fault is not None:
                # A fused block trapped at sub-instruction `sub`: undo
                # the pre-charged instruction count for the unexecuted
                # tail and attribute per-pc counts for the partial run.
                start, length, sub = fault
                executed -= length - (sub + 1)
                for i in range(sub + 1):
                    counts[start + i] += 1
                pc = start + sub     # the faulting instruction
                self._block_fault = None
            self._flush_frame_cycles()
            self._merge_counts(counts, compiled.op_names)
            oc = self.opcode_counts
            hists = compiled.block_hists
            for bid, c in enumerate(bcounts):
                if c:
                    for op, mult in hists[bid]:
                        oc[op] = oc.get(op, 0) + c * mult
            self.pc = self._halt_pc if self._halted else pc
            if completed or top_fault:
                self.instret = executed
            elif executed > 1:
                self.instret = executed - 1
            # else: no instruction completed this run; instret unchanged
        return self._finish_run(executed)

    def _run_interp(self, entry: str, args: Sequence[int],
                    max_instructions: int) -> int:
        program = self.program
        code = program.instructions
        pc, sentinel = self._prepare_run(entry, args)
        self._cmark = self.cycles

        regs = self.regs
        ext = self.extensions
        dcache = self.dcache
        penalty = BRANCH_TAKEN_PENALTY
        executed = 0
        cycles = self.cycles
        #: per-pc execution counts, merged into opcode_counts at exit --
        #: one list index per step instead of two dict operations
        counts = [0] * sentinel
        completed = False
        halted = False
        top_fault = False

        try:
            while pc != sentinel:
                if pc < 0 or pc > sentinel:
                    top_fault = True
                    raise MachineError(f"pc out of range: {pc}")
                instr = code[pc]
                op = instr.op
                a = instr.args
                counts[pc] += 1
                executed += 1
                if executed > max_instructions:
                    raise MachineError(
                        "instruction budget exceeded (runaway program?)")
                next_pc = pc + 1

                if op == "add":
                    regs[a[0]] = (regs[a[1]] + regs[a[2]]) & WORD_MASK
                    cost = 1
                elif op == "addi":
                    regs[a[0]] = (regs[a[1]] + a[2]) & WORD_MASK
                    cost = 1
                elif op == "sub":
                    regs[a[0]] = (regs[a[1]] - regs[a[2]]) & WORD_MASK
                    cost = 1
                elif op == "subi":
                    regs[a[0]] = (regs[a[1]] - a[2]) & WORD_MASK
                    cost = 1
                elif op == "li":
                    regs[a[0]] = a[1] & WORD_MASK
                    cost = 1
                elif op == "mov":
                    regs[a[0]] = regs[a[1]]
                    cost = 1
                elif op == "and":
                    regs[a[0]] = regs[a[1]] & regs[a[2]]
                    cost = 1
                elif op == "andi":
                    regs[a[0]] = regs[a[1]] & (a[2] & WORD_MASK)
                    cost = 1
                elif op == "or":
                    regs[a[0]] = regs[a[1]] | regs[a[2]]
                    cost = 1
                elif op == "ori":
                    regs[a[0]] = regs[a[1]] | (a[2] & WORD_MASK)
                    cost = 1
                elif op == "xor":
                    regs[a[0]] = regs[a[1]] ^ regs[a[2]]
                    cost = 1
                elif op == "xori":
                    regs[a[0]] = regs[a[1]] ^ (a[2] & WORD_MASK)
                    cost = 1
                elif op == "sll":
                    regs[a[0]] = (regs[a[1]] << (regs[a[2]] & 31)) & WORD_MASK
                    cost = 1
                elif op == "slli":
                    regs[a[0]] = (regs[a[1]] << (a[2] & 31)) & WORD_MASK
                    cost = 1
                elif op == "srl":
                    regs[a[0]] = regs[a[1]] >> (regs[a[2]] & 31)
                    cost = 1
                elif op == "srli":
                    regs[a[0]] = regs[a[1]] >> (a[2] & 31)
                    cost = 1
                elif op == "sra":
                    regs[a[0]] = (to_signed(regs[a[1]])
                                  >> (regs[a[2]] & 31)) & WORD_MASK
                    cost = 1
                elif op == "srai":
                    regs[a[0]] = (to_signed(regs[a[1]])
                                  >> (a[2] & 31)) & WORD_MASK
                    cost = 1
                elif op == "sltu":
                    regs[a[0]] = 1 if regs[a[1]] < regs[a[2]] else 0
                    cost = 1
                elif op == "sltui":
                    regs[a[0]] = 1 if regs[a[1]] < (a[2] & WORD_MASK) else 0
                    cost = 1
                elif op == "slt":
                    regs[a[0]] = (1 if to_signed(regs[a[1]])
                                  < to_signed(regs[a[2]]) else 0)
                    cost = 1
                elif op == "mul":
                    regs[a[0]] = (regs[a[1]] * regs[a[2]]) & WORD_MASK
                    cost = 2
                elif op == "mulhu":
                    regs[a[0]] = (regs[a[1]] * regs[a[2]]) >> 32
                    cost = 2
                elif op == "lw":
                    off, base = a[1]
                    addr = regs[base] + off
                    regs[a[0]] = self.read_word(addr)
                    cost = 2
                    if dcache is not None:
                        cost += dcache.access(addr)
                elif op == "lb":
                    off, base = a[1]
                    addr = regs[base] + off
                    regs[a[0]] = self.read_byte(addr)
                    cost = 2
                    if dcache is not None:
                        cost += dcache.access(addr)
                elif op == "sw":
                    off, base = a[1]
                    addr = regs[base] + off
                    self.write_word(addr, regs[a[0]])
                    cost = 1
                    if dcache is not None:
                        cost += dcache.access(addr)
                elif op == "sb":
                    off, base = a[1]
                    addr = regs[base] + off
                    self.write_byte(addr, regs[a[0]])
                    cost = 1
                    if dcache is not None:
                        cost += dcache.access(addr)
                elif op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
                    lhs, rhs = regs[a[0]], regs[a[1]]
                    if op == "beq":
                        taken = lhs == rhs
                    elif op == "bne":
                        taken = lhs != rhs
                    elif op == "bltu":
                        taken = lhs < rhs
                    elif op == "bgeu":
                        taken = lhs >= rhs
                    elif op == "blt":
                        taken = to_signed(lhs) < to_signed(rhs)
                    else:  # bge
                        taken = to_signed(lhs) >= to_signed(rhs)
                    cost = 1 + (penalty if taken else 0)
                    if taken:
                        next_pc = a[2]
                elif op == "j":
                    next_pc = a[0]
                    cost = 3
                elif op == "jal":
                    regs[LINK_REG] = pc + 1
                    next_pc = a[0]
                    cycles += 3
                    self.cycles = cycles
                    self._flush_frame_cycles()
                    self._enter(next_pc)
                    regs[ZERO_REG] = 0
                    pc = next_pc
                    continue
                elif op == "jr":
                    next_pc = regs[a[0]]
                    cycles += 3
                    self.cycles = cycles
                    self._flush_frame_cycles()
                    self._leave()
                    regs[ZERO_REG] = 0
                    pc = next_pc
                    continue
                elif op == "halt":
                    cycles += 1
                    halted = True
                    break
                else:
                    custom = ext.get(op)
                    if custom is None:
                        raise MachineError(
                            f"unknown opcode {op!r} at pc={pc}")
                    self.cycles = cycles
                    custom.semantics(self, a)
                    cost = custom.cycle_cost(self, a)
                    cycles = self.cycles

                regs[ZERO_REG] = 0  # r0 stays hardwired to zero
                cycles += cost
                pc = next_pc
            completed = not halted
        finally:
            self.cycles = cycles
            self._flush_frame_cycles()
            self._merge_counts(counts, [instr.op for instr in code])
            self.pc = pc
            if completed or top_fault:
                self.instret = executed
            elif executed > 1:
                self.instret = executed - 1
            # else: no instruction completed this run; instret unchanged
        return self._finish_run(executed)

    # -- batched execution -------------------------------------------------

    def run_batch(self, requests: Sequence[Tuple[str, Sequence[int]]],
                  max_instructions: int = 200_000_000
                  ) -> List[Tuple[int, int]]:
        """Run many independent ``(entry, args)`` calls on this machine,
        resetting architectural state between runs (the decoded program
        and, on the compiled backend, its threaded code are reused).
        Returns ``[(result, cycles), ...]`` in request order."""
        out = []
        for entry, args in requests:
            self.reset()
            result = self.run(entry, args, max_instructions)
            out.append((result, self.cycles))
        return out


class MachineFleet:
    """A pool of reusable machines for one program + extension
    configuration, one machine per thread.

    Repeated stimulus runs (characterization's ``reps``, bench loops)
    previously paid machine construction -- and with the compiled
    backend would pay predecoding -- per run.  A fleet keeps one
    machine per worker thread and :meth:`Machine.reset`\\ s it between
    runs, so the decode/setup cost is paid once per thread.  Works with
    the serial and thread executors from :mod:`repro.parallel`; for
    process executors the fleet pickles its configuration (not its
    machines) and each worker re-populates its own pool.
    """

    def __init__(self, program: Program,
                 extensions: Optional[ExtensionSet] = None,
                 mem_size: int = 1 << 20,
                 dcache=None,
                 backend: Optional[str] = None):
        self.program = program
        self.extensions = extensions
        self.mem_size = mem_size
        self.dcache = dcache
        #: explicit backend pin, or None to track backend_scope()/env
        self.backend = backend
        self._local = threading.local()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_local"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def machine(self) -> Machine:
        """This thread's machine, reset to pristine architectural state.

        The backend is re-resolved per call (unless pinned at fleet
        construction), so a long-lived cached fleet honors an enclosing
        :func:`backend_scope` instead of the scope active when the
        fleet was first used."""
        backend = resolve_backend(self.backend)
        m = getattr(self._local, "machine", None)
        if m is None or m.backend != backend:
            m = Machine(self.program, self.extensions, self.mem_size,
                        dcache=self.dcache, backend=backend)
            self._local.machine = m
        else:
            m.reset()
        return m

    def run_batch(self, requests: Sequence[Tuple[str, Sequence[int]]],
                  executor=None) -> List[Tuple[int, int]]:
        """Run ``(entry, args)`` requests across the fleet, optionally
        fanned over a :mod:`repro.parallel` executor (order-preserving).
        Returns ``[(result, cycles), ...]`` in request order."""
        if executor is None:
            return self.machine().run_batch(requests)
        return executor.map(self._run_one, list(requests), label="iss.batch")

    def _run_one(self, request: Tuple[str, Sequence[int]]) -> Tuple[int, int]:
        entry, args = request
        m = self.machine()
        result = m.run(entry, args)
        return result, m.cycles
