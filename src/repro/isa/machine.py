"""The XT32 instruction-set simulator with cycle accounting and profiling.

The machine executes a decoded :class:`~repro.isa.assembler.Program`
and charges cycles per the base-ISA cost table (plus custom-instruction
latencies).  A lightweight profiler attributes cycles to functions
(``jal`` targets), producing the annotated call graphs of the paper's
Figure 4 and the per-routine cycle counts that characterization fits
macro-models to.

Calling convention (used by all kernels in :mod:`repro.isa.kernels`):

- arguments in ``r1``..``r6``, results in ``r1`` (and ``r2``),
- ``r13`` stack pointer (grows down), ``r14`` link register,
- ``jal`` is a call, ``jr r14`` (after restoring r14) a return,
- callee may clobber ``r1``..``r12``.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.assembler import Program
from repro.isa.extensions import ExtensionSet
from repro.isa.instructions import (BRANCH_TAKEN_PENALTY, LINK_REG,
                                    SP_REG, WORD_MASK, ZERO_REG, to_signed)


class MachineError(RuntimeError):
    """Raised on simulator faults (bad memory access, runaway programs)."""


@dataclass
class Profile:
    """Cycle-accurate execution profile."""

    total_cycles: int = 0
    instructions: int = 0
    #: cycles spent in computations local to each function (no callees)
    local_cycles: Dict[str, int] = field(default_factory=dict)
    #: cycles including callees, summed over all invocations
    inclusive_cycles: Dict[str, int] = field(default_factory=dict)
    #: (caller, callee) -> number of calls
    call_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: function -> number of invocations
    call_counts: Dict[str, int] = field(default_factory=dict)

    def callees(self, func: str) -> Dict[str, int]:
        """callee -> call count for one caller."""
        return {callee: n for (caller, callee), n in self.call_edges.items()
                if caller == func}


class Machine:
    """An XT32 core: base ISA plus an optional extension set."""

    ENTRY_FUNC = "<entry>"

    def __init__(self, program: Program,
                 extensions: Optional[ExtensionSet] = None,
                 mem_size: int = 1 << 20,
                 dcache=None):
        """``dcache``: an optional :class:`repro.isa.cache.CacheConfig`;
        when set, scalar loads/stores pay miss penalties.  Custom
        instructions model dedicated wide memory ports and bypass it."""
        self.program = program
        self.extensions = extensions or ExtensionSet()
        self.mem = bytearray(mem_size)
        if dcache is not None:
            from repro.isa.cache import DataCache
            self.dcache = DataCache(dcache)
        else:
            self.dcache = None
        #: opcode -> executed count (for the energy model / statistics)
        self.opcode_counts: Dict[str, int] = {}
        self.regs: List[int] = [0] * 16
        self.user_regs: Dict[str, int] = {}   # wide TIE state registers
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self._alloc_ptr = 0x1000              # bump allocator for harness data
        # Profiling state.
        self._func_at: Dict[int, str] = {}
        for label, index in program.labels.items():
            self._func_at.setdefault(index, label)
        self.profile = Profile()
        self._frames: List[Tuple[str, int]] = []  # (func, cycles at entry)

    # -- memory helpers ---------------------------------------------------

    def alloc(self, nbytes: int, align: int = 4) -> int:
        """Bump-allocate scratch memory for harness inputs/outputs."""
        self._alloc_ptr = (self._alloc_ptr + align - 1) & ~(align - 1)
        addr = self._alloc_ptr
        self._alloc_ptr += nbytes
        if self._alloc_ptr > len(self.mem):
            raise MachineError("machine memory exhausted")
        return addr

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.mem):
            raise MachineError(f"memory access out of range: {addr:#x}+{size}")

    def read_word(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self.mem[addr: addr + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self.mem[addr: addr + 4] = (value & WORD_MASK).to_bytes(4, "little")

    def read_byte(self, addr: int) -> int:
        self._check(addr, 1)
        return self.mem[addr]

    def write_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.mem[addr] = value & 0xFF

    def write_words(self, addr: int, words: Sequence[int]) -> None:
        for i, w in enumerate(words):
            self.write_word(addr + 4 * i, w)

    def read_words(self, addr: int, count: int) -> List[int]:
        return [self.read_word(addr + 4 * i) for i in range(count)]

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.mem[addr: addr + len(data)] = data

    def read_bytes(self, addr: int, count: int) -> bytes:
        self._check(addr, count)
        return bytes(self.mem[addr: addr + count])

    # -- profiling helpers ---------------------------------------------------

    def _charge(self, cost: int) -> None:
        self.cycles += cost
        if self._frames:
            func, _ = self._frames[-1]
            prof = self.profile
            prof.local_cycles[func] = prof.local_cycles.get(func, 0) + cost

    def _enter(self, target_pc: int) -> None:
        callee = self._func_at.get(target_pc, f"func@{target_pc}")
        caller = self._frames[-1][0] if self._frames else self.ENTRY_FUNC
        prof = self.profile
        prof.call_edges[(caller, callee)] = \
            prof.call_edges.get((caller, callee), 0) + 1
        prof.call_counts[callee] = prof.call_counts.get(callee, 0) + 1
        self._frames.append((callee, self.cycles))

    def _leave(self) -> None:
        if len(self._frames) <= 1:
            return  # never pop the entry frame
        func, entry_cycles = self._frames.pop()
        prof = self.profile
        prof.inclusive_cycles[func] = \
            prof.inclusive_cycles.get(func, 0) + (self.cycles - entry_cycles)

    # -- observability -----------------------------------------------------

    def instruction_mix(self) -> Dict[str, int]:
        """Executed-opcode histogram (sorted by opcode name)."""
        return dict(sorted(self.opcode_counts.items()))

    def custom_instruction_usage(self) -> Dict[str, int]:
        """Executed counts of the TIE custom instructions only --
        the direct measure of how much the selected extensions are
        actually exercised by a workload."""
        return {op: count for op, count in self.instruction_mix().items()
                if self.extensions.get(op) is not None}

    def publish_metrics(self, registry=None, run: str = "") -> None:
        """Opt-in: publish this machine's instruction-mix profile to a
        :class:`repro.obs.MetricsRegistry` (the global one by default).

        Deliberately not called from :meth:`run` -- the ISS inner loop
        stays observability-free; callers that want the profile ask
        for it after execution.
        """
        from repro.obs import get_registry
        registry = registry if registry is not None else get_registry()
        extra = {"run": run} if run else {}
        for op, count in self.instruction_mix().items():
            kind = ("custom" if self.extensions.get(op) is not None
                    else "base")
            registry.counter("iss.instruction_mix", opcode=op,
                             kind=kind, **extra).inc(count)
        registry.counter("iss.instructions", **extra).inc(self.instret)
        registry.counter("iss.cycles", **extra).inc(self.cycles)

    # -- execution ---------------------------------------------------------

    def run(self, entry: str, args: Sequence[int] = (),
            max_instructions: int = 200_000_000) -> int:
        """Call ``entry`` with ``args`` in r1..; returns r1 at exit.

        Execution stops at ``halt`` or when the entry function returns
        (jr to the sentinel return address).
        """
        program = self.program
        code = program.instructions
        sentinel = len(code)  # "return to exit"
        self.pc = program.entry(entry)
        if len(args) > 6:
            raise MachineError("at most 6 register arguments supported")
        for i, value in enumerate(args):
            self.regs[1 + i] = value & WORD_MASK
        if self.regs[SP_REG] == 0:
            self.regs[SP_REG] = len(self.mem) - 16
        self.regs[LINK_REG] = sentinel
        self._frames = [(self.ENTRY_FUNC, self.cycles)]
        self._enter(self.pc)

        regs = self.regs
        ext = self.extensions
        penalty = BRANCH_TAKEN_PENALTY
        executed = 0
        opcounts = self.opcode_counts

        while self.pc != sentinel:
            if self.pc < 0 or self.pc > sentinel:
                raise MachineError(f"pc out of range: {self.pc}")
            instr = code[self.pc]
            op = instr.op
            a = instr.args
            opcounts[op] = opcounts.get(op, 0) + 1
            executed += 1
            if executed > max_instructions:
                raise MachineError("instruction budget exceeded (runaway program?)")
            next_pc = self.pc + 1

            if op == "add":
                regs[a[0]] = (regs[a[1]] + regs[a[2]]) & WORD_MASK
                cost = 1
            elif op == "addi":
                regs[a[0]] = (regs[a[1]] + a[2]) & WORD_MASK
                cost = 1
            elif op == "sub":
                regs[a[0]] = (regs[a[1]] - regs[a[2]]) & WORD_MASK
                cost = 1
            elif op == "subi":
                regs[a[0]] = (regs[a[1]] - a[2]) & WORD_MASK
                cost = 1
            elif op == "li":
                regs[a[0]] = a[1] & WORD_MASK
                cost = 1
            elif op == "mov":
                regs[a[0]] = regs[a[1]]
                cost = 1
            elif op == "and":
                regs[a[0]] = regs[a[1]] & regs[a[2]]
                cost = 1
            elif op == "andi":
                regs[a[0]] = regs[a[1]] & (a[2] & WORD_MASK)
                cost = 1
            elif op == "or":
                regs[a[0]] = regs[a[1]] | regs[a[2]]
                cost = 1
            elif op == "ori":
                regs[a[0]] = regs[a[1]] | (a[2] & WORD_MASK)
                cost = 1
            elif op == "xor":
                regs[a[0]] = regs[a[1]] ^ regs[a[2]]
                cost = 1
            elif op == "xori":
                regs[a[0]] = regs[a[1]] ^ (a[2] & WORD_MASK)
                cost = 1
            elif op == "sll":
                regs[a[0]] = (regs[a[1]] << (regs[a[2]] & 31)) & WORD_MASK
                cost = 1
            elif op == "slli":
                regs[a[0]] = (regs[a[1]] << (a[2] & 31)) & WORD_MASK
                cost = 1
            elif op == "srl":
                regs[a[0]] = regs[a[1]] >> (regs[a[2]] & 31)
                cost = 1
            elif op == "srli":
                regs[a[0]] = regs[a[1]] >> (a[2] & 31)
                cost = 1
            elif op == "sra":
                regs[a[0]] = (to_signed(regs[a[1]]) >> (regs[a[2]] & 31)) & WORD_MASK
                cost = 1
            elif op == "srai":
                regs[a[0]] = (to_signed(regs[a[1]]) >> (a[2] & 31)) & WORD_MASK
                cost = 1
            elif op == "sltu":
                regs[a[0]] = 1 if regs[a[1]] < regs[a[2]] else 0
                cost = 1
            elif op == "sltui":
                regs[a[0]] = 1 if regs[a[1]] < (a[2] & WORD_MASK) else 0
                cost = 1
            elif op == "slt":
                regs[a[0]] = 1 if to_signed(regs[a[1]]) < to_signed(regs[a[2]]) else 0
                cost = 1
            elif op == "mul":
                regs[a[0]] = (regs[a[1]] * regs[a[2]]) & WORD_MASK
                cost = 2
            elif op == "mulhu":
                regs[a[0]] = (regs[a[1]] * regs[a[2]]) >> 32
                cost = 2
            elif op == "lw":
                off, base = a[1]
                addr = regs[base] + off
                regs[a[0]] = self.read_word(addr)
                cost = 2
                if self.dcache is not None:
                    cost += self.dcache.access(addr)
            elif op == "lb":
                off, base = a[1]
                addr = regs[base] + off
                regs[a[0]] = self.read_byte(addr)
                cost = 2
                if self.dcache is not None:
                    cost += self.dcache.access(addr)
            elif op == "sw":
                off, base = a[1]
                addr = regs[base] + off
                self.write_word(addr, regs[a[0]])
                cost = 1
                if self.dcache is not None:
                    cost += self.dcache.access(addr)
            elif op == "sb":
                off, base = a[1]
                addr = regs[base] + off
                self.write_byte(addr, regs[a[0]])
                cost = 1
                if self.dcache is not None:
                    cost += self.dcache.access(addr)
            elif op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
                lhs, rhs = regs[a[0]], regs[a[1]]
                if op == "beq":
                    taken = lhs == rhs
                elif op == "bne":
                    taken = lhs != rhs
                elif op == "bltu":
                    taken = lhs < rhs
                elif op == "bgeu":
                    taken = lhs >= rhs
                elif op == "blt":
                    taken = to_signed(lhs) < to_signed(rhs)
                else:  # bge
                    taken = to_signed(lhs) >= to_signed(rhs)
                cost = 1 + (penalty if taken else 0)
                if taken:
                    next_pc = a[2]
            elif op == "j":
                next_pc = a[0]
                cost = 3
            elif op == "jal":
                regs[LINK_REG] = self.pc + 1
                next_pc = a[0]
                cost = 3
                self._charge(cost)
                self._enter(next_pc)
                regs[ZERO_REG] = 0
                self.pc = next_pc
                self.instret = executed
                continue
            elif op == "jr":
                next_pc = regs[a[0]]
                cost = 3
                self._charge(cost)
                self._leave()
                regs[ZERO_REG] = 0
                self.pc = next_pc
                self.instret = executed
                continue
            elif op == "halt":
                self._charge(1)
                break
            else:
                custom = ext.get(op)
                if custom is None:
                    raise MachineError(f"unknown opcode {op!r} at pc={self.pc}")
                custom.semantics(self, a)
                cost = custom.cycle_cost(self, a)

            regs[ZERO_REG] = 0  # r0 stays hardwired to zero
            self._charge(cost)
            self.pc = next_pc
            self.instret = executed

        # Unwind remaining frames so inclusive cycles are complete.
        while len(self._frames) > 1:
            self._leave()
        self.profile.total_cycles = self.cycles
        self.profile.instructions = executed
        return regs[1]
