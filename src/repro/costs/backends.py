"""Pluggable cost-estimation backends.

Two implementations of one pricing surface:

- :class:`MacroModelBackend` -- the default, fast path: public-key
  operations are executed *natively* with characterized macro-models
  charging cycles per leaf-routine call (the paper's ~1407x faster
  estimation flow); symmetric/hash rates come from the short ISS
  kernel runs the platform facade exposes.
- :class:`IssBackend` -- cycle-accurate ground truth: operations run
  on the instruction-set simulator itself.  Orders of magnitude
  slower; used to validate the fast path.

:func:`cross_validate` is the paper's Section 4.3 accuracy check made
reusable: it prices the mpn leaf routines through both backends on
held-out stimuli (a seed distinct from the characterization seed) and
reports the mean absolute percentage error.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costs.cache import CharacterizationCache, characterize_cached
from repro.costs.model import PlatformCosts
from repro.crypto.modexp import ModExpEngine
from repro.macromodel import estimate_cycles
from repro.mp.prng import DeterministicPrng
from repro.obs import get_registry as get_obs_registry

#: Stimulus seed for cross-validation -- deliberately not the
#: characterization seed, so the check runs on held-out inputs.
VALIDATION_SEED = 0x5EED5EED

#: The mpn leaf routines both backends can price (the characterized
#: vocabulary minus the ISS-profile-only residual models).
MPN_LEAF_ROUTINES = ("mpn_add_n", "mpn_sub_n", "mpn_mul_1",
                     "mpn_addmul_1", "mpn_submul_1", "mpn_lshift")

# Fixed deterministic ECDH parties: the handshake cost is the online
# scalar multiplication against the gateway's static public key (the
# handset's ephemeral key is precomputable off-line).
_ECDH_GATEWAY_SEED = 0xFA57
_ECDH_EPHEMERAL_SEED = 0x7E57
_ecdh_parties = None


def _ecdh_handshake_parties():
    global _ecdh_parties
    if _ecdh_parties is None:
        from repro.crypto.ec import SECP160R1, generate_ec_keypair
        gateway = generate_ec_keypair(SECP160R1,
                                      DeterministicPrng(_ECDH_GATEWAY_SEED))
        ephemeral = generate_ec_keypair(
            SECP160R1, DeterministicPrng(_ECDH_EPHEMERAL_SEED))
        _ecdh_parties = (ephemeral.private, gateway.public)
    return _ecdh_parties


def _default_keypair():
    from repro.ssl import fixtures
    return fixtures.SERVER_1024


class CostBackend:
    """Protocol for pricing security operations on a platform.

    A backend answers, for one
    :class:`~repro.platform.SecurityPlatform` configuration: what does
    an RSA public/private operation, an ECDH handshake, a bulk-cipher
    byte, a hashed byte, or one mpn leaf call cost in cycles?
    :meth:`platform_costs` assembles the answers into the shared
    :class:`~repro.costs.model.PlatformCosts` vocabulary.

    Backends may decline an operation with ``NotImplementedError``;
    :meth:`platform_costs` then leaves the corresponding field to its
    documented fallback.
    """

    name = "abstract"

    def rsa_public_cycles(self, platform, keypair) -> float:
        raise NotImplementedError

    def rsa_private_cycles(self, platform, keypair) -> float:
        raise NotImplementedError

    def ecdh_cycles(self, platform) -> float:
        raise NotImplementedError

    def leaf_cycles(self, routine: str, n: float,
                    add_width: int = 0, mac_width: int = 0) -> float:
        raise NotImplementedError

    # Symmetric rates come from the platform's kernel facade in both
    # backends: they are short ISS measurements either way (the
    # macro-models cover the multi-precision leaf routines).
    def cipher_cycles_per_byte(self, platform, algorithm: str) -> float:
        return platform.cipher_cycles_per_byte(algorithm)

    def hash_cycles_per_byte(self, platform) -> float:
        return platform.hash_cycles_per_byte()

    def protocol_overheads(self, platform) -> Dict[str, float]:
        """Kernel-measured per-protocol overheads (registered protocol
        models resolve these through ``PlatformCosts.overhead``).  A
        platform facade without a given kernel simply omits the key."""
        overheads: Dict[str, float] = {}
        try:
            overheads["kasumi_cycles_per_byte"] = (
                self.cipher_cycles_per_byte(platform, "kasumi"))
        except (NotImplementedError, ValueError):
            pass
        return overheads

    def platform_costs(self, platform, keypair=None, cipher: str = "3des",
                       cls=PlatformCosts) -> PlatformCosts:
        """Assemble the full unit-cost vocabulary for ``platform``."""
        keypair = keypair or _default_keypair()
        try:
            ecdh = self.ecdh_cycles(platform)
        except NotImplementedError:
            ecdh = None
        return cls(
            name=platform.name,
            rsa_public_cycles=self.rsa_public_cycles(platform, keypair),
            rsa_private_cycles=self.rsa_private_cycles(platform, keypair),
            cipher_cycles_per_byte=self.cipher_cycles_per_byte(platform,
                                                               cipher),
            hash_cycles_per_byte=self.hash_cycles_per_byte(platform),
            ecdh_cycles=ecdh,
            protocol_overheads=self.protocol_overheads(platform))


class MacroModelBackend(CostBackend):
    """Fast native estimation through characterized macro-models.

    Public-key operations execute natively with a
    :class:`~repro.macromodel.estimator.CycleLedger` charging each
    traced leaf call its macro-model estimate.  Model sets resolve
    through the platform (honouring explicitly injected models) or,
    for bare leaf queries, through the characterization cache.
    """

    name = "macromodel"

    def __init__(self, cache: Optional[CharacterizationCache] = None):
        self._cache = cache     # None -> the process-global cache

    def _models(self, add_width: int, mac_width: int):
        return characterize_cached(add_width, mac_width, cache=self._cache)

    def rsa_public_cycles(self, platform, keypair,
                          message: int = 0x1234567) -> float:
        engine = ModExpEngine(platform.modexp_config)
        est = estimate_cycles(platform.models, engine.powm, message,
                              keypair.public.e, keypair.public.n)
        return est.cycles

    def rsa_private_cycles(self, platform, keypair,
                           message: int = 0x1234567) -> float:
        priv = keypair.private
        engine = ModExpEngine(platform.modexp_config)
        est = estimate_cycles(
            platform.models, engine.powm_crt, message, priv.d, priv.p,
            priv.q, priv.dp, priv.dq, priv.qinv)
        return est.cycles

    def ecdh_cycles(self, platform) -> float:
        from repro.crypto.ec import ecdh_shared_secret
        private, peer_public = _ecdh_handshake_parties()
        est = estimate_cycles(platform.models, ecdh_shared_secret,
                              private, peer_public)
        return est.cycles

    def leaf_cycles(self, routine: str, n: float,
                    add_width: int = 0, mac_width: int = 0) -> float:
        return self._models(add_width, mac_width).predict(routine, n)


class IssBackend(CostBackend):
    """Cycle-accurate ground truth on the instruction-set simulator.

    Slow by design (it is what the macro-models exist to replace):
    RSA operations run the assembly modexp kernel end to end, and leaf
    queries execute the mpn kernels with seeded random stimuli.  The
    kernel's modexp is Montgomery-based without CRT, so the private
    operation is the non-CRT ground truth.  There is no EC kernel on
    the ISS, so :meth:`ecdh_cycles` declines and
    :meth:`~CostBackend.platform_costs` leaves the field to the
    documented RSA-equivalence fallback.
    """

    name = "iss"

    def __init__(self, seed: int = VALIDATION_SEED, reps: int = 2,
                 executor=None):
        self.seed = seed
        self.reps = reps
        self.executor = executor    # optional repro.parallel executor
        self._kernels: Dict[Tuple[int, int], object] = {}

    def _mpn_kernels(self, add_width: int, mac_width: int):
        key = (add_width, mac_width)
        if key not in self._kernels:
            from repro.isa.kernels.mpn_kernels import MpnKernels
            extended = bool(add_width and mac_width)
            self._kernels[key] = (MpnKernels(add_width, mac_width)
                                  if extended else MpnKernels())
        return self._kernels[key]

    def rsa_public_cycles(self, platform, keypair,
                          message: int = 0x1234567) -> float:
        return self._powm_cycles(platform, message, int(keypair.public.e),
                                 int(keypair.public.n))

    def rsa_private_cycles(self, platform, keypair,
                           message: int = 0x1234567) -> float:
        priv = keypair.private
        return self._powm_cycles(platform, message, int(priv.d),
                                 int(priv.n))

    def _powm_cycles(self, platform, base: int, exponent: int,
                     modulus: int) -> float:
        from repro.isa.kernels.modexp_kernel import ModExpKernel
        kernel = (ModExpKernel(platform.add_width, platform.mac_width)
                  if platform.extended else ModExpKernel())
        _, cycles, _ = kernel.powm(base, exponent, modulus)
        return float(cycles)

    def leaf_cycles(self, routine: str, n: float,
                    add_width: int = 0, mac_width: int = 0) -> float:
        """Mean measured cycles of ``reps`` seeded stimulus runs.

        All stimuli are drawn up front (in the same PRNG order as the
        historical one-run-at-a-time loop, so measurements are
        bit-identical) and then executed as one batch on the kernel
        runner's machine fleet -- decode and machine setup are paid
        once, and an optional :mod:`repro.parallel` executor can fan
        the runs out.
        """
        import zlib
        kernels = self._mpn_kernels(add_width, mac_width)
        prng = DeterministicPrng(self.seed ^ zlib.crc32(routine.encode()))
        limbs = int(n)
        requests = []
        for _ in range(max(1, self.reps)):
            if routine == "mpn_add_n":
                requests.append(("add_n", prng.next_limbs(limbs),
                                 prng.next_limbs(limbs)))
            elif routine == "mpn_sub_n":
                requests.append(("sub_n", prng.next_limbs(limbs),
                                 prng.next_limbs(limbs)))
            elif routine == "mpn_mul_1":
                requests.append(("mul_1", prng.next_limbs(limbs),
                                 prng.next_bits(32)))
            elif routine == "mpn_addmul_1":
                requests.append(("addmul_1", prng.next_limbs(limbs),
                                 prng.next_limbs(limbs),
                                 prng.next_bits(32)))
            elif routine == "mpn_submul_1":
                requests.append(("submul_1", prng.next_limbs(limbs),
                                 prng.next_limbs(limbs),
                                 prng.next_bits(32)))
            elif routine in ("mpn_lshift", "mpn_rshift"):
                requests.append(("lshift", prng.next_limbs(limbs),
                                 1 + prng.next_int(31)))
            else:
                raise NotImplementedError(
                    f"no ISS stimulus harness for routine {routine!r}")
        results = kernels.batch(requests, executor=self.executor)
        runs = [float(result[2]) for result in results]
        return sum(runs) / len(runs)


# -- cross-validation (paper Section 4.3) ------------------------------------

@dataclass
class RoutineValidation:
    """Macro-model vs ISS agreement for one leaf routine."""

    routine: str
    sizes: Tuple[int, ...]
    model_cycles: Tuple[float, ...]
    iss_cycles: Tuple[float, ...]

    @property
    def mean_abs_pct_error(self) -> float:
        errors = [abs(m - i) / i * 100.0
                  for m, i in zip(self.model_cycles, self.iss_cycles)]
        return sum(errors) / len(errors)

    def as_dict(self) -> Dict:
        return {"routine": self.routine, "sizes": list(self.sizes),
                "model_cycles": list(self.model_cycles),
                "iss_cycles": list(self.iss_cycles),
                "mean_abs_pct_error": self.mean_abs_pct_error}


@dataclass
class CrossValidation:
    """The backend-agreement report: per-routine and aggregate error."""

    platform: str
    rows: List[RoutineValidation] = field(default_factory=list)

    @property
    def mean_abs_pct_error(self) -> float:
        if not self.rows:
            raise ValueError("cross-validation produced no rows")
        return (sum(r.mean_abs_pct_error for r in self.rows)
                / len(self.rows))

    def as_dict(self) -> Dict:
        return {"platform": self.platform,
                "mean_abs_pct_error": self.mean_abs_pct_error,
                "routines": [r.as_dict() for r in self.rows]}


def cross_validate(add_width: int = 0, mac_width: int = 0,
                   routines: Sequence[str] = MPN_LEAF_ROUTINES,
                   sizes: Sequence[int] = (2, 4, 8, 16, 24),
                   seed: int = VALIDATION_SEED, reps: int = 2,
                   macro: Optional[MacroModelBackend] = None,
                   iss: Optional[IssBackend] = None) -> CrossValidation:
    """Mean-abs-% error between the fast and ground-truth backends.

    Prices each leaf routine at each size through both backends on
    held-out stimuli.  This is the reusable form of the paper's 11.8%
    macro-model accuracy check; benchmarks and the regression suite
    both call it.
    """
    macro = macro or MacroModelBackend()
    iss = iss or IssBackend(seed=seed, reps=reps)
    extended = bool(add_width and mac_width)
    platform = (f"ext(add{add_width},mac{mac_width})" if extended
                else "base")
    report = CrossValidation(platform=platform)
    for routine in routines:
        model_cycles, iss_cycles = [], []
        for n in sizes:
            model_cycles.append(macro.leaf_cycles(routine, n,
                                                  add_width, mac_width))
            iss_cycles.append(iss.leaf_cycles(routine, n,
                                              add_width, mac_width))
        report.rows.append(RoutineValidation(
            routine=routine, sizes=tuple(sizes),
            model_cycles=tuple(model_cycles),
            iss_cycles=tuple(iss_cycles)))
    registry = get_obs_registry()
    for row in report.rows:
        registry.gauge("costs.cross_validation.mean_abs_pct_error",
                       platform=platform,
                       routine=row.routine).set(row.mean_abs_pct_error)
    registry.gauge("costs.cross_validation.mean_abs_pct_error",
                   platform=platform,
                   routine="__aggregate__").set(report.mean_abs_pct_error)
    return report
