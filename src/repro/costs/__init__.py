"""Unified cost estimation: one characterization, every consumer.

The paper's methodology hinges on a single characterization pass whose
macro-models replace the cycle-accurate ISS everywhere downstream
(~1407x faster at ~11.8% error).  This package is that idea as an
architectural layer:

- :mod:`repro.costs.model`    -- :class:`PlatformCosts`, the shared
  unit-cost vocabulary (RSA, ECDH, cipher/hash rates, per-protocol
  overheads) consumed by the SSL model, the throughput calculator,
  the farm, and the capacity planner;
- :mod:`repro.costs.backends` -- the :class:`CostBackend` protocol
  with :class:`MacroModelBackend` (fast, default) and
  :class:`IssBackend` (cycle-accurate ground truth), plus
  :func:`cross_validate` reporting their mean-abs-% disagreement;
- :mod:`repro.costs.cache`    -- the persistent characterization
  cache: content-keyed on the platform configuration, memoized
  in-process, optionally persisted as JSON (built on
  :mod:`repro.macromodel.persist`) so a warm store characterizes
  zero times.

``from repro.ssl.transaction import PlatformCosts`` and
``from repro.ssl import PlatformCosts`` keep working via compat
re-exports.
"""

from repro.costs.model import (CRC32_CYCLES_PER_BYTE,
                               ECDH_RSA_PUBLIC_EQUIV,
                               ESP_PACKET_FIXED_CYCLES,
                               KASUMI_CYCLES_PER_BYTE,
                               KASUMI_FRAME_FIXED_CYCLES,
                               PROTOCOL_CYCLES_PER_BYTE,
                               PROTOCOL_FIXED_CYCLES, PlatformCosts,
                               RC4_CYCLES_PER_BYTE,
                               WEP_FRAME_FIXED_CYCLES)
from repro.costs.backends import (CostBackend, CrossValidation,
                                  IssBackend, MacroModelBackend,
                                  MPN_LEAF_ROUTINES, RoutineValidation,
                                  cross_validate)
from repro.costs.cache import (CacheStats, CharacterizationCache,
                               CharacterizationKey, characterize_cached,
                               configure_cache, get_cache, reset_cache)

__all__ = [
    "CRC32_CYCLES_PER_BYTE", "CacheStats", "CharacterizationCache",
    "CharacterizationKey", "CostBackend", "CrossValidation",
    "ECDH_RSA_PUBLIC_EQUIV", "ESP_PACKET_FIXED_CYCLES", "IssBackend",
    "KASUMI_CYCLES_PER_BYTE", "KASUMI_FRAME_FIXED_CYCLES",
    "MPN_LEAF_ROUTINES", "MacroModelBackend", "PROTOCOL_CYCLES_PER_BYTE",
    "PROTOCOL_FIXED_CYCLES", "PlatformCosts", "RC4_CYCLES_PER_BYTE",
    "RoutineValidation", "WEP_FRAME_FIXED_CYCLES", "characterize_cached",
    "configure_cache", "cross_validate", "get_cache", "reset_cache",
]
