"""The unified cost vocabulary: :class:`PlatformCosts`.

One characterization pass yields unit costs that every downstream
layer consumes -- the SSL transaction model, the throughput/feasibility
calculator, the farm simulator, and the capacity planner all price
work through this single dataclass.  (It historically lived in
:mod:`repro.ssl.transaction`; that module re-exports it for backward
compatibility.)

The vocabulary covers all four protocol stacks the paper names (WEP,
IPSec ESP, SSL, WTLS): RSA and ECDH public-key operations, bulk cipher
and hash per-byte rates, and the per-protocol framing overheads.
"""

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

#: Per-byte protocol processing (framing, buffer copies) -- identical
#: on both platforms; calibrated to a few instructions per byte.
PROTOCOL_CYCLES_PER_BYTE = 24.0
#: Fixed per-transaction protocol processing outside the crypto.
PROTOCOL_FIXED_CYCLES = 50_000.0

#: RC4 and CRC-32 per-byte costs (WEP's primitives).  Neither is
#: accelerated by the paper's custom instructions, so both platforms
#: pay the same price -- WEP traffic is what makes *base* cores useful
#: in a heterogeneous farm.
RC4_CYCLES_PER_BYTE = 36.0
CRC32_CYCLES_PER_BYTE = 6.0
#: Fixed per-packet cycles (header build, SA lookup, replay window).
ESP_PACKET_FIXED_CYCLES = 2_000.0
WEP_FRAME_FIXED_CYCLES = 800.0

#: KASUMI (3GPP f8/f9) per-byte fallback when no kernel measurement is
#: in the ``protocol_overheads`` map -- calibrated to the XT32 KASUMI
#: kernel's base-ISA rate.  Like RC4, KASUMI is not TIE-accelerated,
#: so both platforms pay the same price.
KASUMI_CYCLES_PER_BYTE = 135.0
#: Fixed per-frame cycles for f8/f9 COUNT/BEARER/FRESH block setup.
KASUMI_FRAME_FIXED_CYCLES = 1_200.0

#: Documented fallback when a :class:`PlatformCosts` carries no
#: measured ECDH figure (hand-built costs, unknown configuration
#: names): on the base platform one secp160r1 ECDH scalar
#: multiplication costs ~7 RSA-1024 public operations.
ECDH_RSA_PUBLIC_EQUIV = 7.0


@dataclass
class PlatformCosts:
    """Measured/estimated unit costs for one platform configuration.

    ``ecdh_cycles`` is the online scalar multiplication of an ECDH
    (secp160r1) handshake; :meth:`measure` fills it from the
    macro-model estimator.  When absent (``None``), consumers fall
    back to :data:`ECDH_RSA_PUBLIC_EQUIV` RSA public operations via
    :meth:`ecdh_handshake_cycles`.
    """

    name: str
    rsa_public_cycles: float        # one public-key op (verify or encrypt)
    rsa_private_cycles: float       # one private-key op (sign)
    cipher_cycles_per_byte: float
    hash_cycles_per_byte: float
    protocol_cycles_per_byte: float = PROTOCOL_CYCLES_PER_BYTE
    protocol_fixed_cycles: float = PROTOCOL_FIXED_CYCLES
    # -- WTLS --
    ecdh_cycles: Optional[float] = None
    # -- WEP / ESP framing --
    rc4_cycles_per_byte: float = RC4_CYCLES_PER_BYTE
    crc32_cycles_per_byte: float = CRC32_CYCLES_PER_BYTE
    esp_packet_fixed_cycles: float = ESP_PACKET_FIXED_CYCLES
    wep_frame_fixed_cycles: float = WEP_FRAME_FIXED_CYCLES
    # -- Registered-protocol overheads (e.g. the kernel-measured KASUMI
    # per-byte rate) keyed by a model-chosen name; models resolve them
    # through :meth:`overhead` with a documented constant fallback.
    protocol_overheads: Dict[str, float] = field(default_factory=dict)

    def overhead(self, key: str, default: float) -> float:
        """A per-protocol overhead by name, or ``default`` when the
        characterization did not measure it (hand-built costs)."""
        return self.protocol_overheads.get(key, default)

    def ecdh_handshake_cycles(self) -> float:
        """The WTLS handshake's public-key cost on this platform.

        Prefers the measured ``ecdh_cycles``; otherwise applies the
        documented RSA-equivalence fallback so hand-built costs (tests,
        canned configurations) still price WTLS traffic sensibly.
        """
        if self.ecdh_cycles is not None:
            return self.ecdh_cycles
        return ECDH_RSA_PUBLIC_EQUIV * self.rsa_public_cycles

    def as_dict(self) -> Dict:
        """JSON-ready mapping (the CLI's shared serialization path)."""
        return asdict(self)

    @classmethod
    def measure(cls, platform, keypair=None, cipher: str = "3des",
                backend=None) -> "PlatformCosts":
        """Measure unit costs on a platform through a cost backend.

        The default backend is the fast
        :class:`repro.costs.backends.MacroModelBackend` (macro-models
        for public-key work, ISS kernels for the symmetric rates);
        pass an :class:`repro.costs.backends.IssBackend` for
        cycle-accurate ground truth.  Characterization behind the
        default backend is memoized per configuration by the
        :mod:`repro.costs.cache` layer.
        """
        if backend is None:
            from repro.costs.backends import MacroModelBackend
            backend = MacroModelBackend()
        return backend.platform_costs(platform, keypair=keypair,
                                      cipher=cipher, cls=cls)
