"""The persistent characterization cache.

Characterization is a one-time cost per platform configuration (the
paper's central methodology claim) -- yet it is easy to pay it over
and over: every CLI subcommand, every platform facade, and every
capacity-planner sweep used to re-run the ISS stimulus programs.  This
module makes "exactly once per process, zero times with a warm disk
cache" the default everywhere:

- a :class:`CharacterizationKey` content-keys one configuration
  (custom-instruction widths, cipher unit counts, stimulus sizes,
  repetitions, PRNG seed);
- :class:`CharacterizationCache` memoizes fitted
  :class:`~repro.macromodel.model.MacroModelSet` objects in-process
  and, when given a directory, persists them as JSON through
  :mod:`repro.macromodel.persist`;
- a process-global default cache (:func:`get_cache` /
  :func:`configure_cache`) is what :class:`repro.platform
  .SecurityPlatform`, :meth:`repro.costs.PlatformCosts.measure`, the
  co-design explorer, and the CLI all route through.

Disk entries that are unreadable, from an old schema, or keyed by a
different configuration are treated as misses and rewritten -- a stale
cache can cost time, never correctness.
"""

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro.macromodel.characterize import DEFAULT_SIZES, characterize_platform
from repro.macromodel.model import MacroModelSet
from repro.macromodel.persist import modelset_from_dict, modelset_to_dict
from repro.mp.prng import DeterministicPrng
from repro.obs import get_registry as get_obs_registry
from repro.obs import get_tracer

#: The characterization harness's stimulus seed (must match the
#: default PRNG in :func:`characterize_platform`).
DEFAULT_SEED = 0xC0FFEE

#: Environment variable naming a default on-disk store (used by CI to
#: carry the characterization cache across runs).
CACHE_DIR_ENV = "REPRO_COSTS_CACHE_DIR"

# Schema 2: characterization stimuli now come from per-routine forked
# PRNG streams (parallel-safe), which changes sample values and hence
# fitted coefficients; schema-1 entries are treated as stale.
_CACHE_SCHEMA = 2


@dataclass(frozen=True)
class CharacterizationKey:
    """Content key for one characterization run.

    Everything that can change the fitted macro-models (or the kernels
    a platform configuration measures through) is part of the key:
    datapath widths, cipher unit counts, the stimulus size domain,
    repetitions, and the stimulus PRNG seed.
    """

    add_width: int = 0
    mac_width: int = 0
    des_sbox_units: int = 8
    aes_sbox_units: int = 8
    aes_mixcol_units: int = 2
    sizes: Tuple[int, ...] = DEFAULT_SIZES
    reps: int = 2
    seed: int = DEFAULT_SEED
    modmul_overhead: bool = True

    def as_dict(self) -> Dict:
        data = asdict(self)
        data["sizes"] = list(self.sizes)
        return data

    def digest(self) -> str:
        """Stable content hash (filename of the disk entry)."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class CacheStats:
    """Observability for tests and the CLI's verbose paths.

    ``disk_stale`` counts disk entries that existed but could not be
    used (old schema, key mismatch, corrupt JSON) -- each one is also a
    miss that triggers re-characterization and a rewrite.
    """

    memo_hits: int = 0
    disk_hits: int = 0
    disk_stale: int = 0
    characterizations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class CharacterizationCache:
    """In-process memo + optional on-disk JSON store of model sets."""

    cache_dir: Optional[str] = None
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self._memo: Dict[CharacterizationKey, MacroModelSet] = {}

    # -- disk layer ----------------------------------------------------------

    def path_for(self, key: CharacterizationKey) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"models-{key.digest()}.json")

    def _load_disk(self, key: CharacterizationKey
                   ) -> Optional[MacroModelSet]:
        path = self.path_for(key)
        if not path or not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("schema") != _CACHE_SCHEMA:
                self._count_stale()
                return None
            if entry.get("key") != key.as_dict():
                self._count_stale()
                return None      # digest collision or hand-edited file
            return modelset_from_dict(entry["models"])
        except (OSError, ValueError, KeyError, TypeError):
            self._count_stale()
            return None          # corrupt entry: recharacterize + rewrite

    def _count_stale(self) -> None:
        self.stats.disk_stale += 1
        get_obs_registry().counter("costs.cache.disk_stale").inc()

    def _store_disk(self, key: CharacterizationKey,
                    models: MacroModelSet) -> None:
        path = self.path_for(key)
        if not path:
            return
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            entry = {"schema": _CACHE_SCHEMA, "key": key.as_dict(),
                     "models": modelset_to_dict(models)}
            with open(path, "w") as fh:
                json.dump(entry, fh, indent=2, sort_keys=True)
        except OSError:
            pass                 # a read-only store never fails the run

    # -- lookup --------------------------------------------------------------

    def models_for(self, key: CharacterizationKey,
                   jobs: Optional[int] = None) -> MacroModelSet:
        """The fitted model set for ``key`` -- characterizing at most
        once per process and zero times with a warm disk store.

        ``jobs`` fans a cache-miss characterization across workers
        (see :mod:`repro.parallel`); it never affects the fitted
        models, so it is deliberately *not* part of the key."""
        obs = get_obs_registry()
        if self.enabled and key in self._memo:
            self.stats.memo_hits += 1
            obs.counter("costs.cache.memo_hit").inc()
            models = self._memo[key]
            path = self.path_for(key)
            if path and not os.path.exists(path):
                self._store_disk(key, models)   # warm a cold disk store
            return models
        if self.enabled:
            models = self._load_disk(key)
            if models is not None:
                self.stats.disk_hits += 1
                obs.counter("costs.cache.disk_hit").inc()
                self._memo[key] = models
                return models
        self.stats.characterizations += 1
        obs.counter("costs.cache.characterization").inc()
        with get_tracer().span("costs.characterize",
                               add_width=key.add_width,
                               mac_width=key.mac_width):
            models = characterize_platform(
                key.add_width, key.mac_width, sizes=key.sizes,
                reps=key.reps, prng=DeterministicPrng(key.seed),
                modmul_overhead=key.modmul_overhead, jobs=jobs)
        self._publish_fit_errors(key, models)
        if self.enabled:
            self._memo[key] = models
            self._store_disk(key, models)
        return models

    @staticmethod
    def _publish_fit_errors(key: CharacterizationKey,
                            models: MacroModelSet) -> None:
        """Per-routine fit-error gauges for a fresh characterization."""
        platform = (f"ext(add{key.add_width},mac{key.mac_width})"
                    if key.add_width and key.mac_width else "base")
        obs = get_obs_registry()
        for model in models:
            obs.gauge("costs.fit_error_pct", platform=platform,
                      routine=model.routine).set(
                model.fit.mean_abs_pct_error)

    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk store is untouched)."""
        self._memo.clear()


# -- the process-global default cache ---------------------------------------

_default_cache = CharacterizationCache(
    cache_dir=os.environ.get(CACHE_DIR_ENV) or None)


def get_cache() -> CharacterizationCache:
    """The process-global cache every default code path routes through."""
    return _default_cache


def configure_cache(cache_dir: Optional[str] = None,
                    enabled: bool = True) -> CharacterizationCache:
    """Repoint the global cache (the CLI's ``--cache-dir``/``--no-cache``).

    Keeps the existing memo when only the directory changes, so
    configuring a disk store mid-process never re-characterizes.
    """
    _default_cache.cache_dir = cache_dir
    _default_cache.enabled = enabled
    if not enabled:
        _default_cache.clear_memo()
    return _default_cache


def reset_cache() -> CharacterizationCache:
    """Fresh global cache state (tests simulating a new process)."""
    _default_cache.cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    _default_cache.enabled = True
    _default_cache.stats = CacheStats()
    _default_cache.clear_memo()
    return _default_cache


def characterize_cached(add_width: int = 0, mac_width: int = 0,
                        cache: Optional[CharacterizationCache] = None,
                        jobs: Optional[int] = None,
                        **key_fields) -> MacroModelSet:
    """Cached drop-in for :func:`characterize_platform`'s common form."""
    key = CharacterizationKey(add_width=add_width, mac_width=mac_width,
                              **key_fields)
    return (cache or _default_cache).models_for(key, jobs=jobs)
