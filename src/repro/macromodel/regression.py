"""Statistical regression for performance macro-models.

The paper used S-Plus; we use ordinary least squares on numpy.  The
performance profiles of the mpn routines are "regular (piecewise
linear, quadratic, etc.) over input bit-width subspaces", so a small
family of model forms suffices:

- ``constant``  : c
- ``affine``    : c0 + c1*n
- ``quadratic`` : c0 + c1*n + c2*n^2
- ``step_affine``: c0 + c1*n + c2*ceil(n/w) for a fixed chunk width w
  (captures the chunked extended-ISA kernels, whose cost steps at
  multiples of the vector width)

Model selection minimizes leave-one-out-style validation error with a
small parsimony penalty.
"""

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

#: Basis functions per form: name -> (terms builder, arity description)
FORMS: Dict[str, Callable[[np.ndarray, int], np.ndarray]] = {}


def _basis_constant(n: np.ndarray, width: int) -> np.ndarray:
    return np.column_stack([np.ones_like(n)])


def _basis_affine(n: np.ndarray, width: int) -> np.ndarray:
    return np.column_stack([np.ones_like(n), n])


def _basis_quadratic(n: np.ndarray, width: int) -> np.ndarray:
    return np.column_stack([np.ones_like(n), n, n * n])


def _basis_step_affine(n: np.ndarray, width: int) -> np.ndarray:
    return np.column_stack([np.ones_like(n), n, np.ceil(n / width)])


def _basis_chunk_affine(n: np.ndarray, width: int) -> np.ndarray:
    # Exact form of a w-wide vector kernel with a scalar tail loop:
    # c0 + c1*floor(n/w) + c2*(n mod w).
    return np.column_stack([np.ones_like(n), np.floor(n / width),
                            np.mod(n, width)])


FORMS["constant"] = _basis_constant
FORMS["affine"] = _basis_affine
FORMS["quadratic"] = _basis_quadratic
FORMS["step_affine"] = _basis_step_affine
FORMS["chunk_affine"] = _basis_chunk_affine


@dataclass
class FitResult:
    """One fitted model form with its quality metrics."""

    form: str
    coeffs: Tuple[float, ...]
    width: int                     # chunk width for step_affine (else 1)
    mean_abs_pct_error: float      # on the training data
    max_abs_pct_error: float

    def predict(self, n: float) -> float:
        arr = np.array([float(n)])
        basis = FORMS[self.form](arr, self.width)
        return float((basis @ np.array(self.coeffs))[0])


def fit_form(samples: Sequence[Tuple[float, float]], form: str,
             width: int = 1) -> FitResult:
    """Least-squares fit of one model form to (n, cycles) samples."""
    if not samples:
        raise ValueError("no samples to fit")
    n = np.array([s[0] for s in samples], dtype=float)
    y = np.array([s[1] for s in samples], dtype=float)
    basis = FORMS[form](n, width)
    coeffs, *_ = np.linalg.lstsq(basis, y, rcond=None)
    pred = basis @ coeffs
    denom = np.maximum(np.abs(y), 1.0)
    pct = np.abs(pred - y) / denom * 100.0
    return FitResult(form=form, coeffs=tuple(float(c) for c in coeffs),
                     width=width,
                     mean_abs_pct_error=float(np.mean(pct)),
                     max_abs_pct_error=float(np.max(pct)))


def select_model(samples: Sequence[Tuple[float, float]],
                 forms: Sequence[str] = ("constant", "affine", "quadratic"),
                 step_width: int = 0) -> FitResult:
    """Fit candidate forms and pick the best one.

    Selection is by mean absolute percentage error with a +0.5 %/coeff
    parsimony penalty, so a quadratic only wins when it genuinely
    explains the data better than the affine model.
    """
    candidates: List[FitResult] = []
    distinct_n = len({s[0] for s in samples})
    for form in forms:
        arity = {"constant": 1, "affine": 2, "quadratic": 3}[form]
        if distinct_n >= arity:
            candidates.append(fit_form(samples, form))
    if step_width > 1 and distinct_n >= 3:
        candidates.append(fit_form(samples, "step_affine", step_width))
        candidates.append(fit_form(samples, "chunk_affine", step_width))
    if not candidates:
        raise ValueError("not enough distinct sizes to fit any form")

    def score(fit: FitResult) -> float:
        return fit.mean_abs_pct_error + 0.5 * len(fit.coeffs)

    return min(candidates, key=score)


def r_squared(samples: Sequence[Tuple[float, float]], fit: FitResult) -> float:
    """Coefficient of determination of a fit on the given samples."""
    y = np.array([s[1] for s in samples], dtype=float)
    pred = np.array([fit.predict(s[0]) for s in samples])
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if math.isclose(ss_res, 0.0, abs_tol=1e-9) else 0.0
    return 1.0 - ss_res / ss_tot
