"""Fitted performance macro-models.

A :class:`MacroModel` answers "how many cycles does one invocation of
leaf routine X with size parameter n cost on platform P?".  A
:class:`MacroModelSet` holds one model per leaf routine for a given
platform configuration (base ISA, or a particular extended ISA).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.macromodel.regression import FitResult


@dataclass
class MacroModel:
    """Cycle-count model for one library leaf routine."""

    routine: str
    fit: FitResult
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def predict(self, n: float = 1.0) -> float:
        """Estimated cycles for one invocation with size parameter n.

        May be negative for *residual* models (e.g. ``mont_redc``): the
        overhead model corrects the leaf-sum toward the ISS truth, and
        when the fused-row hardware beats the per-leaf models the
        correction is a credit.
        """
        return self.fit.predict(n)

    @property
    def form(self) -> str:
        return self.fit.form

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = ", ".join(f"{c:.3g}" for c in self.fit.coeffs)
        return f"MacroModel({self.routine}: {self.fit.form}[{terms}])"


class MacroModelSet:
    """Per-platform collection of leaf-routine macro-models."""

    def __init__(self, platform: str, models: Optional[Dict[str, MacroModel]] = None):
        self.platform = platform
        self._models: Dict[str, MacroModel] = dict(models or {})

    def add(self, model: MacroModel) -> None:
        self._models[model.routine] = model

    def alias(self, new_routine: str, existing: str) -> None:
        """Register ``new_routine`` to share an existing routine's model
        (e.g. mpn_rshift costs the same as mpn_lshift)."""
        self._models[new_routine] = MacroModel(
            routine=new_routine, fit=self._models[existing].fit)

    def get(self, routine: str) -> Optional[MacroModel]:
        return self._models.get(routine)

    def __contains__(self, routine: str) -> bool:
        return routine in self._models

    def __iter__(self) -> Iterator[MacroModel]:
        return iter(self._models.values())

    def __len__(self) -> int:
        return len(self._models)

    def predict(self, routine: str, n: float = 1.0) -> float:
        model = self._models.get(routine)
        if model is None:
            raise KeyError(f"no macro-model for routine {routine!r} "
                           f"on platform {self.platform!r}")
        return model.predict(n)

    def routines(self) -> List[str]:
        return sorted(self._models)
