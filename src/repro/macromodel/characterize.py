"""ISS-based performance characterization of the library leaf routines.

"The routine under consideration is invoked in a test program that
exercises it with a wide range of pseudo-randomly generated input
stimuli.  This test program is simulated using the cycle-accurate ISS
for the target HW to generate performance data ... A statistical
regression is performed to fit the above data."  (paper, Section 3.2)

Characterization is a one-time cost per platform configuration; the
input domain is bounded to what the application uses (e.g. 1024-bit
RSA needs at most 32-limb operands), exactly as the paper bounds the
GMP characterization domain.
"""

from typing import List, Optional, Sequence, Tuple

from repro.isa.kernels.hash_kernels import Sha1Kernel
from repro.isa.kernels.mpn_kernels import MpnKernels
from repro.macromodel.model import MacroModel, MacroModelSet
from repro.macromodel.regression import select_model
from repro.mp.prng import DeterministicPrng

#: Limb counts used as the characterization domain (bounded superset of
#: what 1024-bit public-key traffic touches, per the paper).
DEFAULT_SIZES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


def _fit(routine: str, samples: List[Tuple[float, float]],
         step_width: int = 0) -> MacroModel:
    fit = select_model(samples, step_width=step_width)
    return MacroModel(routine=routine, fit=fit, samples=samples)


def characterize_platform(add_width: int = 0, mac_width: int = 0,
                          sizes: Sequence[int] = DEFAULT_SIZES,
                          reps: int = 2,
                          prng: Optional[DeterministicPrng] = None,
                          modmul_overhead: bool = True
                          ) -> MacroModelSet:
    """Characterize all mpn leaf routines on one platform configuration.

    ``add_width``/``mac_width`` of 0 characterize the base ISA;
    otherwise the extended ISA with those custom-instruction widths.
    Returns a :class:`MacroModelSet` ready for native estimation.

    ``modmul_overhead`` additionally characterizes the Montgomery
    modular-multiplication *driver* overhead (loop control, operand
    staging, final conditional subtract) from full ISS runs -- the
    coarser-granularity model the paper's leaf-choice heuristics call
    for when per-leaf models alone under-account a routine.
    """
    if prng is None:
        prng = DeterministicPrng(0xC0FFEE)
    extended = bool(add_width and mac_width)
    platform = (f"ext(add{add_width},mac{mac_width})" if extended else "base")
    kernels = MpnKernels(add_width, mac_width) if extended else MpnKernels()
    models = MacroModelSet(platform)

    def samples_for(run, *extra_args_fn) -> List[Tuple[float, float]]:
        samples = []
        for n in sizes:
            for _ in range(reps):
                cycles = run(n)
                samples.append((float(n), float(cycles)))
        return samples

    # -- vector add/sub (step width = adder array width) ---------------------
    def run_add(n):
        return kernels.add_n(prng.next_limbs(n), prng.next_limbs(n))[2]

    def run_sub(n):
        return kernels.sub_n(prng.next_limbs(n), prng.next_limbs(n))[2]

    add_step = add_width if extended else 0
    models.add(_fit("mpn_add_n", samples_for(run_add), add_step))
    models.add(_fit("mpn_sub_n", samples_for(run_sub), add_step))

    # -- multiply family (step width = multiplier array width) ----------------
    def run_mul1(n):
        return kernels.mul_1(prng.next_limbs(n), prng.next_bits(32))[2]

    def run_addmul(n):
        return kernels.addmul_1(prng.next_limbs(n), prng.next_limbs(n),
                                prng.next_bits(32))[2]

    def run_submul(n):
        return kernels.submul_1(prng.next_limbs(n), prng.next_limbs(n),
                                prng.next_bits(32))[2]

    mac_step = mac_width if extended else 0
    models.add(_fit("mpn_mul_1", samples_for(run_mul1), mac_step))
    models.add(_fit("mpn_addmul_1", samples_for(run_addmul), mac_step))
    models.add(_fit("mpn_submul_1", samples_for(run_submul), mac_step))

    # -- shifts and division estimate (base-ISA only; the platform's
    #    selected instructions do not accelerate them) ----------------------
    base_kernels = MpnKernels()

    def run_lshift(n):
        return base_kernels.lshift(prng.next_limbs(n),
                                   1 + prng.next_int(31))[2]

    models.add(_fit("mpn_lshift", samples_for(run_lshift)))
    models.alias("mpn_rshift", "mpn_lshift")

    qest_samples = []
    for _ in range(max(4, reps * 2)):
        vtop = prng.next_bits(32) | 0x80000000
        u2 = prng.next_int(vtop)
        _, cycles = base_kernels.divrem_qest(u2, prng.next_bits(32), vtop)
        qest_samples.append((1.0, float(cycles)))
    models.add(_fit("mpn_divrem_qest", qest_samples))

    # -- hashing (base-ISA only, same on every platform) ---------------------
    sha1 = Sha1Kernel()
    state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    hash_samples = []
    for _ in range(max(2, reps)):
        _, cycles = sha1.compress(state, prng.next_bytes(64))
        hash_samples.append((1.0, float(cycles)))
    models.add(_fit("sha1_compress", hash_samples))

    from repro.isa.kernels.md5_kernel import Md5Kernel
    md5 = Md5Kernel()
    md5_state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
    md5_samples = []
    for _ in range(max(2, reps)):
        _, cycles = md5.compress(md5_state, prng.next_bytes(64))
        md5_samples.append((1.0, float(cycles)))
    models.add(_fit("md5_compress", md5_samples))

    # -- Montgomery modular-multiplication driver overhead --------------------
    # Charged on the native library's "mont_redc" trace marker: the ISS
    # cost of one modular multiplication beyond its 2k mpn_addmul_1
    # leaf calls.
    if modmul_overhead:
        from repro.isa.kernels.modexp_kernel import ModExpKernel
        iss = ModExpKernel(add_width, mac_width) if extended else ModExpKernel()
        addmul = models.get("mpn_addmul_1")
        overhead_samples = []
        for bits in (64, 128, 256, 512):
            k = bits // 32
            modulus = (prng.next_odd_bits(bits))
            base = prng.next_int(modulus)
            _, _, profile = iss.powm(base, 0x1B5, modulus)
            calls = profile.call_counts.get("mont_mul", 0)
            if not calls:
                continue
            per_modmul = profile.inclusive_cycles.get("mont_mul", 0) / calls
            overhead = per_modmul - 2 * k * addmul.predict(k)
            overhead_samples.append((float(k), overhead))
        if len(overhead_samples) >= 3:
            models.add(_fit("mont_redc", overhead_samples))

    return models
