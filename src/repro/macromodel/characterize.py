"""ISS-based performance characterization of the library leaf routines.

"The routine under consideration is invoked in a test program that
exercises it with a wide range of pseudo-randomly generated input
stimuli.  This test program is simulated using the cycle-accurate ISS
for the target HW to generate performance data ... A statistical
regression is performed to fit the above data."  (paper, Section 3.2)

Characterization is a one-time cost per platform configuration; the
input domain is bounded to what the application uses (e.g. 1024-bit
RSA needs at most 32-limb operands), exactly as the paper bounds the
GMP characterization domain.

Each routine's ``(size, rep)`` stimulus grid is an **independent job**
drawing from its own forked :class:`~repro.mp.prng.DeterministicPrng`
stream (:meth:`~repro.mp.prng.DeterministicPrng.fork` on the routine
name), so sample values depend only on the seed and the routine --
never on job order.  That is what lets ``jobs > 1`` fan the grid
across cores through :mod:`repro.parallel` while producing a model set
element-for-element identical to the serial run.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.macromodel.model import MacroModel, MacroModelSet
from repro.macromodel.regression import select_model
from repro.mp.prng import DeterministicPrng

#: Limb counts used as the characterization domain (bounded superset of
#: what 1024-bit public-key traffic touches, per the paper).
DEFAULT_SIZES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

#: The characterization harness's default stimulus seed.
DEFAULT_SEED = 0xC0FFEE

#: The independent stimulus jobs, in model-set insertion order.  Each
#: entry is (routine, stimulus family, step-width source).
_STIMULUS_JOBS = (
    ("mpn_add_n", "mpn", "add"),
    ("mpn_sub_n", "mpn", "add"),
    ("mpn_mul_1", "mpn", "mac"),
    ("mpn_addmul_1", "mpn", "mac"),
    ("mpn_submul_1", "mpn", "mac"),
    ("mpn_lshift", "mpn_base", None),
    ("mpn_divrem_qest", "qest", None),
    ("sha1_compress", "hash", None),
    ("md5_compress", "hash", None),
)

#: Montgomery-driver overhead is measured at these modulus widths.
_MONT_REDC_BITS = (64, 128, 256, 512)


def _fit(routine: str, samples: List[Tuple[float, float]],
         step_width: int = 0) -> MacroModel:
    fit = select_model(samples, step_width=step_width)
    return MacroModel(routine=routine, fit=fit, samples=samples)


def _stimulus_job(spec: Dict) -> List[Tuple[float, float]]:
    """Run one routine's ISS stimulus grid; returns ``(n, cycles)``
    samples.

    Module-level and fed plain-dict payloads so
    :class:`repro.parallel.ProcessExecutor` can pickle it; every
    kernel object is built inside the job.
    """
    from repro.isa.kernels.mpn_kernels import MpnKernels

    routine = spec["routine"]
    family = spec["family"]
    sizes, reps = spec["sizes"], spec["reps"]
    prng = DeterministicPrng(spec["seed"]).fork(routine)
    samples: List[Tuple[float, float]] = []

    if family in ("mpn", "mpn_base"):
        extended = spec["extended"] and family == "mpn"
        kernels = (MpnKernels(spec["add_width"], spec["mac_width"])
                   if extended else MpnKernels())
        # Draw every stimulus up front (same PRNG order as the
        # historical run-per-iteration loop), then execute the whole
        # grid as one batch on the runner's machine fleet: decode and
        # machine construction are paid once per job, not per rep.
        requests = []
        for n in sizes:
            for _ in range(reps):
                if routine == "mpn_add_n":
                    requests.append(("add_n", prng.next_limbs(n),
                                     prng.next_limbs(n)))
                elif routine == "mpn_sub_n":
                    requests.append(("sub_n", prng.next_limbs(n),
                                     prng.next_limbs(n)))
                elif routine == "mpn_mul_1":
                    requests.append(("mul_1", prng.next_limbs(n),
                                     prng.next_bits(32)))
                elif routine == "mpn_addmul_1":
                    requests.append(("addmul_1", prng.next_limbs(n),
                                     prng.next_limbs(n),
                                     prng.next_bits(32)))
                elif routine == "mpn_submul_1":
                    requests.append(("submul_1", prng.next_limbs(n),
                                     prng.next_limbs(n),
                                     prng.next_bits(32)))
                elif routine == "mpn_lshift":
                    requests.append(("lshift", prng.next_limbs(n),
                                     1 + prng.next_int(31)))
                else:
                    raise ValueError(f"unknown mpn routine {routine!r}")
        sizes_per_request = [float(n) for n in sizes for _ in range(reps)]
        for n, result in zip(sizes_per_request, kernels.batch(requests)):
            samples.append((n, float(result[2])))
        return samples

    if family == "qest":
        kernels = MpnKernels()
        requests = []
        for _ in range(max(4, reps * 2)):
            vtop = prng.next_bits(32) | 0x80000000
            u2 = prng.next_int(vtop)
            requests.append(("divrem_qest", u2, prng.next_bits(32), vtop))
        for result in kernels.batch(requests):
            samples.append((1.0, float(result[1])))
        return samples

    if family == "hash":
        if routine == "sha1_compress":
            from repro.isa.kernels.hash_kernels import Sha1Kernel
            kernel = Sha1Kernel()
            state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                     0xC3D2E1F0]
        else:
            from repro.isa.kernels.md5_kernel import Md5Kernel
            kernel = Md5Kernel()
            state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        for _ in range(max(2, reps)):
            _, cycles = kernel.compress(state, prng.next_bytes(64))
            samples.append((1.0, float(cycles)))
        return samples

    raise ValueError(f"unknown stimulus family {family!r}")


def _mont_redc_job(spec: Dict) -> Optional[Tuple[float, float, int]]:
    """One full ISS modexp run at ``spec['bits']``; returns
    ``(k limbs, per-modmul cycles, mont_mul call count)`` or ``None``
    when the profile had no modular multiplications."""
    from repro.isa.kernels.modexp_kernel import ModExpKernel

    bits = spec["bits"]
    prng = DeterministicPrng(spec["seed"]).fork(f"mont_redc[{bits}]")
    iss = (ModExpKernel(spec["add_width"], spec["mac_width"])
           if spec["extended"] else ModExpKernel())
    k = bits // 32
    modulus = prng.next_odd_bits(bits)
    base = prng.next_int(modulus)
    _, _, profile = iss.powm(base, 0x1B5, modulus)
    calls = profile.call_counts.get("mont_mul", 0)
    if not calls:
        return None
    per_modmul = profile.inclusive_cycles.get("mont_mul", 0) / calls
    return (float(k), per_modmul, calls)


def characterize_platform(add_width: int = 0, mac_width: int = 0,
                          sizes: Sequence[int] = DEFAULT_SIZES,
                          reps: int = 2,
                          prng: Optional[DeterministicPrng] = None,
                          modmul_overhead: bool = True,
                          jobs: Optional[int] = None,
                          executor=None) -> MacroModelSet:
    """Characterize all mpn leaf routines on one platform configuration.

    ``add_width``/``mac_width`` of 0 characterize the base ISA;
    otherwise the extended ISA with those custom-instruction widths.
    Returns a :class:`MacroModelSet` ready for native estimation.

    ``modmul_overhead`` additionally characterizes the Montgomery
    modular-multiplication *driver* overhead (loop control, operand
    staging, final conditional subtract) from full ISS runs -- the
    coarser-granularity model the paper's leaf-choice heuristics call
    for when per-leaf models alone under-account a routine.

    ``jobs``/``executor`` fan the per-routine stimulus jobs across
    workers through :mod:`repro.parallel`; results are merged in job
    order, so any worker count yields an identical model set.
    """
    from repro.parallel import executor_scope

    seed = prng.initial_seed if prng is not None else DEFAULT_SEED
    extended = bool(add_width and mac_width)
    platform = (f"ext(add{add_width},mac{mac_width})" if extended else "base")
    models = MacroModelSet(platform)

    common = {"add_width": add_width, "mac_width": mac_width,
              "extended": extended, "sizes": tuple(sizes), "reps": reps,
              "seed": seed}
    specs = [dict(common, routine=routine, family=family)
             for routine, family, _ in _STIMULUS_JOBS]

    with executor_scope(jobs, executor) as pool:
        sample_lists = pool.map(_stimulus_job, specs,
                                label="characterize")
        step_widths = {"add": add_width if extended else 0,
                       "mac": mac_width if extended else 0}
        for (routine, _, step), samples in zip(_STIMULUS_JOBS,
                                               sample_lists):
            models.add(_fit(routine, samples,
                            step_widths.get(step, 0)))
        models.alias("mpn_rshift", "mpn_lshift")

        # -- Montgomery modular-multiplication driver overhead ------------
        # Charged on the native library's "mont_redc" trace marker: the
        # ISS cost of one modular multiplication beyond its 2k
        # mpn_addmul_1 leaf calls.
        if modmul_overhead:
            redc_specs = [dict(common, bits=bits)
                          for bits in _MONT_REDC_BITS]
            rows = pool.map(_mont_redc_job, redc_specs,
                            label="characterize.mont_redc")
            addmul = models.get("mpn_addmul_1")
            overhead_samples = []
            for row in rows:
                if row is None:
                    continue
                k, per_modmul, _ = row
                overhead = per_modmul - 2 * k * addmul.predict(k)
                overhead_samples.append((k, overhead))
            if len(overhead_samples) >= 3:
                models.add(_fit("mont_redc", overhead_samples))

    return models
