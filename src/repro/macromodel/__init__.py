"""Performance characterization and macro-modeling (paper Section 3.2).

The methodology's key enabler: instead of simulating whole algorithms
on the cycle-accurate ISS (hours per candidate), each library *leaf
routine* is characterized once -- exercised on the ISS over pseudo-
random stimuli, with a statistical regression fitting its cycle count
as a function of its input-size parameters.  Algorithm candidates are
then executed natively with the macro-models charging estimated cycles
per leaf call, orders of magnitude faster than ISS runs.

- :mod:`repro.macromodel.regression`   -- least-squares model forms and
  selection (the S-Plus substitute).
- :mod:`repro.macromodel.model`        -- fitted :class:`MacroModel`
  objects and per-platform :class:`MacroModelSet` collections.
- :mod:`repro.macromodel.characterize` -- the ISS stimulus harness.
- :mod:`repro.macromodel.estimator`    -- the native-execution cycle
  estimator (a tracer charging macro-model estimates per leaf call).
"""

from repro.macromodel.model import MacroModel, MacroModelSet
from repro.macromodel.estimator import CycleEstimate, estimate_cycles
from repro.macromodel.characterize import characterize_platform

__all__ = ["MacroModel", "MacroModelSet", "CycleEstimate", "estimate_cycles",
           "characterize_platform"]
