"""Native-execution cycle estimation via macro-models.

The paper: "All library routines instantiated in the source code of an
algorithm can now be augmented with their respective performance models
to allow performance estimation through native code execution."

Here the augmentation is the tracing hook in :mod:`repro.mp.hooks`:
running any algorithm from the crypto library under
:func:`estimate_cycles` executes it natively (full functional fidelity)
while a tracer charges each traced leaf call its macro-model estimate.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple

from repro.macromodel.model import MacroModelSet
from repro.mp.hooks import traced


@dataclass
class CycleEstimate:
    """Result of a macro-model estimation run."""

    platform: str
    cycles: float = 0.0
    #: routine -> (call count, cycles charged)
    breakdown: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: traced calls with no model on this platform (profiling markers
    #: such as mont_redc, or routines intentionally left unmodeled)
    unmodeled: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    result: object = None

    def calls(self, routine: str) -> int:
        return self.breakdown.get(routine, (0, 0.0))[0]

    def cycles_for(self, routine: str) -> float:
        return self.breakdown.get(routine, (0, 0.0))[1]


class CycleLedger:
    """The tracer: accumulates macro-model charges per traced leaf call."""

    def __init__(self, models: MacroModelSet):
        self.models = models
        self.estimate = CycleEstimate(platform=models.platform)

    def __call__(self, routine: str, params: dict) -> None:
        n = params.get("n", 1)
        model = self.models.get(routine)
        if model is None:
            self.estimate.unmodeled[routine] = \
                self.estimate.unmodeled.get(routine, 0) + 1
            return
        charge = model.predict(n)
        self.estimate.cycles += charge
        count, total = self.estimate.breakdown.get(routine, (0, 0.0))
        self.estimate.breakdown[routine] = (count + 1, total + charge)


@contextmanager
def ledger(models: MacroModelSet) -> Iterator[CycleLedger]:
    """Context manager installing a fresh ledger as the active tracer."""
    active = CycleLedger(models)
    with traced(active):
        yield active


def estimate_cycles(models: MacroModelSet, fn: Callable, *args,
                    **kwargs) -> CycleEstimate:
    """Run ``fn`` natively, charging macro-model cycles per leaf call.

    Returns the :class:`CycleEstimate`; ``fn``'s return value is in
    ``estimate.result``.
    """
    start = time.perf_counter()
    with ledger(models) as active:
        result = fn(*args, **kwargs)
    active.estimate.wall_seconds = time.perf_counter() - start
    active.estimate.result = result
    return active.estimate
