"""Macro-model persistence.

Characterization is a one-time per-platform cost (the paper stresses
this); persisting the fitted models lets downstream tools (exploration
sweeps, CI) skip re-running the ISS stimulus programs.
"""

import json
from repro.macromodel.model import MacroModel, MacroModelSet
from repro.macromodel.regression import FitResult

_SCHEMA_VERSION = 1


def modelset_to_dict(models: MacroModelSet) -> dict:
    return {
        "schema": _SCHEMA_VERSION,
        "platform": models.platform,
        "models": {
            m.routine: {
                "form": m.fit.form,
                "coeffs": list(m.fit.coeffs),
                "width": m.fit.width,
                "mean_abs_pct_error": m.fit.mean_abs_pct_error,
                "max_abs_pct_error": m.fit.max_abs_pct_error,
            }
            for m in models
        },
    }


def modelset_from_dict(data: dict) -> MacroModelSet:
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported macro-model schema {data.get('schema')!r}")
    models = MacroModelSet(data["platform"])
    for routine, spec in data["models"].items():
        fit = FitResult(form=spec["form"], coeffs=tuple(spec["coeffs"]),
                        width=spec["width"],
                        mean_abs_pct_error=spec["mean_abs_pct_error"],
                        max_abs_pct_error=spec["max_abs_pct_error"])
        models.add(MacroModel(routine=routine, fit=fit))
    return models


def save_modelset(models: MacroModelSet, path: str) -> None:
    """Write a model set as JSON."""
    with open(path, "w") as fh:
        json.dump(modelset_to_dict(models), fh, indent=2, sort_keys=True)


def load_modelset(path: str) -> MacroModelSet:
    """Read a model set saved by :func:`save_modelset`."""
    with open(path) as fh:
        return modelset_from_dict(json.load(fh))
