"""Reproduction of "System Design Methodologies for a Wireless Security
Processing Platform" (Ravi, Raghunathan, Potlapally, Sankaradass --
DAC 2002).

The package implements the paper's entire system stack from scratch:

- :mod:`repro.mp`        -- multi-precision arithmetic (GMP substitute)
- :mod:`repro.crypto`    -- layered cryptographic library (DES, 3DES,
  AES, RC4, SHA-1, MD5, HMAC, RSA, ElGamal) with the 450-point modular
  exponentiation design space
- :mod:`repro.isa`       -- the XT32 configurable/extensible embedded
  processor: ISS, assembler, profiler, TIE-like custom instructions,
  area model, and assembly kernels (Xtensa substitute)
- :mod:`repro.macromodel`-- ISS characterization + regression macro-
  models + native cycle estimation
- :mod:`repro.explore`   -- exhaustive algorithm design-space exploration
- :mod:`repro.tie`       -- A-D curve formulation, call-graph
  propagation, and global custom-instruction selection
- :mod:`repro.ssl`       -- executed SSL handshake/record model and the
  Figure 8 transaction workload model
- :mod:`repro.gap`       -- the Figure 1 security-processing-gap model
- :mod:`repro.platform`  -- the platform facade tying HW and SW
  configurations together
- :mod:`repro.farm`      -- multi-core scale-out: traffic generation,
  discrete-event farm simulation, scheduling, and capacity planning

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.platform import (REFERENCE_CONFIG, TUNED_CONFIG,
                            SecurityPlatform)
from repro.crypto.api import SecurityApi
from repro.crypto.modexp import ModExpConfig

__version__ = "1.0.0"

__all__ = ["SecurityPlatform", "SecurityApi", "ModExpConfig",
           "REFERENCE_CONFIG", "TUNED_CONFIG", "__version__"]
