"""Command-line interface to the co-design flows.

    python -m repro characterize [--ext] [-o models.json]
    python -m repro explore [--models models.json] [--bits 512] [--top 10]
                            [--stride 9]
    python -m repro speedups
    python -m repro ssl [--sizes 1,4,16,32]
    python -m repro callgraph [--bits 256]

Each subcommand runs one phase of the paper's methodology and prints
the corresponding report.
"""

import argparse
import sys
import time


def _cmd_characterize(args) -> int:
    from repro.macromodel import characterize_platform
    from repro.macromodel.persist import save_modelset

    widths = (args.add_width, args.mac_width) if args.ext else (0, 0)
    print(f"characterizing {'extended' if args.ext else 'base'} platform "
          f"on the ISS...")
    start = time.perf_counter()
    models = characterize_platform(*widths)
    print(f"fitted {len(models)} macro-models in "
          f"{time.perf_counter() - start:.1f}s:")
    for model in sorted(models, key=lambda m: m.routine):
        coeffs = ", ".join(f"{c:.2f}" for c in model.fit.coeffs)
        print(f"  {model.routine:18s} {model.fit.form:12s} [{coeffs}]  "
              f"fit err {model.fit.mean_abs_pct_error:.2f}%")
    if args.output:
        save_modelset(models, args.output)
        print(f"saved to {args.output}")
    return 0


def _cmd_explore(args) -> int:
    from repro.crypto.modexp import iter_configs
    from repro.explore import AlgorithmExplorer, RsaDecryptWorkload
    from repro.macromodel import characterize_platform
    from repro.macromodel.persist import load_modelset

    models = (load_modelset(args.models) if args.models
              else characterize_platform())
    workload = (RsaDecryptWorkload.bits1024() if args.bits == 1024
                else RsaDecryptWorkload.bits512())
    configs = list(iter_configs())[:: args.stride]
    print(f"exploring {len(configs)} candidates "
          f"({args.bits}-bit RSA decrypt)...")
    explorer = AlgorithmExplorer(models, workload)
    start = time.perf_counter()
    results = explorer.explore(configs)
    print(f"done in {time.perf_counter() - start:.0f}s\n")
    for result in results[: args.top]:
        print(f"  {result.estimated_cycles / 1e6:8.2f}M  {result.label}")
    return 0


def _cmd_speedups(args) -> int:
    from repro.platform import SecurityPlatform
    from repro.ssl import fixtures
    from repro.ssl.transaction import PlatformCosts

    print("measuring both platforms (ISS kernels + macro-models)...")
    base = PlatformCosts.measure(SecurityPlatform.base(),
                                 fixtures.SERVER_1024)
    opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                fixtures.SERVER_1024)
    base_p = SecurityPlatform.base()
    opt_p = SecurityPlatform.optimized()
    print(f"\n{'algorithm':10s} {'base':>12s} {'optimized':>12s} "
          f"{'speedup':>8s}")
    for algo in ("des", "3des", "aes"):
        b = base_p.cipher_cycles_per_byte(algo)
        o = opt_p.cipher_cycles_per_byte(algo)
        print(f"{algo.upper():10s} {b:10.1f}c/B {o:10.1f}c/B {b / o:7.1f}x")
    print(f"{'RSA enc':10s} {base.rsa_public_cycles:11.0f}c "
          f"{opt.rsa_public_cycles:11.0f}c "
          f"{base.rsa_public_cycles / opt.rsa_public_cycles:7.1f}x")
    print(f"{'RSA dec':10s} {base.rsa_private_cycles:11.0f}c "
          f"{opt.rsa_private_cycles:11.0f}c "
          f"{base.rsa_private_cycles / opt.rsa_private_cycles:7.1f}x")
    return 0


def _cmd_ssl(args) -> int:
    from repro.platform import SecurityPlatform
    from repro.ssl import fixtures
    from repro.ssl.transaction import PlatformCosts, SslWorkloadModel

    sizes = [int(s) for s in args.sizes.split(",")]
    base = PlatformCosts.measure(SecurityPlatform.base(),
                                 fixtures.SERVER_1024)
    opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                fixtures.SERVER_1024)
    model = SslWorkloadModel(base, opt)
    print(f"{'size':>8s} {'speedup':>8s}   base pk/sym/misc")
    for kb in sizes:
        row = model.series([kb * 1024])[0]
        bf = row["base_fractions"]
        print(f"{kb:6d}KB {row['speedup']:7.1f}x   "
              f"{bf['public_key']:.2f}/{bf['symmetric']:.2f}/"
              f"{bf['misc']:.2f}")
    print(f"asymptote: {model.asymptotic_speedup():.2f}x")
    return 0


def _cmd_callgraph(args) -> int:
    from repro.isa.kernels.modexp_kernel import ModExpKernel
    from repro.tie.callgraph import CallGraph

    modulus = (1 << args.bits) + 0x169
    kernel = ModExpKernel()
    print(f"profiling a {args.bits}-bit modular exponentiation on the "
          f"ISS...")
    _, cycles, profile = kernel.powm(0xFEEDFACE, 0xA5A5, modulus)
    graph = CallGraph.from_profile(profile, "modexp")
    print(f"{cycles} cycles\n")
    print(graph.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wireless security processing platform co-design flows")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="fit leaf-routine macro-models")
    p.add_argument("--ext", action="store_true",
                   help="characterize the extended platform")
    p.add_argument("--add-width", type=int, default=8)
    p.add_argument("--mac-width", type=int, default=8)
    p.add_argument("-o", "--output", help="save models as JSON")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("explore", help="explore the modexp design space")
    p.add_argument("--models", help="JSON macro-models (else characterize)")
    p.add_argument("--bits", type=int, default=512, choices=(512, 1024))
    p.add_argument("--stride", type=int, default=9,
                   help="evaluate every Nth of the 450 candidates (1=all)")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("speedups", help="Table 1: per-algorithm speedups")
    p.set_defaults(func=_cmd_speedups)

    p = sub.add_parser("ssl", help="Figure 8: SSL transaction speedups")
    p.add_argument("--sizes", default="1,2,4,8,16,32",
                   help="comma-separated transaction sizes in KB")
    p.set_defaults(func=_cmd_ssl)

    p = sub.add_parser("callgraph", help="Figure 4: profile a modexp")
    p.add_argument("--bits", type=int, default=256)
    p.set_defaults(func=_cmd_callgraph)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
