"""Command-line interface to the co-design flows.

    python -m repro characterize [--ext] [-o models.json] [--jobs N]
                                 [--json]
    python -m repro explore [--models models.json] [--bits 512] [--top 10]
                            [--stride 9] [--jobs N] [--resume] [--json]
    python -m repro speedups [--jobs N] [--json]
    python -m repro adcurves [--limbs 16] [--jobs N] [--json]
    python -m repro ssl [--sizes 1,4,16,32] [--json]
    python -m repro callgraph [--bits 256]
    python -m repro farm [--cores 4] [--requests 200] [--seed 1]
                         [--rate 60] [--extended-fraction 0.5]
                         [--shards N] [--jobs N] [--queue heap|calendar]
                         [--replay trace.jsonl]
                         [--export-workload trace.jsonl]
                         [--faults SEED|plan.json] [--slo p99_ms=5,...]
                         [--series-out series.jsonl]
                         [--series-interval 0.05]
                         [--serve] [--port 0] [--max-epochs N]
                         [--epoch-seconds 2.0] [--serve-grace SEC]
                         [--json]
    python -m repro capacity [--users 100000] [--per-user-kbps 384]
                             [--autoscale] [--curve diurnal]
                             [--epochs 24] [--faults SEED|plan.json]
                             [--series-out series.jsonl] [--json]
    python -m repro profile --trace trace.jsonl [--top 20]
                            [--group-by scheduler] [--folded out.folded]
    python -m repro timeseries --series series.jsonl [--key NAME]...
                               [--html dashboard.html] [--width 64]
                               [--json]
    python -m repro bench [--scenario NAME]... [--dir DIR]
                          [--check] [--report FILE]

Each subcommand runs one phase of the paper's methodology and prints
the corresponding report; ``--json`` swaps the table for a
machine-readable payload through one shared serializer.  Every JSON
payload uses one envelope::

    {"command": <subcommand>, "params": <effective flags>,
     "results": <subcommand-specific body>}

Every cost-consuming subcommand shares one cost build behind
:mod:`repro.costs`: characterization is memoized per configuration in
the process, and ``--cache-dir DIR`` (or ``$REPRO_COSTS_CACHE_DIR``)
persists it on disk so repeated runs characterize zero times.
``--no-cache`` forces a fresh characterization.

The sweep subcommands (``characterize``, ``explore``, ``speedups``,
``adcurves``) accept ``--jobs N`` (or ``$REPRO_JOBS``) to fan work
across cores through :mod:`repro.parallel`; results are identical to
serial runs for any worker count.  ``explore`` persists evaluated
candidates beside the characterization cache, so warm re-runs evaluate
nothing and ``explore --resume`` picks up an interrupted sweep.

Observability (``farm``, ``ssl``, ``characterize``, ``explore``,
``speedups``): ``--trace-out FILE`` enables the process-global
:mod:`repro.obs` tracer and writes a deterministic JSON-lines event
log; ``--metrics`` adds the metrics summary to the report (under
``results.metrics`` with ``--json``) and ``--metrics-out FILE`` writes
the rendered registry to a file (``--metrics-format text`` or
``prometheus``); ``--profile FILE`` additionally reduces the run's
span tree to a cycle-attribution profile
(:class:`repro.obs.CycleProfile`), written as JSON with a top-10 table
on stdout.  ``profile`` analyses a saved trace log offline; ``bench``
records ``BENCH_<scenario>.json`` baselines and ``bench --check``
gates the current tree against them.

Time series: ``farm --series-out FILE`` exports the run as a
virtual-time metrics series (JSONL; fault and SLO-alert events
annotated), ``capacity --autoscale --series-out`` does the same per
epoch, ``timeseries`` renders a saved series as sparklines or a
self-contained HTML dashboard, and ``farm --serve`` soaks the farm
continuously while exposing ``/metrics`` (Prometheus text format on
virtual timestamps), ``/healthz``, and ``/slo`` over HTTP.
"""

import argparse
import json
import os
import sys
import time


def _params_of(args) -> dict:
    """The effective parameters of a run (everything but the callback)."""
    return {key: value for key, value in sorted(vars(args).items())
            if key not in ("func", "command")}


def _print_json(args, results) -> int:
    """The one JSON serialization path every subcommand shares --
    emits the standard ``{"command", "params", "results"}`` envelope."""
    envelope = {"command": args.command, "params": _params_of(args),
                "results": results}
    print(json.dumps(envelope, indent=2, sort_keys=True))
    return 0


def _configure_cache(args) -> None:
    """Apply the shared ``--cache-dir``/``--no-cache`` flags."""
    from repro.costs import configure_cache
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)
    else:
        configure_cache(cache_dir=getattr(args, "cache_dir", None))


def _setup_obs(args) -> None:
    """Apply the shared ``--trace-out``/``--metrics``/``--profile``
    flags.

    A fresh metrics registry and (when requested) a fresh tracer are
    installed globally so the run's summary reflects this invocation
    only, however the process was reused.  ``--profile`` needs the
    span tree, so it enables tracing even without ``--trace-out``.
    """
    from repro.obs import configure_tracing, reset_metrics, reset_tracing
    reset_metrics()
    if getattr(args, "trace_out", None) or getattr(args, "profile", None):
        configure_tracing()
    else:
        reset_tracing()


def _finish_obs(args, results=None):
    """Write the trace log and profile; fold the metrics summary into
    the report.

    Returns the metrics summary dict (or ``None``); with ``results``
    given (the JSON path) it is also attached as ``results["metrics"]``.
    """
    from repro.obs import (CycleProfile, get_registry, get_tracer,
                           metrics_summary, render_metrics,
                           write_events_jsonl)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        written = write_events_jsonl(get_tracer(), trace_out)
        if not args.json:
            print(f"wrote {written} trace records to {trace_out}")
    profile_out = getattr(args, "profile", None)
    if profile_out:
        profile = CycleProfile.from_tracer(get_tracer())
        with open(profile_out, "w") as fh:
            json.dump(profile.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.json:
            print("\ncycle attribution (top 10 by self cycles):")
            print(profile.render_top(10))
            print(f"wrote profile to {profile_out}")
    metrics_out = getattr(args, "metrics_out", None)
    metrics_format = getattr(args, "metrics_format", "text")
    if metrics_out:
        with open(metrics_out, "w") as fh:
            fh.write(render_metrics(get_registry(),
                                    format=metrics_format) + "\n")
        if not args.json:
            print(f"wrote {metrics_format} metrics to {metrics_out}")
    if not getattr(args, "metrics", False):
        return None
    summary = metrics_summary(get_registry())
    if results is not None:
        results["metrics"] = summary
    elif not args.json:
        print("\nmetrics:")
        print(render_metrics(get_registry(), format=metrics_format))
    return summary


def _measured_cost_pair(announce: bool = True):
    """The shared cost build: both stock platforms, measured once.

    Characterization behind this routes through the global cache, so
    however many subcommand phases need the pair, the ISS stimulus
    programs run at most once per configuration per process -- and not
    at all with a warm ``--cache-dir``.
    """
    from repro.costs import PlatformCosts
    from repro.platform import SecurityPlatform
    from repro.ssl import fixtures

    if announce:
        print("measuring both platforms (ISS kernels + macro-models)...")
    base_platform = SecurityPlatform.base()
    opt_platform = SecurityPlatform.optimized()
    base = PlatformCosts.measure(base_platform, fixtures.SERVER_1024)
    opt = PlatformCosts.measure(opt_platform, fixtures.SERVER_1024)
    return base_platform, opt_platform, base, opt


def _cmd_characterize(args) -> int:
    from repro.costs import characterize_cached
    from repro.macromodel.persist import modelset_to_dict, save_modelset

    _configure_cache(args)
    _setup_obs(args)
    widths = (args.add_width, args.mac_width) if args.ext else (0, 0)
    if not args.json:
        print(f"characterizing {'extended' if args.ext else 'base'} "
              f"platform on the ISS...")
    start = time.perf_counter()
    models = characterize_cached(*widths, jobs=args.jobs)
    elapsed = time.perf_counter() - start
    if args.output:
        save_modelset(models, args.output)
    if args.json:
        results = modelset_to_dict(models)
        _finish_obs(args, results)
        return _print_json(args, results)
    print(f"fitted {len(models)} macro-models in {elapsed:.1f}s:")
    for model in sorted(models, key=lambda m: m.routine):
        coeffs = ", ".join(f"{c:.2f}" for c in model.fit.coeffs)
        print(f"  {model.routine:18s} {model.fit.form:12s} [{coeffs}]  "
              f"fit err {model.fit.mean_abs_pct_error:.2f}%")
    if args.output:
        print(f"saved to {args.output}")
    _finish_obs(args)
    return 0


def _cmd_explore(args) -> int:
    from repro.costs import characterize_cached
    from repro.crypto.modexp import iter_configs
    from repro.explore import (AlgorithmExplorer, ExplorationStore,
                               RsaDecryptWorkload, exploration_digest)
    from repro.macromodel.persist import load_modelset

    _configure_cache(args)
    _setup_obs(args)
    models = (load_modelset(args.models) if args.models
              else characterize_cached(jobs=args.jobs))
    workload = (RsaDecryptWorkload.bits1024() if args.bits == 1024
                else RsaDecryptWorkload.bits512())
    configs = list(iter_configs())[:: args.stride]
    store = ExplorationStore.from_global_cache()
    if args.resume:
        # --resume is an explicit claim that a partial sweep exists; a
        # plain run silently reuses whatever the store has anyway.
        if not store.persistent:
            print("error: --resume needs a persistent store "
                  "(--cache-dir or $REPRO_COSTS_CACHE_DIR)",
                  file=sys.stderr)
            return 2
        stored = store.rows_for(exploration_digest(models, workload))
        if not stored:
            print("error: no stored exploration found to resume "
                  "(run explore with the same models/workload first)",
                  file=sys.stderr)
            return 2
        if not args.json:
            print(f"resuming: {len(stored)} candidates already "
                  f"evaluated")
    if not args.json:
        print(f"exploring {len(configs)} candidates "
              f"({args.bits}-bit RSA decrypt)...")
    explorer = AlgorithmExplorer(models, workload)
    results = explorer.explore(configs, jobs=args.jobs, store=store)
    run = explorer.last_run
    if args.json:
        payload = {
            "bits": args.bits,
            "candidates_evaluated": run.evaluated,
            "candidates_cached": run.cached,
            "wall_seconds": run.wall_seconds,
            "candidate_wall_seconds": run.candidate_wall_seconds,
            "parallel_speedup": run.parallel_speedup,
            "jobs": run.jobs,
            "executor": run.executor,
            "top": [r.as_dict() for r in results[: args.top]],
        }
        _finish_obs(args, payload)
        return _print_json(args, payload)
    print(f"done in {run.wall_seconds:.0f}s "
          f"({run.evaluated} evaluated, {run.cached} from cache, "
          f"jobs={run.jobs}, speedup {run.parallel_speedup:.2f}x)\n")
    for result in results[: args.top]:
        print(f"  {result.estimated_cycles / 1e6:8.2f}M  {result.label}")
    _finish_obs(args)
    return 0


def _cmd_speedups(args) -> int:
    from repro.costs import characterize_cached
    from repro.obs import get_registry, get_tracer

    _configure_cache(args)
    _setup_obs(args)
    tracer = get_tracer()
    if args.jobs is not None:
        # Pre-warm both platform model sets with the requested fan-out;
        # the measurement below then hits the memo.
        characterize_cached(jobs=args.jobs)
        characterize_cached(8, 8, jobs=args.jobs)
    with tracer.span("speedups.measure"):
        base_p, opt_p, base, opt = _measured_cost_pair(
            announce=not args.json)
    registry = get_registry()
    ciphers = {}
    for algo in ("des", "3des", "aes"):
        with tracer.span("speedups.cipher", algo=algo):
            b = base_p.cipher_cycles_per_byte(algo)
            o = opt_p.cipher_cycles_per_byte(algo)
        ciphers[algo] = (b, o)
        registry.gauge("speedups.speedup", algo=algo).set(b / o)
    registry.gauge("speedups.speedup", algo="rsa_public").set(
        base.rsa_public_cycles / opt.rsa_public_cycles)
    registry.gauge("speedups.speedup", algo="rsa_private").set(
        base.rsa_private_cycles / opt.rsa_private_cycles)
    if args.json:
        payload = {
            "base": base.as_dict(),
            "optimized": opt.as_dict(),
            "speedups": dict(
                {algo: b / o for algo, (b, o) in ciphers.items()},
                rsa_public=base.rsa_public_cycles / opt.rsa_public_cycles,
                rsa_private=(base.rsa_private_cycles
                             / opt.rsa_private_cycles)),
        }
        _finish_obs(args, payload)
        return _print_json(args, payload)
    print(f"\n{'algorithm':10s} {'base':>12s} {'optimized':>12s} "
          f"{'speedup':>8s}")
    for algo, (b, o) in ciphers.items():
        print(f"{algo.upper():10s} {b:10.1f}c/B {o:10.1f}c/B {b / o:7.1f}x")
    print(f"{'RSA enc':10s} {base.rsa_public_cycles:11.0f}c "
          f"{opt.rsa_public_cycles:11.0f}c "
          f"{base.rsa_public_cycles / opt.rsa_public_cycles:7.1f}x")
    print(f"{'RSA dec':10s} {base.rsa_private_cycles:11.0f}c "
          f"{opt.rsa_private_cycles:11.0f}c "
          f"{base.rsa_private_cycles / opt.rsa_private_cycles:7.1f}x")
    _finish_obs(args)
    return 0


def _cmd_adcurves(args) -> int:
    from repro.obs import get_tracer
    from repro.parallel import executor_scope
    from repro.tie.formulation import (adcurve_aes_block,
                                       adcurve_des_block,
                                       adcurve_mpn_add_n,
                                       adcurve_mpn_addmul_1)

    _configure_cache(args)
    _setup_obs(args)
    if not args.json:
        print(f"measuring A-D curves ({args.limbs}-limb mpn operands)"
              f"...")
    tracer = get_tracer()
    curves = {}
    with tracer.span("adcurves.run", limbs=args.limbs), \
            executor_scope(args.jobs) as pool:
        for name, build in (
                ("mpn_add_n", lambda: adcurve_mpn_add_n(
                    args.limbs, executor=pool)),
                ("mpn_addmul_1", lambda: adcurve_mpn_addmul_1(
                    args.limbs, executor=pool)),
                ("des_block", lambda: adcurve_des_block(executor=pool)),
                ("aes_block", lambda: adcurve_aes_block(executor=pool))):
            with tracer.span("adcurves.curve", curve=name):
                curves[name] = build()
    if args.json:
        payload = {name: {"name": curve.name,
                          "points": [{"cycles": p.cycles,
                                      "area": p.area,
                                      "instructions":
                                          sorted(p.instructions)}
                                     for p in curve.points]}
                   for name, curve in curves.items()}
        _finish_obs(args, payload)
        return _print_json(args, payload)
    for name, curve in curves.items():
        print(f"\n{name}:")
        for point in curve.points:
            names = ",".join(sorted(point.instructions)) or "(software)"
            print(f"  {point.cycles:10.0f}c {point.area:10.0f}A  "
                  f"{names}")
    _finish_obs(args)
    return 0


def _cmd_ssl(args) -> int:
    from repro.obs import get_tracer
    from repro.ssl.transaction import SslWorkloadModel

    _configure_cache(args)
    _setup_obs(args)
    sizes = [int(s) for s in args.sizes.split(",")]
    _, _, base, opt = _measured_cost_pair(announce=False)
    model = SslWorkloadModel(base, opt)
    tracer = get_tracer()
    with tracer.span("ssl.series", sizes=",".join(map(str, sizes))):
        rows = []
        for kb in sizes:
            with tracer.span("ssl.transaction", size_kb=kb):
                rows.extend(model.series([kb * 1024]))
    if args.json:
        results = {"rows": rows,
                   "asymptotic_speedup": model.asymptotic_speedup()}
        _finish_obs(args, results)
        return _print_json(args, results)
    print(f"{'size':>8s} {'speedup':>8s}   base pk/sym/misc")
    for kb, row in zip(sizes, rows):
        bf = row["base_fractions"]
        print(f"{kb:6d}KB {row['speedup']:7.1f}x   "
              f"{bf['public_key']:.2f}/{bf['symmetric']:.2f}/"
              f"{bf['misc']:.2f}")
    print(f"asymptote: {model.asymptotic_speedup():.2f}x")
    _finish_obs(args)
    return 0


def _parse_mix(spec: str) -> dict:
    """Parse a ``--mix`` flag (``name=weight,name=weight``) into the
    mapping :class:`repro.farm.TrafficProfile` takes.  Unknown names
    are the profile's job to reject (with the registered choices)."""
    mix = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, weight = part.partition("=")
        if not sep:
            raise ValueError(f"--mix entries are NAME=WEIGHT "
                             f"(got {part!r})")
        mix[name.strip()] = float(weight)
    if not mix:
        raise ValueError("--mix needs at least one NAME=WEIGHT entry")
    return mix


def _parse_fault_spec(spec: str):
    """Pre-validate a ``--faults`` flag: an integer seed (seeded
    chaos) or a JSON plan file.  Returns ``("seed", int)`` or
    ``("plan", payload)``; the actual :class:`FaultPlan` is built once
    the farm's size, horizon, and degraded cost table are known."""
    import json
    try:
        return "seed", int(spec)
    except ValueError:
        pass
    try:
        with open(spec) as handle:
            return "plan", json.load(handle)
    except OSError as exc:
        raise ValueError(
            f"--faults wants an integer seed or a JSON plan file: "
            f"{exc}") from None
    except ValueError as exc:
        raise ValueError(f"bad JSON in fault plan {spec!r}: {exc}") \
            from None


def _build_fault_plan(parsed, n_cores: int, horizon_cycles: float,
                      episodes: int, degraded_costs):
    """Turn a pre-validated ``--faults`` spec into a FaultPlan."""
    from repro.farm import FaultPlan, generate_fault_plan
    kind, value = parsed
    if kind == "seed":
        return generate_fault_plan(value, n_cores, horizon_cycles,
                                   episodes=episodes,
                                   degraded_costs=degraded_costs)
    return FaultPlan.from_dict(value, degraded_costs=degraded_costs)


def _cmd_farm(args) -> int:
    from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                            capacity_table, farm_rate_targets,
                            import_workload, export_workload,
                            queue_kinds, run_farm, shard_workload,
                            specs_as_configs)
    from repro.farm.shard import _merge_queue_stats
    from repro.farm.scheduler import scheduler_names
    from repro.obs import get_registry, get_tracer, parse_slo
    from repro.ssl.throughput import DEFAULT_CLOCK_HZ

    if args.list_protocols:
        from repro.protocols import get_protocol, protocol_names
        models = [get_protocol(name) for name in protocol_names()]
        if args.json:
            return _print_json(args, {"protocols": [
                {"name": m.name, "resumable": m.resumable,
                 "default_mix_weight": m.default_mix_weight}
                for m in models]})
        print(f"{'protocol':10s} {'resumable':>9s} {'weight':>7s}")
        for m in models:
            print(f"{m.name:10s} {('yes' if m.resumable else 'no'):>9s} "
                  f"{m.default_mix_weight:7.2f}")
        return 0

    _configure_cache(args)
    _setup_obs(args)
    # Validate the cheap inputs before the ~seconds of ISS
    # characterization so bad flags fail fast and cleanly.
    try:
        if args.cores < 1:
            raise ValueError("--cores must be at least 1")
        if not 0 <= args.extended_fraction <= 1:
            raise ValueError("--extended-fraction must be in [0, 1]")
        if args.requests < 0:
            raise ValueError("--requests must be non-negative")
        if args.shards < 1:
            raise ValueError("--shards must be at least 1")
        if args.shards > args.cores:
            raise ValueError("--shards cannot exceed --cores")
        if args.queue not in queue_kinds():
            raise ValueError(f"--queue must be one of {queue_kinds()}")
        if args.fault_episodes < 0:
            raise ValueError("--fault-episodes must be non-negative")
        fault_spec = (_parse_fault_spec(args.faults)
                      if args.faults else None)
        slo = parse_slo(args.slo) if args.slo else None
        if args.slo_window <= 0:
            raise ValueError("--slo-window must be positive")
        if args.scheduler not in scheduler_names():
            raise ValueError(f"--scheduler must be one of "
                             f"{scheduler_names()}")
        if args.series_interval <= 0:
            raise ValueError("--series-interval must be positive")
        if args.serve:
            if args.replay:
                raise ValueError("--serve generates its own epoch "
                                 "traffic; --replay is one-shot")
            if args.export_workload:
                raise ValueError("--serve does not take "
                                 "--export-workload")
            if args.epoch_seconds <= 0:
                raise ValueError("--epoch-seconds must be positive")
            if args.max_epochs is not None and args.max_epochs < 1:
                raise ValueError("--max-epochs must be at least 1")
            if args.serve_grace < 0:
                raise ValueError("--serve-grace must be non-negative")
        profile_kwargs = dict(arrival_rate=args.rate,
                              resumption_ratio=args.resumption)
        if args.mix:
            # Unknown names raise UnknownProtocolError (a ValueError)
            # from the profile, naming the registered choices.
            profile_kwargs["mix"] = _parse_mix(args.mix)
        profile = TrafficProfile(**profile_kwargs)
        clock_hz = DEFAULT_CLOCK_HZ
        if args.replay:
            trace = import_workload(args.replay)
            requests = trace.requests
            clock_hz = trace.clock_hz
        else:
            if args.shards > profile.clients:
                raise ValueError("--shards cannot exceed the client "
                                 "population")
            # One canonical stream (interleaved shard seqs, ordered by
            # seq) -- what --export-workload writes, and what the
            # replay path re-partitions into the identical shards.
            workloads = shard_workload(profile, args.requests,
                                       args.shards, seed=args.seed)
            requests = sorted((r for shard in workloads for r in shard),
                              key=lambda r: r.seq)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.export_workload:
        export_workload(args.export_workload, requests,
                        clock_hz=clock_hz, rate=args.rate,
                        seed=args.seed, shards=args.shards,
                        resumption=args.resumption,
                        source=args.replay or "generated")
        if not args.json:
            print(f"wrote {len(requests)} requests to "
                  f"{args.export_workload}")

    _, _, base_costs, opt_costs = _measured_cost_pair(
        announce=not args.json)
    specs = build_farm(args.cores, base_costs, opt_costs,
                       extended_fraction=args.extended_fraction)

    if args.serve:
        plan = None
        if fault_spec is not None:
            # The soak horizon is the (bounded) epoch timeline; an
            # unbounded soak gets a generous default so seeded chaos
            # still lands somewhere observable.
            horizon = ((args.max_epochs if args.max_epochs else 64)
                       * args.epoch_seconds * clock_hz)
            plan = _build_fault_plan(fault_spec, args.cores, horizon,
                                     args.fault_episodes, base_costs)
        config = FarmConfig(specs=tuple(specs),
                            scheduler=args.scheduler, profile=profile,
                            seed=args.seed, clock_hz=clock_hz,
                            queue=args.queue, faults=plan, slo=slo,
                            slo_window_seconds=args.slo_window)
        return _run_soak(args, config)

    plan = None
    if fault_spec is not None:
        # The chaos horizon is the offered-traffic window: strikes
        # land while there is load to disturb.  A degraded extended
        # core falls back to the measured base-ISA cost table.
        horizon = max((r.arrival_cycle for r in requests),
                      default=0.0) or clock_hz
        plan = _build_fault_plan(fault_spec, args.cores, horizon,
                                 args.fault_episodes, base_costs)

    tracer = get_tracer()
    metrics = (get_registry() if args.metrics or args.metrics_out
               else None)
    rows = []
    runs = []
    farm_runs = []
    config = FarmConfig(specs=tuple(specs), requests=tuple(requests),
                        shards=args.shards, seed=args.seed,
                        clock_hz=clock_hz, queue=args.queue,
                        jobs=args.jobs, faults=plan, slo=slo,
                        slo_window_seconds=args.slo_window,
                        series_interval_seconds=(
                            args.series_interval if args.series_out
                            else None))
    for name in scheduler_names():
        farm_run = run_farm(config.with_scheduler(name), tracer=tracer,
                            metrics=metrics)
        farm_runs.append((name, farm_run))
        runs.append(farm_run.sharded)
        rows.append(farm_run.metrics)

    if args.series_out:
        from repro.obs import write_series_jsonl
        series = dict(farm_runs)[args.scheduler].series
        written = write_series_jsonl(series, args.series_out)
        if not args.json:
            print(f"wrote {written} series records "
                  f"({len(series.samples)} samples, "
                  f"{len(series.events)} events, scheduler "
                  f"{args.scheduler}) to {args.series_out}")

    configs = specs_as_configs(specs)
    plans = capacity_table(configs, farm_rate_targets())
    wall = sum(run.wall_seconds for run in runs)
    shard_wall = sum(run.shard_wall_seconds for run in runs)
    sharding = {
        "shards": args.shards,
        "jobs": runs[0].jobs,
        "executor": runs[0].executor,
        "queue": args.queue,
        "parallel_speedup": (shard_wall / wall if wall > 0 else 0.0),
        "queue_stats": _merge_queue_stats([run.queue_stats
                                           for run in runs]),
    }

    if args.json:
        results = {
            "cores": [{"name": s.name, "config": s.costs.name,
                       "gates": s.gates} for s in specs],
            "schedulers": [m.as_dict() for m in rows],
            "capacity": [p.as_dict() for p in plans],
            "sharding": sharding,
            "parallel_speedup": sharding["parallel_speedup"],
            "jobs": sharding["jobs"],
            "executor": sharding["executor"],
        }
        if plan is not None:
            results["faults"] = {
                "plan": plan.as_dict(),
                "by_scheduler": {name: run.faults.as_dict()
                                 for name, run in farm_runs},
            }
        if slo is not None:
            results["slo"] = {
                "target": slo.as_dict(),
                "window_seconds": args.slo_window,
                "by_scheduler": {name: run.slo.as_dict()
                                 for name, run in farm_runs},
            }
        _finish_obs(args, results)
        return _print_json(args, results)

    print(f"\nfarm: {args.cores} cores "
          f"({sum(s.extended for s in specs)} extended / "
          f"{sum(not s.extended for s in specs)} base), "
          f"{len(requests)} requests @ {args.rate:.0f}/s, "
          f"seed {args.seed}")
    if args.shards > 1 or args.queue != "heap":
        print(f"sharded: {args.shards} shards, queue={args.queue}, "
              f"jobs={sharding['jobs']} ({sharding['executor']}), "
              f"speedup {sharding['parallel_speedup']:.2f}x")
    print(f"\n{'scheduler':14s} {'sess/s':>8s} {'Mbps':>7s} "
          f"{'p50 ms':>8s} {'p95 ms':>9s} {'p99 ms':>9s} "
          f"{'util':>5s} {'hit':>5s} {'/s/Mgate':>9s}")
    for m in rows:
        print(f"{m.scheduler:14s} {m.sessions_per_s:8.1f} "
              f"{m.secure_mbps:7.2f} {m.p50_ms:8.2f} {m.p95_ms:9.2f} "
              f"{m.p99_ms:9.2f} {m.mean_utilization:5.2f} "
              f"{m.cache_hit_rate:5.2f} "
              f"{m.sessions_per_s_per_mgate:9.1f}")
    if plan is not None:
        print(f"\nchaos: {len(plan.events)} planned fault events, "
              f"re-dispatch penalty "
              f"{plan.redispatch_penalty_cycles:.0f} cycles")
        print(f"{'scheduler':14s} {'applied':>8s} {'redisp':>7s} "
              f"{'flushed':>8s} {'down Mcyc':>10s}")
        for name, run in farm_runs:
            fr = run.faults
            print(f"{name:14s} {fr.events_injected:8d} "
                  f"{fr.redispatches:7d} {fr.sessions_flushed:8d} "
                  f"{fr.downtime_cycles / 1e6:10.2f}")
    if slo is not None:
        print(f"\nslo ({args.slo}, {args.slo_window:.1f}s windows):")
        print(f"{'scheduler':14s} {'windows':>8s} {'violated':>9s} "
              f"{'breaches':>9s} {'attain':>7s}")
        for name, run in farm_runs:
            sr = run.slo
            print(f"{name:14s} {len(sr.windows):8d} "
                  f"{sr.windows_violated:9d} {sr.violations:9d} "
                  f"{sr.attainment:7.2f}")
    print("\ncapacity plan (aggregate targets, "
          "2% busy-instant activity):")
    print(f"{'target':38s} {'config':>10s} {'cores':>7s} "
          f"{'farm Mgates':>12s}")
    for p in plans:
        print(f"{p.target_name:38s} {p.config_name:>10s} "
              f"{p.cores:7d} {p.farm_gates / 1e6:12.2f}")
    _finish_obs(args)
    return 0


def _run_soak(args, config) -> int:
    """The ``farm --serve`` path: soak epochs + scrape endpoints."""
    from repro.farm.serve import FarmSoakService
    from repro.obs import write_series_jsonl

    service = FarmSoakService(config, epoch_seconds=args.epoch_seconds,
                              series_interval_seconds=args.series_interval)
    port = service.serve(host=args.host, port=args.port)
    # One parseable line: CI greps the bound port out of it.
    print(f"soak: listening on port {port} "
          f"(http://{args.host}:{port}/metrics /healthz /slo; "
          f"POST /quit stops)", flush=True)
    try:
        epochs = service.run(max_epochs=args.max_epochs,
                             grace_seconds=args.serve_grace)
    except KeyboardInterrupt:
        service.stop()
        epochs = service.epochs
    finally:
        service.shutdown()
    if args.series_out:
        written = write_series_jsonl(service.series, args.series_out)
        print(f"wrote {written} series records "
              f"({len(service.series.samples)} samples, "
              f"{len(service.series.events)} events) to "
              f"{args.series_out}")
    print(f"soak: served {epochs} epochs, "
          f"{service.virtual_seconds:.1f}s virtual")
    _finish_obs(args)
    return 0


def _cmd_timeseries(args) -> int:
    from repro.obs import (read_series_jsonl, render_dashboard_html,
                           render_series)

    try:
        series = read_series_jsonl(args.series)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read series {args.series}: {exc}",
              file=sys.stderr)
        return 2
    keys = args.key or None
    if keys:
        known = set(series.keys())
        missing = [k for k in keys if k not in known]
        if missing:
            print(f"error: unknown series key(s) {missing}; "
                  f"known: {series.keys()}", file=sys.stderr)
            return 2
    if args.html:
        html = render_dashboard_html(series, keys=keys)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(html)
    if args.json:
        payload = series.as_dict()
        if keys:
            payload["samples"] = [
                {"kind": "sample", "t_cycles": s.t_cycles,
                 "values": {k: v for k, v in s.values.items()
                            if k in keys}}
                for s in series.samples]
        return _print_json(args, payload)
    print(render_series(series, keys=keys, width=args.width))
    if args.html:
        print(f"wrote dashboard to {args.html}")
    return 0


def _cmd_capacity(args) -> int:
    from repro.farm import (AutoscalePolicy, FarmConfig, SloTarget,
                            TrafficProfile, build_farm, capacity_table,
                            curve_names, plan_farm, run_autoscale,
                            specs_as_configs)
    from repro.ssl.throughput import DEFAULT_CLOCK_HZ, RATE_TARGETS

    _configure_cache(args)
    try:
        if args.users < 1:
            raise ValueError("--users must be at least 1")
        if args.per_user_kbps <= 0:
            raise ValueError("--per-user-kbps must be positive")
        if args.curve not in curve_names():
            raise ValueError(f"--curve must be one of {curve_names()}")
        policy = AutoscalePolicy(
            min_cores=args.min_cores, max_cores=args.max_cores,
            target_utilization=args.target_utilization,
            warmup_epochs=args.warmup_epochs,
            cooldown_epochs=args.cooldown_epochs)
        slo = SloTarget(p99_ms=args.slo_p99_ms,
                        secure_mbps=args.slo_mbps)
        profile = TrafficProfile(arrival_rate=args.rate)
        if args.epochs < 1:
            raise ValueError("--epochs must be at least 1")
        if args.epoch_seconds <= 0:
            raise ValueError("--epoch-seconds must be positive")
        if args.fault_episodes < 0:
            raise ValueError("--fault-episodes must be non-negative")
        fault_spec = (_parse_fault_spec(args.faults)
                      if args.faults else None)
        if args.series_out and not args.autoscale:
            raise ValueError("--series-out needs --autoscale (the "
                             "static plan has no timeline)")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    _, _, base_costs, opt_costs = _measured_cost_pair(
        announce=not args.json)
    # A two-core heterogeneous farm yields exactly the base and
    # extended configurations with their gate costs.
    configs = specs_as_configs(build_farm(2, base_costs, opt_costs, 0.5))
    plan = plan_farm(args.users, args.per_user_kbps * 1e3, configs)
    targets = {name: args.users * 0.02 * rate
               for name, rate in RATE_TARGETS.items()}
    table = capacity_table(configs, targets)

    report = None
    if args.autoscale:
        pool = build_farm(args.max_cores, base_costs, opt_costs,
                          extended_fraction=args.extended_fraction)
        fault_plan = None
        if fault_spec is not None:
            # The chaos horizon spans the whole autoscale run; each
            # epoch injects its own window of the plan.
            horizon = args.epochs * args.epoch_seconds * DEFAULT_CLOCK_HZ
            fault_plan = _build_fault_plan(
                fault_spec, args.max_cores, horizon,
                args.fault_episodes, base_costs)
        config = FarmConfig(specs=tuple(pool), scheduler=args.scheduler,
                            profile=profile, seed=args.seed,
                            faults=fault_plan, slo=slo)
        report = run_autoscale(config, policy=policy,
                               n_epochs=args.epochs,
                               epoch_seconds=args.epoch_seconds,
                               curve=args.curve)
        if args.series_out:
            from repro.obs import write_series_jsonl
            written = write_series_jsonl(report.series,
                                         args.series_out)
            if not args.json:
                print(f"wrote {written} series records "
                      f"({len(report.series.samples)} samples, "
                      f"{len(report.series.events)} events) to "
                      f"{args.series_out}")

    if args.json:
        results = {
            "plan": plan.as_dict(),
            "table": [p.as_dict() for p in table],
        }
        if report is not None:
            results["autoscale"] = report.as_dict()
        return _print_json(args, results)

    print(f"\ncheapest plan for {args.users:,} users @ "
          f"{args.per_user_kbps:.0f} kbps each:")
    print(f"  {plan.cores} x {plan.config_name} cores "
          f"({plan.farm_gates / 1e6:.2f} Mgates, "
          f"{plan.per_core_bps / 1e6:.2f} Mbps/core)")
    print(f"\n{'target':38s} {'config':>10s} {'cores':>7s} "
          f"{'farm Mgates':>12s}")
    for p in table:
        print(f"{p.target_name:38s} {p.config_name:>10s} "
              f"{p.cores:7d} {p.farm_gates / 1e6:12.2f}")
    if report is not None:
        print(f"\nautoscale ({args.curve} curve, {args.epochs} epochs "
              f"x {args.epoch_seconds:.1f}s, scheduler "
              f"{args.scheduler}):")
        print(f"{'epoch':>5s} {'rate/s':>8s} {'cores':>6s} "
              f"{'warm':>5s} {'util':>5s} {'p99 ms':>9s} "
              f"{'Mbps':>7s} {'slo':>4s} {'viol':>5s} {'fail':>5s} "
              f"action")
        for e in report.epochs:
            print(f"{e.epoch:5d} {e.offered_rate:8.1f} "
                  f"{e.active_cores:6d} {e.warming_cores:5d} "
                  f"{e.utilization:5.2f} {e.p99_ms:9.2f} "
                  f"{e.secure_mbps:7.2f} "
                  f"{'ok' if e.slo_met else 'MISS':>4s} "
                  f"{e.slo_violations:5d} {e.failed_cores:5d} "
                  f"{e.action}")
        print(f"\npeak {report.peak_cores} cores, mean "
              f"{report.mean_cores:.1f}, {report.core_epochs} "
              f"core-epochs, {report.slo_violations} SLO misses, "
              f"{report.core_failures} core failures, "
              f"{report.scale_outs} scale-outs / "
              f"{report.scale_ins} scale-ins")
    return 0


def _cmd_callgraph(args) -> int:
    from repro.isa.kernels.modexp_kernel import ModExpKernel
    from repro.tie.callgraph import CallGraph

    modulus = (1 << args.bits) + 0x169
    kernel = ModExpKernel()
    print(f"profiling a {args.bits}-bit modular exponentiation on the "
          f"ISS...")
    _, cycles, profile = kernel.powm(0xFEEDFACE, 0xA5A5, modulus)
    graph = CallGraph.from_profile(profile, "modexp")
    print(f"{cycles} cycles\n")
    print(graph.render())
    return 0


def _cmd_profile(args) -> int:
    from repro.obs import CycleProfile, read_events_jsonl

    try:
        tracer = read_events_jsonl(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    group_by = tuple(a for a in args.group_by.split(",") if a)
    profile = CycleProfile.from_tracer(tracer, group_by=group_by)
    if args.folded:
        with open(args.folded, "w") as fh:
            for line in profile.folded():
                fh.write(line + "\n")
    if args.json:
        return _print_json(args, profile.as_dict())
    print(f"{len(tracer.spans)} spans, "
          f"{profile.total_cycles():.0f} cycles attributed")
    print(profile.render_top(args.top))
    if args.folded:
        print(f"wrote folded stacks to {args.folded} "
              f"(feed to flamegraph.pl)")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs import bench

    _configure_cache(args)
    names = args.scenario or bench.scenario_names()
    try:
        for name in names:
            bench.get_scenario(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.check:
        reports, ok = bench.check_scenarios(args.dir, names)
        payload = {"ok": ok,
                   "scenarios": [r.as_dict() for r in reports],
                   "extras": {name: bench.scenario_extras(name)
                              for name in names}}
        if args.report:
            with open(args.report, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        if args.json:
            _print_json(args, payload)
        else:
            print(bench.render_report(reports, verbose=args.verbose))
            print(f"bench gate: "
                  f"{'ok' if ok else 'REGRESSIONS DETECTED'}")
            if args.report:
                print(f"wrote report to {args.report}")
        return 0 if ok else 1

    results = {}
    for name in names:
        metrics = bench.run_scenario(name)
        path = bench.write_baseline(args.dir, name, metrics)
        extras = bench.scenario_extras(name)
        results[name] = {"path": path, "metrics": metrics,
                         "extras": extras}
        if not args.json:
            wall = extras.get("wall_seconds", 0.0)
            print(f"recorded {name}: {len(metrics)} metrics -> {path} "
                  f"({wall:.2f}s)")
    if args.json:
        return _print_json(args, results)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.costs.cache import CACHE_DIR_ENV

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wireless security processing platform co-design flows")
    sub = parser.add_subparsers(dest="command", required=True)

    # Flags shared by every cost-consuming subcommand.
    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument(
        "--cache-dir", default=os.environ.get(CACHE_DIR_ENV) or None,
        help="persist/reuse the characterization store in this directory "
             f"(default: ${CACHE_DIR_ENV})")
    cache_flags.add_argument(
        "--no-cache", action="store_true",
        help="force re-characterization (bypass memo and disk store)")

    # Worker-count flag shared by the parallel sweep subcommands.
    from repro.parallel import JOBS_ENV
    jobs_flags = argparse.ArgumentParser(add_help=False)
    jobs_flags.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the sweep across N workers (default: $"
             f"{JOBS_ENV} or serial); results are identical to serial")

    # Observability flags shared by the instrumented subcommands.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace-out", metavar="FILE",
        help="enable tracing and write a JSON-lines span/event log here")
    obs_flags.add_argument(
        "--metrics", action="store_true",
        help="report the metrics summary (under results.metrics with "
             "--json)")
    obs_flags.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the rendered metrics registry to this file")
    obs_flags.add_argument(
        "--metrics-format", choices=("text", "prometheus"),
        default="text",
        help="rendering for --metrics-out and the --metrics table "
             "(default: text)")
    obs_flags.add_argument(
        "--profile", metavar="FILE",
        help="enable tracing and write the run's cycle-attribution "
             "profile here as JSON (prints a top-10 table too)")

    p = sub.add_parser("characterize",
                       parents=[cache_flags, obs_flags, jobs_flags],
                       help="fit leaf-routine macro-models")
    p.add_argument("--ext", action="store_true",
                   help="characterize the extended platform")
    p.add_argument("--add-width", type=int, default=8)
    p.add_argument("--mac-width", type=int, default=8)
    p.add_argument("-o", "--output", help="save models as JSON")
    p.add_argument("--json", action="store_true",
                   help="emit the fitted model set as JSON")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("explore",
                       parents=[cache_flags, obs_flags, jobs_flags],
                       help="explore the modexp design space")
    p.add_argument("--models", help="JSON macro-models (else characterize)")
    p.add_argument("--bits", type=int, default=512, choices=(512, 1024))
    p.add_argument("--stride", type=int, default=9,
                   help="evaluate every Nth of the 450 candidates (1=all)")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted sweep from the "
                        "persistent store (error if none exists)")
    p.add_argument("--json", action="store_true",
                   help="emit the ranked candidates as JSON")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("speedups",
                       parents=[cache_flags, obs_flags, jobs_flags],
                       help="Table 1: per-algorithm speedups")
    p.add_argument("--json", action="store_true",
                   help="emit unit costs and speedups as JSON")
    p.set_defaults(func=_cmd_speedups)

    p = sub.add_parser("adcurves",
                       parents=[cache_flags, obs_flags, jobs_flags],
                       help="Figure 5: measured area-delay curves")
    p.add_argument("--limbs", type=int, default=16,
                   help="mpn operand size for the add_n/addmul_1 curves")
    p.add_argument("--json", action="store_true",
                   help="emit the curves as JSON")
    p.set_defaults(func=_cmd_adcurves)

    p = sub.add_parser("ssl", parents=[cache_flags, obs_flags],
                       help="Figure 8: SSL transaction speedups")
    p.add_argument("--sizes", default="1,2,4,8,16,32",
                   help="comma-separated transaction sizes in KB")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of the table")
    p.set_defaults(func=_cmd_ssl)

    p = sub.add_parser("farm",
                       parents=[cache_flags, obs_flags, jobs_flags],
                       help="multi-core farm: schedulers + capacity plan")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rate", type=float, default=60.0,
                   help="offered load in sessions/second")
    p.add_argument("--resumption", type=float, default=0.4,
                   help="session-resumption ratio (resumable "
                        "protocols: ssl, tls13, ...)")
    p.add_argument("--mix", metavar="NAME=W[,NAME=W...]",
                   help="traffic mix over registered protocols, e.g. "
                        "tls13=0.7,wep=0.3 (default: each protocol's "
                        "default weight)")
    p.add_argument("--list-protocols", action="store_true",
                   help="list the registered protocol models and exit")
    p.add_argument("--extended-fraction", type=float, default=0.5,
                   help="fraction of cores with TIE extensions")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the population across N independent "
                        "shard simulations (1 = the plain simulator, "
                        "bit-identical)")
    p.add_argument("--queue", default="heap",
                   help="pending-event structure: heap or calendar "
                        "(identical results either way)")
    p.add_argument("--replay", metavar="FILE",
                   help="replay a JSONL workload trace instead of "
                        "generating traffic")
    p.add_argument("--export-workload", metavar="FILE",
                   help="write the offered request stream as a JSONL "
                        "trace for later --replay")
    p.add_argument("--faults", metavar="SEED|FILE",
                   help="deterministic chaos: an integer seed draws a "
                        "fault schedule from the 'faults' PRNG fork, a "
                        "path replays an explicit JSON FaultPlan")
    p.add_argument("--fault-episodes", type=int, default=3,
                   help="fault episodes a seeded --faults plan draws")
    p.add_argument("--slo", metavar="NAME=V[,NAME=V...]",
                   help="runtime SLO gate evaluated per window, e.g. "
                        "p99_ms=5,secure_mbps=10,cache_hit_rate=0.3,"
                        "utilization=0.2")
    p.add_argument("--slo-window", type=float, default=1.0,
                   help="SLO evaluation window in (virtual) seconds")
    p.add_argument("--scheduler", default="preferential",
                   help="scheduler the --serve soak loop runs and the "
                        "--series-out export follows (the offline "
                        "table still sweeps every policy)")
    p.add_argument("--series-out", metavar="FILE",
                   help="export the run as a virtual-time metrics "
                        "series (JSONL; fault/SLO events annotated)")
    p.add_argument("--series-interval", type=float, default=0.05,
                   help="series sampling interval in virtual seconds")
    p.add_argument("--serve", action="store_true",
                   help="soak mode: replay traffic epochs continuously "
                        "and expose /metrics, /healthz, /slo over HTTP")
    p.add_argument("--host", default="127.0.0.1",
                   help="--serve bind address")
    p.add_argument("--port", type=int, default=0,
                   help="--serve port (0 picks a free one; the bound "
                        "port is printed)")
    p.add_argument("--max-epochs", type=int, default=None,
                   help="--serve: stop after N epochs (default: run "
                        "until POST /quit or Ctrl-C)")
    p.add_argument("--epoch-seconds", type=float, default=2.0,
                   help="--serve epoch length in virtual seconds")
    p.add_argument("--serve-grace", type=float, default=0.0,
                   help="--serve: linger this many wall seconds after "
                        "the last epoch for late scrapers")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    p.set_defaults(func=_cmd_farm)

    p = sub.add_parser("capacity", parents=[cache_flags],
                       help="capacity planner: static sizing + "
                            "autoscaling simulation")
    p.add_argument("--users", type=int, default=100_000,
                   help="subscriber population to size for")
    p.add_argument("--per-user-kbps", type=float, default=384.0,
                   help="per-user secure rate target (kbps)")
    p.add_argument("--autoscale", action="store_true",
                   help="additionally simulate the autoscaling control "
                        "loop")
    p.add_argument("--curve", default="diurnal",
                   help="arrival curve: constant, diurnal, or bursty")
    p.add_argument("--epochs", type=int, default=24)
    p.add_argument("--epoch-seconds", type=float, default=2.0)
    p.add_argument("--rate", type=float, default=400.0,
                   help="base offered load in sessions/second")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scheduler", default="preferential")
    p.add_argument("--min-cores", type=int, default=2)
    p.add_argument("--max-cores", type=int, default=16)
    p.add_argument("--target-utilization", type=float, default=0.7)
    p.add_argument("--warmup-epochs", type=int, default=1,
                   help="epochs a scaled-out core takes to come online")
    p.add_argument("--cooldown-epochs", type=int, default=2)
    p.add_argument("--extended-fraction", type=float, default=0.5)
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   help="per-epoch p99 latency SLO (ms)")
    p.add_argument("--slo-mbps", type=float, default=None,
                   help="per-epoch secure-throughput SLO (Mbps)")
    p.add_argument("--faults", metavar="SEED|FILE",
                   help="deterministic chaos over the autoscale run: "
                        "an integer seed or a JSON FaultPlan file; "
                        "failed cores leave the fleet and the policy "
                        "must scale the capacity back")
    p.add_argument("--fault-episodes", type=int, default=3,
                   help="fault episodes a seeded --faults plan draws")
    p.add_argument("--series-out", metavar="FILE",
                   help="with --autoscale: export the per-epoch "
                        "series (JSONL; scale/failure events "
                        "annotated)")
    p.add_argument("--json", action="store_true",
                   help="emit the plan/table/autoscale report as JSON")
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("callgraph", help="Figure 4: profile a modexp")
    p.add_argument("--bits", type=int, default=256)
    p.set_defaults(func=_cmd_callgraph)

    p = sub.add_parser("profile",
                       help="cycle-attribution profile of a trace log")
    p.add_argument("--trace", required=True, metavar="FILE",
                   help="JSON-lines trace written by --trace-out")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the hot-path table")
    p.add_argument("--group-by", default="",
                   help="comma-separated span attrs that split call "
                        "paths (e.g. scheduler,protocol)")
    p.add_argument("--folded", metavar="FILE",
                   help="write folded-stack lines for flamegraph.pl")
    p.add_argument("--json", action="store_true",
                   help="emit the profile tree as JSON")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("timeseries",
                       help="render a saved virtual-time metrics "
                            "series (sparklines / HTML dashboard)")
    p.add_argument("--series", required=True, metavar="FILE",
                   help="JSONL series written by --series-out")
    p.add_argument("--key", action="append", metavar="NAME",
                   help="only these series keys (repeatable; default "
                        "all)")
    p.add_argument("--html", metavar="FILE",
                   help="write a self-contained HTML dashboard here")
    p.add_argument("--width", type=int, default=64,
                   help="sparkline width in columns")
    p.add_argument("--json", action="store_true",
                   help="emit the series as JSON")
    p.set_defaults(func=_cmd_timeseries)

    from repro.obs.bench import DEFAULT_BASELINE_DIR
    p = sub.add_parser("bench", parents=[cache_flags],
                       help="record or gate benchmark baselines")
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="run only this scenario (repeatable; default "
                        "all)")
    p.add_argument("--dir", default=DEFAULT_BASELINE_DIR,
                   help="baseline directory holding BENCH_<name>.json")
    p.add_argument("--check", action="store_true",
                   help="compare against committed baselines and exit "
                        "non-zero on regressions")
    p.add_argument("--report", metavar="FILE",
                   help="with --check: write the JSON diff report here")
    p.add_argument("--verbose", action="store_true",
                   help="with --check: show every metric row, not just "
                        "regressions")
    p.add_argument("--json", action="store_true",
                   help="emit scenario metrics / the gate report as "
                        "JSON")
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
