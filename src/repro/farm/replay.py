"""JSONL workload traces: export a request stream, replay it anywhere.

Comparing schedulers, core mixes, or event-queue kinds is only honest
when every configuration serves the *same* traffic.  Seeded generation
already guarantees that in-process; a trace file extends the guarantee
across processes, CI jobs, and repo versions: one header line of
metadata, then one JSON record per :class:`~repro.farm.workload.
SessionRequest`, floats serialized by ``repr`` so arrival cycles
round-trip bit-exactly (``export -> import`` reproduces the identical
request list, and replaying it reproduces the identical
:class:`~repro.farm.simulator.FarmResult` -- covered by the CI
``shard-smoke`` job).
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.protocols import protocol_names
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.farm.workload import SessionRequest

__all__ = ["TRACE_FORMAT", "TRACE_VERSION", "WorkloadTrace",
           "export_workload", "import_workload"]

TRACE_FORMAT = "repro.farm.workload"
TRACE_VERSION = 1

_FIELDS = ("seq", "arrival_cycle", "protocol", "size_bytes", "resumed",
           "client_id")


@dataclass
class WorkloadTrace:
    """A request stream plus the metadata it was generated under."""

    requests: List[SessionRequest]
    clock_hz: float = DEFAULT_CLOCK_HZ
    meta: Dict = field(default_factory=dict)


def export_workload(path, requests: Sequence[SessionRequest],
                    clock_hz: float = DEFAULT_CLOCK_HZ,
                    **meta) -> int:
    """Write ``requests`` as a JSONL trace; returns the record count.

    Extra keyword arguments land in the header's ``meta`` object --
    conventionally the generation parameters (profile, seed, shards)
    so a trace documents its own provenance.
    """
    path = str(path)
    with open(path, "w", encoding="utf-8") as handle:
        header = {"format": TRACE_FORMAT, "version": TRACE_VERSION,
                  "count": len(requests), "clock_hz": clock_hz,
                  "meta": dict(meta)}
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for request in requests:
            record = {name: getattr(request, name) for name in _FIELDS}
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(requests)


def import_workload(path) -> WorkloadTrace:
    """Read a JSONL trace back into a :class:`WorkloadTrace`.

    Validates the header (format marker, version, record count) and
    every record's protocol against the registry, so a truncated or
    foreign file fails loudly instead of replaying a partial or
    unpriceable population.
    """
    path = str(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in (raw.strip() for raw in handle)
                 if line]
    if not lines:
        raise ValueError(f"{path}: empty workload trace")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} trace")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(f"{path}: unsupported trace version "
                         f"{header.get('version')!r}")
    records = lines[1:]
    expected = header.get("count", len(records))
    if len(records) != expected:
        raise ValueError(f"{path}: header promises {expected} records, "
                         f"found {len(records)} (truncated trace?)")
    known = protocol_names()
    requests = []
    for line in records:
        data = json.loads(line)
        if data["protocol"] not in known:
            raise ValueError(
                f"{path}: trace names unregistered protocol "
                f"{data['protocol']!r}; registered: {list(known)}")
        requests.append(SessionRequest(
            seq=int(data["seq"]),
            arrival_cycle=float(data["arrival_cycle"]),
            protocol=str(data["protocol"]),
            size_bytes=int(data["size_bytes"]),
            resumed=bool(data["resumed"]),
            client_id=int(data["client_id"])))
    return WorkloadTrace(requests=requests,
                         clock_hz=float(header.get("clock_hz",
                                                   DEFAULT_CLOCK_HZ)),
                         meta=dict(header.get("meta", {})))
