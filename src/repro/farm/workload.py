"""Seeded traffic generation for the security-processor farm.

A *session request* is one unit of secure work a handset population
offers the farm: an SSL transaction (full or resumed handshake plus
record transfer), a WTLS browsing session (ECDH handshake), an IPSec
ESP bulk transfer, or a burst of WEP frames.  Requests are generated
from a :class:`~repro.mp.DeterministicPrng` stream so a (profile,
seed) pair always produces the identical request list, and they are
costed in cycles through the same vocabulary the single-transaction
evaluation uses: :class:`repro.costs.PlatformCosts` and
:meth:`repro.ssl.transaction.SslWorkloadModel.breakdown`.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

# WEP/ESP per-byte and framing rates live in the unified cost
# vocabulary now; re-exported here because they are part of this
# module's historical surface.
from repro.costs import (CRC32_CYCLES_PER_BYTE, ESP_PACKET_FIXED_CYCLES,
                         PlatformCosts, RC4_CYCLES_PER_BYTE,
                         WEP_FRAME_FIXED_CYCLES)
from repro.mp import DeterministicPrng
from repro.ssl.session_cache import SessionCache
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.ssl.transaction import (HANDSHAKE_TRANSCRIPT_BYTES,
                                   SslWorkloadModel)

#: Link-layer MTU used to charge per-packet/per-frame fixed overheads.
MTU_BYTES = 1500

PROTOCOLS = ("ssl", "wtls", "esp", "wep")

_SERVER_RANDOM = b"farm-server-random".ljust(32, b"\0")


@dataclass(frozen=True)
class SessionRequest:
    """One unit of offered secure work."""

    seq: int                 # generation order; breaks event-time ties
    arrival_cycle: float     # virtual arrival time, in core cycles
    protocol: str            # one of PROTOCOLS
    size_bytes: int          # protected payload size
    resumed: bool            # SSL only: client presents a session id
    client_id: int           # originating handset (affinity key)


@dataclass(frozen=True)
class RequestCost:
    """Cycle price of serving one request on one core configuration."""

    cycles: float
    public_key_cycles: float
    payload_bytes: int

    @property
    def public_key_fraction(self) -> float:
        return self.public_key_cycles / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class _FarmSession:
    """Shim handshake result so cores can reuse the SSL session cache."""

    client_random: bytes
    server_random: bytes


def farm_session(client_id: int) -> _FarmSession:
    """The cacheable session record for a client's full handshake."""
    return _FarmSession(
        client_random=client_id.to_bytes(32, "big"),
        server_random=_SERVER_RANDOM)


def session_id_for_client(client_id: int) -> bytes:
    """The session id a resuming client presents (affinity key)."""
    return SessionCache.session_id(farm_session(client_id))


def is_public_key_heavy(request: SessionRequest) -> bool:
    """Does this request's cost concentrate in public-key work?

    Full SSL and WTLS handshakes are public-key bound; resumed SSL,
    ESP, and WEP are bulk-symmetric/misc bound.  The preferential
    scheduler uses this split to route work onto TIE-extended cores.
    """
    return request.protocol in ("ssl", "wtls") and not request.resumed


def ecdh_cycles(costs: PlatformCosts) -> float:
    """Per-platform ECDH handshake cost.

    Measured costs (built by :meth:`repro.costs.PlatformCosts.measure`)
    carry a macro-model-estimated secp160r1 figure; hand-built costs
    without one fall back to the documented RSA-equivalence heuristic
    in :meth:`~repro.costs.PlatformCosts.ecdh_handshake_cycles`.
    """
    return costs.ecdh_handshake_cycles()


def cost_of(request: SessionRequest, costs: PlatformCosts,
            cache_hit: bool = False) -> RequestCost:
    """Cycles to serve ``request`` on a core with unit costs ``costs``.

    ``cache_hit`` applies to resumed SSL requests only: a hit serves
    the abbreviated handshake, a miss falls back to the full one (the
    client's session id is unknown to this core's cache).
    """
    size = request.size_bytes
    if request.protocol == "ssl":
        resumed = request.resumed and cache_hit
        b = SslWorkloadModel.breakdown(costs, size, resumed=resumed)
        return RequestCost(cycles=b.total, public_key_cycles=b.public_key,
                           payload_bytes=size)
    if request.protocol == "wtls":
        public_key = ecdh_cycles(costs)
        hashed = HANDSHAKE_TRANSCRIPT_BYTES // 4 + size
        bulk = (size * costs.cipher_cycles_per_byte
                + hashed * costs.hash_cycles_per_byte
                + size * costs.protocol_cycles_per_byte
                + costs.protocol_fixed_cycles)
        return RequestCost(cycles=public_key + bulk,
                           public_key_cycles=public_key,
                           payload_bytes=size)
    if request.protocol == "esp":
        packets = max(1, math.ceil(size / MTU_BYTES))
        cycles = (size * (costs.cipher_cycles_per_byte
                          + costs.hash_cycles_per_byte
                          + costs.protocol_cycles_per_byte)
                  + packets * costs.esp_packet_fixed_cycles)
        return RequestCost(cycles=cycles, public_key_cycles=0.0,
                           payload_bytes=size)
    if request.protocol == "wep":
        frames = max(1, math.ceil(size / MTU_BYTES))
        cycles = (size * (costs.rc4_cycles_per_byte
                          + costs.crc32_cycles_per_byte
                          + costs.protocol_cycles_per_byte)
                  + frames * costs.wep_frame_fixed_cycles)
        return RequestCost(cycles=cycles, public_key_cycles=0.0,
                           payload_bytes=size)
    raise ValueError(f"unknown protocol {request.protocol!r}")


@dataclass
class TrafficProfile:
    """Shape of the offered traffic (all draws are seed-deterministic).

    ``arrival_rate`` is in sessions/second of virtual time; inter-
    arrivals are exponential (Poisson arrivals).  ``mix`` weights the
    protocols; ``resumption_ratio`` is the probability an SSL client
    that already completed a full handshake asks to resume.  Session
    sizes are drawn from ``sizes_kb`` with ``size_weights`` (defaults
    favour small transactions, matching Figure 8's emphasis).
    """

    arrival_rate: float = 50.0
    mix: Dict[str, float] = field(default_factory=lambda: {
        "ssl": 0.5, "wtls": 0.2, "esp": 0.2, "wep": 0.1})
    resumption_ratio: float = 0.4
    sizes_kb: Sequence[int] = (1, 2, 4, 8, 16, 32)
    size_weights: Sequence[float] = (8, 6, 4, 2, 1, 1)
    clients: int = 64

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0 <= self.resumption_ratio <= 1:
            raise ValueError("resumption_ratio must be in [0, 1]")
        if self.clients < 1:
            raise ValueError("need at least one client")
        unknown = set(self.mix) - set(PROTOCOLS)
        if unknown:
            raise ValueError(f"unknown protocols in mix: {sorted(unknown)}")
        if not self.mix or sum(self.mix.values()) <= 0:
            raise ValueError("mix must have positive total weight")
        if len(self.sizes_kb) != len(self.size_weights):
            raise ValueError("sizes_kb and size_weights length mismatch")


def _uniform(prng: DeterministicPrng) -> float:
    """Uniform draw in (0, 1] -- safe as a log() argument."""
    return (prng.next_u64() + 1) / 2.0 ** 64


def _weighted_choice(prng: DeterministicPrng,
                     items: Sequence, weights: Sequence[float]):
    total = float(sum(weights))
    u = _uniform(prng) * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if u <= acc:
            return item
    return items[-1]


def _generate_stream(profile: TrafficProfile, n_requests: int,
                     prng: DeterministicPrng, arrival_rate: float,
                     clock_hz: float, seq_base: int = 0,
                     seq_stride: int = 1, client_base: int = 0,
                     client_stride: int = 1,
                     client_space: int = None) -> List[SessionRequest]:
    """Draw ``n_requests`` from an explicit PRNG stream.

    The draw *order* per request (inter-arrival, protocol, size,
    client, resumption) is the module's compatibility contract: with
    the default ``seq``/``client`` mapping this is exactly the
    :func:`generate_requests` stream.  Sharded generation re-maps the
    drawn client into the shard's residue class
    (``client_base + client_stride * draw``) and interleaves global
    sequence numbers (``seq_base + seq_stride * k``) so shards stay
    disjoint in both keys without consuming extra draws.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if client_space is None:
        client_space = profile.clients
    if client_space < 1:
        raise ValueError("client_space must be positive")
    protocols: Tuple[str, ...] = tuple(profile.mix)
    weights = tuple(profile.mix[p] for p in protocols)
    requests: List[SessionRequest] = []
    handshaken = set()      # clients with a completed-full-SSL history
    arrival_s = 0.0
    for k in range(n_requests):
        arrival_s += -math.log(_uniform(prng)) / arrival_rate
        protocol = _weighted_choice(prng, protocols, weights)
        size_kb = _weighted_choice(prng, profile.sizes_kb,
                                   profile.size_weights)
        client = client_base + client_stride * (prng.next_u64()
                                                % client_space)
        resumed = False
        if protocol == "ssl":
            if (client in handshaken
                    and _uniform(prng) <= profile.resumption_ratio):
                resumed = True
            else:
                handshaken.add(client)
        requests.append(SessionRequest(
            seq=seq_base + seq_stride * k,
            arrival_cycle=arrival_s * clock_hz,
            protocol=protocol, size_bytes=size_kb * 1024,
            resumed=resumed, client_id=client))
    return requests


def generate_requests(profile: TrafficProfile, n_requests: int,
                      seed: int = 1,
                      clock_hz: float = DEFAULT_CLOCK_HZ
                      ) -> List[SessionRequest]:
    """Generate a deterministic stream of ``n_requests`` requests.

    Resumption is *causal*: a request is marked resumed only if its
    client already issued a full SSL handshake earlier in the stream,
    so every resumed request has a session some core may have cached.
    """
    return _generate_stream(profile, n_requests, DeterministicPrng(seed),
                            profile.arrival_rate, clock_hz)
