"""Seeded traffic generation for the security-processor farm.

A *session request* is one unit of secure work a handset population
offers the farm: an SSL transaction (full or resumed handshake plus
record transfer), a WTLS browsing session (ECDH handshake), an IPSec
ESP bulk transfer, a burst of WEP frames -- or any other protocol
registered through :mod:`repro.protocols`.  Requests are generated
from a :class:`~repro.mp.DeterministicPrng` stream so a (profile,
seed) pair always produces the identical request list, and they are
costed in cycles by the registered
:class:`~repro.protocols.ProtocolModel` over the same
:class:`repro.costs.PlatformCosts` vocabulary the single-transaction
evaluation uses.

This module is protocol-agnostic: protocol names, mix weights, cycle
arithmetic, and resumption semantics all resolve through the registry.
The historical surface (``cost_of``, ``is_public_key_heavy``,
``ecdh_cycles``, ``farm_session``, ``session_id_for_client``,
``RequestCost``, ``MTU_BYTES``) is preserved as re-exports; the old
``PROTOCOLS`` tuple survives as a deprecation shim.
"""

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

# WEP/ESP per-byte and framing rates live in the unified cost
# vocabulary now; re-exported here because they are part of this
# module's historical surface.
from repro.costs import (CRC32_CYCLES_PER_BYTE, ESP_PACKET_FIXED_CYCLES,
                         PlatformCosts, RC4_CYCLES_PER_BYTE,
                         WEP_FRAME_FIXED_CYCLES)
from repro.mp import DeterministicPrng
from repro.protocols import (MTU_BYTES, RequestCost, UnknownProtocolError,
                             default_mix, get_protocol, protocol_names)
from repro.protocols.builtin import farm_session, session_id_for_client
from repro.ssl.throughput import DEFAULT_CLOCK_HZ


@dataclass(frozen=True)
class SessionRequest:
    """One unit of offered secure work."""

    seq: int                 # generation order; breaks event-time ties
    arrival_cycle: float     # virtual arrival time, in core cycles
    protocol: str            # a registered protocol name
    size_bytes: int          # protected payload size
    resumed: bool            # resumable protocols: client presents a key
    client_id: int           # originating handset (affinity key)


def is_public_key_heavy(request: SessionRequest) -> bool:
    """Does this request's cost concentrate in public-key work?

    Full SSL/WTLS/TLS-1.3 handshakes are public-key bound; resumed
    handshakes and bulk link-layer traffic are symmetric/misc bound.
    The preferential scheduler uses this split (answered by the
    registered protocol model) to route work onto TIE-extended cores.
    """
    return get_protocol(request.protocol).public_key_heavy(request)


def ecdh_cycles(costs: PlatformCosts) -> float:
    """Per-platform ECDH handshake cost.

    Measured costs (built by :meth:`repro.costs.PlatformCosts.measure`)
    carry a macro-model-estimated secp160r1 figure; hand-built costs
    without one fall back to the documented RSA-equivalence heuristic
    in :meth:`~repro.costs.PlatformCosts.ecdh_handshake_cycles`.
    """
    return costs.ecdh_handshake_cycles()


def cost_of(request: SessionRequest, costs: PlatformCosts,
            cache_hit: bool = False) -> RequestCost:
    """Cycles to serve ``request`` on a core with unit costs ``costs``.

    Delegates to the registered protocol model.  ``cache_hit`` applies
    to resumed requests only: a hit serves the abbreviated handshake, a
    miss falls back to the full one (the client's session key is
    unknown to this core's cache).
    """
    return get_protocol(request.protocol).request_cost(
        request, costs, cache_hit=cache_hit)


@dataclass
class TrafficProfile:
    """Shape of the offered traffic (all draws are seed-deterministic).

    ``arrival_rate`` is in sessions/second of virtual time; inter-
    arrivals are exponential (Poisson arrivals).  ``mix`` weights any
    registered protocols (defaulting to the registry's stock mix);
    ``resumption_ratio`` is the probability a client of a *resumable*
    protocol that already completed a full handshake asks to resume.
    Session sizes are drawn from ``sizes_kb`` with ``size_weights``
    (defaults favour small transactions, matching Figure 8's emphasis).
    """

    arrival_rate: float = 50.0
    mix: Dict[str, float] = field(default_factory=default_mix)
    resumption_ratio: float = 0.4
    sizes_kb: Sequence[int] = (1, 2, 4, 8, 16, 32)
    size_weights: Sequence[float] = (8, 6, 4, 2, 1, 1)
    clients: int = 64

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0 <= self.resumption_ratio <= 1:
            raise ValueError("resumption_ratio must be in [0, 1]")
        if self.clients < 1:
            raise ValueError("need at least one client")
        unknown = set(self.mix) - set(protocol_names())
        if unknown:
            raise UnknownProtocolError(sorted(unknown), protocol_names())
        if not self.mix or sum(self.mix.values()) <= 0:
            raise ValueError("mix must have positive total weight")
        if len(self.sizes_kb) != len(self.size_weights):
            raise ValueError("sizes_kb and size_weights length mismatch")


def _uniform(prng: DeterministicPrng) -> float:
    """Uniform draw in (0, 1] -- safe as a log() argument."""
    return (prng.next_u64() + 1) / 2.0 ** 64


def _weighted_choice(prng: DeterministicPrng,
                     items: Sequence, weights: Sequence[float]):
    total = float(sum(weights))
    u = _uniform(prng) * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if u <= acc:
            return item
    return items[-1]


def _generate_stream(profile: TrafficProfile, n_requests: int,
                     prng: DeterministicPrng, arrival_rate: float,
                     clock_hz: float, seq_base: int = 0,
                     seq_stride: int = 1, client_base: int = 0,
                     client_stride: int = 1,
                     client_space: int = None) -> List[SessionRequest]:
    """Draw ``n_requests`` from an explicit PRNG stream.

    The draw *order* per request (inter-arrival, protocol, size,
    client, resumption -- the last consumed only by resumable
    protocols with a handshaken client) is the module's compatibility
    contract: with the default ``seq``/``client`` mapping this is
    exactly the :func:`generate_requests` stream.  Sharded generation
    re-maps the drawn client into the shard's residue class
    (``client_base + client_stride * draw``) and interleaves global
    sequence numbers (``seq_base + seq_stride * k``) so shards stay
    disjoint in both keys without consuming extra draws.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if client_space is None:
        client_space = profile.clients
    if client_space < 1:
        raise ValueError("client_space must be positive")
    protocols: Tuple[str, ...] = tuple(profile.mix)
    weights = tuple(profile.mix[p] for p in protocols)
    requests: List[SessionRequest] = []
    # Per-protocol completed-full-handshake histories: only resumable
    # protocols keep one, so non-resumable traffic consumes no
    # resumption draws (the legacy SSL-only draw pattern, generalized).
    handshaken: Dict[str, Set[int]] = {
        name: set() for name in protocols if get_protocol(name).resumable}
    arrival_s = 0.0
    for k in range(n_requests):
        arrival_s += -math.log(_uniform(prng)) / arrival_rate
        protocol = _weighted_choice(prng, protocols, weights)
        size_kb = _weighted_choice(prng, profile.sizes_kb,
                                   profile.size_weights)
        client = client_base + client_stride * (prng.next_u64()
                                                % client_space)
        resumed = False
        history = handshaken.get(protocol)
        if history is not None:
            if (client in history
                    and _uniform(prng) <= profile.resumption_ratio):
                resumed = True
            else:
                history.add(client)
        requests.append(SessionRequest(
            seq=seq_base + seq_stride * k,
            arrival_cycle=arrival_s * clock_hz,
            protocol=protocol, size_bytes=size_kb * 1024,
            resumed=resumed, client_id=client))
    return requests


def generate_requests(profile: TrafficProfile, n_requests: int,
                      seed: int = 1,
                      clock_hz: float = DEFAULT_CLOCK_HZ
                      ) -> List[SessionRequest]:
    """Generate a deterministic stream of ``n_requests`` requests.

    Resumption is *causal*: a request is marked resumed only if its
    client already issued a full handshake of the same protocol
    earlier in the stream, so every resumed request has a session some
    core may have cached.
    """
    return _generate_stream(profile, n_requests, DeterministicPrng(seed),
                            profile.arrival_rate, clock_hz)


def __getattr__(name):
    if name == "PROTOCOLS":
        warnings.warn(
            "repro.farm.workload.PROTOCOLS is deprecated; use "
            "repro.protocols.protocol_names() (the registry now "
            "defines the protocol menu)", DeprecationWarning,
            stacklevel=2)
        return protocol_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
