"""Farm time series: the simulator's completion stream, over time.

The farm's registry metrics are published once, at the end of a run
(:func:`repro.farm.simulator.publish_metrics`); this module produces
the *time-resolved* counterpart.  A :class:`FarmSeriesRecorder`
replays completions -- live from inside :meth:`FarmSimulator.run`, or
post hoc from a finished :class:`~repro.farm.simulator.FarmResult` --
through a private registry, sampling it on the virtual cycle clock
every ``interval_seconds`` of simulated time.

Determinism is the point.  :func:`series_of` derives the series from
the *merged* completion stream in canonical ``(finish_cycle, seq)``
order -- the exact order :func:`repro.farm.shard.merge_results`
establishes -- so a sharded run's series is independent of the worker
count, repeat runs export byte-identical JSONL, and a ``shards=1``
post-hoc series equals the live-sampled one bit for bit (the
``farm_timeseries`` bench scenario gates all three at diff exactly
zero).

Each sample carries the cumulative registry view (counters,
histogram quantiles) plus three per-interval gauges derived from the
work that finished since the previous sample -- ``farm.interval.p99_ms``
is what makes a fault's latency spike *and recovery* visible, where a
cumulative histogram could only show the spike.
"""

from typing import Dict, List, Optional

from repro.obs import MetricsRegistry
from repro.obs.slo import SloReport
from repro.obs.timeseries import (DEFAULT_SERIES_CAPACITY,
                                  MetricsTimeSeries, TimeSeriesSampler)
from repro.farm.faults import FaultPlan
from repro.farm.metrics import percentile
from repro.farm.simulator import Completion, FarmResult

__all__ = ["DEFAULT_SERIES_INTERVAL_SECONDS", "FarmSeriesRecorder",
           "annotate_faults", "annotate_slo", "series_of"]

#: One sample per 50 virtual milliseconds: fine enough to straddle the
#: chaos plans' sub-second fault windows, coarse enough that a
#: thousands-of-requests run stays well inside the default ring.
DEFAULT_SERIES_INTERVAL_SECONDS = 0.05


class FarmSeriesRecorder:
    """Builds a farm time series from a completion stream.

    Feed :meth:`observe` completions in non-decreasing
    ``(finish_cycle, seq)`` order (the simulator's own emission order,
    and the shard merge order) and :meth:`finish` with the makespan.
    All of a completion's effects are attributed at its finish time,
    which is what makes the series a pure function of the completion
    stream -- derivable identically live or post hoc.
    """

    def __init__(self, scheduler: str, n_cores: int, clock_hz: float,
                 interval_seconds: float = DEFAULT_SERIES_INTERVAL_SECONDS,
                 capacity: int = DEFAULT_SERIES_CAPACITY):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.scheduler = scheduler
        self.n_cores = n_cores
        self.clock_hz = clock_hz
        self.interval_seconds = interval_seconds
        self.registry = MetricsRegistry()
        self.sampler = TimeSeriesSampler(
            registry=self.registry, clock_hz=clock_hz,
            interval_cycles=interval_seconds * clock_hz,
            capacity=capacity, before_sample=self._derive_gauges)
        self._busy_cycles = 0.0
        self._last_sample_t = 0.0
        self._interval_latencies_ms: List[float] = []
        self._interval_bits = 0.0

    def _derive_gauges(self, t_cycles: float) -> None:
        """Set the per-interval and utilization gauges for the sample
        being taken at ``t_cycles`` (runs via the sampler hook)."""
        sched = self.scheduler
        elapsed_s = max(0.0, (t_cycles - self._last_sample_t)
                        / self.clock_hz)
        lat = self._interval_latencies_ms
        self.registry.gauge("farm.interval.completed",
                            scheduler=sched).set(float(len(lat)))
        self.registry.gauge("farm.interval.p99_ms",
                            scheduler=sched).set(
            percentile(lat, 99) if lat else 0.0)
        self.registry.gauge("farm.interval.secure_mbps",
                            scheduler=sched).set(
            self._interval_bits / elapsed_s / 1e6 if elapsed_s else 0.0)
        self.registry.gauge("farm.utilization", scheduler=sched).set(
            self._busy_cycles / (self.n_cores * t_cycles)
            if t_cycles else 0.0)
        self._interval_latencies_ms = []
        self._interval_bits = 0.0
        self._last_sample_t = t_cycles

    def observe(self, completion: Completion) -> None:
        """Account one served request at its finish time."""
        t = completion.finish_cycle
        self.sampler.advance(t)
        sched = self.scheduler
        registry = self.registry
        request = completion.request
        latency_ms = completion.latency_cycles / self.clock_hz * 1e3
        registry.counter("farm.requests.completed",
                         scheduler=sched).inc()
        registry.counter("farm.secure.bytes", scheduler=sched).inc(
            request.size_bytes)
        registry.histogram("farm.request.latency_ms",
                           scheduler=sched).observe(latency_ms)
        registry.counter("farm.core.served", scheduler=sched,
                         core=completion.core_index).inc()
        if request.resumed:
            name = ("farm.session_cache.hits" if completion.cache_hit
                    else "farm.session_cache.misses")
            registry.counter(name, scheduler=sched,
                             protocol=request.protocol).inc()
        self._busy_cycles += completion.service_cycles
        self._interval_latencies_ms.append(latency_ms)
        self._interval_bits += request.size_bytes * 8

    def finish(self, makespan_cycles: float) -> MetricsTimeSeries:
        """Drain the remaining boundaries and close the series with
        one final sample at the makespan."""
        return self.sampler.finish(makespan_cycles)

    @property
    def series(self) -> MetricsTimeSeries:
        return self.sampler.series


def annotate_faults(series: MetricsTimeSeries, plan: FaultPlan,
                    makespan_cycles: float) -> int:
    """Pin the plan's fault events (within the run) onto the series;
    returns how many were annotated."""
    count = 0
    for event in plan.events:
        if event.cycle <= makespan_cycles:
            series.annotate(event.cycle, f"fault.{event.kind}",
                            core=event.core)
            count += 1
    return count


def annotate_slo(series: MetricsTimeSeries, report: SloReport,
                 clock_hz: float) -> int:
    """Pin one ``slo.alert`` per violated SLO window (at the window's
    end, when the verdict is known); returns the alert count."""
    count = 0
    for window in report.windows:
        if window.violations:
            series.annotate(window.end_s * clock_hz, "slo.alert",
                            window=window.index,
                            metrics=list(window.violations))
            count += 1
    return count


def series_of(result: FarmResult, *,
              faults: Optional[FaultPlan] = None,
              slo_report: Optional[SloReport] = None,
              interval_seconds: float = DEFAULT_SERIES_INTERVAL_SECONDS,
              capacity: int = DEFAULT_SERIES_CAPACITY
              ) -> MetricsTimeSeries:
    """Derive the time series of a finished (possibly merged) run.

    Completions replay in canonical ``(finish_cycle, seq)`` order, so
    the series of a sharded run is a pure function of the merged
    result -- identical for any ``jobs`` count, and identical to live
    sampling when ``shards=1``.  ``faults`` and ``slo_report``
    annotate their events onto the series.
    """
    recorder = FarmSeriesRecorder(
        scheduler=result.scheduler_name, n_cores=len(result.cores),
        clock_hz=result.clock_hz, interval_seconds=interval_seconds,
        capacity=capacity)
    for completion in sorted(result.completions,
                             key=lambda c: (c.finish_cycle,
                                            c.request.seq)):
        recorder.observe(completion)
    series = recorder.finish(result.makespan_cycles)
    if faults is not None:
        annotate_faults(series, faults, result.makespan_cycles)
    if slo_report is not None:
        annotate_slo(series, slo_report, result.clock_hz)
    return series
